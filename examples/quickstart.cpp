// Quickstart: load a small CSV, run smart drill-down, drill into a rule.
//
// Demonstrates the minimal public API surface:
//   ReadCsvString/ReadCsvFile -> Table
//   SizeWeight                -> the default weighting
//   ExplorationEngine::Create -> the shared engine for a dataset
//   NewSession                -> Expand / ExpandStar / Collapse
//   RenderSession             -> the paper-style rule table

#include <cstdio>

#include "explore/engine.h"
#include "explore/renderer.h"
#include "explore/session.h"
#include "storage/csv.h"
#include "weights/standard_weights.h"

namespace {

// A tiny department-store table in the spirit of the paper's Example 1.
constexpr const char* kCsv =
    "Store,Product,Region\n"
    "Walmart,cookies,CA-1\n"
    "Walmart,cookies,CA-1\n"
    "Walmart,cookies,WA-5\n"
    "Walmart,bicycles,CA-1\n"
    "Walmart,comforters,MA-3\n"
    "Target,bicycles,MA-3\n"
    "Target,bicycles,MA-3\n"
    "Target,bicycles,NY-2\n"
    "Target,cookies,NY-2\n"
    "Costco,comforters,MA-3\n"
    "Costco,comforters,MA-3\n"
    "Costco,cookies,CA-1\n";

}  // namespace

int main() {
  using namespace smartdd;

  auto table_or = ReadCsvString(kCsv);
  if (!table_or.ok()) {
    std::fprintf(stderr, "CSV error: %s\n",
                 table_or.status().ToString().c_str());
    return 1;
  }
  Table table = std::move(table_or).value();
  std::printf("Loaded %llu rows x %zu columns\n\n",
              static_cast<unsigned long long>(table.num_rows()),
              table.num_columns());

  SizeWeight weight;
  auto engine = ExplorationEngine::Create(table, weight);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  SessionOptions options;
  options.k = 3;
  auto session_or = (*engine)->NewSession(options);
  if (!session_or.ok()) {
    std::fprintf(stderr, "session error: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  ExplorationSession& session = *session_or;

  std::printf("== Initial view ==\n%s\n",
              RenderSession(session).c_str());

  // Smart drill-down on the trivial rule (the paper's first interaction).
  auto children = session.Expand(session.root());
  if (!children.ok()) {
    std::fprintf(stderr, "expand failed: %s\n",
                 children.status().ToString().c_str());
    return 1;
  }
  std::printf("== After smart drill-down on the empty rule ==\n%s\n",
              RenderSession(session).c_str());

  // Drill into the first child rule.
  if (!children->empty()) {
    int child = (*children)[0];
    auto grandchildren = session.Expand(child);
    if (grandchildren.ok()) {
      std::printf("== After drilling into the first rule ==\n%s\n",
                  RenderSession(session).c_str());
    }
    // Star drill-down on Region (column 2) of the root.
    (void)session.Collapse(child);
  }
  auto star = session.ExpandStar(session.root(), 2);
  if (star.ok()) {
    std::printf("== Star drill-down on Region ==\n%s\n",
                RenderSession(session).c_str());
  }
  return 0;
}
