// Tailoring "interesting" (paper §2.2 / §6.1): the same first drill-down on
// the Marketing table under five different weighting functions, plus the
// sample-based mw estimation of §6.1.

#include <cstdio>

#include "core/brs.h"
#include "core/mw_estimator.h"
#include "data/marketing_gen.h"
#include "storage/column_stats.h"
#include "explore/renderer.h"
#include "weights/parametric_weight.h"
#include "weights/standard_weights.h"

namespace {

using namespace smartdd;

void Show(const char* title, const Table& table, const WeightFunction& w,
          double mw) {
  TableView view(table);
  BrsOptions options;
  options.k = 4;
  options.max_weight = mw;
  auto result = RunBrs(view, w, options);
  std::printf("\n--- %s (mw=%.0f) ---\n", title, mw);
  if (!result.ok()) {
    std::printf("failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", RenderRuleList(table, result->rules).c_str());
  std::printf("score: %.0f\n", result->total_score);
}

}  // namespace

int main() {
  MarketingSpec spec;
  spec.columns = 7;
  Table table = GenerateMarketingTable(spec);

  // 1. Size: weight = number of instantiated columns (the default).
  SizeWeight size;
  Show("Size weighting", table, size, 5);

  // 2. Bits: columns with more distinct values weigh more.
  BitsWeight bits = BitsWeight::FromTable(table);
  Show("Bits weighting", table, bits, 20);

  // 3. max(0, Size-1): forbids single-column rules.
  SizeMinusOneWeight size_minus_one;
  Show("Size-minus-one weighting", table, size_minus_one, 5);

  // 4. Column preference: the analyst cares about Occupation (column 5)
  //    and is indifferent to Sex (column 1) — expressed as per-column
  //    weights (paper §2.2: "expressing a higher preference for a column").
  LinearColumnWeight preference({1, 0, 1, 1, 1, 3, 1}, "PreferOccupation");
  Show("Occupation-preferring weighting", table, preference, 8);

  // 5. Parametric family (W = (sum w_c)^alpha) with alpha tuned via §6.1 to
  //    make the top rule instantiate about half the columns.
  std::vector<double> freq;
  TableView view(table);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    freq.push_back(ComputeColumnStats(view, c).max_frequency_fraction);
  }
  double alpha = AlphaForInstantiationFraction(0.5, freq);
  ParametricWeight parametric(std::vector<double>(7, 1.0), alpha);
  std::printf("\n(§6.1 analysis chose alpha=%.2f for a ~50%% instantiation "
              "fraction)\n", alpha);
  Show("Parametric weighting", table, parametric,
       parametric.MaxPossibleWeight(7));

  // mw estimation (§6.1): estimate from a sample instead of guessing.
  auto est = EstimateMaxWeight(view, bits, 4, 1000, 42);
  if (est.ok()) {
    std::printf("\nSample-estimated mw for Bits: observed max %.0f -> "
                "mw = %.0f (vs worst case %.0f)\n",
                est->observed_max_weight, est->mw,
                bits.MaxPossibleWeight(table.num_columns()));
  }
  return 0;
}
