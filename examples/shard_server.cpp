// A backend process of the exploration cluster: one deterministic engine
// replica behind the length-prefixed binary RPC server (src/rpc/), speaking
// codec bytes over SDRP frames. Pair with example_cluster_router, which
// fronts N of these with the HTTP API (README "Cluster architecture").
//
// Usage:
//   shard_server [--port=N] [--token-seed=HEX] [file.csv]
//
// --port=0 (the default) binds an ephemeral port; the bound address is
// printed as "listening on 127.0.0.1:PORT" so scripts can scrape it.
// --token-seed gives this replica its session-token space — every backend
// in a cluster must use a DISTINCT seed so the router can tell their
// sessions apart. With no CSV the built-in retail example is served.
// SIGINT/SIGTERM drain in-flight calls and exit.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "api/service.h"
#include "api/wire_service.h"
#include "cluster/shard_server.h"
#include "data/retail_gen.h"
#include "explore/engine.h"
#include "storage/csv.h"
#include "weights/standard_weights.h"

namespace {

using namespace smartdd;

std::atomic<int> g_shutdown_signal{0};

bool ParseUint(const char* value, unsigned long long max,
               unsigned long long* out) {
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 0);
  if (*value == '\0' || *end != '\0' || *value == '-' || parsed > max) {
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  uint64_t token_seed = 0x5D177EEDULL;
  const char* csv_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    unsigned long long parsed = 0;
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      if (!ParseUint(argv[i] + 7, 65535, &parsed)) {
        std::fprintf(stderr,
                     "invalid --port=%s (expected 0..65535; 0 = ephemeral)\n",
                     argv[i] + 7);
        return 2;
      }
      port = static_cast<uint16_t>(parsed);
    } else if (std::strncmp(argv[i], "--token-seed=", 13) == 0) {
      if (!ParseUint(argv[i] + 13, ~0ULL, &parsed)) {
        std::fprintf(stderr, "invalid --token-seed=%s\n", argv[i] + 13);
        return 2;
      }
      token_seed = parsed;
    } else {
      csv_path = argv[i];
    }
  }

  Table table = [&]() {
    if (csv_path != nullptr) {
      auto loaded = ReadCsvFile(csv_path);
      if (loaded.ok()) return std::move(loaded).value();
      std::fprintf(stderr, "failed to load %s: %s — using built-in retail\n",
                   csv_path, loaded.status().ToString().c_str());
    }
    return GenerateRetailTable();
  }();

  SizeWeight weight;
  auto engine = ExplorationEngine::Create(table, weight);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  api::ServiceOptions service_options;
  service_options.token_seed = token_seed;
  api::ExplorationService service(service_options);
  SMARTDD_CHECK(service.AddEngine("default", engine->get()).ok());
  api::LocalWireService wire(&service);

  rpc::ServerOptions server_options;
  server_options.port = port;
  cluster::ShardServer server(&wire, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "rpc: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", unsigned{server.port()});
  std::printf("token seed 0x%llX — give every backend its own\n",
              static_cast<unsigned long long>(token_seed));
  std::fflush(stdout);

  std::signal(SIGINT, [](int sig) { g_shutdown_signal.store(sig); });
  std::signal(SIGTERM, [](int sig) { g_shutdown_signal.store(sig); });
  while (g_shutdown_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down (signal %d)\n", g_shutdown_signal.load());
  std::fflush(stdout);
  server.Shutdown();
  return 0;
}
