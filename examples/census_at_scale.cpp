// Exploring a table that lives on disk: generates a census-like DiskTable
// (row count via SMARTDD_CENSUS_ROWS, default 200k), then explores it with
// the sampling stack of paper §4 — showing how Find/Combine/Create and
// pre-fetching keep interactions off the disk.

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "data/census_gen.h"
#include "explore/engine.h"
#include "explore/renderer.h"
#include "explore/session.h"
#include "storage/disk_table.h"
#include "weights/standard_weights.h"

int main() {
  using namespace smartdd;

  uint64_t rows = 200000;
  if (const char* env = std::getenv("SMARTDD_CENSUS_ROWS")) {
    rows = std::strtoull(env, nullptr, 10);
  }
  CensusSpec spec;
  spec.rows = rows;
  spec.columns_used = 12;
  const char* tmp = std::getenv("TMPDIR");
  std::string path =
      std::string(tmp ? tmp : "/tmp") + "/smartdd_census_example.sddt";

  std::printf("Generating %llu-row census table on disk at %s ...\n",
              static_cast<unsigned long long>(rows), path.c_str());
  WallTimer timer;
  if (Status s = GenerateCensusDiskTable(spec, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  generated in %.1f ms\n", timer.ElapsedMillis());

  auto disk = DiskTable::Open(path);
  if (!disk.ok()) return 1;
  DiskScanSource source(*disk);

  SizeWeight weight;
  EngineOptions engine_options;
  engine_options.use_sampling = true;
  engine_options.sampler.memory_capacity = 50000;
  engine_options.sampler.min_sample_size = 5000;
  auto engine = ExplorationEngine::Create(source, weight, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  SessionOptions options;
  options.k = 3;
  options.max_weight = 4;
  options.prefetch = Prefetcher::Mode::kSynchronous;
  auto session_or = (*engine)->NewSession(options);
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  ExplorationSession& session = *session_or;

  timer.Restart();
  auto level1 = session.Expand(session.root());
  if (!level1.ok()) {
    std::fprintf(stderr, "%s\n", level1.status().ToString().c_str());
    return 1;
  }
  std::printf("\nFirst expansion took %.1f ms (includes the one disk pass "
              "that creates the sample)\n",
              timer.ElapsedMillis());
  RenderOptions ropts;
  ropts.show_confidence = true;
  std::printf("%s", RenderSession(session, ropts).c_str());

  // Thanks to prefetching, the next drill-down is served from memory.
  timer.Restart();
  auto level2 = session.Expand((*level1)[0]);
  double expand2_ms = timer.ElapsedMillis();
  if (level2.ok()) {
    std::printf("\nSecond expansion took %.1f ms (served from prefetched "
                "samples — no disk pass)\n",
                expand2_ms);
    std::printf("%s", RenderSession(session, ropts).c_str());
  }

  const SampleHandler* handler = session.sampler();
  std::printf("\nSampleHandler stats: scans=%llu prefetch_scans=%llu "
              "finds=%llu combines=%llu creates=%llu memory=%llu tuples\n",
              static_cast<unsigned long long>(handler->scans_performed()),
              static_cast<unsigned long long>(handler->prefetch_scans()),
              static_cast<unsigned long long>(handler->find_hits()),
              static_cast<unsigned long long>(handler->combine_hits()),
              static_cast<unsigned long long>(handler->creates()),
              static_cast<unsigned long long>(handler->memory_used()));

  // Replace the estimates with exact counts (one final pass).
  if (session.RefreshExactCounts().ok()) {
    std::printf("\nAfter exact-count refresh:\n%s",
                RenderSession(session).c_str());
  }
  std::remove(path.c_str());
  return 0;
}
