// An interactive command-line analogue of the paper's web prototype: load a
// CSV (or the built-in retail example), then explore with smart drill-down
// commands. Reads from stdin; suitable for piping a script.
//
// Every command is parsed by the service codec (api/codec.h) and executed
// through the front-door ExplorationService, exactly as a network client
// would — malformed input (non-numeric node ids, out-of-range columns,
// unknown commands) comes back as a printed Status instead of being
// swallowed or crashing.
//
// Commands (the CLI fills in the session token for you):
//   show                render the current rule table (with node ids)
//   expand <id>         smart drill-down on a displayed rule
//   star <id> <column>  star drill-down on a column of a rule
//   collapse <id>       roll up
//   k <n>               change the number of rules per expansion
//   exact               refresh displayed counts to exact values
//   append <csv-row>    append a row to a live table (--live; dimension
//                       cells then measure cells, schema order)
//   tableinfo           current table version, row count, WAL bytes
//   help, quit
//
// Live-table mode:
//   interactive_cli --live[=wal.log] [file.csv]
// registers the dataset as an appendable live table (every append publishes
// a new snapshot version; sessions keep the version they opened). With
// =wal.log, appends are durably logged and replayed on the next start.
//
// Raw service mode:
//   interactive_cli --serve [file.csv]
// speaks the wire protocol verbatim: one request line in, one JSON response
// line out (the canonical byte-stream integration surface; see README
// "Service API"). Blank lines and '#' comments are skipped. A script whose
// final request is truncated at EOF exits nonzero with a Status message.
//
// HTTP mode:
//   interactive_cli --http=PORT [file.csv]
// serves the same protocol over the epoll HTTP server (README "HTTP API"):
// POST /v1/* request bodies, SSE step streaming on /v1/expand/stream,
// /healthz, and Prometheus /metrics. PORT 0 binds an ephemeral port; the
// bound address is printed on startup. SIGINT/SIGTERM drain and exit.
//
// Multi-user mode:
//   interactive_cli --sessions=N [file.csv]
// drives N scripted explorers concurrently through ONE shared
// ExplorationEngine — the engine/session split end to end.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/codec.h"
#include "api/render.h"
#include "api/service.h"
#include "common/string_util.h"
#include "data/retail_gen.h"
#include "explore/engine.h"
#include "explore/renderer.h"
#include "explore/session.h"
#include "net/exploration_http_adapter.h"
#include "net/http_server.h"
#include "storage/csv.h"
#include "weights/standard_weights.h"

namespace {

using namespace smartdd;

void Help() {
  std::printf(
      "commands: show | expand <id> | star <id> <col> | collapse <id> | "
      "k <n> | exact | append <csv-row> | tableinfo | help | quit\n");
}

void PrintTableInfo(const api::TableInfoView& info) {
  std::printf("table %s: version=%llu rows=%llu pending=%llu wal_bytes=%llu\n",
              info.dataset.c_str(),
              static_cast<unsigned long long>(info.version),
              static_cast<unsigned long long>(info.rows),
              static_cast<unsigned long long>(info.pending_rows),
              static_cast<unsigned long long>(info.wal_bytes));
}

void PrintStatus(const Status& status) {
  std::printf("error [%s]: %s\n", api::ErrorCodeName(status.code()),
              status.message().c_str());
}

/// The scripted walk every demo session performs: expand the root, then
/// drill into one child — rotating by session index, so sessions with the
/// same index mod k produce byte-identical trees and the rest diverge.
void RunScriptedSession(ExplorationSession& session, size_t index) {
  auto children = session.Expand(session.root());
  if (!children.ok() || children->empty()) return;
  (void)session.Expand((*children)[index % children->size()]);
}

int RunMultiSessionDemo(const Table& table, size_t num_sessions) {
  SizeWeight weight;
  ExplorationEngine engine(table, weight);

  std::printf(
      "driving %zu concurrent sessions through one shared engine "
      "(%llu rows, %zu columns)\n\n",
      num_sessions, static_cast<unsigned long long>(table.num_rows()),
      table.num_columns());

  std::vector<std::string> rendered(num_sessions);
  std::vector<std::thread> threads;
  for (size_t s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&, s]() {
      SessionOptions options;
      options.k = 3;
      ExplorationSession session = *engine.NewSession(options);
      RunScriptedSession(session, s);
      rendered[s] = RenderSession(session);
    });
  }
  for (auto& t : threads) t.join();

  // Sessions running the same script (same rotation index mod k) must agree
  // byte-for-byte; print each distinct tree once.
  size_t shown = 0;
  for (size_t s = 0; s < num_sessions; ++s) {
    bool duplicate = false;
    for (size_t prev = 0; prev < s && !duplicate; ++prev) {
      duplicate = rendered[prev] == rendered[s];
    }
    if (duplicate) continue;
    std::printf("--- session %zu (and every session with the same script) "
                "---\n%s\n",
                s, rendered[s].c_str());
    ++shown;
  }
  std::printf(
      "%zu sessions produced %zu distinct trees (one per script variant); "
      "sessions sharing a script agree byte-for-byte.\n",
      num_sessions, shown);
  return 0;
}

/// Raw wire mode: protocol lines on stdin, JSON lines on stdout. A script
/// that ends mid-request — EOF before the final newline, the signature of a
/// truncated pipe or a generator that died — is a malformed script: the
/// defect is reported as a Status on both channels and the exit status is
/// nonzero, so CI pipelines cannot mistake half a script for success.
int RunServe(api::ExplorationService& service) {
  std::string line;
  while (std::getline(std::cin, line)) {
    const bool truncated = std::cin.eof() && !line.empty();
    if (truncated) {
      Status status = Status::InvalidArgument(StrFormat(
          "script ended mid-request: EOF before the newline terminating "
          "'%.48s'",
          line.c_str()));
      api::Response response;
      response.status = status;
      std::printf("%s\n", api::EncodeResponse(response).c_str());
      std::fflush(stdout);
      std::fprintf(stderr, "serve: %s\n", status.ToString().c_str());
      return 1;
    }
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::printf("%s\n", service.ServeLine(line).c_str());
    std::fflush(stdout);
  }
  if (std::cin.bad()) {
    std::fprintf(stderr, "serve: %s\n",
                 Status::IOError("error reading request script from stdin")
                     .ToString()
                     .c_str());
    return 1;
  }
  return 0;
}

/// HTTP mode (--http=PORT): serves the full API over a real socket until
/// SIGINT/SIGTERM, then drains in-flight expansions and exits. Port 0
/// binds an ephemeral port; the bound address is printed either way, so
/// scripts can scrape it.
std::atomic<int> g_shutdown_signal{0};

int RunHttp(api::ExplorationService& service, uint16_t port) {
  net::ExplorationHttpAdapter adapter(&service);
  net::HttpServerOptions options;
  options.port = port;
  net::HttpServer server(adapter.AsHandler(), options);
  // /readyz flips to 503 the moment a drain starts, so a load balancer
  // pulls this process before its listener closes.
  adapter.SetReadinessProbe([&server]() { return !server.draining(); });
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "http: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on http://127.0.0.1:%u\n", unsigned{server.port()});
  std::fflush(stdout);
  std::signal(SIGINT, [](int sig) { g_shutdown_signal.store(sig); });
  std::signal(SIGTERM, [](int sig) { g_shutdown_signal.store(sig); });
  while (g_shutdown_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down (signal %d)\n", g_shutdown_signal.load());
  std::fflush(stdout);
  // Graceful: the server drains before the service (and its engines, which
  // the destruction order below tears down after us) go away.
  server.Shutdown();
  return 0;
}

/// Opens a session with drill-down width `k` and renders the initial
/// (root-only) tree the open response ships; returns 0 on failure.
uint64_t OpenSession(api::ExplorationService& service, size_t k) {
  api::OpenRequest open;
  open.k = k;
  api::Response r = service.Execute(api::Request(open));
  if (!r.status.ok()) {
    PrintStatus(r.status);
    return 0;
  }
  if (r.tree) std::printf("%s", api::RenderSnapshot(*r.tree).c_str());
  return r.session.value_or(0);
}

int RunInteractive(api::ExplorationService& service, const Table& table) {
  std::printf("smartdd interactive explorer — %llu rows, %zu columns\n",
              static_cast<unsigned long long>(table.num_rows()),
              table.num_columns());
  std::printf("columns:");
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::printf(" %zu=%s", c, table.schema().name(c).c_str());
  }
  std::printf("\n");
  Help();

  size_t k = 3;
  uint64_t token = OpenSession(service, k);
  if (token == 0) return 1;

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
      continue;
    }
    if (cmd == "k") {
      size_t new_k;
      if (!(in >> new_k) || new_k == 0) {
        PrintStatus(Status::InvalidArgument("k must be a positive integer"));
        continue;
      }
      // Sessions are cheap handles: close the old one, open a fresh one
      // with the new width (resets the display, as the paper's UI does).
      (void)service.Execute(api::Request(api::CloseRequest{token}));
      k = new_k;
      std::printf("k set to %zu (display reset)\n", k);
      token = OpenSession(service, k);
      if (token == 0) return 1;
      continue;
    }

    // Rebuild the command as a protocol line, splicing the session token
    // into session-addressed verbs only (open/ping take none), and let the
    // codec do ALL input validation.
    std::istringstream reparse(line);
    std::string verb, rest;
    reparse >> verb;
    std::getline(reparse, rest);
    const bool needs_token = verb == "expand" || verb == "star" ||
                             verb == "collapse" || verb == "show" ||
                             verb == "exact" || verb == "close";
    std::string wire_line =
        needs_token ? verb + " " + api::FormatToken(token) + rest : line;

    auto request = api::ParseRequest(wire_line);
    if (!request.ok()) {
      PrintStatus(request.status());
      continue;
    }
    api::Response response = service.Execute(*request);
    if (!response.status.ok()) {
      PrintStatus(response.status);
      continue;
    }
    // A successful `open` at the prompt switches to the fresh session;
    // release the abandoned one instead of leaking it until LRU pressure.
    if (response.session && *response.session != token) {
      (void)service.Execute(api::Request(api::CloseRequest{token}));
      token = *response.session;
    }
    if (response.tree) {
      std::printf("%s", api::RenderSnapshot(*response.tree).c_str());
    }
    if (response.table) {
      PrintTableInfo(*response.table);
    }
  }
  std::printf("bye\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_sessions = 0;
  bool serve = false;
  bool http = false;
  bool live = false;
  std::string wal_path;
  uint16_t http_port = 0;
  const char* csv_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--http=", 7) == 0) {
      const char* value = argv[i] + 7;
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value, &end, 10);
      if (*value == '\0' || *end != '\0' || *value == '-' || parsed > 65535) {
        std::fprintf(stderr,
                     "invalid --http=%s (expected a port in 0..65535; 0 = "
                     "ephemeral)\n",
                     value);
        return 2;
      }
      http = true;
      http_port = static_cast<uint16_t>(parsed);
    } else if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      const char* value = argv[i] + 11;
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value, &end, 10);
      if (*value == '\0' || *end != '\0' || *value == '-' || parsed == 0 ||
          parsed > 1024) {
        std::fprintf(stderr,
                     "invalid --sessions=%s (expected an integer in 1..1024)\n",
                     value);
        return 2;
      }
      num_sessions = static_cast<size_t>(parsed);
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else if (std::strncmp(argv[i], "--live=", 7) == 0) {
      live = true;
      wal_path = argv[i] + 7;
    } else {
      csv_path = argv[i];
    }
  }

  Table table = [&]() {
    if (csv_path != nullptr) {
      auto loaded = ReadCsvFile(csv_path);
      if (loaded.ok()) return std::move(loaded).value();
      std::fprintf(stderr, "failed to load %s: %s — using built-in retail\n",
                   csv_path, loaded.status().ToString().c_str());
    }
    return GenerateRetailTable();
  }();

  if (num_sessions > 0) {
    return RunMultiSessionDemo(table, num_sessions);
  }

  SizeWeight weight;
  std::optional<Result<std::unique_ptr<ExplorationEngine>>> engine;
  api::ServiceOptions service_options;
  // Deterministic tokens so sessions are scriptable byte-for-byte (the CI
  // smoke replays scripts/service_smoke.txt against a golden transcript).
  // Real deployments keep the entropy-seeded default.
  service_options.token_seed = 0x5D177EEDULL;
  // Every append publishes a snapshot version immediately: interactive and
  // scripted users see their row land without waiting for a batch.
  service_options.live_snapshot_every_rows = 1;
  api::ExplorationService service(service_options);
  if (live) {
    Status added = service.AddLiveTable("default", table, weight, wal_path);
    if (!added.ok()) {
      std::fprintf(stderr, "live table: %s\n", added.ToString().c_str());
      return 1;
    }
  } else {
    engine.emplace(ExplorationEngine::Create(table, weight));
    if (!engine->ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   engine->status().ToString().c_str());
      return 1;
    }
    SMARTDD_CHECK(service.AddEngine("default", (*engine)->get()).ok());
  }

  if (http) return RunHttp(service, http_port);
  if (serve) return RunServe(service);
  return RunInteractive(service, table);
}
