// An interactive command-line analogue of the paper's web prototype: load a
// CSV (or the built-in retail example), then explore with smart drill-down
// commands. Reads from stdin; suitable for piping a script.
//
// Commands:
//   show                render the current rule table (with node ids)
//   expand <id>         smart drill-down on a displayed rule
//   star <id> <column>  star drill-down on a column of a rule
//   collapse <id>       roll up
//   k <n>               change the number of rules per expansion
//   exact               refresh displayed counts to exact values
//   help, quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "data/retail_gen.h"
#include "explore/renderer.h"
#include "explore/session.h"
#include "storage/csv.h"
#include "weights/standard_weights.h"

namespace {

using namespace smartdd;

void Render(const ExplorationSession& session) {
  // Render with explicit node ids so commands can address rules.
  const Table& proto = session.prototype();
  std::printf("%4s | %s", "id", RenderSession(session).c_str());
  std::printf("node ids in display order:");
  for (int id : session.DisplayOrder()) std::printf(" %d", id);
  std::printf("\n");
  (void)proto;
}

void Help() {
  std::printf(
      "commands: show | expand <id> | star <id> <col> | collapse <id> | "
      "k <n> | exact | help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  Table table = [&]() {
    if (argc > 1) {
      auto loaded = ReadCsvFile(argv[1]);
      if (loaded.ok()) return std::move(loaded).value();
      std::fprintf(stderr, "failed to load %s: %s — using built-in retail\n",
                   argv[1], loaded.status().ToString().c_str());
    }
    return GenerateRetailTable();
  }();

  SizeWeight weight;
  SessionOptions options;
  options.k = 3;
  auto session_ptr =
      std::make_unique<ExplorationSession>(table, weight, options);

  std::printf("smartdd interactive explorer — %llu rows, %zu columns\n",
              static_cast<unsigned long long>(table.num_rows()),
              table.num_columns());
  std::printf("columns:");
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::printf(" %zu=%s", c, table.schema().name(c).c_str());
  }
  std::printf("\n");
  Help();
  Render(*session_ptr);

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    ExplorationSession& session = *session_ptr;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
    } else if (cmd == "show") {
      Render(session);
    } else if (cmd == "expand") {
      int id;
      if (!(in >> id)) { Help(); continue; }
      auto r = session.Expand(id);
      if (!r.ok()) std::printf("error: %s\n", r.status().ToString().c_str());
      else Render(session);
    } else if (cmd == "star") {
      int id;
      size_t col;
      if (!(in >> id >> col)) { Help(); continue; }
      auto r = session.ExpandStar(id, col);
      if (!r.ok()) std::printf("error: %s\n", r.status().ToString().c_str());
      else Render(session);
    } else if (cmd == "collapse") {
      int id;
      if (!(in >> id)) { Help(); continue; }
      Status s = session.Collapse(id);
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      else Render(session);
    } else if (cmd == "k") {
      size_t k;
      if (!(in >> k) || k == 0) { Help(); continue; }
      options.k = k;
      session_ptr =
          std::make_unique<ExplorationSession>(table, weight, options);
      std::printf("k set to %zu (display reset)\n", k);
      Render(*session_ptr);
    } else if (cmd == "exact") {
      Status s = session.RefreshExactCounts();
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      else Render(session);
    } else {
      Help();
    }
  }
  std::printf("bye\n");
  return 0;
}
