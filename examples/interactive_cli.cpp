// An interactive command-line analogue of the paper's web prototype: load a
// CSV (or the built-in retail example), then explore with smart drill-down
// commands. Reads from stdin; suitable for piping a script.
//
// Commands:
//   show                render the current rule table (with node ids)
//   expand <id>         smart drill-down on a displayed rule
//   star <id> <column>  star drill-down on a column of a rule
//   collapse <id>       roll up
//   k <n>               change the number of rules per expansion
//   exact               refresh displayed counts to exact values
//   help, quit
//
// Multi-user mode:
//   interactive_cli --sessions=N [file.csv]
// drives N scripted explorers concurrently through ONE shared
// ExplorationEngine — the engine/session split end to end: each session is
// a cheap handle (tree state only) onto the shared table, thread pool, and
// fair scheduler, and every session's tree is byte-identical to the same
// script run alone.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "data/retail_gen.h"
#include "explore/engine.h"
#include "explore/renderer.h"
#include "explore/session.h"
#include "storage/csv.h"
#include "weights/standard_weights.h"

namespace {

using namespace smartdd;

void Render(const ExplorationSession& session) {
  // Render with explicit node ids so commands can address rules.
  const Table& proto = session.prototype();
  std::printf("%4s | %s", "id", RenderSession(session).c_str());
  std::printf("node ids in display order:");
  for (int id : session.DisplayOrder()) std::printf(" %d", id);
  std::printf("\n");
  (void)proto;
}

void Help() {
  std::printf(
      "commands: show | expand <id> | star <id> <col> | collapse <id> | "
      "k <n> | exact | help | quit\n");
}

/// The scripted walk every demo session performs: expand the root, then
/// drill into one child — rotating by session index, so sessions with the
/// same index mod k produce byte-identical trees and the rest diverge.
void RunScriptedSession(ExplorationSession& session, size_t index) {
  auto children = session.Expand(session.root());
  if (!children.ok() || children->empty()) return;
  (void)session.Expand((*children)[index % children->size()]);
}

int RunMultiSessionDemo(const Table& table, size_t num_sessions) {
  SizeWeight weight;
  ExplorationEngine engine(table, weight);

  std::printf(
      "driving %zu concurrent sessions through one shared engine "
      "(%llu rows, %zu columns)\n\n",
      num_sessions, static_cast<unsigned long long>(table.num_rows()),
      table.num_columns());

  std::vector<std::string> rendered(num_sessions);
  std::vector<std::thread> threads;
  for (size_t s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&, s]() {
      SessionOptions options;
      options.k = 3;
      ExplorationSession session = engine.NewSession(options);
      RunScriptedSession(session, s);
      rendered[s] = RenderSession(session);
    });
  }
  for (auto& t : threads) t.join();

  // Sessions running the same script (same rotation index mod k) must agree
  // byte-for-byte; print each distinct tree once.
  size_t shown = 0;
  for (size_t s = 0; s < num_sessions; ++s) {
    bool duplicate = false;
    for (size_t prev = 0; prev < s && !duplicate; ++prev) {
      duplicate = rendered[prev] == rendered[s];
    }
    if (duplicate) continue;
    std::printf("--- session %zu (and every session with the same script) "
                "---\n%s\n",
                s, rendered[s].c_str());
    ++shown;
  }
  std::printf(
      "%zu sessions produced %zu distinct trees (one per script variant); "
      "sessions sharing a script agree byte-for-byte.\n",
      num_sessions, shown);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_sessions = 0;
  const char* csv_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      const char* value = argv[i] + 11;
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value, &end, 10);
      if (*value == '\0' || *end != '\0' || *value == '-' || parsed == 0 ||
          parsed > 1024) {
        std::fprintf(stderr,
                     "invalid --sessions=%s (expected an integer in 1..1024)\n",
                     value);
        return 2;
      }
      num_sessions = static_cast<size_t>(parsed);
    } else {
      csv_path = argv[i];
    }
  }

  Table table = [&]() {
    if (csv_path != nullptr) {
      auto loaded = ReadCsvFile(csv_path);
      if (loaded.ok()) return std::move(loaded).value();
      std::fprintf(stderr, "failed to load %s: %s — using built-in retail\n",
                   csv_path, loaded.status().ToString().c_str());
    }
    return GenerateRetailTable();
  }();

  if (num_sessions > 0) {
    return RunMultiSessionDemo(table, num_sessions);
  }

  SizeWeight weight;
  ExplorationEngine engine(table, weight);
  SessionOptions options;
  options.k = 3;
  std::optional<ExplorationSession> session_slot(engine.NewSession(options));

  std::printf("smartdd interactive explorer — %llu rows, %zu columns\n",
              static_cast<unsigned long long>(table.num_rows()),
              table.num_columns());
  std::printf("columns:");
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::printf(" %zu=%s", c, table.schema().name(c).c_str());
  }
  std::printf("\n");
  Help();
  Render(*session_slot);

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    ExplorationSession& session = *session_slot;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
    } else if (cmd == "show") {
      Render(session);
    } else if (cmd == "expand") {
      int id;
      if (!(in >> id)) { Help(); continue; }
      auto r = session.Expand(id);
      if (!r.ok()) std::printf("error: %s\n", r.status().ToString().c_str());
      else Render(session);
    } else if (cmd == "star") {
      int id;
      size_t col;
      if (!(in >> id >> col)) { Help(); continue; }
      auto r = session.ExpandStar(id, col);
      if (!r.ok()) std::printf("error: %s\n", r.status().ToString().c_str());
      else Render(session);
    } else if (cmd == "collapse") {
      int id;
      if (!(in >> id)) { Help(); continue; }
      Status s = session.Collapse(id);
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      else Render(session);
    } else if (cmd == "k") {
      size_t k;
      if (!(in >> k) || k == 0) { Help(); continue; }
      options.k = k;
      // Sessions are cheap handles: a fresh one resets the display without
      // touching the shared engine.
      session_slot.emplace(engine.NewSession(options));
      std::printf("k set to %zu (display reset)\n", k);
      Render(*session_slot);
    } else if (cmd == "exact") {
      Status s = session.RefreshExactCounts();
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      else Render(session);
    } else {
      Help();
    }
  }
  std::printf("bye\n");
  return 0;
}
