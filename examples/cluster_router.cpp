// The exploration cluster's front door: an HTTP server whose WireService is
// a cluster::Router forwarding codec bytes to shard-server backends over
// the binary RPC protocol (README "Cluster architecture"). The HTTP surface
// is byte-identical to a single-process deployment — same routes, same
// envelopes, same SSE streaming — which scripts/cluster_smoke.sh verifies
// against the single-process golden transcript.
//
// Usage:
//   cluster_router --backend=HOST:PORT [--backend=HOST:PORT ...]
//                  [--http=PORT] [--probe-interval-ms=N]
//
// Start backends first (example_shard_server, each with a distinct
// --token-seed), then point --backend flags at their printed addresses.
// --http=0 (the default) binds an ephemeral port and prints it. /readyz
// answers 503 until at least one backend is healthy and while draining.
// SIGINT/SIGTERM drain and exit.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "net/exploration_http_adapter.h"
#include "net/http_server.h"

namespace {

using namespace smartdd;

std::atomic<int> g_shutdown_signal{0};

bool ParsePort(const char* value, uint16_t* out) {
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (*value == '\0' || *end != '\0' || *value == '-' || parsed > 65535) {
    return false;
  }
  *out = static_cast<uint16_t>(parsed);
  return true;
}

bool ParseBackend(const char* value, cluster::BackendAddress* out) {
  const char* colon = std::strrchr(value, ':');
  if (colon == nullptr || colon == value) return false;
  uint16_t port = 0;
  if (!ParsePort(colon + 1, &port) || port == 0) return false;
  out->host.assign(value, static_cast<size_t>(colon - value));
  out->port = port;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t http_port = 0;
  std::vector<cluster::BackendAddress> backends;
  cluster::RouterOptions router_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      cluster::BackendAddress address;
      if (!ParseBackend(argv[i] + 10, &address)) {
        std::fprintf(stderr, "invalid --backend=%s (expected HOST:PORT)\n",
                     argv[i] + 10);
        return 2;
      }
      backends.push_back(address);
    } else if (std::strncmp(argv[i], "--http=", 7) == 0) {
      if (!ParsePort(argv[i] + 7, &http_port)) {
        std::fprintf(stderr,
                     "invalid --http=%s (expected 0..65535; 0 = ephemeral)\n",
                     argv[i] + 7);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--probe-interval-ms=", 20) == 0) {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(argv[i] + 20, &end, 10);
      if (argv[i][20] == '\0' || *end != '\0') {
        std::fprintf(stderr, "invalid %s\n", argv[i]);
        return 2;
      }
      router_options.probe_interval_ms = parsed;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  if (backends.empty()) {
    std::fprintf(stderr,
                 "usage: cluster_router --backend=HOST:PORT "
                 "[--backend=HOST:PORT ...] [--http=PORT]\n");
    return 2;
  }

  cluster::Router router(backends, router_options);
  Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "router: %s\n", started.ToString().c_str());
    return 1;
  }

  net::ExplorationHttpAdapter adapter(static_cast<api::WireService*>(&router));
  net::HttpServerOptions options;
  options.port = http_port;
  net::HttpServer server(adapter.AsHandler(), options);
  adapter.SetReadinessProbe([&server]() { return !server.draining(); });
  Status http_started = server.Start();
  if (!http_started.ok()) {
    std::fprintf(stderr, "http: %s\n", http_started.ToString().c_str());
    return 1;
  }
  std::printf("listening on http://127.0.0.1:%u\n", unsigned{server.port()});
  std::printf("routing sessions across %zu backend(s)\n", backends.size());
  std::fflush(stdout);

  std::signal(SIGINT, [](int sig) { g_shutdown_signal.store(sig); });
  std::signal(SIGTERM, [](int sig) { g_shutdown_signal.store(sig); });
  while (g_shutdown_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down (signal %d)\n", g_shutdown_signal.load());
  std::fflush(stdout);
  // Order matters: the HTTP server drains first (its in-flight handlers
  // call into the router), then the router drains its backend streams.
  server.Shutdown();
  router.Shutdown();
  return 0;
}
