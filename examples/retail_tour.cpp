// A guided tour of every smart-drill-down interaction on the paper's
// department-store example (Example 1): rule drill-down, star drill-down,
// roll-up, and the Sum aggregate over a measure column (§6.3).

#include <cstdio>

#include "core/drilldown.h"
#include "data/retail_gen.h"
#include "explore/engine.h"
#include "explore/renderer.h"
#include "explore/session.h"
#include "weights/standard_weights.h"

namespace {

void Banner(const char* text) {
  std::printf("\n######## %s ########\n", text);
}

}  // namespace

int main() {
  using namespace smartdd;

  Table table = GenerateRetailTable();
  SizeWeight weight;
  auto engine = ExplorationEngine::Create(table, weight);
  if (!engine.ok()) return 1;
  SessionOptions options;
  options.k = 3;
  options.max_weight = 5;
  auto session_or = (*engine)->NewSession(options);
  if (!session_or.ok()) return 1;
  ExplorationSession& session = *session_or;

  Banner("1. The analyst sees the trivial summary (paper Table 1)");
  std::printf("%s", RenderSession(session).c_str());

  Banner("2. Smart drill-down on the empty rule (paper Table 2)");
  auto level1 = session.Expand(session.root());
  if (!level1.ok()) return 1;
  std::printf("%s", RenderSession(session).c_str());

  Banner("3. Drill into the Walmart rule (paper Table 3)");
  int walmart = -1;
  for (int id : *level1) {
    if (session.node(id).rule.size() == 1) walmart = id;
  }
  if (walmart >= 0 && session.Expand(walmart).ok()) {
    std::printf("%s", RenderSession(session).c_str());
  }

  Banner("4. Star drill-down on Region within Walmart (paper 2.3)");
  if (walmart >= 0 && session.ExpandStar(walmart, 2).ok()) {
    std::printf("%s", RenderSession(session).c_str());
  }

  Banner("5. Roll up (collapse) the Walmart rule");
  if (walmart >= 0 && session.Collapse(walmart).ok()) {
    std::printf("%s", RenderSession(session).c_str());
  }

  Banner("6. Same drill-down ranked by Sum(Sales) instead of Count (par. 6.3)");
  TableView by_sales(table);
  by_sales.SelectMeasure(0);
  DrillDownRequest request;
  request.base = Rule::Trivial(3);
  request.k = 3;
  request.max_weight = 5;
  auto by_sales_resp = SmartDrillDown(by_sales, weight, request);
  if (by_sales_resp.ok()) {
    RenderOptions ropts;
    ropts.mass_label = "Sum(Sales)";
    std::printf("%s", RenderRuleList(table, by_sales_resp->rules, ropts).c_str());
    std::printf(
        "\nNote: the Sum aggregate can rank different rules than Count when\n"
        "high-priced products concentrate revenue.\n");
  }
  return 0;
}
