#include "cache/expansion_cache.h"

#include <utility>

#include "common/hash.h"

namespace smartdd::cache {

ExpansionCache::ExpansionCache(ExpansionCacheOptions options)
    : options_(options),
      hits_(MetricsRegistry::Default().GetCounter(
          "smartdd_expansion_cache_hits_total",
          "Expand requests answered from the expansion cache")),
      misses_(MetricsRegistry::Default().GetCounter(
          "smartdd_expansion_cache_misses_total",
          "Expand requests that had to run the greedy scan")),
      evictions_(MetricsRegistry::Default().GetCounter(
          "smartdd_expansion_cache_evictions_total",
          "Entries evicted to stay under the cache byte budget")),
      waits_(MetricsRegistry::Default().GetCounter(
          "smartdd_expansion_cache_singleflight_waits_total",
          "Expand requests that waited behind an identical in-flight "
          "expansion instead of scanning")),
      bytes_gauge_(MetricsRegistry::Default().GetGauge(
          "smartdd_expansion_cache_bytes",
          "Approximate resident bytes of cached expansions")),
      entries_gauge_(MetricsRegistry::Default().GetGauge(
          "smartdd_expansion_cache_entries",
          "Number of cached expansions")) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ExpansionCache::EntryBytes(const std::string& key,
                                  const CachedExpansion& v) {
  size_t bytes = sizeof(LruItem) + key.size() + sizeof(CachedExpansion);
  for (const ScoredRule& r : v.steps) {
    bytes += sizeof(ScoredRule) + r.rule.values().size() * sizeof(uint32_t);
  }
  for (const ScoredRule& r : v.rules) {
    bytes += sizeof(ScoredRule) + r.rule.values().size() * sizeof(uint32_t);
  }
  return bytes;
}

ExpansionCache::Shard& ExpansionCache::ShardFor(const std::string& key) {
  uint64_t h = HashBytes(key.data(), key.size());
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const CachedExpansion> ExpansionCache::LookupIn(
    Shard& shard, const std::string& key) {
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

std::shared_ptr<const CachedExpansion> ExpansionCache::Lookup(
    const std::string& key) {
  if (!enabled()) return nullptr;
  auto value = LookupIn(ShardFor(key), key);
  if (value != nullptr) {
    hits_.Inc();
  } else {
    misses_.Inc();
  }
  return value;
}

std::shared_ptr<const CachedExpansion> ExpansionCache::LookupOrBegin(
    const std::string& key, bool* leader) {
  *leader = true;
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(key);
  for (;;) {
    if (auto value = LookupIn(shard, key)) {
      hits_.Inc();
      *leader = false;
      return value;
    }
    std::unique_lock<std::mutex> lock(flights_mu_);
    // Re-check under the flights lock: a leader may have Completed between
    // our shard lookup and here, in which case its key already left the
    // set and the entry is in the shard.
    if (flights_.insert(key).second) {
      misses_.Inc();
      return nullptr;  // caller is the leader
    }
    waits_.Inc();
    flights_cv_.wait(lock, [this, &key]() { return !flights_.count(key); });
    // Leader finished: loop to pick up its entry, or (if it abandoned)
    // race for leadership ourselves.
  }
}

void ExpansionCache::Complete(const std::string& key,
                              std::shared_ptr<const CachedExpansion> value) {
  if (enabled() && value != nullptr) {
    Shard& shard = ShardFor(key);
    size_t entry_bytes = EntryBytes(key, *value);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->bytes;
      bytes_gauge_.Sub(static_cast<int64_t>(it->second->bytes));
      entries_gauge_.Sub(1);
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.lru.push_front({key, std::move(value), entry_bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += entry_bytes;
    bytes_gauge_.Add(static_cast<int64_t>(entry_bytes));
    entries_gauge_.Add(1);
    // Per-shard budget: the global byte budget split evenly. Evict from the
    // cold end until this shard fits (a one-entry shard may exceed its
    // slice; a single giant entry still caches).
    size_t shard_budget = options_.max_bytes / shards_.size();
    if (shard_budget == 0) shard_budget = 1;
    while (shard.bytes > shard_budget && shard.lru.size() > 1) {
      LruItem& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      bytes_gauge_.Sub(static_cast<int64_t>(victim.bytes));
      entries_gauge_.Sub(1);
      evictions_.Inc();
      shard.index.erase(victim.key);
      shard.lru.pop_back();
    }
  }
  std::lock_guard<std::mutex> lock(flights_mu_);
  flights_.erase(key);
  flights_cv_.notify_all();
}

void ExpansionCache::Abandon(const std::string& key) {
  std::lock_guard<std::mutex> lock(flights_mu_);
  flights_.erase(key);
  flights_cv_.notify_all();
}

size_t ExpansionCache::bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

size_t ExpansionCache::entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace smartdd::cache
