#ifndef SMARTDD_CACHE_EXPANSION_CACHE_H_
#define SMARTDD_CACHE_EXPANSION_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "core/score.h"

namespace smartdd::cache {

/// The memoized result of one completed greedy expansion. The BRS loop
/// streams rules in greedy selection order but the final child list is
/// weight-sorted and re-scored in one exact pass, so the two sequences
/// genuinely differ — replaying both byte-identical to the cold run
/// requires memoizing both.
struct CachedExpansion {
  /// Streamed steps, greedy selection order (what OnStep observers saw).
  std::vector<ScoredRule> steps;
  /// Final children, display order, with exact masses/marginals (what the
  /// tree got).
  std::vector<ScoredRule> rules;
  /// The expanded rule's re-measured mass.
  double base_mass = 0;
};

struct ExpansionCacheOptions {
  /// Byte budget across all shards (approximate accounting: key bytes +
  /// per-rule payload). 0 disables caching entirely.
  size_t max_bytes = 32u << 20;
  /// LRU shard count (keys hash-partitioned to spread lock contention).
  size_t shards = 8;
};

/// Cross-session memoized expansion cache: sharded LRU with a byte budget
/// and single-flight per key.
///
/// Key anatomy (built by the service, opaque here): every input that can
/// change the expansion's bytes —
///
///   dataset | table-version | node rule | star column | k | max_weight |
///   measure | weight-fingerprint
///
/// and *nothing* that cannot: num_threads, kernel, and num_shards are
/// excluded because the engine's determinism contract makes the result
/// byte-identical across them — which is exactly what lets a scalar 1-shard
/// backend hit on an entry computed by an AVX2 8-thread one. Entries never
/// invalidate by scan: a table append bumps the version, new keys simply
/// stop matching, and stale entries age out of the LRU.
///
/// Single-flight: when N sessions request the same missing key
/// concurrently, one becomes the leader (LookupOrBegin returns a miss with
/// *leader=true) and computes; the other N-1 block until the leader calls
/// Complete (they get the entry) or Abandon (they re-race for leadership).
/// One scan serves all N.
///
/// Metrics (all under /metrics):
///   smartdd_expansion_cache_hits_total / _misses_total / _evictions_total
///   smartdd_expansion_cache_singleflight_waits_total
///   smartdd_expansion_cache_bytes / _entries
class ExpansionCache {
 public:
  explicit ExpansionCache(ExpansionCacheOptions options = {});

  ExpansionCache(const ExpansionCache&) = delete;
  ExpansionCache& operator=(const ExpansionCache&) = delete;

  /// Hit: returns the entry (touches LRU recency). Miss: returns nullptr;
  /// *leader tells the caller whether it must compute-and-Complete (true)
  /// or it waited on another computation that was abandoned and may retry
  /// or fall through to a cold run (also true after re-race). A leader MUST
  /// eventually call Complete or Abandon with the same key or waiters block
  /// until process exit.
  std::shared_ptr<const CachedExpansion> LookupOrBegin(const std::string& key,
                                                       bool* leader);

  /// Plain lookup without single-flight (no leadership, never blocks).
  std::shared_ptr<const CachedExpansion> Lookup(const std::string& key);

  /// Publishes the leader's computed entry and releases waiters.
  void Complete(const std::string& key,
                std::shared_ptr<const CachedExpansion> value);

  /// Releases waiters without publishing (the computation failed, was
  /// cancelled, or produced a partial result that must not be memoized).
  void Abandon(const std::string& key);

  bool enabled() const { return options_.max_bytes > 0; }

  size_t bytes() const;
  size_t entries() const;
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  uint64_t singleflight_waits() const { return waits_.value(); }

  /// Approximate resident bytes of one entry (exposed for test assertions
  /// about the eviction arithmetic).
  static size_t EntryBytes(const std::string& key, const CachedExpansion& v);

 private:
  struct LruItem {
    std::string key;
    std::shared_ptr<const CachedExpansion> value;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<LruItem> lru;  ///< front = most recent
    std::unordered_map<std::string, std::list<LruItem>::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  std::shared_ptr<const CachedExpansion> LookupIn(Shard& shard,
                                                  const std::string& key);

  ExpansionCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex flights_mu_;
  std::condition_variable flights_cv_;
  std::unordered_set<std::string> flights_;

  Counter& hits_;
  Counter& misses_;
  Counter& evictions_;
  Counter& waits_;
  Gauge& bytes_gauge_;
  Gauge& entries_gauge_;
};

}  // namespace smartdd::cache

#endif  // SMARTDD_CACHE_EXPANSION_CACHE_H_
