#include "sampling/allocation.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd {

namespace {

std::vector<double> ComputeEss(const AllocationProblem& p,
                               const std::vector<uint64_t>& n) {
  std::vector<double> ess(p.num_nodes(), 0.0);
  for (size_t i = 0; i < p.num_nodes(); ++i) {
    for (const auto& [j, s] : p.contributions[i]) {
      ess[i] += static_cast<double>(n[j]) * s;
    }
  }
  return ess;
}

}  // namespace

AllocationProblem MakeTreeAllocationProblem(
    const std::vector<int>& parent, const std::vector<double>& selectivity,
    const std::vector<double>& probability, double memory_capacity,
    double min_sample_size) {
  SMARTDD_CHECK(parent.size() == selectivity.size());
  SMARTDD_CHECK(parent.size() == probability.size());
  AllocationProblem p;
  p.probability = probability;
  p.contributions.resize(parent.size());
  for (size_t i = 0; i < parent.size(); ++i) {
    p.contributions[i].emplace_back(i, 1.0);
    if (parent[i] >= 0 && selectivity[i] > 0) {
      p.contributions[i].emplace_back(static_cast<size_t>(parent[i]),
                                      selectivity[i]);
    }
  }
  p.memory_capacity = memory_capacity;
  p.min_sample_size = min_sample_size;
  return p;
}

double EvaluateAllocation(const AllocationProblem& p,
                          const std::vector<uint64_t>& n) {
  SMARTDD_CHECK(n.size() == p.num_nodes());
  std::vector<double> ess = ComputeEss(p, n);
  double value = 0;
  for (size_t i = 0; i < p.num_nodes(); ++i) {
    if (p.probability[i] > 0 && ess[i] >= p.min_sample_size) {
      value += p.probability[i];
    }
  }
  return value;
}

double EvaluateAllocationHinge(const AllocationProblem& p,
                               const std::vector<uint64_t>& n) {
  SMARTDD_CHECK(n.size() == p.num_nodes());
  std::vector<double> ess = ComputeEss(p, n);
  double value = 0;
  for (size_t i = 0; i < p.num_nodes(); ++i) {
    if (p.probability[i] > 0 && p.min_sample_size > 0) {
      value += p.probability[i] * std::min(1.0, ess[i] / p.min_sample_size);
    }
  }
  return value;
}

// --- §4.1 Pareto/DP solver ---------------------------------------------

namespace {

/// One locally-optimal configuration of a parent group: parent sample size
/// plus explicit top-ups for a subset of children.
struct GroupPoint {
  uint64_t cost = 0;    // parent n + sum of child top-ups
  double value = 0;     // served probability
  uint64_t parent_n = 0;
  std::vector<std::pair<size_t, uint64_t>> child_n;  // (node, n)
};

/// Drops dominated (cost, value) points; keeps points sorted by cost.
std::vector<GroupPoint> ParetoPrune(std::vector<GroupPoint> points) {
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.value > b.value;
  });
  std::vector<GroupPoint> out;
  double best_value = -1;
  for (auto& pt : points) {
    if (pt.value > best_value) {
      best_value = pt.value;
      out.push_back(std::move(pt));
    }
  }
  return out;
}

}  // namespace

Result<AllocationResult> SolveAllocationDp(const AllocationProblem& p) {
  const size_t n_nodes = p.num_nodes();
  const double minss = p.min_sample_size;
  const uint64_t capacity = static_cast<uint64_t>(p.memory_capacity);

  // Recover the tree shape and verify the restricted contribution model.
  std::vector<int> parent(n_nodes, -1);
  std::vector<double> sel(n_nodes, 0.0);
  for (size_t i = 0; i < n_nodes; ++i) {
    bool has_self = false;
    for (const auto& [j, s] : p.contributions[i]) {
      if (j == i) {
        if (s != 1.0) {
          return Status::InvalidArgument(
              "DP solver requires self-contribution ratio 1");
        }
        has_self = true;
      } else {
        if (parent[i] != -1) {
          return Status::InvalidArgument(
              "DP solver requires the tree-restricted model (at most one "
              "non-self contributor per node)");
        }
        parent[i] = static_cast<int>(j);
        sel[i] = s;
      }
    }
    if (!has_self) {
      return Status::InvalidArgument("node missing self-contribution");
    }
  }

  // Group leaves (probability > 0) under their parents. Leaves without a
  // parent form singleton groups with a virtual parent of -1.
  std::map<int, std::vector<size_t>> groups;
  for (size_t i = 0; i < n_nodes; ++i) {
    if (p.probability[i] > 0) groups[parent[i]].push_back(i);
  }

  // Enumerate locally optimal points per group.
  std::vector<std::vector<GroupPoint>> group_points;
  for (const auto& [par, children] : groups) {
    std::vector<GroupPoint> points;
    // Candidate parent sample sizes: 0 and the critical values minSS/S_i at
    // which each child becomes free (cost is piecewise-linear in parent_n,
    // so optima sit on these breakpoints).
    std::vector<uint64_t> parent_candidates = {0};
    if (par >= 0) {
      for (size_t child : children) {
        if (sel[child] > 0) {
          double crit = minss / sel[child];
          uint64_t v = static_cast<uint64_t>(std::ceil(crit));
          if (v <= capacity) parent_candidates.push_back(v);
        }
      }
    }
    std::sort(parent_candidates.begin(), parent_candidates.end());
    parent_candidates.erase(
        std::unique(parent_candidates.begin(), parent_candidates.end()),
        parent_candidates.end());

    const size_t d = children.size();
    SMARTDD_CHECK(d < 20) << "too many children in one group";
    for (uint64_t pn : parent_candidates) {
      // Children already served by the parent's sample alone.
      std::vector<size_t> free_children;
      std::vector<size_t> paying;  // need a top-up to be served
      double free_value = 0;
      for (size_t child : children) {
        double from_parent = par >= 0 ? pn * sel[child] : 0.0;
        if (from_parent >= minss) {
          free_children.push_back(child);
          free_value += p.probability[child];
        } else {
          paying.push_back(child);
        }
      }
      // All subsets of paying children to top up.
      const uint32_t limit = 1u << paying.size();
      for (uint32_t mask = 0; mask < limit; ++mask) {
        GroupPoint pt;
        pt.parent_n = pn;
        pt.cost = pn;
        pt.value = free_value;
        bool feasible = true;
        for (size_t b = 0; b < paying.size(); ++b) {
          if (!(mask & (1u << b))) continue;
          size_t child = paying[b];
          double from_parent = par >= 0 ? pn * sel[child] : 0.0;
          uint64_t topup =
              static_cast<uint64_t>(std::ceil(minss - from_parent));
          pt.cost += topup;
          if (pt.cost > capacity) {
            feasible = false;
            break;
          }
          pt.value += p.probability[child];
          pt.child_n.emplace_back(child, topup);
        }
        if (feasible && pt.cost <= capacity) points.push_back(std::move(pt));
      }
    }
    group_points.push_back(ParetoPrune(std::move(points)));
  }

  // Knapsack-style DP over memory (the paper's A[i+1][j] recurrence).
  const size_t cap = static_cast<size_t>(capacity);
  std::vector<double> best(cap + 1, 0.0);
  std::vector<std::vector<int>> choice(group_points.size(),
                                       std::vector<int>(cap + 1, -1));
  for (size_t g = 0; g < group_points.size(); ++g) {
    std::vector<double> next = best;
    for (size_t j = 0; j <= cap; ++j) {
      for (size_t pi = 0; pi < group_points[g].size(); ++pi) {
        const GroupPoint& pt = group_points[g][pi];
        if (pt.cost > j) continue;
        double v = best[j - pt.cost] + pt.value;
        if (v > next[j]) {
          next[j] = v;
          choice[g][j] = static_cast<int>(pi);
        }
      }
    }
    best = std::move(next);
  }

  // Backtrack.
  AllocationResult result;
  result.sample_size.assign(n_nodes, 0);
  size_t j = cap;
  // The DP table is monotone in j; start from full capacity.
  std::vector<int> picked(group_points.size(), -1);
  for (size_t g = group_points.size(); g-- > 0;) {
    int pi = choice[g][j];
    picked[g] = pi;
    if (pi >= 0) {
      j -= static_cast<size_t>(group_points[g][pi].cost);
    }
  }
  size_t gi = 0;
  for (const auto& [par, children] : groups) {
    int pi = picked[gi];
    if (pi >= 0) {
      const GroupPoint& pt = group_points[gi][static_cast<size_t>(pi)];
      if (par >= 0) {
        result.sample_size[static_cast<size_t>(par)] =
            std::max(result.sample_size[static_cast<size_t>(par)],
                     pt.parent_n);
      }
      for (const auto& [child, n] : pt.child_n) {
        result.sample_size[child] = std::max(result.sample_size[child], n);
      }
    }
    ++gi;
  }
  result.objective = EvaluateAllocation(p, result.sample_size);
  return result;
}

// --- §4.2 convex solver --------------------------------------------------

namespace {

/// Euclidean projection onto {x >= 0, sum x <= M} (Duchi et al. style).
void ProjectOntoBudget(std::vector<double>& x, double m) {
  for (double& v : x) v = std::max(0.0, v);
  double total = 0;
  for (double v : x) total += v;
  if (total <= m) return;
  // Project onto the simplex {x >= 0, sum x = M}.
  std::vector<double> sorted = x;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0;
  double theta = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    double t = (cumulative - m) / static_cast<double>(i + 1);
    if (sorted[i] - t > 0) {
      theta = t;
    } else {
      break;
    }
  }
  for (double& v : x) v = std::max(0.0, v - theta);
}

}  // namespace

AllocationResult SolveAllocationConvex(const AllocationProblem& p,
                                       int iterations) {
  const size_t n_nodes = p.num_nodes();
  const double minss = p.min_sample_size;
  std::vector<double> x(n_nodes, 0.0);

  // Reverse index: which leaves does node j feed, and with what ratio.
  std::vector<std::vector<std::pair<size_t, double>>> feeds(n_nodes);
  for (size_t i = 0; i < n_nodes; ++i) {
    if (p.probability[i] <= 0) continue;
    for (const auto& [j, s] : p.contributions[i]) {
      feeds[j].emplace_back(i, s);
    }
  }

  const double lr0 = p.memory_capacity > 0 ? p.memory_capacity / 4.0 : 1.0;
  std::vector<double> grad(n_nodes);
  for (int it = 0; it < iterations; ++it) {
    // Subgradient of sum_i p_i * min(1, ess_i/minSS).
    std::vector<double> ess(n_nodes, 0.0);
    for (size_t i = 0; i < n_nodes; ++i) {
      for (const auto& [j, s] : p.contributions[i]) ess[i] += x[j] * s;
    }
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t j = 0; j < n_nodes; ++j) {
      for (const auto& [leaf, s] : feeds[j]) {
        if (ess[leaf] < minss) {
          grad[j] += p.probability[leaf] * s / minss;
        }
      }
    }
    // Normalized subgradient step with 1/sqrt(t) decay: step *length* is
    // independent of the objective's (tiny) gradient scale, so the iterate
    // can traverse the whole budget box within the iteration budget.
    double norm = 0;
    for (double g : grad) norm += g * g;
    norm = std::sqrt(norm);
    if (norm == 0) continue;  // all leaves served; any point here is optimal
    double lr = lr0 / std::sqrt(static_cast<double>(it + 1));
    for (size_t j = 0; j < n_nodes; ++j) x[j] += lr * grad[j] / norm;
    ProjectOntoBudget(x, p.memory_capacity);
  }

  AllocationResult result;
  result.sample_size.resize(n_nodes);
  // Round *up* to integers (the paper: "round them up ... increases the
  // memory usage by at most |U|"), then trim back under the capacity.
  uint64_t total = 0;
  for (size_t j = 0; j < n_nodes; ++j) {
    result.sample_size[j] = static_cast<uint64_t>(std::ceil(x[j] - 1e-9));
    total += result.sample_size[j];
  }
  uint64_t capacity = static_cast<uint64_t>(p.memory_capacity);
  while (total > capacity) {
    size_t largest = 0;
    for (size_t j = 1; j < n_nodes; ++j) {
      if (result.sample_size[j] > result.sample_size[largest]) largest = j;
    }
    if (result.sample_size[largest] == 0) break;
    --result.sample_size[largest];
    --total;
  }
  result.objective = EvaluateAllocation(p, result.sample_size);
  return result;
}

AllocationResult SolveAllocationUniform(const AllocationProblem& p) {
  AllocationResult result;
  result.sample_size.assign(p.num_nodes(), 0);
  std::vector<size_t> leaves;
  for (size_t i = 0; i < p.num_nodes(); ++i) {
    if (p.probability[i] > 0) leaves.push_back(i);
  }
  if (!leaves.empty()) {
    uint64_t share = static_cast<uint64_t>(p.memory_capacity) /
                     static_cast<uint64_t>(leaves.size());
    share = std::min<uint64_t>(share,
                               static_cast<uint64_t>(p.min_sample_size));
    for (size_t i : leaves) result.sample_size[i] = share;
  }
  result.objective = EvaluateAllocation(p, result.sample_size);
  return result;
}

AllocationResult SolveAllocationBruteForce(const AllocationProblem& p,
                                           uint64_t granularity) {
  SMARTDD_CHECK(granularity > 0);
  const size_t n_nodes = p.num_nodes();
  SMARTDD_CHECK(n_nodes <= 6) << "brute force limited to tiny instances";
  const uint64_t capacity = static_cast<uint64_t>(p.memory_capacity);

  AllocationResult best;
  best.sample_size.assign(n_nodes, 0);
  best.objective = EvaluateAllocation(p, best.sample_size);

  std::vector<uint64_t> current(n_nodes, 0);
  std::function<void(size_t, uint64_t)> recurse = [&](size_t i,
                                                      uint64_t used) {
    if (i == n_nodes) {
      double v = EvaluateAllocation(p, current);
      if (v > best.objective) {
        best.objective = v;
        best.sample_size = current;
      }
      return;
    }
    for (uint64_t n = 0; used + n <= capacity; n += granularity) {
      current[i] = n;
      recurse(i + 1, used + n);
    }
    current[i] = 0;
  };
  recurse(0, 0);
  return best;
}

}  // namespace smartdd
