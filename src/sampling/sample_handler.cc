#include "sampling/sample_handler.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "rules/rule_ops.h"
#include "sampling/reservoir.h"

namespace smartdd {

SampleHandler::SampleHandler(const ScanSource& source,
                             SampleHandlerOptions options)
    : source_(&source), options_(options) {
  SMARTDD_CHECK(options_.min_sample_size <= options_.memory_capacity)
      << "minSS cannot exceed memory capacity M";
}

uint64_t SampleHandler::memory_used() const {
  uint64_t total = 0;
  for (const auto& s : samples_) total += s->memory_tuples();
  return total;
}

std::optional<double> SampleHandler::KnownExactMass(const Rule& rule) const {
  for (const auto& [r, m] : exact_masses_) {
    if (r == rule) return m;
  }
  return std::nullopt;
}

Result<SampleRequest> SampleHandler::TryFind(const Rule& rule) {
  for (const auto& s : samples_) {
    if (s->filter() == rule &&
        (s->size() >= options_.min_sample_size ||
         // A sample holding *all* covered tuples (scale 1) is complete even
         // if smaller than minSS: the rule simply covers few tuples.
         s->scale() <= 1.0)) {
      SampleRequest req;
      req.table = s->Materialize();
      req.scale = s->scale();
      req.mechanism = SampleMechanism::kFind;
      ++finds_;
      return req;
    }
  }
  return Status::NotFound("no exact-filter sample of sufficient size");
}

Result<SampleRequest> SampleHandler::TryCombine(const Rule& rule) {
  // Gather all samples whose filter is a (non-strict) sub-rule of `rule`:
  // every tuple covered by `rule` is covered by those filters, so each such
  // sample may contain usable tuples.
  std::vector<const Sample*> sources;
  for (const auto& s : samples_) {
    if (IsSubRuleOf(s->filter(), rule)) sources.push_back(s.get());
  }
  if (sources.empty()) {
    return Status::NotFound("no sub-rule samples to combine");
  }

  // A tuple covered by `rule` appears in sample s with probability
  // 1/scale(s) (independent samples); the union's inclusion probability is
  // 1 - prod(1 - 1/scale_s), giving the Horvitz-Thompson scaling. This
  // reduces to the paper's N_s for a single source sample.
  double miss_prob = 1.0;
  for (const Sample* s : sources) {
    double p = s->scale() > 0 ? std::min(1.0, 1.0 / s->scale()) : 1.0;
    miss_prob *= (1.0 - p);
  }
  double include_prob = 1.0 - miss_prob;
  if (include_prob <= 0) {
    return Status::NotFound("combined samples have zero inclusion mass");
  }

  Table table = source_->MakeEmptyTable();
  std::unordered_set<uint64_t> seen;
  std::vector<uint32_t> codes(table.num_columns());
  std::vector<double> measures(table.num_measures());
  for (const Sample* s : sources) {
    for (size_t slot = 0; slot < s->size(); ++slot) {
      s->GetRow(slot, codes.data());
      if (!rule.Covers(codes.data())) continue;
      if (!seen.insert(s->row_id(slot)).second) continue;
      s->GetMeasures(slot, measures.data());
      table.AppendRow(codes, measures);
    }
  }

  // Was the union complete (some source held *all* covered tuples)?
  bool complete = false;
  for (const Sample* s : sources) {
    if (s->scale() <= 1.0) complete = true;
  }
  if (table.num_rows() < options_.min_sample_size && !complete) {
    return Status::NotFound("combined sub-rule samples below minSS");
  }

  SampleRequest req;
  req.table = std::move(table);
  req.scale = complete ? 1.0 : 1.0 / include_prob;
  req.mechanism = SampleMechanism::kCombine;
  ++combines_;
  return req;
}

void SampleHandler::PlanAllocation(const Rule& extra,
                                   std::vector<Rule>* rules,
                                   std::vector<uint64_t>* capacities) const {
  rules->clear();
  capacities->clear();

  const uint64_t m = options_.memory_capacity;
  const uint64_t minss = options_.min_sample_size;

  if (!tree_) {
    uint64_t cap = std::max<uint64_t>(
        minss, static_cast<uint64_t>(options_.create_capacity_fraction *
                                     static_cast<double>(m)));
    rules->push_back(extra);
    capacities->push_back(std::min(cap, m));
    return;
  }

  const DisplayTree& tree = *tree_;
  const size_t n = tree.nodes.size();

  // Selectivity S(parent, child) = mass(child)/mass(parent); probabilities
  // default to uniform over leaves when unset.
  std::vector<int> parent(n);
  std::vector<double> sel(n, 0.0);
  std::vector<double> prob(n, 0.0);
  double prob_total = 0;
  size_t leaf_count = 0;
  for (size_t i = 0; i < n; ++i) {
    parent[i] = tree.nodes[i].parent;
    if (parent[i] >= 0) {
      double pm = tree.nodes[static_cast<size_t>(parent[i])].estimated_mass;
      sel[i] = pm > 0 ? tree.nodes[i].estimated_mass / pm : 0.0;
      sel[i] = std::clamp(sel[i], 0.0, 1.0);
    }
    if (tree.nodes[i].children.empty() && i != 0) {
      ++leaf_count;
      prob[i] = tree.nodes[i].expand_probability;
      prob_total += prob[i];
    }
  }
  if (prob_total <= 0 && leaf_count > 0) {
    for (size_t i = 0; i < n; ++i) {
      if (tree.nodes[i].children.empty() && i != 0) {
        prob[i] = 1.0 / static_cast<double>(leaf_count);
      }
    }
  } else if (prob_total > 0) {
    for (auto& pv : prob) pv /= prob_total;
  }

  AllocationProblem problem = MakeTreeAllocationProblem(
      parent, sel, prob, static_cast<double>(m), static_cast<double>(minss));

  AllocationResult alloc;
  switch (options_.allocation) {
    case AllocationStrategy::kParetoDp: {
      auto r = SolveAllocationDp(problem);
      if (r.ok()) {
        alloc = std::move(r).value();
      } else {
        alloc = SolveAllocationConvex(problem);
      }
      break;
    }
    case AllocationStrategy::kConvex:
      alloc = SolveAllocationConvex(problem);
      break;
    case AllocationStrategy::kUniform:
      alloc = SolveAllocationUniform(problem);
      break;
  }

  for (size_t i = 0; i < n; ++i) {
    if (alloc.sample_size[i] > 0) {
      rules->push_back(tree.nodes[i].rule);
      capacities->push_back(alloc.sample_size[i]);
    }
  }

  // Guarantee the requested rule a sample of at least minSS.
  bool extra_present = false;
  for (size_t i = 0; i < rules->size(); ++i) {
    if ((*rules)[i] == extra) {
      (*capacities)[i] = std::max<uint64_t>((*capacities)[i], minss);
      extra_present = true;
    }
  }
  if (!extra_present) {
    rules->push_back(extra);
    capacities->push_back(minss);
  }

  // Enforce the memory cap: shrink the largest allocations first, never
  // below minSS for the requested rule.
  uint64_t total = 0;
  for (uint64_t c : *capacities) total += c;
  while (total > m) {
    size_t largest = 0;
    for (size_t i = 1; i < capacities->size(); ++i) {
      if ((*capacities)[i] > (*capacities)[largest]) largest = i;
    }
    uint64_t reduce = std::min<uint64_t>(total - m, (*capacities)[largest]);
    if ((*rules)[largest] == extra) {
      uint64_t floor_cap = std::min<uint64_t>(minss, m);
      uint64_t room = (*capacities)[largest] > floor_cap
                          ? (*capacities)[largest] - floor_cap
                          : 0;
      reduce = std::min(reduce, room);
      if (reduce == 0) {
        // Shrink others instead.
        bool shrunk = false;
        for (size_t i = 0; i < capacities->size() && total > m; ++i) {
          if (i == largest) continue;
          uint64_t cut = std::min<uint64_t>((*capacities)[i], total - m);
          (*capacities)[i] -= cut;
          total -= cut;
          if (cut > 0) shrunk = true;
        }
        if (!shrunk) break;
        continue;
      }
    }
    (*capacities)[largest] -= reduce;
    total -= reduce;
    if (reduce == 0) break;
  }
  // Drop empty allocations.
  std::vector<Rule> rr;
  std::vector<uint64_t> cc;
  for (size_t i = 0; i < rules->size(); ++i) {
    if ((*capacities)[i] > 0) {
      rr.push_back((*rules)[i]);
      cc.push_back((*capacities)[i]);
    }
  }
  *rules = std::move(rr);
  *capacities = std::move(cc);
}

Result<std::vector<double>> SampleHandler::CreateSamples(
    const std::vector<Rule>& rules, const std::vector<uint64_t>& capacities) {
  SMARTDD_CHECK(rules.size() == capacities.size());
  Table prototype = source_->MakeEmptyTable();

  struct Builder {
    std::unique_ptr<Sample> sample;
    ReservoirSampler reservoir;
    double mass = 0;
  };
  std::vector<Builder> builders;
  builders.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    builders.push_back(Builder{
        std::make_unique<Sample>(rules[i], prototype),
        ReservoirSampler(static_cast<size_t>(capacities[i]),
                         options_.seed + (++seed_counter_) * 0x9E37ULL),
        0.0});
  }

  Status scan_status = source_->Scan(
      [&](uint64_t row, const uint32_t* codes, const double* measures) {
        for (auto& b : builders) {
          if (!b.sample->filter().Covers(codes)) continue;
          b.mass += 1.0;  // tuple count; measures ride along in the sample
          auto placement = b.reservoir.Offer();
          if (!placement.accept) continue;
          if (placement.slot < b.sample->size()) {
            b.sample->ReplaceAt(placement.slot, row, codes, measures);
          } else {
            b.sample->Add(row, codes, measures);
          }
        }
        return true;
      });
  SMARTDD_RETURN_IF_ERROR(scan_status);
  ++scans_;
  ++creates_;

  // Finalize scales; replace the sample store wholesale (the allocation
  // already covers every displayed rule, so older samples are stale).
  std::vector<double> masses;
  samples_.clear();
  exact_masses_.clear();
  for (auto& b : builders) {
    double mass = b.mass;
    masses.push_back(mass);
    exact_masses_.emplace_back(b.sample->filter(), mass);
    size_t size = b.sample->size();
    b.sample->set_source_mass(mass);
    b.sample->set_scale(size > 0 ? mass / static_cast<double>(size) : 1.0);
    samples_.push_back(std::move(b.sample));
  }
  SMARTDD_DCHECK(memory_used() <= options_.memory_capacity);
  return masses;
}

Result<SampleRequest> SampleHandler::GetSampleFor(const Rule& rule) {
  auto find = TryFind(rule);
  if (find.ok()) return find;

  auto combine = TryCombine(rule);
  if (combine.ok()) return combine;

  std::vector<Rule> rules;
  std::vector<uint64_t> capacities;
  PlanAllocation(rule, &rules, &capacities);
  SMARTDD_ASSIGN_OR_RETURN(std::vector<double> masses,
                           CreateSamples(rules, capacities));
  (void)masses;

  // The requested rule now has a fresh sample.
  auto again = TryFind(rule);
  if (again.ok()) {
    again.value().mechanism = SampleMechanism::kCreate;
    --finds_;  // attribute to Create, not Find
    return again;
  }
  return again.status();
}

void SampleHandler::SetDisplayedTree(DisplayTree tree) {
  tree_ = std::move(tree);
}

Status SampleHandler::Prefetch() {
  if (!tree_) return Status::OK();
  // Plan for the most likely leaf (allocation covers all of them anyway).
  const DisplayTree& tree = *tree_;
  int best_leaf = -1;
  double best_p = -1;
  for (size_t i = 1; i < tree.nodes.size(); ++i) {
    if (!tree.nodes[i].children.empty()) continue;
    double pv = tree.nodes[i].expand_probability;
    if (pv > best_p) {
      best_p = pv;
      best_leaf = static_cast<int>(i);
    }
  }
  Rule target = best_leaf >= 0 ? tree.nodes[static_cast<size_t>(best_leaf)].rule
                               : tree.nodes[0].rule;
  std::vector<Rule> rules;
  std::vector<uint64_t> capacities;
  PlanAllocation(target, &rules, &capacities);
  auto masses = CreateSamples(rules, capacities);
  return masses.ok() ? Status::OK() : masses.status();
}

Result<std::vector<double>> SampleHandler::ExactMasses(
    const std::vector<Rule>& rules, std::optional<size_t> measure) {
  if (measure && *measure >= source_->num_measures()) {
    return Status::InvalidArgument("measure index out of range");
  }
  std::vector<double> masses(rules.size(), 0.0);
  Status s = source_->Scan(
      [&](uint64_t, const uint32_t* codes, const double* measures) {
        double m = measure ? measures[*measure] : 1.0;
        for (size_t i = 0; i < rules.size(); ++i) {
          if (rules[i].Covers(codes)) masses[i] += m;
        }
        return true;
      });
  SMARTDD_RETURN_IF_ERROR(s);
  ++scans_;
  return masses;
}

}  // namespace smartdd
