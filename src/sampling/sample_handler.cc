#include "sampling/sample_handler.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "rules/rule_ops.h"
#include "sampling/reservoir.h"

namespace smartdd {

namespace {

/// Substream id of the stitch-merge RNG within a rule's seed stream; chunk
/// sub-reservoirs use substreams 0..num_chunks-1, which stay far below this.
constexpr uint64_t kMergeStream = ~uint64_t{0};

/// A uniform without-replacement sample of `seen` population tuples — either
/// one chunk's sub-reservoir or the fold of several.
struct SubReservoir {
  std::unique_ptr<Sample> sample;
  uint64_t seen = 0;
};

/// Exact uniform stitch-merge of two reservoirs over disjoint populations
/// (the two chunks' covered tuples): simulates drawing up to `capacity`
/// tuples without replacement from the union, where each draw picks side A
/// with probability proportional to its remaining population size and then
/// takes a uniformly random unused element of that side's reservoir (valid
/// because a reservoir is an exchangeable uniform subset of its
/// population). All randomness comes from `rng`, and the fold runs in chunk
/// order, so the result is independent of how chunks were scheduled across
/// threads. `codes`/`measures` are caller scratch of full row width.
SubReservoir MergeSubReservoirs(SubReservoir a, SubReservoir b,
                                uint64_t capacity, const Rule& filter,
                                const Table& prototype, Rng& rng,
                                uint32_t* codes, double* measures) {
  if (b.seen == 0) return a;
  if (a.seen == 0) return b;

  SubReservoir out;
  out.seen = a.seen + b.seen;
  out.sample = std::make_unique<Sample>(filter, prototype);

  std::vector<uint32_t> remaining_a(a.sample->size());
  std::vector<uint32_t> remaining_b(b.sample->size());
  std::iota(remaining_a.begin(), remaining_a.end(), 0u);
  std::iota(remaining_b.begin(), remaining_b.end(), 0u);
  uint64_t pop_a = a.seen;
  uint64_t pop_b = b.seen;
  while (out.sample->size() < capacity && (pop_a > 0 || pop_b > 0)) {
    bool from_a =
        pop_b == 0 || (pop_a > 0 && rng.UniformInt(pop_a + pop_b) < pop_a);
    std::vector<uint32_t>& remaining = from_a ? remaining_a : remaining_b;
    if (remaining.empty()) {
      // Unreachable when both inputs hold min(capacity, seen) tuples; guard
      // so a short input can never wedge the loop.
      (from_a ? pop_a : pop_b) = 0;
      continue;
    }
    size_t j = static_cast<size_t>(rng.UniformInt(remaining.size()));
    uint32_t slot = remaining[j];
    remaining[j] = remaining.back();
    remaining.pop_back();
    const Sample& src = from_a ? *a.sample : *b.sample;
    src.GetRow(slot, codes);
    src.GetMeasures(slot, measures);
    out.sample->Add(src.row_id(slot), codes, measures);
    --(from_a ? pop_a : pop_b);
  }
  return out;
}

}  // namespace

SampleHandler::SampleHandler(const ScanSource& source,
                             SampleHandlerOptions options)
    : source_(&source), options_(options) {
  SMARTDD_CHECK(options_.min_sample_size <= options_.memory_capacity)
      << "minSS cannot exceed memory capacity M";
}

uint64_t SampleHandler::MemoryUsedLocked() const {
  uint64_t total = 0;
  for (const auto& s : samples_) total += s->memory_tuples();
  return total;
}

uint64_t SampleHandler::memory_used() const {
  std::shared_lock<std::shared_mutex> lock(store_mu_);
  return MemoryUsedLocked();
}

size_t SampleHandler::num_samples() const {
  std::shared_lock<std::shared_mutex> lock(store_mu_);
  return samples_.size();
}

std::optional<double> SampleHandler::KnownExactMass(const Rule& rule) const {
  std::shared_lock<std::shared_mutex> lock(store_mu_);
  for (const auto& [r, m] : exact_masses_) {
    if (r == rule) return m;
  }
  return std::nullopt;
}

void SampleHandler::RecordExactMassLocked(const Rule& rule, double mass) {
  for (auto& [r, m] : exact_masses_) {
    if (r == rule) {
      m = mass;
      return;
    }
  }
  // The cache is an optimization over an immutable source, so entries never
  // go stale — but a long-lived multi-session engine measures ever more
  // rules, so bound it: evict oldest-first once full (deterministic, and
  // keeps the linear probe above cheap).
  constexpr size_t kExactMassCacheCap = 4096;
  if (exact_masses_.size() >= kExactMassCacheCap) {
    exact_masses_.erase(exact_masses_.begin());
  }
  exact_masses_.emplace_back(rule, mass);
}

std::optional<DisplayTree> SampleHandler::TreeCopy(uint64_t session) const {
  std::shared_lock<std::shared_mutex> lock(store_mu_);
  for (const auto& [id, tree] : trees_) {
    if (id == session) return tree;
  }
  return std::nullopt;
}

Result<SampleRequest> SampleHandler::TryFind(const Rule& rule) {
  std::shared_lock<std::shared_mutex> lock(store_mu_);
  return FindLocked(rule);
}

Result<SampleRequest> SampleHandler::FindLocked(const Rule& rule) {
  for (const auto& s : samples_) {
    if (s->filter() == rule &&
        (s->size() >= options_.min_sample_size ||
         // A sample holding *all* covered tuples (scale 1) is complete even
         // if smaller than minSS: the rule simply covers few tuples.
         s->scale() <= 1.0)) {
      SampleRequest req;
      req.table = s->Materialize();
      req.scale = s->scale();
      req.mechanism = SampleMechanism::kFind;
      finds_.fetch_add(1, std::memory_order_relaxed);
      return req;
    }
  }
  return Status::NotFound("no exact-filter sample of sufficient size");
}

Result<SampleRequest> SampleHandler::TryCombine(const Rule& rule) {
  // Exclusive: the union build reads many samples and may append the
  // materialized result, and must not interleave with a concurrent pass's
  // store swap.
  std::unique_lock<std::shared_mutex> lock(store_mu_);
  // Re-check Find under this lock: a rival session's Create pass may have
  // committed an exact-filter sample between the caller's TryFind and now,
  // and that sample must win — serving a Horvitz-Thompson union that
  // *contains* an acceptable exact-filter sample would return a different
  // (noisier) estimate than the serial run for no benefit.
  if (auto found = FindLocked(rule); found.ok()) return found;
  // Gather all samples whose filter is a (non-strict) sub-rule of `rule`:
  // every tuple covered by `rule` is covered by those filters, so each such
  // sample may contain usable tuples.
  std::vector<const Sample*> sources;
  for (const auto& s : samples_) {
    // Derived samples (materialized earlier unions) are deterministic
    // subsets of independent samples that are still in the store; letting
    // them into the product below would double-count their sources'
    // inclusion probability and bias the scale low.
    if (s->derived()) continue;
    if (IsSubRuleOf(s->filter(), rule)) sources.push_back(s.get());
  }
  if (sources.empty()) {
    return Status::NotFound("no sub-rule samples to combine");
  }

  // A tuple covered by `rule` appears in sample s with probability
  // 1/scale(s) (independent samples); the union's inclusion probability is
  // 1 - prod(1 - 1/scale_s), giving the Horvitz-Thompson scaling. This
  // reduces to the paper's N_s for a single source sample.
  double miss_prob = 1.0;
  for (const Sample* s : sources) {
    double p = s->scale() > 0 ? std::min(1.0, 1.0 / s->scale()) : 1.0;
    miss_prob *= (1.0 - p);
  }
  double include_prob = 1.0 - miss_prob;
  if (include_prob <= 0) {
    return Status::NotFound("combined samples have zero inclusion mass");
  }

  // Assemble the de-duplicated union directly as a Sample so it can be kept
  // for reuse after serving this request.
  Table prototype = source_->MakeEmptyTable();
  auto combined = std::make_unique<Sample>(rule, prototype);
  std::unordered_set<uint64_t> seen;
  std::vector<uint32_t> codes(prototype.num_columns());
  std::vector<double> measures(prototype.num_measures());
  for (const Sample* s : sources) {
    for (size_t slot = 0; slot < s->size(); ++slot) {
      s->GetRow(slot, codes.data());
      if (!rule.Covers(codes.data())) continue;
      if (!seen.insert(s->row_id(slot)).second) continue;
      s->GetMeasures(slot, measures.data());
      combined->Add(s->row_id(slot), codes.data(), measures.data());
    }
  }

  // Was the union complete (some source held *all* covered tuples)?
  bool complete = false;
  for (const Sample* s : sources) {
    if (s->scale() <= 1.0) complete = true;
  }
  if (combined->size() < options_.min_sample_size && !complete) {
    return Status::NotFound("combined sub-rule samples below minSS");
  }

  double scale = complete ? 1.0 : 1.0 / include_prob;
  combined->set_scale(scale);
  combined->set_source_mass(scale * static_cast<double>(combined->size()));
  combined->set_derived(true);

  SampleRequest req;
  req.table = combined->Materialize();
  req.scale = scale;
  req.mechanism = SampleMechanism::kCombine;
  combines_.fetch_add(1, std::memory_order_relaxed);

  // Keep the Horvitz-Thompson union so a repeat request for this rule is a
  // Find hit instead of another full rebuild — but only when it fits under
  // the memory cap M alongside the samples it was derived from.
  if (MemoryUsedLocked() + combined->memory_tuples() <=
      options_.memory_capacity) {
    samples_.push_back(std::move(combined));
  }
  return req;
}

void SampleHandler::PlanAllocation(const DisplayTree* tree_ptr,
                                   const Rule& extra,
                                   std::vector<Rule>* rules,
                                   std::vector<uint64_t>* capacities) const {
  rules->clear();
  capacities->clear();

  const uint64_t m = options_.memory_capacity;
  const uint64_t minss = options_.min_sample_size;

  if (tree_ptr == nullptr) {
    uint64_t cap = std::max<uint64_t>(
        minss, static_cast<uint64_t>(options_.create_capacity_fraction *
                                     static_cast<double>(m)));
    rules->push_back(extra);
    capacities->push_back(std::min(cap, m));
    return;
  }

  const DisplayTree& tree = *tree_ptr;
  const size_t n = tree.nodes.size();

  // Selectivity S(parent, child) = mass(child)/mass(parent); probabilities
  // default to uniform over leaves when unset.
  std::vector<int> parent(n);
  std::vector<double> sel(n, 0.0);
  std::vector<double> prob(n, 0.0);
  double prob_total = 0;
  size_t leaf_count = 0;
  for (size_t i = 0; i < n; ++i) {
    parent[i] = tree.nodes[i].parent;
    if (parent[i] >= 0) {
      double pm = tree.nodes[static_cast<size_t>(parent[i])].estimated_mass;
      sel[i] = pm > 0 ? tree.nodes[i].estimated_mass / pm : 0.0;
      sel[i] = std::clamp(sel[i], 0.0, 1.0);
    }
    if (tree.nodes[i].children.empty() && i != 0) {
      ++leaf_count;
      prob[i] = tree.nodes[i].expand_probability;
      prob_total += prob[i];
    }
  }
  if (prob_total <= 0 && leaf_count > 0) {
    for (size_t i = 0; i < n; ++i) {
      if (tree.nodes[i].children.empty() && i != 0) {
        prob[i] = 1.0 / static_cast<double>(leaf_count);
      }
    }
  } else if (prob_total > 0) {
    for (auto& pv : prob) pv /= prob_total;
  }

  AllocationProblem problem = MakeTreeAllocationProblem(
      parent, sel, prob, static_cast<double>(m), static_cast<double>(minss));

  AllocationResult alloc;
  switch (options_.allocation) {
    case AllocationStrategy::kParetoDp: {
      auto r = SolveAllocationDp(problem);
      if (r.ok()) {
        alloc = std::move(r).value();
      } else {
        alloc = SolveAllocationConvex(problem);
      }
      break;
    }
    case AllocationStrategy::kConvex:
      alloc = SolveAllocationConvex(problem);
      break;
    case AllocationStrategy::kUniform:
      alloc = SolveAllocationUniform(problem);
      break;
  }

  for (size_t i = 0; i < n; ++i) {
    if (alloc.sample_size[i] > 0) {
      rules->push_back(tree.nodes[i].rule);
      capacities->push_back(alloc.sample_size[i]);
    }
  }

  // Guarantee the requested rule a sample of at least minSS.
  bool extra_present = false;
  for (size_t i = 0; i < rules->size(); ++i) {
    if ((*rules)[i] == extra) {
      (*capacities)[i] = std::max<uint64_t>((*capacities)[i], minss);
      extra_present = true;
    }
  }
  if (!extra_present) {
    rules->push_back(extra);
    capacities->push_back(minss);
  }

  // Enforce the memory cap: shrink the largest allocations first, never
  // below minSS for the requested rule.
  uint64_t total = 0;
  for (uint64_t c : *capacities) total += c;
  while (total > m) {
    size_t largest = 0;
    for (size_t i = 1; i < capacities->size(); ++i) {
      if ((*capacities)[i] > (*capacities)[largest]) largest = i;
    }
    uint64_t reduce = std::min<uint64_t>(total - m, (*capacities)[largest]);
    if ((*rules)[largest] == extra) {
      uint64_t floor_cap = std::min<uint64_t>(minss, m);
      uint64_t room = (*capacities)[largest] > floor_cap
                          ? (*capacities)[largest] - floor_cap
                          : 0;
      reduce = std::min(reduce, room);
      if (reduce == 0) {
        // Shrink others instead.
        bool shrunk = false;
        for (size_t i = 0; i < capacities->size() && total > m; ++i) {
          if (i == largest) continue;
          uint64_t cut = std::min<uint64_t>((*capacities)[i], total - m);
          (*capacities)[i] -= cut;
          total -= cut;
          if (cut > 0) shrunk = true;
        }
        if (!shrunk) break;
        continue;
      }
    }
    (*capacities)[largest] -= reduce;
    total -= reduce;
    if (reduce == 0) break;
  }
  // Drop empty allocations.
  std::vector<Rule> rr;
  std::vector<uint64_t> cc;
  for (size_t i = 0; i < rules->size(); ++i) {
    if ((*capacities)[i] > 0) {
      rr.push_back((*rules)[i]);
      cc.push_back((*capacities)[i]);
    }
  }
  *rules = std::move(rr);
  *capacities = std::move(cc);
}

Result<std::vector<double>> SampleHandler::CreateSamples(
    const std::vector<Rule>& rules, const std::vector<uint64_t>& capacities,
    bool prefetch_pass, const Deadline& deadline) {
  SMARTDD_CHECK(rules.size() == capacities.size());
  SMARTDD_RETURN_IF_ERROR(InjectFault("sample_handler.create"));
  if (deadline.active() && deadline.expired()) {
    return Status::DeadlineExceeded(
        "sample create pass abandoned: deadline exceeded");
  }
  Table prototype = source_->MakeEmptyTable();
  const size_t nrules = rules.size();

  // Chunk layout and seeds are pure functions of (row count, handler seed,
  // capacities, seed_counter_) — never of the thread count — so the
  // stitched result is bit-identical however the chunks are scheduled.
  uint64_t num_chunks = ScanSource::PlanChunks(source_->num_rows());
  // Every chunk needs full-capacity sub-reservoirs for the merge to stay an
  // exact uniform sample, so the pass transiently holds up to
  // num_chunks * sum(capacities) tuples. Keep that within a small multiple
  // of the configured cap M (a bound on capacities, not thread count, so
  // determinism is unaffected).
  constexpr uint64_t kTransientCapFactor = 8;
  uint64_t total_capacity = 0;
  for (uint64_t c : capacities) total_capacity += c;
  if (total_capacity > 0) {
    num_chunks = std::clamp<uint64_t>(
        kTransientCapFactor * options_.memory_capacity / total_capacity, 1,
        num_chunks);
  }
  const size_t parallelism = ThreadPool::EffectiveThreads(options_.num_threads);
  std::vector<uint64_t> rule_seeds;
  rule_seeds.reserve(nrules);
  for (size_t i = 0; i < nrules; ++i) {
    rule_seeds.push_back(DeriveSeed(options_.seed, ++seed_counter_));
  }

  // Filters compiled once to their instantiated columns; the scan callback
  // below runs them per (row, rule), so skipping the wildcard columns there
  // matters.
  std::vector<RowPredicate> filters;
  filters.reserve(nrules);
  for (size_t i = 0; i < nrules; ++i) filters.emplace_back(rules[i]);

  // One builder per (chunk, rule): chunks never share mutable state, so the
  // scan callback is data-race free by construction.
  struct ChunkBuilder {
    std::unique_ptr<Sample> sample;
    ReservoirSampler reservoir;
    double mass = 0;
  };
  std::vector<ChunkBuilder> builders;
  builders.reserve(num_chunks * nrules);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    for (size_t i = 0; i < nrules; ++i) {
      builders.push_back(
          ChunkBuilder{std::make_unique<Sample>(rules[i], prototype),
                       ReservoirSampler(static_cast<size_t>(capacities[i]),
                                        DeriveSeed(rule_seeds[i], c)),
                       0.0});
    }
  }

  // Cooperative cancellation: each chunk polls the deadline every
  // kDeadlineCheckRows of its own tuples (cache-line-strided countdowns, no
  // sharing between chunks); the first chunk to notice expiry raises a
  // shared flag that stops every other chunk at its next tuple. Inert
  // deadlines skip all of this.
  constexpr uint64_t kDeadlineCheckRows = 4096;
  constexpr size_t kCountdownStride = 8;
  const bool has_deadline = deadline.active();
  std::atomic<bool> deadline_hit{false};
  std::vector<uint64_t> countdowns;
  if (has_deadline) {
    countdowns.assign(num_chunks * kCountdownStride, kDeadlineCheckRows);
  }

  Status scan_status = source_->ScanChunks(
      num_chunks, parallelism,
      [&](uint64_t chunk, uint64_t row, const uint32_t* codes,
          const double* measures) {
        if (has_deadline) {
          if (deadline_hit.load(std::memory_order_relaxed)) return false;
          uint64_t& countdown = countdowns[chunk * kCountdownStride];
          if (--countdown == 0) {
            countdown = kDeadlineCheckRows;
            if (deadline.expired()) {
              deadline_hit.store(true, std::memory_order_relaxed);
              return false;
            }
          }
        }
        ChunkBuilder* chunk_builders = &builders[chunk * nrules];
        for (size_t i = 0; i < nrules; ++i) {
          ChunkBuilder& b = chunk_builders[i];
          if (!filters[i].Covers(codes)) continue;
          b.mass += 1.0;  // tuple count; measures ride along in the sample
          auto placement = b.reservoir.Offer();
          if (!placement.accept) continue;
          if (placement.slot < b.sample->size()) {
            b.sample->ReplaceAt(placement.slot, row, codes, measures);
          } else {
            b.sample->Add(row, codes, measures);
          }
        }
        return true;
      });
  SMARTDD_RETURN_IF_ERROR(scan_status);
  if (deadline_hit.load(std::memory_order_relaxed)) {
    // The pass was cut short: its reservoirs cover only a prefix of each
    // chunk and would be biased samples. Commit nothing.
    return Status::DeadlineExceeded(
        "sample create pass abandoned: deadline exceeded");
  }
  (prefetch_pass ? prefetch_scans_ : scans_)
      .fetch_add(1, std::memory_order_relaxed);
  creates_.fetch_add(1, std::memory_order_relaxed);

  // Stitch the per-chunk sub-reservoirs back together in chunk order.
  std::vector<uint32_t> codes(prototype.num_columns());
  std::vector<double> measures(prototype.num_measures());
  std::vector<double> masses;
  std::vector<std::unique_ptr<Sample>> created;
  for (size_t i = 0; i < nrules; ++i) {
    Rng merge_rng(DeriveSeed(rule_seeds[i], kMergeStream));
    ChunkBuilder& first = builders[i];
    SubReservoir acc{std::move(first.sample), first.reservoir.seen()};
    double mass = first.mass;
    for (uint64_t c = 1; c < num_chunks; ++c) {
      ChunkBuilder& cb = builders[c * nrules + i];
      mass += cb.mass;
      acc = MergeSubReservoirs(
          std::move(acc), SubReservoir{std::move(cb.sample), cb.reservoir.seen()},
          capacities[i], rules[i], prototype, merge_rng, codes.data(),
          measures.data());
    }
    masses.push_back(mass);
    size_t size = acc.sample->size();
    acc.sample->set_source_mass(mass);
    acc.sample->set_scale(size > 0 ? mass / static_cast<double>(size) : 1.0);
    created.push_back(std::move(acc.sample));
  }

  // Swap the store: this pass's samples supersede any same-filter samples,
  // and other sessions' older samples are retained newest-pass-first while
  // they still fit under the cap M (single-session behaviour is unchanged —
  // its allocation covers every displayed rule, so leftovers are rare).
  // Exact masses are a cache over an immutable source, so entries are
  // upserted, never invalidated.
  {
    std::unique_lock<std::shared_mutex> lock(store_mu_);
    std::vector<std::unique_ptr<Sample>> store;
    store.reserve(created.size() + samples_.size());
    uint64_t used = 0;
    for (auto& s : created) {
      used += s->memory_tuples();
      store.push_back(std::move(s));
    }
    for (auto& old : samples_) {
      bool superseded = false;
      for (size_t i = 0; i < nrules && !superseded; ++i) {
        superseded = old->filter() == rules[i];
      }
      if (superseded) continue;
      if (used + old->memory_tuples() > options_.memory_capacity) continue;
      used += old->memory_tuples();
      store.push_back(std::move(old));
    }
    samples_ = std::move(store);
    for (size_t i = 0; i < nrules; ++i) {
      RecordExactMassLocked(rules[i], masses[i]);
    }
    SMARTDD_DCHECK(MemoryUsedLocked() <= options_.memory_capacity);
  }
  return masses;
}

bool SampleHandler::AcquireCreateFlight() {
  std::unique_lock<std::mutex> flight(create_mu_);
  if (!create_in_flight_) {
    create_in_flight_ = true;
    return true;
  }
  const uint64_t epoch = create_epoch_;
  create_cv_.wait(flight, [&]() {
    return create_epoch_ != epoch || !create_in_flight_;
  });
  if (!create_in_flight_) {
    create_in_flight_ = true;
    return true;
  }
  return false;  // a pass completed while we waited; re-check the store
}

void SampleHandler::ReleaseCreateFlight() {
  {
    std::lock_guard<std::mutex> flight(create_mu_);
    create_in_flight_ = false;
    ++create_epoch_;
  }
  create_cv_.notify_all();
}

Result<SampleRequest> SampleHandler::GetSampleFor(const Rule& rule,
                                                  uint64_t session,
                                                  const Deadline& deadline) {
  for (;;) {
    auto find = TryFind(rule);
    if (find.ok()) return find;

    auto combine = TryCombine(rule);
    if (combine.ok()) return combine;

    // Single-flight Create: at most one pass over the source runs at a
    // time. Arriving while another session's pass is in flight, wait for
    // it and re-check Find/Combine — two sessions requesting the same
    // rule's sample trigger one scan, not two.
    if (AcquireCreateFlight()) break;
  }

  // Double-check under the flight: a pass that completed between our last
  // store check and the acquisition may already hold this rule's sample
  // (its store swap happens-before its flight release).
  {
    auto find = TryFind(rule);
    if (find.ok()) {
      ReleaseCreateFlight();
      return find;
    }
    auto combine = TryCombine(rule);
    if (combine.ok()) {
      ReleaseCreateFlight();
      return combine;
    }
  }

  std::vector<Rule> rules;
  std::vector<uint64_t> capacities;
  std::optional<DisplayTree> tree = TreeCopy(session);
  PlanAllocation(tree ? &*tree : nullptr, rule, &rules, &capacities);
  auto masses =
      CreateSamples(rules, capacities, /*prefetch_pass=*/false, deadline);

  // Serve the fresh sample *before* releasing the flight: once released,
  // another session's pass may swap the store and evict it again, and this
  // request must not bounce.
  Result<SampleRequest> again = masses.ok()
                                    ? TryFind(rule)
                                    : Result<SampleRequest>(masses.status());
  ReleaseCreateFlight();
  if (again.ok()) {
    again.value().mechanism = SampleMechanism::kCreate;
    finds_.fetch_sub(1, std::memory_order_relaxed);  // attribute to Create
    return again;
  }
  return again.status();
}

void SampleHandler::SetDisplayedTree(uint64_t session, DisplayTree tree) {
  std::unique_lock<std::shared_mutex> lock(store_mu_);
  for (auto& [id, t] : trees_) {
    if (id == session) {
      t = std::move(tree);
      return;
    }
  }
  trees_.emplace_back(session, std::move(tree));
}

void SampleHandler::DropSession(uint64_t session) {
  std::unique_lock<std::shared_mutex> lock(store_mu_);
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (trees_[i].first == session) {
      trees_.erase(trees_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void SampleHandler::BumpDataVersion(uint64_t version) {
  std::unique_lock<std::shared_mutex> lock(store_mu_);
  samples_.clear();
  exact_masses_.clear();
  data_version_.store(version, std::memory_order_relaxed);
}

Status SampleHandler::Prefetch(uint64_t session) {
  std::optional<DisplayTree> tree_copy = TreeCopy(session);
  if (!tree_copy) return Status::OK();
  // Plan for the most likely leaf (allocation covers all of them anyway).
  const DisplayTree& tree = *tree_copy;
  int best_leaf = -1;
  double best_p = -1;
  for (size_t i = 1; i < tree.nodes.size(); ++i) {
    if (!tree.nodes[i].children.empty()) continue;
    double pv = tree.nodes[i].expand_probability;
    if (pv > best_p) {
      best_p = pv;
      best_leaf = static_cast<int>(i);
    }
  }
  Rule target = best_leaf >= 0 ? tree.nodes[static_cast<size_t>(best_leaf)].rule
                               : tree.nodes[0].rule;
  std::vector<Rule> rules;
  std::vector<uint64_t> capacities;
  PlanAllocation(&tree, target, &rules, &capacities);
  // Prefetch passes take the same single-flight as foreground Creates;
  // waiting out a completed pass still runs ours (the tree may differ).
  while (!AcquireCreateFlight()) {
  }
  auto masses = CreateSamples(rules, capacities, /*prefetch_pass=*/true);
  ReleaseCreateFlight();
  return masses.ok() ? Status::OK() : masses.status();
}

Result<std::vector<double>> SampleHandler::ExactMasses(
    const std::vector<Rule>& rules, std::optional<size_t> measure) {
  if (measure && *measure >= source_->num_measures()) {
    return Status::InvalidArgument("measure index out of range");
  }
  if (rules.empty()) return std::vector<double>{};  // don't pay a pass
  const size_t nrules = rules.size();
  const uint64_t num_chunks = ScanSource::PlanChunks(source_->num_rows());
  const size_t parallelism = ThreadPool::EffectiveThreads(options_.num_threads);

  // Per-chunk accumulators, padded to cache-line multiples so chunks do not
  // false-share; merged in chunk order for thread-count-independent sums.
  const size_t stride = ((nrules + 7) / 8) * 8;
  std::vector<double> chunk_masses(num_chunks * stride, 0.0);
  std::vector<RowPredicate> preds;
  preds.reserve(nrules);
  for (size_t i = 0; i < nrules; ++i) preds.emplace_back(rules[i]);
  Status s = source_->ScanChunks(
      num_chunks, parallelism,
      [&](uint64_t chunk, uint64_t, const uint32_t* codes,
          const double* measures) {
        double m = measure ? measures[*measure] : 1.0;
        double* acc = &chunk_masses[chunk * stride];
        for (size_t i = 0; i < nrules; ++i) {
          if (preds[i].Covers(codes)) acc[i] += m;
        }
        return true;
      });
  SMARTDD_RETURN_IF_ERROR(s);
  scans_.fetch_add(1, std::memory_order_relaxed);

  std::vector<double> masses(nrules, 0.0);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    for (size_t i = 0; i < nrules; ++i) {
      masses[i] += chunk_masses[c * stride + i];
    }
  }
  if (!measure) {
    // The handler just paid a full pass for these counts; record them so
    // KnownExactMass serves them from memory. Measure-mode sums are a
    // different quantity and stay out of the count cache.
    std::unique_lock<std::shared_mutex> lock(store_mu_);
    for (size_t i = 0; i < nrules; ++i) {
      RecordExactMassLocked(rules[i], masses[i]);
    }
  }
  return masses;
}

}  // namespace smartdd
