#ifndef SMARTDD_SAMPLING_KNAPSACK_H_
#define SMARTDD_SAMPLING_KNAPSACK_H_

#include <cstdint>
#include <vector>

namespace smartdd {

/// Exact 0/1 knapsack (DP over capacity). Companion to the Lemma 4
/// NP-hardness proof: the paper reduces knapsack to the sample-allocation
/// problem; tests/allocation_test.cc builds that reduction and checks that
/// the allocation solvers recover knapsack answers.
struct KnapsackResult {
  double best_value = 0;
  std::vector<bool> chosen;
};

/// weights[i] and `capacity` are integers; values are arbitrary
/// non-negative doubles. O(n * capacity) time and memory.
KnapsackResult SolveKnapsack(const std::vector<uint64_t>& weights,
                             const std::vector<double>& values,
                             uint64_t capacity);

}  // namespace smartdd

#endif  // SMARTDD_SAMPLING_KNAPSACK_H_
