#ifndef SMARTDD_SAMPLING_ALLOCATION_H_
#define SMARTDD_SAMPLING_ALLOCATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"

namespace smartdd {

/// The memory-allocation problem of paper §4.1 (Problem 5): given the tree
/// of displayed rules, decide how many sampled tuples n_r to keep per rule
/// so that the next drill-down can be answered from memory with maximum
/// probability.
///
/// ess(i) = sum over contributors (j, S) of n_j * S — the expected number of
/// sample tuples usable for node i. A leaf i is "served" when
/// ess(i) >= min_sample_size; the objective is
///   maximize sum over leaves i of probability[i] * I[ess(i) >= minSS]
///   subject to sum_i n_i <= memory_capacity.
struct AllocationProblem {
  /// Per node: probability that the user expands this node next (0 for
  /// internal/expanded nodes).
  std::vector<double> probability;
  /// Per node i: contributors (j, S(j, i)). By convention every node
  /// contributes to itself with ratio 1 — include (i, 1.0) explicitly.
  std::vector<std::vector<std::pair<size_t, double>>> contributions;
  double memory_capacity = 0;   ///< M, in tuples
  double min_sample_size = 0;   ///< minSS

  size_t num_nodes() const { return probability.size(); }
};

/// Builds the tree-restricted instance of §4.1: node i's ess receives
/// contributions only from itself (ratio 1) and its parent
/// (ratio selectivity[i] = S(parent_i, i)). parent[i] < 0 marks the root.
AllocationProblem MakeTreeAllocationProblem(
    const std::vector<int>& parent, const std::vector<double>& selectivity,
    const std::vector<double>& probability, double memory_capacity,
    double min_sample_size);

struct AllocationResult {
  std::vector<uint64_t> sample_size;  ///< n_r per node
  double objective = 0;               ///< expected served probability
};

/// Exact objective of an allocation (step objective of Problem 5).
double EvaluateAllocation(const AllocationProblem& problem,
                          const std::vector<uint64_t>& sample_size);

/// Hinge-loss objective of Problem 6: sum p_i * min(1, ess_i / minSS).
double EvaluateAllocationHinge(const AllocationProblem& problem,
                               const std::vector<uint64_t>& sample_size);

/// §4.1 Pareto/DP solver. Requires the tree-restricted contribution shape
/// (each node: itself + optionally its parent). Enumerates, per parent
/// group, the locally-Pareto-optimal (memory cost, probability) points over
/// the 3-way child classification, then combines groups with a knapsack-
/// style DP over memory. Exact for the tree-restricted model (up to the
/// integer discretization of the memory axis).
Result<AllocationResult> SolveAllocationDp(const AllocationProblem& problem);

/// §4.2 convex relaxation: maximizes the hinge objective by projected
/// gradient ascent over {n >= 0, sum n <= M} (exact Euclidean projection),
/// then rounds to integers. Handles arbitrary contribution structure.
AllocationResult SolveAllocationConvex(const AllocationProblem& problem,
                                       int iterations = 400);

/// Baseline: splits memory uniformly across nodes with positive probability
/// (leaves), one equal share each, capped at minSS per node.
AllocationResult SolveAllocationUniform(const AllocationProblem& problem);

/// Exhaustive grid search over multiples of `granularity` — ground truth
/// for tiny test instances.
AllocationResult SolveAllocationBruteForce(const AllocationProblem& problem,
                                           uint64_t granularity);

}  // namespace smartdd

#endif  // SMARTDD_SAMPLING_ALLOCATION_H_
