#ifndef SMARTDD_SAMPLING_SAMPLE_HANDLER_H_
#define SMARTDD_SAMPLING_SAMPLE_HANDLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "rules/rule.h"
#include "sampling/allocation.h"
#include "sampling/sample.h"
#include "storage/scan_source.h"

namespace smartdd {

/// Which allocation solver the handler uses when planning a Create pass.
enum class AllocationStrategy { kParetoDp, kConvex, kUniform };

/// How a sample request was satisfied (paper §4.3).
enum class SampleMechanism {
  kFind,     ///< an existing sample with exactly this filter sufficed
  kCombine,  ///< assembled from sub-rule samples already in memory
  kCreate,   ///< required a full pass over the source
};

struct SampleHandlerOptions {
  /// M: total tuples the handler may hold across all samples.
  uint64_t memory_capacity = 50000;
  /// minSS: minimum tuples a returned sample must contain (unless the rule
  /// covers fewer tuples in the entire source).
  uint64_t min_sample_size = 5000;
  /// Fraction of M a bare Create (no displayed tree yet) allocates to the
  /// requested rule, never below min_sample_size.
  double create_capacity_fraction = 0.25;
  AllocationStrategy allocation = AllocationStrategy::kParetoDp;
  uint64_t seed = 42;
};

/// The rule tree currently displayed by the UI, used to plan sample
/// allocation (paper §4.1) and pre-fetching. Node 0 must be the root.
struct DisplayTree {
  struct Node {
    Rule rule{0};
    /// Estimated mass (Count/Sum) of the rule; used to derive selectivity
    /// ratios S(parent, child) = mass(child) / mass(parent).
    double estimated_mass = 0;
    int parent = -1;
    std::vector<int> children;
    /// Probability the user expands this node next (only meaningful for
    /// leaves; pass 0 elsewhere). If all zeros, leaves get uniform weight.
    double expand_probability = 0;
  };
  std::vector<Node> nodes;
};

/// A materialized answer to "give me a sample for rule r".
struct SampleRequest {
  Table table;          ///< full-width sampled tuples, all covered by r
  double scale = 1.0;   ///< full-table mass ~= scale * mass-on-table
  SampleMechanism mechanism = SampleMechanism::kFind;
};

/// Creates, maintains, retrieves, and evicts in-memory samples of a
/// scan-only source in response to drill-down interactions (paper §4.3).
///
/// Request flow: Find (exact-filter sample big enough) -> Combine (union of
/// sub-rule samples, Horvitz-Thompson scaled, de-duplicated by row id) ->
/// Create (one pass over the source, multi-reservoir: realizes the §4.1
/// allocation for every displayed rule, refreshes exact counts, and
/// respects the memory cap M).
class SampleHandler {
 public:
  /// `source` must outlive the handler.
  SampleHandler(const ScanSource& source, SampleHandlerOptions options);

  /// Returns a sample of tuples covered by `rule` with at least minSS rows
  /// when the rule covers that many in the source.
  Result<SampleRequest> GetSampleFor(const Rule& rule);

  /// Declares the currently displayed rule tree. Subsequent Create passes
  /// allocate memory across its nodes; Prefetch() runs such a pass
  /// immediately (the §4.3 pre-fetching optimization).
  void SetDisplayedTree(DisplayTree tree);

  /// Eagerly runs a Create pass sized by the allocation solver so that
  /// likely next drill-downs become Find/Combine hits. No-op without a
  /// displayed tree.
  Status Prefetch();

  /// Exact masses of `rules` computed in one pass over the source: tuple
  /// counts, or sums over measure column `measure` when given.
  Result<std::vector<double>> ExactMasses(
      const std::vector<Rule>& rules,
      std::optional<size_t> measure = std::nullopt);

  // --- Introspection ----------------------------------------------------

  /// Tuples currently held across all samples.
  uint64_t memory_used() const;
  size_t num_samples() const { return samples_.size(); }
  /// Full passes over the source triggered by this handler.
  uint64_t scans_performed() const { return scans_; }
  uint64_t find_hits() const { return finds_; }
  uint64_t combine_hits() const { return combines_; }
  uint64_t creates() const { return creates_; }

  /// Exact mass of a displayed rule if a Create pass measured it.
  std::optional<double> KnownExactMass(const Rule& rule) const;

 private:
  /// Runs one pass building reservoir samples of the given capacities for
  /// the given rules; returns exact per-rule masses.
  Result<std::vector<double>> CreateSamples(
      const std::vector<Rule>& rules, const std::vector<uint64_t>& capacities);

  Result<SampleRequest> TryFind(const Rule& rule);
  Result<SampleRequest> TryCombine(const Rule& rule);

  /// Allocation plan for the displayed tree (+ `extra` rule if not in it).
  void PlanAllocation(const Rule& extra, std::vector<Rule>* rules,
                      std::vector<uint64_t>* capacities) const;

  const ScanSource* source_;
  SampleHandlerOptions options_;
  std::vector<std::unique_ptr<Sample>> samples_;
  std::optional<DisplayTree> tree_;
  std::vector<std::pair<Rule, double>> exact_masses_;
  uint64_t scans_ = 0;
  uint64_t finds_ = 0;
  uint64_t combines_ = 0;
  uint64_t creates_ = 0;
  uint64_t seed_counter_ = 0;
};

}  // namespace smartdd

#endif  // SMARTDD_SAMPLING_SAMPLE_HANDLER_H_
