#ifndef SMARTDD_SAMPLING_SAMPLE_HANDLER_H_
#define SMARTDD_SAMPLING_SAMPLE_HANDLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "rules/rule.h"
#include "sampling/allocation.h"
#include "sampling/sample.h"
#include "storage/scan_source.h"

namespace smartdd {

/// Which allocation solver the handler uses when planning a Create pass.
enum class AllocationStrategy { kParetoDp, kConvex, kUniform };

/// How a sample request was satisfied (paper §4.3).
enum class SampleMechanism {
  kFind,     ///< an existing sample with exactly this filter sufficed
  kCombine,  ///< assembled from sub-rule samples already in memory
  kCreate,   ///< required a full pass over the source
};

struct SampleHandlerOptions {
  /// M: total tuples the handler may hold across all samples.
  uint64_t memory_capacity = 50000;
  /// minSS: minimum tuples a returned sample must contain (unless the rule
  /// covers fewer tuples in the entire source).
  uint64_t min_sample_size = 5000;
  /// Fraction of M a bare Create (no displayed tree yet) allocates to the
  /// requested rule, never below min_sample_size.
  double create_capacity_fraction = 0.25;
  AllocationStrategy allocation = AllocationStrategy::kParetoDp;
  uint64_t seed = 42;
  /// Threads for the Create/ExactMasses scan passes (0 = all hardware
  /// threads). Results are bit-identical for every value: passes are
  /// partitioned into chunks whose boundaries and RNG streams are pure
  /// functions of the row count (ScanSource::PlanChunks) plus — for Create
  /// passes — memory_capacity and the planned sample capacities (the
  /// transient-memory bound), never of the thread count; per-chunk state is
  /// merged in chunk order.
  size_t num_threads = 0;
};

/// The rule tree currently displayed by the UI, used to plan sample
/// allocation (paper §4.1) and pre-fetching. Node 0 must be the root.
struct DisplayTree {
  struct Node {
    Rule rule{0};
    /// Estimated mass (Count/Sum) of the rule; used to derive selectivity
    /// ratios S(parent, child) = mass(child) / mass(parent).
    double estimated_mass = 0;
    int parent = -1;
    std::vector<int> children;
    /// Probability the user expands this node next (only meaningful for
    /// leaves; pass 0 elsewhere). If all zeros, leaves get uniform weight.
    double expand_probability = 0;
  };
  std::vector<Node> nodes;
};

/// A materialized answer to "give me a sample for rule r".
struct SampleRequest {
  Table table;          ///< full-width sampled tuples, all covered by r
  double scale = 1.0;   ///< full-table mass ~= scale * mass-on-table
  SampleMechanism mechanism = SampleMechanism::kFind;
};

/// Creates, maintains, retrieves, and evicts in-memory samples of a
/// scan-only source in response to drill-down interactions (paper §4.3).
///
/// Request flow: Find (exact-filter sample big enough) -> Combine (union of
/// sub-rule samples, Horvitz-Thompson scaled, de-duplicated by row id;
/// the union is materialized as a stored sample when it fits under M, so a
/// repeat request is a Find hit) -> Create (one chunked parallel pass over
/// the source, multi-reservoir: realizes the §4.1 allocation for every
/// displayed rule, refreshes exact counts, and respects the memory cap M).
///
/// The Create and ExactMasses passes fan out over the shared thread pool
/// (SampleHandlerOptions::num_threads): each chunk feeds its own
/// sub-reservoirs/accumulators from an independent SplitMix64-derived RNG
/// stream, and the per-chunk states are stitched back deterministically in
/// chunk order, so results are bit-identical for every thread count.
///
/// Concurrency contract (engine/session split): one handler serves many
/// concurrent sessions. The stored-sample map, the exact-mass cache, and
/// the per-session displayed trees live behind a reader-writer lock: Find
/// materializes under a shared lock, Combine and the post-pass store swap
/// take the lock exclusively, and scan passes themselves run with no store
/// lock held. Create passes are single-flight: at most one pass over the
/// source runs at a time, and a session that misses while another session's
/// pass is in flight waits for that pass and re-checks Find/Combine first —
/// two sessions requesting the same rule's sample trigger one scan, not
/// two. Per-session state is keyed by an opaque session id (sessions that
/// never pass one share the default id 0, preserving the single-session
/// behaviour). The statistics counters are atomic and may be read at any
/// time, including while a background prefetch pass is running.
class SampleHandler {
 public:
  /// Session key used by the single-session convenience overloads.
  static constexpr uint64_t kDefaultSession = 0;

  /// `source` must outlive the handler.
  SampleHandler(const ScanSource& source, SampleHandlerOptions options);

  /// Returns a sample of tuples covered by `rule` with at least minSS rows
  /// when the rule covers that many in the source. `session` selects whose
  /// displayed tree drives the allocation of a Create pass. `deadline`
  /// bounds the Create scan cooperatively (checked every few thousand rows
  /// per chunk): on expiry the pass is abandoned *without* committing its
  /// partial reservoirs — a torn reservoir is a biased sample, so the store
  /// keeps only samples built by completed passes — and DeadlineExceeded is
  /// returned. Find/Combine hits are in-memory and never check it.
  Result<SampleRequest> GetSampleFor(const Rule& rule,
                                     uint64_t session = kDefaultSession,
                                     const Deadline& deadline = {});

  /// Declares the rule tree `session` currently displays. Subsequent Create
  /// passes for that session allocate memory across its nodes; Prefetch()
  /// runs such a pass immediately (the §4.3 pre-fetching optimization).
  void SetDisplayedTree(uint64_t session, DisplayTree tree);
  void SetDisplayedTree(DisplayTree tree) {
    SetDisplayedTree(kDefaultSession, std::move(tree));
  }

  /// Eagerly runs a Create pass sized by the allocation solver so that
  /// `session`'s likely next drill-downs become Find/Combine hits. No-op
  /// without a displayed tree for the session. The pass is attributed to
  /// prefetch_scans(), not scans_performed().
  Status Prefetch(uint64_t session = kDefaultSession);

  /// Forgets `session`'s displayed tree (its samples stay until evicted).
  void DropSession(uint64_t session);

  /// Live-table version bump: drops every stored sample and the exact-mass
  /// cache, because they describe rows of an older table version and
  /// serving them against the new data would silently bias estimates.
  /// Displayed trees stay — sessions keep exploring, and their next
  /// drill-down rebuilds samples from the current data. `version` is
  /// recorded for introspection via data_version().
  void BumpDataVersion(uint64_t version);
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_relaxed);
  }

  /// Exact masses of `rules` computed in one pass over the source: tuple
  /// counts, or sums over measure column `measure` when given. Count-mode
  /// results are recorded so KnownExactMass() can serve them afterwards.
  Result<std::vector<double>> ExactMasses(
      const std::vector<Rule>& rules,
      std::optional<size_t> measure = std::nullopt);

  // --- Introspection ----------------------------------------------------

  /// Tuples currently held across all samples.
  uint64_t memory_used() const;
  size_t num_samples() const;
  /// Full passes over the source triggered by interactive (foreground)
  /// requests: Create misses and ExactMasses calls. Pre-fetch passes are
  /// counted separately in prefetch_scans().
  uint64_t scans_performed() const {
    return scans_.load(std::memory_order_relaxed);
  }
  /// Full passes run by Prefetch() (§4.3 background work that happens while
  /// the user reads, so it is not an interactive cost).
  uint64_t prefetch_scans() const {
    return prefetch_scans_.load(std::memory_order_relaxed);
  }
  uint64_t find_hits() const { return finds_.load(std::memory_order_relaxed); }
  uint64_t combine_hits() const {
    return combines_.load(std::memory_order_relaxed);
  }
  /// Create passes, foreground and prefetch alike.
  uint64_t creates() const { return creates_.load(std::memory_order_relaxed); }

  /// Exact mass of a rule if a Create or count-mode ExactMasses pass
  /// measured it.
  std::optional<double> KnownExactMass(const Rule& rule) const;

 private:
  /// Runs one chunked pass building reservoir samples of the given
  /// capacities for the given rules; returns exact per-rule masses. When
  /// `prefetch_pass` is set the pass is attributed to prefetch_scans().
  /// Caller must hold the Create single-flight (create_in_flight_). An
  /// expired `deadline` abandons the scan and commits nothing.
  Result<std::vector<double>> CreateSamples(
      const std::vector<Rule>& rules, const std::vector<uint64_t>& capacities,
      bool prefetch_pass, const Deadline& deadline = {});

  Result<SampleRequest> TryFind(const Rule& rule);
  /// TryFind's acceptance loop; caller holds store_mu_ (either mode).
  Result<SampleRequest> FindLocked(const Rule& rule);
  Result<SampleRequest> TryCombine(const Rule& rule);

  /// Allocation plan for `tree` (+ `extra` rule if not in it); `tree` may
  /// be nullptr (bare Create).
  void PlanAllocation(const DisplayTree* tree, const Rule& extra,
                      std::vector<Rule>* rules,
                      std::vector<uint64_t>* capacities) const;

  /// Copy of `session`'s displayed tree, or nullopt. Takes store_mu_.
  std::optional<DisplayTree> TreeCopy(uint64_t session) const;

  /// Updates or appends `rule`'s entry in the exact-mass cache.
  /// Caller holds store_mu_ exclusively.
  void RecordExactMassLocked(const Rule& rule, double mass);
  uint64_t MemoryUsedLocked() const;

  /// Blocks until this thread owns the Create single-flight. Returns false
  /// when a pass completed while waiting (the caller should re-check
  /// Find/Combine before trying again).
  bool AcquireCreateFlight();
  void ReleaseCreateFlight();

  const ScanSource* source_;
  SampleHandlerOptions options_;

  /// Guards samples_, exact_masses_, and trees_.
  mutable std::shared_mutex store_mu_;
  std::vector<std::unique_ptr<Sample>> samples_;
  std::vector<std::pair<uint64_t, DisplayTree>> trees_;
  std::vector<std::pair<Rule, double>> exact_masses_;

  /// Single-flight Create pass (also serializes seed_counter_).
  std::mutex create_mu_;
  std::condition_variable create_cv_;
  bool create_in_flight_ = false;
  uint64_t create_epoch_ = 0;

  std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> prefetch_scans_{0};
  std::atomic<uint64_t> finds_{0};
  std::atomic<uint64_t> combines_{0};
  std::atomic<uint64_t> creates_{0};
  std::atomic<uint64_t> data_version_{0};
  uint64_t seed_counter_ = 0;  // guarded by the Create single-flight
};

}  // namespace smartdd

#endif  // SMARTDD_SAMPLING_SAMPLE_HANDLER_H_
