#include "sampling/minss_guidance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace smartdd {

double MinSampleSizeForFraction(double covered_fraction, double rho) {
  SMARTDD_CHECK(covered_fraction > 0 && covered_fraction <= 1);
  SMARTDD_CHECK(rho > 0);
  return rho * (1.0 - covered_fraction) / covered_fraction;
}

double RecommendMinSampleSize(size_t num_columns,
                              uint32_t min_dictionary_size, double rho) {
  SMARTDD_CHECK(num_columns > 0);
  SMARTDD_CHECK(min_dictionary_size > 0);
  double x = 1.0 / (static_cast<double>(num_columns) *
                    static_cast<double>(min_dictionary_size));
  return MinSampleSizeForFraction(x, rho);
}

double CountConfidenceHalfWidth(double sample_mass, double sample_size,
                                double scale, double z) {
  if (sample_size <= 0 || sample_mass <= 0) return 0;
  double p = std::min(1.0, sample_mass / sample_size);
  double sd = std::sqrt(sample_mass * (1.0 - p));
  return z * scale * sd;
}

}  // namespace smartdd
