#include "sampling/sample.h"

#include <cstring>

#include "common/logging.h"

namespace smartdd {

Sample::Sample(Rule filter, const Table& prototype)
    : filter_(std::move(filter)),
      prototype_(Table::EmptyLike(prototype)),
      num_measures_(prototype.num_measures()) {
  SMARTDD_CHECK(filter_.num_columns() == prototype_.num_columns());
  for (size_t c = 0; c < filter_.num_columns(); ++c) {
    if (filter_.is_star(c)) star_cols_.push_back(c);
  }
}

void Sample::Add(uint64_t row_id, const uint32_t* codes,
                 const double* measures) {
  for (size_t c : star_cols_) codes_.push_back(codes[c]);
  for (size_t m = 0; m < num_measures_; ++m) {
    measures_.push_back(measures == nullptr ? 0.0 : measures[m]);
  }
  row_ids_.push_back(row_id);
}

void Sample::ReplaceAt(size_t slot, uint64_t row_id, const uint32_t* codes,
                       const double* measures) {
  SMARTDD_DCHECK(slot < row_ids_.size());
  size_t base = slot * star_cols_.size();
  for (size_t i = 0; i < star_cols_.size(); ++i) {
    codes_[base + i] = codes[star_cols_[i]];
  }
  size_t mbase = slot * num_measures_;
  for (size_t m = 0; m < num_measures_; ++m) {
    measures_[mbase + m] = measures == nullptr ? 0.0 : measures[m];
  }
  row_ids_[slot] = row_id;
}

void Sample::GetRow(size_t slot, uint32_t* out) const {
  SMARTDD_DCHECK(slot < row_ids_.size());
  // Constant columns come from the filter rule (the elision optimization).
  for (size_t c = 0; c < filter_.num_columns(); ++c) {
    if (!filter_.is_star(c)) out[c] = filter_.value(c);
  }
  size_t base = slot * star_cols_.size();
  for (size_t i = 0; i < star_cols_.size(); ++i) {
    out[star_cols_[i]] = codes_[base + i];
  }
}

void Sample::GetMeasures(size_t slot, double* out) const {
  SMARTDD_DCHECK(slot < row_ids_.size());
  size_t mbase = slot * num_measures_;
  for (size_t m = 0; m < num_measures_; ++m) out[m] = measures_[mbase + m];
}

Table Sample::Materialize() const {
  Table t = Table::EmptyLike(prototype_);
  std::vector<uint32_t> codes(t.num_columns());
  std::vector<double> measures(num_measures_);
  for (size_t slot = 0; slot < row_ids_.size(); ++slot) {
    GetRow(slot, codes.data());
    GetMeasures(slot, measures.data());
    t.AppendRow(codes, measures);
  }
  return t;
}

}  // namespace smartdd
