#ifndef SMARTDD_SAMPLING_RESERVOIR_H_
#define SMARTDD_SAMPLING_RESERVOIR_H_

#include <cstdint>

#include "common/random.h"

namespace smartdd {

/// Vitter's Algorithm R reservoir sampling [35]: maintains a uniform random
/// sample of fixed capacity over a stream of unknown length in one pass.
/// The sampler only decides *placement*; the caller stores the actual
/// payload at the returned slot.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  /// Decision for the next stream element.
  struct Placement {
    bool accept = false;  ///< store the element?
    size_t slot = 0;      ///< slot to (over)write when accept
  };

  /// Call once per stream element, in order.
  Placement Offer() {
    Placement p;
    if (seen_ < capacity_) {
      p.accept = true;
      p.slot = static_cast<size_t>(seen_);
    } else {
      uint64_t j = rng_.UniformInt(seen_ + 1);
      if (j < capacity_) {
        p.accept = true;
        p.slot = static_cast<size_t>(j);
      }
    }
    ++seen_;
    return p;
  }

  /// Elements offered so far.
  uint64_t seen() const { return seen_; }
  /// Elements currently held (min(seen, capacity)).
  size_t size() const {
    return static_cast<size_t>(seen_ < capacity_ ? seen_ : capacity_);
  }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  Rng rng_;
};

}  // namespace smartdd

#endif  // SMARTDD_SAMPLING_RESERVOIR_H_
