#include "sampling/knapsack.h"

#include <vector>

#include "common/logging.h"

namespace smartdd {

KnapsackResult SolveKnapsack(const std::vector<uint64_t>& weights,
                             const std::vector<double>& values,
                             uint64_t capacity) {
  SMARTDD_CHECK(weights.size() == values.size());
  const size_t n = weights.size();
  const size_t cap = static_cast<size_t>(capacity);

  // dp[i][j] = max value using items [0, i) with capacity j. Full 2-D table
  // for unambiguous reconstruction; instances here are small.
  std::vector<std::vector<double>> dp(n + 1,
                                      std::vector<double>(cap + 1, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= cap; ++j) {
      dp[i + 1][j] = dp[i][j];
      if (weights[i] <= j) {
        double v = dp[i][j - weights[i]] + values[i];
        if (v > dp[i + 1][j]) dp[i + 1][j] = v;
      }
    }
  }

  KnapsackResult result;
  result.best_value = dp[n][cap];
  result.chosen.assign(n, false);
  size_t j = cap;
  for (size_t i = n; i-- > 0;) {
    if (dp[i + 1][j] != dp[i][j]) {
      result.chosen[i] = true;
      j -= static_cast<size_t>(weights[i]);
    }
  }
  return result;
}

}  // namespace smartdd
