#ifndef SMARTDD_SAMPLING_MINSS_GUIDANCE_H_
#define SMARTDD_SAMPLING_MINSS_GUIDANCE_H_

#include <cstddef>
#include <cstdint>

namespace smartdd {

/// Parameter guidance for minSS (paper §4.2, "Setting minSS").
///
/// To estimate the count of a rule covering an x-fraction of the table from
/// a sample of size |Ts| with low relative error, one needs
/// |Ts| >> rho * (1-x)/x for an accuracy constant rho.
double MinSampleSizeForFraction(double covered_fraction, double rho);

/// The Size-weighting bound: the top rule covers at least a
/// 1/(num_columns * min_dictionary_size) fraction of the table, so
/// minSS should exceed rho * num_columns * min_dictionary_size.
/// (Paper example: |T|=10000, |c|=5, |C|=10 -> minSS >> 50.)
double RecommendMinSampleSize(size_t num_columns,
                              uint32_t min_dictionary_size, double rho);

/// Half-width of the normal-approximation confidence interval for a count
/// estimated from a uniform sample: the rule covered `sample_mass` of
/// `sample_size` sampled tuples, each standing for `scale` table tuples.
/// Estimate = scale * sample_mass; returned half-width is
/// z * scale * sqrt(sample_mass * (1 - sample_mass/sample_size)).
double CountConfidenceHalfWidth(double sample_mass, double sample_size,
                                double scale, double z = 1.96);

}  // namespace smartdd

#endif  // SMARTDD_SAMPLING_MINSS_GUIDANCE_H_
