#ifndef SMARTDD_SAMPLING_SAMPLE_H_
#define SMARTDD_SAMPLING_SAMPLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "rules/rule.h"
#include "storage/table.h"

namespace smartdd {

/// An in-memory uniform sample of the tuples covered by a filter rule
/// (paper §4.3: a sample is the triple (filter rule f_s, scaling factor N_s,
/// tuple set T_s)).
///
/// Storage implements the paper's column-elision optimization: tuples
/// covered by f_s are constant on f_s's instantiated columns, so only the
/// starred columns are stored per row (plus measures and the original row
/// id, used for de-duplication in Combine).
class Sample {
 public:
  /// `prototype` must share dictionaries with the scan source (use
  /// ScanSource::MakeEmptyTable()); it defines the full-width schema that
  /// Materialize() reconstructs.
  Sample(Rule filter, const Table& prototype);

  const Rule& filter() const { return filter_; }

  /// Scaling factor N_s: estimated full-table mass = N_s * sample mass.
  double scale() const { return scale_; }
  void set_scale(double scale) { scale_ = scale; }

  /// Mass of tuples covered by the filter in the full source (set after the
  /// creating pass).
  double source_mass() const { return source_mass_; }
  void set_source_mass(double mass) { source_mass_ = mass; }

  /// True for samples derived from other in-memory samples (a materialized
  /// Combine union) rather than drawn independently from the source. A
  /// derived sample is a deterministic subset of its sources, so it must
  /// not enter another Combine's Horvitz-Thompson independence product.
  bool derived() const { return derived_; }
  void set_derived(bool derived) { derived_ = derived; }

  size_t size() const { return row_ids_.size(); }

  /// Appends one covered tuple (full-width codes; only starred columns are
  /// stored). `measures` may be nullptr when the source has none.
  void Add(uint64_t row_id, const uint32_t* codes, const double* measures);

  /// Overwrites slot `slot` (reservoir replacement).
  void ReplaceAt(size_t slot, uint64_t row_id, const uint32_t* codes,
                 const double* measures);

  /// Reconstructs the full-width codes of the `slot`-th sampled tuple
  /// (elided columns come from the filter). `out` must hold num_columns.
  void GetRow(size_t slot, uint32_t* out) const;

  /// Measure values of the `slot`-th tuple (`out` holds num_measures).
  void GetMeasures(size_t slot, double* out) const;

  uint64_t row_id(size_t slot) const { return row_ids_[slot]; }
  const std::vector<uint64_t>& row_ids() const { return row_ids_; }

  /// Builds a full-width in-memory table of all sampled tuples (shares
  /// dictionaries with the prototype/source).
  Table Materialize() const;

  /// Stored cells per tuple (starred columns only) — the elision savings.
  size_t stored_columns() const { return star_cols_.size(); }

  /// Memory accounting unit used by the SampleHandler: tuples held.
  size_t memory_tuples() const { return row_ids_.size(); }

 private:
  Rule filter_;
  Table prototype_;                 // empty; schema + shared dictionaries
  std::vector<size_t> star_cols_;   // columns actually stored
  size_t num_measures_;
  double scale_ = 1.0;
  double source_mass_ = 0;
  bool derived_ = false;
  std::vector<uint32_t> codes_;     // row-major, star_cols_ per row
  std::vector<double> measures_;    // row-major, num_measures_ per row
  std::vector<uint64_t> row_ids_;
};

}  // namespace smartdd

#endif  // SMARTDD_SAMPLING_SAMPLE_H_
