#include "cluster/router.h"

#include <chrono>
#include <cstring>
#include <utility>
#include <variant>

#include "api/codec.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd::cluster {

namespace {

/// Pulls the session token out of an open response's envelope (the only
/// place the router reads response bytes instead of forwarding them).
std::optional<uint64_t> ExtractToken(std::string_view json) {
  constexpr std::string_view kKey = "\"session\":\"";
  size_t pos = json.find(kKey);
  if (pos == std::string_view::npos) return std::nullopt;
  pos += kKey.size();
  size_t end = json.find('"', pos);
  if (end == std::string_view::npos) return std::nullopt;
  auto token = api::ParseToken(json.substr(pos, end - pos));
  if (!token.ok()) return std::nullopt;
  return *token;
}

api::WireResponse ErrorEnvelope(Status status) {
  api::Response response;
  response.status = std::move(status);
  return api::ToWireResponse(response);
}

api::WireResponse FromResult(const rpc::ResultPayload& result) {
  api::WireResponse wire;
  // The envelope JSON already carries the coded error; the Status here
  // only drives the adapter's HTTP mapping, so the code is all it needs.
  wire.status = result.code == StatusCode::kOk
                    ? Status::OK()
                    : Status(result.code, "backend error");
  wire.partial = result.partial;
  wire.has_tree = result.has_tree;
  wire.json = result.json;
  return wire;
}

}  // namespace

Router::Router(std::vector<BackendAddress> backends, RouterOptions options)
    : options_(options),
      forwarded_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_cluster_forwarded_total",
          "Requests the router forwarded to a backend")),
      failovers_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_cluster_failovers_total",
          "Requests answered UNAVAILABLE because their backend's "
          "connection failed")) {
  for (auto& address : backends) {
    auto backend = std::make_unique<Backend>();
    backend->address = address;
    rpc::ChannelOptions channel_options;
    channel_options.host = address.host;
    channel_options.port = address.port;
    channel_options.connect_timeout_ms = options_.connect_timeout_ms;
    backend->channel = std::make_unique<rpc::Channel>(channel_options);
    backend->up_gauge = &MetricsRegistry::Default().GetGauge(
        StrFormat("smartdd_cluster_backend_up{backend=\"%s\"}",
                  backend->channel->target().c_str()),
        "1 when the router considers this backend healthy, else 0");
    backend->up_gauge->Set(0);
    backends_.push_back(std::move(backend));
  }
}

Router::~Router() { Shutdown(); }

Status Router::Start() {
  if (backends_.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  SMARTDD_CHECK(!started_.exchange(true)) << "Router started twice";
  for (size_t i = 0; i < backends_.size(); ++i) {
    Status status = backends_[i]->channel->Connect();
    MarkHealth(i, status.ok());
    if (!status.ok()) {
      SMARTDD_LOG(Warning) << "router: backend " << i << " ("
                           << backends_[i]->channel->target()
                           << ") unreachable at startup: "
                           << status.ToString();
    }
  }
  if (options_.probe_interval_ms > 0) {
    probe_thread_ = std::thread([this]() { ProbeLoop(); });
  }
  return Status::OK();
}

void Router::Shutdown() {
  if (!started_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    stop_probe_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  {
    // Wait for in-flight streaming expansions: their observers hold HTTP
    // streams that must hear OnDone before the router goes away.
    std::unique_lock<std::mutex> lock(streams_mu_);
    draining_ = true;
    streams_cv_.wait(lock, [this]() { return active_streams_ == 0; });
  }
  for (auto& backend : backends_) backend->channel->Close();
}

bool Router::Ready() const {
  for (const auto& backend : backends_) {
    if (backend->healthy.load(std::memory_order_acquire)) return true;
  }
  return false;
}

bool Router::backend_healthy(size_t i) const {
  return i < backends_.size() &&
         backends_[i]->healthy.load(std::memory_order_acquire);
}

size_t Router::backend_sessions(size_t i) const {
  return i < backends_.size()
             ? backends_[i]->sessions.load(std::memory_order_acquire)
             : 0;
}

void Router::MarkHealth(size_t index, bool healthy) {
  backends_[index]->healthy.store(healthy, std::memory_order_release);
  backends_[index]->up_gauge->Set(healthy ? 1 : 0);
}

std::optional<size_t> Router::PickBackendForOpen() {
  std::optional<size_t> best;
  size_t best_sessions = 0;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (!backends_[i]->healthy.load(std::memory_order_acquire)) continue;
    size_t sessions = backends_[i]->sessions.load(std::memory_order_acquire);
    if (!best.has_value() || sessions < best_sessions) {
      best = i;
      best_sessions = sessions;
    }
  }
  return best;
}

std::optional<size_t> Router::RouteFor(uint64_t token) {
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(token);
    if (it != routes_.end()) return it->second;
  }
  // Unknown token: any backend's registry answers the canonical NOT_FOUND,
  // so route to the first healthy one.
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->healthy.load(std::memory_order_acquire)) return i;
  }
  return std::nullopt;
}

api::WireResponse Router::Forward(size_t index, std::string_view line,
                                  const Deadline& deadline) {
  forwarded_total_.Inc();
  auto result = backends_[index]->channel->Call(line, deadline);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kUnavailable) {
      MarkHealth(index, false);
      failovers_total_.Inc();
    }
    return ErrorEnvelope(result.status());
  }
  MarkHealth(index, true);
  return FromResult(*result);
}

api::WireResponse Router::ServeWire(std::string_view line) {
  auto request = api::ParseRequest(line);
  if (!request.ok()) {
    // Parse defects never reach a backend: the codec is shared code and
    // its error envelope is byte-identical wherever it is produced.
    return ErrorEnvelope(request.status());
  }

  // open: place the session on the least-loaded healthy backend and learn
  // the token it minted.
  if (std::holds_alternative<api::OpenRequest>(*request)) {
    auto index = PickBackendForOpen();
    if (!index.has_value()) {
      return ErrorEnvelope(Status::Unavailable("no healthy backend"));
    }
    api::WireResponse wire = Forward(*index, line);
    if (wire.status.ok()) {
      if (auto token = ExtractToken(wire.json)) {
        {
          std::lock_guard<std::mutex> lock(routes_mu_);
          routes_[*token] = *index;
        }
        backends_[*index]->sessions.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    return wire;
  }

  // ping / tableinfo: not session-addressed — first healthy backend
  // answers (replicas hold the same data, so any one's info is the
  // cluster's).
  if (std::holds_alternative<api::PingRequest>(*request) ||
      std::holds_alternative<api::TableInfoRequest>(*request)) {
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (backends_[i]->healthy.load(std::memory_order_acquire)) {
        return Forward(i, line);
      }
    }
    return ErrorEnvelope(Status::Unavailable("no healthy backend"));
  }

  // append: broadcast to every healthy backend so the replicas' live
  // tables stay row-identical (each versions independently; the row lands
  // in all of them). The first failure wins the envelope — a divergent
  // replica is marked unhealthy by Forward's failure path and re-admitted
  // by the probe once it heals.
  if (std::holds_alternative<api::AppendRequest>(*request)) {
    std::optional<api::WireResponse> last;
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (!backends_[i]->healthy.load(std::memory_order_acquire)) continue;
      api::WireResponse wire = Forward(i, line);
      if (!wire.status.ok()) return wire;
      last = std::move(wire);
    }
    if (!last.has_value()) {
      return ErrorEnvelope(Status::Unavailable("no healthy backend"));
    }
    return *std::move(last);
  }

  // Everything else addresses a session token.
  uint64_t token = std::visit(
      [](const auto& req) -> uint64_t {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, api::OpenRequest> ||
                      std::is_same_v<T, api::PingRequest> ||
                      std::is_same_v<T, api::AppendRequest> ||
                      std::is_same_v<T, api::TableInfoRequest>) {
          return 0;  // unreachable; handled above
        } else {
          return req.session;
        }
      },
      *request);
  auto index = RouteFor(token);
  if (!index.has_value()) {
    return ErrorEnvelope(Status::Unavailable("no healthy backend"));
  }
  api::WireResponse wire = Forward(*index, line);
  if (wire.status.ok() &&
      std::holds_alternative<api::CloseRequest>(*request)) {
    // The route entry survives (so the token still answers NOT_FOUND from
    // its own backend), but the load accounting drops.
    std::lock_guard<std::mutex> lock(routes_mu_);
    if (routes_.count(token) != 0) {
      auto& sessions = backends_[*index]->sessions;
      size_t current = sessions.load(std::memory_order_acquire);
      while (current > 0 && !sessions.compare_exchange_weak(
                                current, current - 1,
                                std::memory_order_acq_rel)) {
      }
    }
  }
  return wire;
}

Status Router::SubmitExpandWire(const api::ExpandRequest& request,
                                std::shared_ptr<api::WireObserver> observer) {
  SMARTDD_CHECK(observer != nullptr);
  auto index = RouteFor(request.session);
  if (!index.has_value()) {
    return Status::Unavailable("no healthy backend");
  }
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    if (draining_) return Status::Unavailable("router is draining");
    ++active_streams_;
  }
  // Each streaming expansion rides its own thread so this returns
  // immediately, mirroring the local service's async submit. The thread
  // blocks in CallStream; a dead backend fails it promptly (the channel's
  // reader dies), and Shutdown waits for the count to reach zero.
  std::string line = api::EncodeExpandLine(request);
  std::thread([this, index = *index, line = std::move(line), observer]() {
    auto on_step = [&observer](const rpc::StreamPayload& step) {
      return observer->OnStepJson(step.json, step.seq);
    };
    auto result =
        backends_[index]->channel->CallStream(line, Deadline(), on_step);
    forwarded_total_.Inc();
    api::WireResponse wire;
    if (result.ok()) {
      MarkHealth(index, true);
      wire = FromResult(*result);
    } else {
      if (result.status().code() == StatusCode::kUnavailable) {
        MarkHealth(index, false);
        failovers_total_.Inc();
      }
      wire = ErrorEnvelope(result.status());
    }
    observer->OnDoneWire(wire);
    {
      // Notify under the lock: this thread is detached, so the waiter in
      // Shutdown may destroy the condvar the instant it can re-acquire the
      // mutex and see the count hit zero — notifying after unlocking would
      // touch a dead condvar.
      std::lock_guard<std::mutex> lock(streams_mu_);
      --active_streams_;
      streams_cv_.notify_all();
    }
  }).detach();
  return Status::OK();
}

void Router::ProbeNow() {
  for (size_t i = 0; i < backends_.size(); ++i) {
    auto result = backends_[i]->channel->Call(
        "ping", Deadline::AfterMillis(options_.probe_timeout_ms));
    MarkHealth(i, result.ok());
  }
}

void Router::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mu_);
  while (!stop_probe_) {
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.probe_interval_ms),
                       [this]() { return stop_probe_; });
    if (stop_probe_) break;
    lock.unlock();
    ProbeNow();
    lock.lock();
  }
}

}  // namespace smartdd::cluster
