#include "cluster/shard_server.h"

#include <utility>
#include <variant>

#include "api/codec.h"
#include "common/logging.h"

namespace smartdd::cluster {

namespace {

rpc::ResultPayload ToResult(const api::WireResponse& wire) {
  rpc::ResultPayload result;
  result.code = wire.status.code();
  result.partial = wire.partial;
  result.has_tree = wire.has_tree;
  result.json = wire.json;
  return result;
}

/// Bridges a streaming expansion onto the RPC connection: each step rides
/// a STREAM frame, the completion a RESULT. Returning false from a failed
/// Stream (peer cancelled or died) cancels the engine's remaining steps.
class RpcExpandObserver : public api::WireObserver {
 public:
  explicit RpcExpandObserver(std::shared_ptr<rpc::Responder> responder)
      : responder_(std::move(responder)) {}

  bool OnStepJson(std::string_view node_json, size_t step) override {
    (void)step;  // STREAM seq numbers are assigned by the responder
    return responder_->Stream(node_json);
  }

  void OnDoneWire(const api::WireResponse& response) override {
    responder_->Finish(ToResult(response));
  }

 private:
  std::shared_ptr<rpc::Responder> responder_;
};

}  // namespace

ShardServer::ShardServer(api::WireService* wire, rpc::ServerOptions options)
    : wire_(wire),
      server_([this](const std::shared_ptr<rpc::Responder>& r) {
                HandleCall(r);
              },
              std::move(options)) {
  SMARTDD_CHECK(wire_ != nullptr);
}

void ShardServer::HandleCall(
    const std::shared_ptr<rpc::Responder>& responder) {
  if (!responder->wants_stream()) {
    responder->Finish(ToResult(wire_->ServeWire(responder->line())));
    return;
  }

  // Streamed calls must be expansions; validate locally so the error
  // envelope is the codec's own.
  auto parsed = api::ParseRequest(responder->line());
  const api::ExpandRequest* expand =
      parsed.ok() ? std::get_if<api::ExpandRequest>(&*parsed) : nullptr;
  if (expand == nullptr) {
    api::Response response;
    response.status = parsed.ok() ? Status::InvalidArgument(
                                        "stream requires an expand request")
                                  : parsed.status();
    responder->Finish(ToResult(api::ToWireResponse(response)));
    return;
  }
  auto observer = std::make_shared<RpcExpandObserver>(responder);
  Status submitted = wire_->SubmitExpandWire(*expand, observer);
  if (!submitted.ok()) {
    // The observer will never hear OnDone; answer here with the same
    // envelope shape.
    api::Response response;
    response.status = submitted;
    responder->Finish(ToResult(api::ToWireResponse(response)));
  }
}

}  // namespace smartdd::cluster
