#ifndef SMARTDD_CLUSTER_ROUTER_H_
#define SMARTDD_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/wire_service.h"
#include "common/metrics.h"
#include "rpc/channel.h"

namespace smartdd::cluster {

struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  /// Health probe cadence (0 disables the probe thread; backends are then
  /// only marked down by failed calls and up by successful ones).
  uint64_t probe_interval_ms = 500;
  /// Per-probe ping budget.
  double probe_timeout_ms = 1000;
  /// Dial budget for each backend connection.
  double connect_timeout_ms = 2000;
};

/// The cluster's front door: an api::WireService that owns no engine at
/// all. Sessions are partitioned across backend shard-server processes —
/// each backend hosts a full deterministic replica of the dataset (itself
/// row-sharded in-process by its own ShardedEngine), so any backend
/// produces byte-identical trees and the router only has to route:
///
///   open  -> least-loaded healthy backend (ties to the lowest index);
///            the issued session token is mapped to that backend
///   token-addressed requests -> the token's backend, verbatim
///   ping  -> first healthy backend
///
/// Responses are forwarded byte-for-byte (the RPC payloads are the codec
/// bytes), which is the cluster's correctness contract: an HTTP adapter in
/// front of a Router serves the same bytes as one in front of a local
/// service, token values aside. Tokens are minted by the backends (give
/// each a distinct token_seed); the router never rewrites them, it only
/// remembers where each one lives. Routes are kept after close on
/// purpose — a closed session's token still forwards to its backend,
/// whose registry answers the same NOT_FOUND a single process would.
///
/// Failover: a backend whose connection dies fails its calls with a clean
/// UNAVAILABLE envelope (HTTP 503 through the adapter), is marked down,
/// and stops receiving opens; its sessions are lost (session state is not
/// replicated). A periodic ping probe marks it up again once it answers —
/// the channel re-dials lazily, so a restarted backend heals with no
/// coordination. Membership and health are exported as
/// smartdd_cluster_backend_up{backend="host:port"} gauges.
class Router : public api::WireService {
 public:
  Router(std::vector<BackendAddress> backends, RouterOptions options = {});
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connects to every backend (best effort: unreachable ones start
  /// unhealthy and the probe keeps trying) and starts the probe thread.
  /// InvalidArgument when constructed with no backends.
  Status Start();

  /// Stops probing and waits for in-flight streaming expansions.
  void Shutdown();

  // --- api::WireService --------------------------------------------------
  api::WireResponse ServeWire(std::string_view line) override;
  Status SubmitExpandWire(const api::ExpandRequest& request,
                          std::shared_ptr<api::WireObserver> observer) override;
  /// Ready when at least one backend is healthy.
  bool Ready() const override;

  size_t num_backends() const { return backends_.size(); }
  bool backend_healthy(size_t i) const;
  /// Opens currently routed to backend `i` (for tests).
  size_t backend_sessions(size_t i) const;
  /// Runs one synchronous probe round (test hook; the probe thread does
  /// the same on its cadence).
  void ProbeNow();

 private:
  struct Backend {
    BackendAddress address;
    std::unique_ptr<rpc::Channel> channel;
    std::atomic<bool> healthy{false};
    std::atomic<size_t> sessions{0};
    Gauge* up_gauge = nullptr;
  };

  /// Least-loaded healthy backend; nullopt when none is healthy.
  std::optional<size_t> PickBackendForOpen();
  /// The backend owning `token`; unknown tokens go to the first healthy
  /// backend (whose registry answers the canonical NOT_FOUND).
  std::optional<size_t> RouteFor(uint64_t token);
  /// Forwards one line to backend `index` and maps transport failures to
  /// UNAVAILABLE envelopes.
  api::WireResponse Forward(size_t index, std::string_view line,
                            const Deadline& deadline = {});
  void MarkHealth(size_t index, bool healthy);
  void ProbeLoop();

  const RouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;

  std::mutex routes_mu_;
  std::unordered_map<uint64_t, size_t> routes_;

  std::thread probe_thread_;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool stop_probe_ = false;

  /// In-flight streaming expansions (each rides its own thread so
  /// SubmitExpandWire returns immediately, like the local service).
  std::mutex streams_mu_;
  std::condition_variable streams_cv_;
  size_t active_streams_ = 0;
  bool draining_ = false;

  std::atomic<bool> started_{false};

  Counter& forwarded_total_;
  Counter& failovers_total_;
};

}  // namespace smartdd::cluster

#endif  // SMARTDD_CLUSTER_ROUTER_H_
