#ifndef SMARTDD_CLUSTER_SHARD_SERVER_H_
#define SMARTDD_CLUSTER_SHARD_SERVER_H_

#include <memory>

#include "api/wire_service.h"
#include "rpc/server.h"

namespace smartdd::cluster {

/// A backend process of the exploration cluster: one api::WireService
/// (typically a LocalWireService over an ExplorationService fronting a
/// deterministic ShardedEngine replica) hosted behind an rpc::Server.
///
/// The mapping is mechanical on purpose — the RPC payloads ARE the codec
/// bytes, so every response a shard-server produces is byte-identical to
/// what the same service would answer in-process:
///
///   CALL(line)                 -> ServeWire(line)        -> RESULT(json)
///   CALL(line, wants_stream)   -> SubmitExpandWire(...)  -> STREAM* RESULT
///
/// A streamed CALL whose line is not an expand/star request is answered
/// with the same INVALID_ARGUMENT envelope the codec produces elsewhere.
/// Peer CANCEL (or connection death) stops a streaming expansion at its
/// next step, exactly like a slow SSE client does in-process.
class ShardServer {
 public:
  /// `wire` is borrowed and must outlive this object.
  ShardServer(api::WireService* wire, rpc::ServerOptions options = {});

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  Status Start() { return server_.Start(); }
  /// Graceful: GOAWAY, drain in-flight calls, flush, close.
  void Shutdown() { server_.Shutdown(); }
  /// Abrupt: closes every connection now (simulated crash for tests).
  void Stop() { server_.Stop(); }

  uint16_t port() const { return server_.port(); }
  bool running() const { return server_.running(); }
  size_t open_connections() const { return server_.open_connections(); }
  size_t inflight_calls() const { return server_.inflight_calls(); }

 private:
  void HandleCall(const std::shared_ptr<rpc::Responder>& responder);

  api::WireService* const wire_;
  rpc::Server server_;
};

}  // namespace smartdd::cluster

#endif  // SMARTDD_CLUSTER_SHARD_SERVER_H_
