#ifndef SMARTDD_EXPLORE_PREFETCHER_H_
#define SMARTDD_EXPLORE_PREFETCHER_H_

#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"

namespace smartdd {

/// Runs sample pre-fetching work (paper §4.3: "while the user is busy
/// reading the current rule-list ... start making a pass through the table
/// in the background"). In kBackground mode the task runs on a worker
/// thread; callers must Wait() before touching shared state again (the
/// ExplorationSession does this on the next interaction).
class Prefetcher {
 public:
  enum class Mode { kDisabled, kSynchronous, kBackground };

  explicit Prefetcher(Mode mode) : mode_(mode) {}
  ~Prefetcher() { WaitInternal(); }

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  Mode mode() const { return mode_; }

  /// Schedules `fn`. Awaits any in-flight task first. In kSynchronous mode
  /// runs inline; in kDisabled mode does nothing.
  void Schedule(std::function<Status()> fn) {
    WaitInternal();
    switch (mode_) {
      case Mode::kDisabled:
        break;
      case Mode::kSynchronous:
        last_status_ = fn();
        break;
      case Mode::kBackground:
        worker_ = std::thread([this, fn = std::move(fn)]() {
          Status s = fn();
          std::lock_guard<std::mutex> lock(mu_);
          last_status_ = std::move(s);
        });
        break;
    }
  }

  /// Blocks until idle; returns the status of the last completed task.
  Status Wait() {
    WaitInternal();
    std::lock_guard<std::mutex> lock(mu_);
    return last_status_;
  }

 private:
  void WaitInternal() {
    if (worker_.joinable()) worker_.join();
  }

  Mode mode_;
  std::thread worker_;
  std::mutex mu_;
  Status last_status_;
};

}  // namespace smartdd

#endif  // SMARTDD_EXPLORE_PREFETCHER_H_
