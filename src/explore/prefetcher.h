#ifndef SMARTDD_EXPLORE_PREFETCHER_H_
#define SMARTDD_EXPLORE_PREFETCHER_H_

#include <functional>
#include <utility>

#include "common/status.h"
#include "common/task_scheduler.h"

namespace smartdd {

/// Runs sample pre-fetching work (paper §4.3: "while the user is busy
/// reading the current rule-list ... start making a pass through the table
/// in the background"). In kBackground mode the task runs on a TaskScheduler
/// queue — no thread is spawned per pass; the scheduler's fair round-robin
/// lets many prefetchers (sessions) share a small worker set. Callers must
/// Wait() before touching shared state again when that state is not itself
/// thread-safe (the ExplorationSession drains its engine queue on the next
/// interaction).
class Prefetcher {
 public:
  enum class Mode { kDisabled, kSynchronous, kBackground };

  /// Uses the process-wide shared scheduler.
  explicit Prefetcher(Mode mode) : Prefetcher(mode, &TaskScheduler::Shared()) {}

  /// Uses `scheduler` (e.g. an engine's), which must outlive the prefetcher.
  Prefetcher(Mode mode, TaskScheduler* scheduler)
      : mode_(mode), scheduler_(scheduler) {
    if (mode_ == Mode::kBackground) queue_ = scheduler_->CreateQueue();
  }

  ~Prefetcher() { scheduler_->DestroyQueue(queue_); }

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  Mode mode() const { return mode_; }

  /// Schedules `fn`. Awaits any in-flight task first. In kSynchronous mode
  /// runs inline; in kDisabled mode does nothing.
  void Schedule(std::function<Status()> fn) {
    switch (mode_) {
      case Mode::kDisabled:
        break;
      case Mode::kSynchronous:
        last_status_ = fn();
        break;
      case Mode::kBackground:
        (void)scheduler_->Drain(queue_);
        scheduler_->Submit(queue_, std::move(fn));
        break;
    }
  }

  /// Blocks until idle; returns the status of the last completed task.
  Status Wait() {
    if (mode_ == Mode::kBackground) return scheduler_->Drain(queue_);
    return last_status_;
  }

 private:
  Mode mode_;
  TaskScheduler* scheduler_;
  TaskScheduler::QueueId queue_ = TaskScheduler::kInvalidQueue;
  Status last_status_;
};

}  // namespace smartdd

#endif  // SMARTDD_EXPLORE_PREFETCHER_H_
