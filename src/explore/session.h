#ifndef SMARTDD_EXPLORE_SESSION_H_
#define SMARTDD_EXPLORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/drilldown.h"
#include "explore/prefetcher.h"
#include "sampling/sample_handler.h"
#include "storage/scan_source.h"
#include "weights/weight_function.h"

namespace smartdd {

class ExplorationEngine;

/// Session configuration.
struct SessionOptions {
  /// Rules revealed per drill-down (the paper's k; its UI default is 3).
  size_t k = 3;
  /// mw cap; infinity derives it from the weight function.
  double max_weight = std::numeric_limits<double>::infinity();
  PruningMode pruning = PruningMode::kFull;
  /// Pre-fetch samples for likely next drill-downs after each expansion.
  /// Background prefetches run as engine-scheduled tasks on the session's
  /// fair queue, not on a dedicated thread.
  Prefetcher::Mode prefetch = Prefetcher::Mode::kDisabled;
  /// Rank and display by Sum over this measure column instead of Count
  /// (paper §6.3). Must name a measure column of the table/source.
  std::optional<std::string> measure_column;
  /// Threads for drill-down searches and for the sampling subsystem's
  /// Create/ExactMasses scan passes (0 = the engine default, which itself
  /// defaults to all hardware threads). The sampler inherits this value
  /// unless sampler.num_threads is set explicitly; sampling results are
  /// bit-identical for every thread count.
  size_t num_threads = 0;
  /// Scan-kernel path for this session's drill-down searches (0 = the
  /// engine default). kAuto defers to the engine's kernel, which itself
  /// defers to SMARTDD_KERNEL and CPU detection. Results are bit-identical
  /// across paths.
  KernelPref kernel = KernelPref::kAuto;
};

/// One displayed rule in the exploration tree.
struct ExplorationNode {
  Rule rule{0};
  double weight = 0;
  /// Displayed Count/Sum; estimated (scaled) in sampling mode.
  double mass = 0;
  /// MCount/MSum within the sibling rule list (paper §2.1; 0 for the root).
  double marginal_mass = 0;
  /// Whether `mass` is exact or a sample-based estimate.
  bool exact = true;
  /// 95% confidence half-width of the estimate (0 when exact).
  double ci_half_width = 0;
  int parent = -1;
  std::vector<int> children;
  int depth = 0;
  bool alive = true;
};

/// Stateful smart drill-down exploration over a table (paper §2.3's
/// interaction model): a tree of rules rooted at the trivial rule, where
/// the user expands rules, expands stars, and collapses (rolls up).
///
/// A session is a cheap per-user handle into a shared ExplorationEngine:
/// it owns only the display tree and its options, and holds raw
/// back-pointers into engine state — which is why it is move-only (an
/// accidental copy would silently alias the tree) and must not outlive its
/// engine. Create sessions with ExplorationEngine::NewSession (stand up an
/// engine first even for one-shot embedding uses; it pins the dataset,
/// weight, sampler, and scheduler the session explores through).
///
/// A session itself is not thread-safe (one user drives it); *different*
/// sessions of one engine may run concurrently from different threads.
class ExplorationSession {
 public:
  ~ExplorationSession();

  // Move-only: the session holds raw back-pointers into engine state, and
  // a copy would alias the display tree and the scheduler queue.
  ExplorationSession(const ExplorationSession&) = delete;
  ExplorationSession& operator=(const ExplorationSession&) = delete;
  ExplorationSession(ExplorationSession&& other) noexcept;
  ExplorationSession& operator=(ExplorationSession&& other) noexcept;

  /// Root node id (the trivial rule).
  int root() const { return 0; }

  /// Step-streaming observer for an expansion: called after each of the k
  /// greedy BRS steps with the freshly selected rule (masses already scaled
  /// to full-table estimates in sampling mode), the 0-based step index, and
  /// whether the mass is exact (false when it is a sampling estimate).
  /// Return false to cancel the remaining steps — the rules found so far
  /// still become children, so a front-end can stream partial results and
  /// cut a slow expansion short.
  using ExpandStepCallback =
      std::function<bool(const ScoredRule& rule, size_t step, bool exact)>;

  /// Smart drill-down on a displayed rule; returns ids of the new children.
  /// Expanding an already-expanded node collapses it first (the paper's
  /// toggle behaviour is split: see Collapse).
  ///
  /// `deadline` bounds the expansion cooperatively: on expiry the search
  /// degrades instead of failing — the children found within budget are
  /// appended to the tree, the §4.3 prefetch is skipped, and the call
  /// returns DeadlineExceeded so the caller can mark the result partial.
  Result<std::vector<int>> Expand(int node_id,
                                  ExpandStepCallback on_step = nullptr,
                                  const Deadline& deadline = {});

  /// Star drill-down: expand forcing instantiation of `column`.
  Result<std::vector<int>> ExpandStar(int node_id, size_t column,
                                      ExpandStepCallback on_step = nullptr,
                                      const Deadline& deadline = {});

  /// Replays a previously computed exact expansion onto `node_id` without
  /// running the greedy search: `steps` are the streamed rules in greedy
  /// selection order (what OnStep observers saw on the cold run), `rules`
  /// the weight-sorted, exactly re-scored children the cold run installed,
  /// and `base_mass` the re-measured mass of the expanded rule. Streams
  /// `on_step` per step and mutates the tree identically to the cold path.
  /// One deliberate divergence: a declining callback stops the stream but
  /// the full child list still lands — the result is already computed, so
  /// there is no work to save by truncating, and the tree state stays
  /// independent of client speed. This is the expansion cache's hit path;
  /// it is only valid for exact (non-sampling) engines, where the memoized
  /// result is deterministic.
  Result<std::vector<int>> ApplyExpansion(int node_id,
                                          const std::vector<ScoredRule>& steps,
                                          const std::vector<ScoredRule>& rules,
                                          double base_mass,
                                          const ExpandStepCallback& on_step =
                                              nullptr);

  /// Roll up: removes the node's descendants from the display.
  Status Collapse(int node_id);

  bool IsExpanded(int node_id) const;

  const ExplorationNode& node(int id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Displayed nodes in render order (pre-order walk of alive nodes).
  std::vector<int> DisplayOrder() const;

  /// Replaces estimated counts of displayed rules with exact counts
  /// computed in one pass (the §4.3 background-refresh behaviour).
  Status RefreshExactCounts();

  /// Waits for any in-flight background prefetch (exposed for tests).
  Status WaitForPrefetch();

  /// The engine this session explores through.
  ExplorationEngine& engine() const { return *engine_; }
  /// This session's id within the engine (its scheduler-queue and
  /// sample-handler key).
  uint64_t id() const { return id_; }

  const Table& prototype() const;
  const SampleHandler* sampler() const;
  /// The (validated, defaults-resolved) options this session runs with.
  const SessionOptions& options() const { return options_; }
  const std::optional<std::string>& measure_column() const {
    return options_.measure_column;
  }

 private:
  friend class ExplorationEngine;

  /// NewSession path: binds to `engine` (not owned).
  ExplorationSession(ExplorationEngine* engine, SessionOptions options);

  void Bind(ExplorationEngine* engine, SessionOptions options);
  /// Unbinds from the engine (drains background work); safe to call twice.
  void Release();

  Result<DrillDownResponse> RunDrillDown(const Rule& base,
                                         std::optional<size_t> star_column,
                                         const ExpandStepCallback& on_step,
                                         const Deadline& deadline);
  Result<std::vector<int>> ExpandInternal(int node_id,
                                          std::optional<size_t> star_column,
                                          const ExpandStepCallback& on_step,
                                          const Deadline& deadline);
  void KillSubtree(int node_id);
  DisplayTree BuildDisplayTree() const;
  void AfterExpansion();

  ExplorationEngine* engine_ = nullptr;
  SessionOptions options_;
  uint64_t id_ = 0;  // 0 = unbound (moved-from)
  Status sync_prefetch_status_;
  std::vector<ExplorationNode> nodes_;
};

}  // namespace smartdd

#endif  // SMARTDD_EXPLORE_SESSION_H_
