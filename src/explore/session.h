#ifndef SMARTDD_EXPLORE_SESSION_H_
#define SMARTDD_EXPLORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/drilldown.h"
#include "explore/prefetcher.h"
#include "sampling/sample_handler.h"
#include "storage/scan_source.h"
#include "weights/weight_function.h"

namespace smartdd {

/// Session configuration.
struct SessionOptions {
  /// Rules revealed per drill-down (the paper's k; its UI default is 3).
  size_t k = 3;
  /// mw cap; infinity derives it from the weight function.
  double max_weight = std::numeric_limits<double>::infinity();
  PruningMode pruning = PruningMode::kFull;
  /// Route drill-downs through the SampleHandler instead of scanning the
  /// table directly. Mandatory for sources that do not fit in memory.
  bool use_sampling = false;
  SampleHandlerOptions sampler;
  /// Pre-fetch samples for likely next drill-downs after each expansion.
  Prefetcher::Mode prefetch = Prefetcher::Mode::kDisabled;
  /// Rank and display by Sum over this measure column instead of Count
  /// (paper §6.3). Must name a measure column of the table/source.
  std::optional<std::string> measure_column;
  /// Threads for drill-down searches and for the sampling subsystem's
  /// Create/ExactMasses scan passes (0 = all hardware threads). The sampler
  /// inherits this value unless sampler.num_threads is set explicitly;
  /// sampling results are bit-identical for every thread count.
  size_t num_threads = 0;
};

/// One displayed rule in the exploration tree.
struct ExplorationNode {
  Rule rule{0};
  double weight = 0;
  /// Displayed Count/Sum; estimated (scaled) in sampling mode.
  double mass = 0;
  /// MCount/MSum within the sibling rule list (paper §2.1; 0 for the root).
  double marginal_mass = 0;
  /// Whether `mass` is exact or a sample-based estimate.
  bool exact = true;
  /// 95% confidence half-width of the estimate (0 when exact).
  double ci_half_width = 0;
  int parent = -1;
  std::vector<int> children;
  int depth = 0;
  bool alive = true;
};

/// Stateful smart drill-down exploration over a table (paper §2.3's
/// interaction model): a tree of rules rooted at the trivial rule, where
/// the user expands rules, expands stars, and collapses (rolls up).
class ExplorationSession {
 public:
  /// In-memory mode: exact drill-downs over `table`.
  /// `table` and `weight` must outlive the session.
  ExplorationSession(const Table& table, const WeightFunction& weight,
                     SessionOptions options = {});

  /// Scan-source mode: drill-downs run on SampleHandler samples when
  /// options.use_sampling is set (otherwise a one-off materialization scan
  /// would be required; sampling is strongly recommended for disk sources).
  ExplorationSession(const ScanSource& source, const WeightFunction& weight,
                     SessionOptions options = {});

  /// Root node id (the trivial rule).
  int root() const { return 0; }

  /// Smart drill-down on a displayed rule; returns ids of the new children.
  /// Expanding an already-expanded node collapses it first (the paper's
  /// toggle behaviour is split: see Collapse).
  Result<std::vector<int>> Expand(int node_id);

  /// Star drill-down: expand forcing instantiation of `column`.
  Result<std::vector<int>> ExpandStar(int node_id, size_t column);

  /// Roll up: removes the node's descendants from the display.
  Status Collapse(int node_id);

  bool IsExpanded(int node_id) const;

  const ExplorationNode& node(int id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Displayed nodes in render order (pre-order walk of alive nodes).
  std::vector<int> DisplayOrder() const;

  /// Replaces estimated counts of displayed rules with exact counts
  /// computed in one pass (the §4.3 background-refresh behaviour).
  Status RefreshExactCounts();

  /// Waits for any in-flight background prefetch (exposed for tests).
  Status WaitForPrefetch();

  const Table& prototype() const { return prototype_; }
  const SampleHandler* sampler() const { return sampler_.get(); }
  const std::optional<std::string>& measure_column() const {
    return options_.measure_column;
  }

 private:
  Result<DrillDownResponse> RunDrillDown(const Rule& base,
                                         std::optional<size_t> star_column);
  Result<std::vector<int>> ExpandInternal(int node_id,
                                          std::optional<size_t> star_column);
  void KillSubtree(int node_id);
  DisplayTree BuildDisplayTree() const;
  void AfterExpansion();

  const WeightFunction* weight_;
  SessionOptions options_;
  // Exactly one of table_/source_ is set.
  const Table* table_ = nullptr;
  const ScanSource* source_ = nullptr;
  Table prototype_;  // schema + shared dictionaries for rendering/parsing
  std::unique_ptr<SampleHandler> sampler_;
  Prefetcher prefetcher_;
  std::vector<ExplorationNode> nodes_;
};

}  // namespace smartdd

#endif  // SMARTDD_EXPLORE_SESSION_H_
