#ifndef SMARTDD_EXPLORE_ENGINE_H_
#define SMARTDD_EXPLORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/result.h"
#include "common/task_scheduler.h"
#include "core/scan_kernels.h"
#include "sampling/sample_handler.h"
#include "storage/scan_source.h"
#include "storage/table.h"
#include "weights/weight_function.h"

namespace smartdd {

class ExplorationSession;
class ShardedEngine;
struct SessionOptions;

/// Engine-wide configuration (per dataset, not per user).
struct EngineOptions {
  /// Build the shared SampleHandler so sessions route drill-downs through
  /// samples (scan-source engines only; mandatory for sources that do not
  /// fit in memory).
  bool use_sampling = false;
  SampleHandlerOptions sampler;
  /// Default thread knob for sessions and the sampler's scan passes when
  /// theirs is left at 0 (0 = all hardware threads).
  size_t num_threads = 0;
  /// Default scan-kernel path for sessions that leave theirs at kAuto.
  /// kAuto resolves through SMARTDD_KERNEL and then CPU detection; the
  /// resolved path is logged once at engine creation. Every path produces
  /// byte-identical results — this is a speed knob, not a semantics knob.
  KernelPref kernel = KernelPref::kAuto;
  /// Cap on concurrently running background tasks (prefetch passes); the
  /// scheduler spawns workers lazily, so engines whose sessions never
  /// prefetch cost no threads.
  size_t scheduler_workers = 2;
};

/// The shared, thread-safe half of the engine/session split: one
/// ExplorationEngine per dataset owns everything immutable or internally
/// synchronized — the Table or ScanSource, the prototype schema and
/// dictionaries, the WeightFunction, the shared SampleHandler, and the fair
/// TaskScheduler for background work — while each user holds a cheap
/// ExplorationSession (tree state + options only) created via NewSession().
///
/// Concurrency contract: any number of sessions may run Expand / Collapse /
/// RefreshExactCounts concurrently from their own threads. Exact-mode
/// (in-memory Table) drill-downs are pure reads with deterministic
/// chunk-merged parallel passes, so every session's results are
/// bit-identical to the same interaction script run serially, regardless of
/// thread count or session interleaving. Sampling-mode sessions share the
/// handler's sample store (reader-writer locked, single-flight Create);
/// their estimates depend on which samples are resident, hence on the
/// interleaving, but each returned sample is always a valid uniform sample
/// of its rule. The WeightFunction must be safe for concurrent const calls
/// (the standard weights are stateless).
///
/// The engine is pinned in memory (non-copyable, non-movable): sessions
/// hold raw back-pointers into it. Destroy all sessions before the engine.
class ExplorationEngine {
 public:
  /// Validated construction (the service-layer path): rejects inconsistent
  /// EngineOptions with a clear Status instead of dying or silently
  /// misbehaving later — scheduler_workers == 0 (background prefetch would
  /// never run), use_sampling on an in-memory table, or a sampler
  /// memory_capacity below min_sample_size (every Create would starve).
  static Result<std::unique_ptr<ExplorationEngine>> Create(
      const Table& table, const WeightFunction& weight,
      EngineOptions options = {});
  static Result<std::unique_ptr<ExplorationEngine>> Create(
      const ScanSource& source, const WeightFunction& weight,
      EngineOptions options = {});

  /// In-memory mode: exact drill-downs over `table`.
  /// `table` and `weight` must outlive the engine.
  /// Embedding-layer constructor: clamps instead of validating (it cannot
  /// return a Status); prefer Create() which rejects bad options up front.
  ExplorationEngine(const Table& table, const WeightFunction& weight,
                    EngineOptions options = {});

  /// Scan-source mode: drill-downs run on shared SampleHandler samples when
  /// options.use_sampling is set (otherwise each expansion pays a one-off
  /// materialization scan; sampling is strongly recommended). Embedding-layer
  /// constructor; prefer Create() for validated construction.
  ExplorationEngine(const ScanSource& source, const WeightFunction& weight,
                    EngineOptions options = {});

  ~ExplorationEngine();

  ExplorationEngine(const ExplorationEngine&) = delete;
  ExplorationEngine& operator=(const ExplorationEngine&) = delete;

  /// Creates a new exploration session bound to this engine, validating the
  /// options up front: k == 0, a non-positive or NaN max_weight, an unknown
  /// measure_column, or prefetch on an engine without a sampler all return
  /// InvalidArgument here instead of failing deep inside a later Expand.
  /// Sessions are cheap (the display tree and options); create one per
  /// user/request stream. The returned session must not outlive the engine.
  Result<ExplorationSession> NewSession(SessionOptions options);
  Result<ExplorationSession> NewSession();

  /// Validation behind NewSession, exposed so front doors can reject a
  /// request before touching the engine.
  Status ValidateSessionOptions(const SessionOptions& options) const;

  /// Prototype table: schema + shared dictionaries for rendering/parsing.
  const Table& prototype() const { return prototype_; }
  const WeightFunction& weight() const { return *weight_; }
  /// The in-memory table, or nullptr in scan-source mode.
  const Table* table() const { return table_; }
  /// The scan source, or nullptr in in-memory mode.
  const ScanSource* source() const { return source_; }
  /// The shared sample handler, or nullptr when sampling is off.
  SampleHandler* sampler() const { return sampler_.get(); }
  /// The sharded engine this engine fronts, or nullptr when unsharded.
  /// Sessions route exact drill-downs through it (scatter-gather over the
  /// shard slices); all other paths are unaffected.
  const ShardedEngine* sharded() const { return sharded_; }
  /// Fair background-task scheduler (one queue per session).
  TaskScheduler& scheduler() const { return *scheduler_; }
  const EngineOptions& options() const { return options_; }
  /// Sessions currently bound to this engine.
  size_t num_sessions() const {
    return live_sessions_.load(std::memory_order_relaxed);
  }

 private:
  friend class ExplorationSession;
  friend class ShardedEngine;

  /// Binds a new session: allocates its scheduler queue and returns its id
  /// (also the SampleHandler session key).
  uint64_t RegisterSession();
  /// Releases a session: drains its background tasks, drops its displayed
  /// tree from the handler, and destroys its queue.
  void UnregisterSession(uint64_t id);

  const WeightFunction* weight_;
  EngineOptions options_;
  // Exactly one of table_/source_ is set.
  const Table* table_ = nullptr;
  const ScanSource* source_ = nullptr;
  Table prototype_;
  std::unique_ptr<SampleHandler> sampler_;
  std::unique_ptr<TaskScheduler> scheduler_;
  /// Back-pointer set by the owning ShardedEngine (not owned).
  const ShardedEngine* sharded_ = nullptr;
  std::atomic<size_t> live_sessions_{0};
};

}  // namespace smartdd

#endif  // SMARTDD_EXPLORE_ENGINE_H_
