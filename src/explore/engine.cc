#include "explore/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "explore/session.h"

namespace smartdd {

namespace {

/// Logs the scan-kernel path this engine's sessions will run with (their
/// kAuto defers to EngineOptions::kernel, which kAuto-resolves through
/// SMARTDD_KERNEL and CPU detection). One line per engine, at creation, so
/// an operator can confirm from the log which path a deployment took.
void LogKernelPath(KernelPref pref) {
  SMARTDD_LOG(Info) << "scan kernels: "
                    << KernelPathName(ResolveKernelPath(pref))
                    << " (requested " << KernelPrefName(pref) << ")";
}

Status ValidateEngineOptions(const EngineOptions& options, bool in_memory) {
  if (options.scheduler_workers == 0) {
    return Status::InvalidArgument(
        "scheduler_workers must be >= 1: with no scheduler workers, "
        "background prefetch tasks would queue forever");
  }
  if (in_memory && options.use_sampling) {
    return Status::InvalidArgument(
        "sampling mode requires a ScanSource engine; in-memory tables are "
        "drilled exactly");
  }
  if (options.use_sampling &&
      options.sampler.memory_capacity < options.sampler.min_sample_size) {
    return Status::InvalidArgument(StrFormat(
        "sampler memory_capacity (%llu) is below min_sample_size (%llu); "
        "no sample could ever be created",
        static_cast<unsigned long long>(options.sampler.memory_capacity),
        static_cast<unsigned long long>(options.sampler.min_sample_size)));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ExplorationEngine>> ExplorationEngine::Create(
    const Table& table, const WeightFunction& weight, EngineOptions options) {
  SMARTDD_RETURN_IF_ERROR(ValidateEngineOptions(options, /*in_memory=*/true));
  return std::unique_ptr<ExplorationEngine>(
      new ExplorationEngine(table, weight, std::move(options)));
}

Result<std::unique_ptr<ExplorationEngine>> ExplorationEngine::Create(
    const ScanSource& source, const WeightFunction& weight,
    EngineOptions options) {
  SMARTDD_RETURN_IF_ERROR(ValidateEngineOptions(options, /*in_memory=*/false));
  return std::unique_ptr<ExplorationEngine>(
      new ExplorationEngine(source, weight, std::move(options)));
}

ExplorationEngine::ExplorationEngine(const Table& table,
                                     const WeightFunction& weight,
                                     EngineOptions options)
    : weight_(&weight),
      options_(std::move(options)),
      table_(&table),
      prototype_(Table::EmptyLike(table)),
      scheduler_(std::make_unique<TaskScheduler>(
          std::max<size_t>(1, options_.scheduler_workers))) {
  SMARTDD_CHECK(!options_.use_sampling)
      << "sampling mode requires the ScanSource constructor";
  LogKernelPath(options_.kernel);
  // Resident bytes of the packed column payloads (the unsharded series;
  // ShardedEngine registers per-shard smartdd_table_bytes{shard="N"}).
  MetricsRegistry::Default()
      .GetGauge("smartdd_table_bytes",
                "Resident bytes of the engine table's packed column storage")
      .Set(static_cast<int64_t>(table_->resident_column_bytes()));
}

ExplorationEngine::ExplorationEngine(const ScanSource& source,
                                     const WeightFunction& weight,
                                     EngineOptions options)
    : weight_(&weight),
      options_(std::move(options)),
      source_(&source),
      prototype_(source.MakeEmptyTable()),
      scheduler_(std::make_unique<TaskScheduler>(
          std::max<size_t>(1, options_.scheduler_workers))) {
  if (options_.use_sampling) {
    // The sampler's scan passes share the engine's thread knob unless it
    // was configured separately.
    if (options_.sampler.num_threads == 0) {
      options_.sampler.num_threads = options_.num_threads;
    }
    sampler_ = std::make_unique<SampleHandler>(source, options_.sampler);
  }
  LogKernelPath(options_.kernel);
}

ExplorationEngine::~ExplorationEngine() {
  SMARTDD_CHECK(live_sessions_.load(std::memory_order_relaxed) == 0)
      << "sessions must not outlive their engine";
}

Status ExplorationEngine::ValidateSessionOptions(
    const SessionOptions& options) const {
  if (options.k == 0) {
    return Status::InvalidArgument(
        "k must be >= 1: each drill-down reveals k rules");
  }
  if (std::isnan(options.max_weight) || options.max_weight <= 0) {
    return Status::InvalidArgument(
        "max_weight must be positive (infinity derives the cap from the "
        "weight function)");
  }
  if (options.measure_column) {
    auto measure = prototype_.FindMeasure(*options.measure_column);
    if (!measure.ok()) {
      return Status::InvalidArgument(StrFormat(
          "measure_column '%s' does not name a measure column of the source",
          options.measure_column->c_str()));
    }
  }
  if (options.prefetch != Prefetcher::Mode::kDisabled && sampler_ == nullptr) {
    return Status::InvalidArgument(
        "prefetch requires a sampling engine (EngineOptions::use_sampling); "
        "exact drill-downs have nothing to pre-fetch");
  }
  return Status::OK();
}

Result<ExplorationSession> ExplorationEngine::NewSession(
    SessionOptions options) {
  SMARTDD_RETURN_IF_ERROR(ValidateSessionOptions(options));
  return ExplorationSession(this, std::move(options));
}

Result<ExplorationSession> ExplorationEngine::NewSession() {
  return NewSession(SessionOptions{});
}

uint64_t ExplorationEngine::RegisterSession() {
  live_sessions_.fetch_add(1, std::memory_order_relaxed);
  return scheduler_->CreateQueue();
}

void ExplorationEngine::UnregisterSession(uint64_t id) {
  // Join any in-flight background work first; then the queue and the
  // handler's per-session tree can go.
  (void)scheduler_->Drain(id);
  if (sampler_ != nullptr) sampler_->DropSession(id);
  scheduler_->DestroyQueue(id);
  live_sessions_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace smartdd
