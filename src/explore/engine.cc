#include "explore/engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "explore/session.h"

namespace smartdd {

ExplorationEngine::ExplorationEngine(const Table& table,
                                     const WeightFunction& weight,
                                     EngineOptions options)
    : weight_(&weight),
      options_(std::move(options)),
      table_(&table),
      prototype_(Table::EmptyLike(table)),
      scheduler_(std::make_unique<TaskScheduler>(
          std::max<size_t>(1, options_.scheduler_workers))) {
  SMARTDD_CHECK(!options_.use_sampling)
      << "sampling mode requires the ScanSource constructor";
}

ExplorationEngine::ExplorationEngine(const ScanSource& source,
                                     const WeightFunction& weight,
                                     EngineOptions options)
    : weight_(&weight),
      options_(std::move(options)),
      source_(&source),
      prototype_(source.MakeEmptyTable()),
      scheduler_(std::make_unique<TaskScheduler>(
          std::max<size_t>(1, options_.scheduler_workers))) {
  if (options_.use_sampling) {
    // The sampler's scan passes share the engine's thread knob unless it
    // was configured separately.
    if (options_.sampler.num_threads == 0) {
      options_.sampler.num_threads = options_.num_threads;
    }
    sampler_ = std::make_unique<SampleHandler>(source, options_.sampler);
  }
}

ExplorationEngine::~ExplorationEngine() {
  SMARTDD_CHECK(live_sessions_.load(std::memory_order_relaxed) == 0)
      << "sessions must not outlive their engine";
}

ExplorationSession ExplorationEngine::NewSession(SessionOptions options) {
  return ExplorationSession(this, std::move(options));
}

ExplorationSession ExplorationEngine::NewSession() {
  return NewSession(SessionOptions{});
}

uint64_t ExplorationEngine::RegisterSession() {
  live_sessions_.fetch_add(1, std::memory_order_relaxed);
  return scheduler_->CreateQueue();
}

void ExplorationEngine::UnregisterSession(uint64_t id) {
  // Join any in-flight background work first; then the queue and the
  // handler's per-session tree can go.
  (void)scheduler_->Drain(id);
  if (sampler_ != nullptr) sampler_->DropSession(id);
  scheduler_->DestroyQueue(id);
  live_sessions_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace smartdd
