#include "explore/session.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/string_util.h"
#include "explore/engine.h"
#include "explore/sharded_engine.h"
#include "rules/rule_ops.h"
#include "sampling/minss_guidance.h"

namespace smartdd {

namespace {

ExplorationNode MakeRoot(size_t num_columns, double total_mass) {
  ExplorationNode root;
  root.rule = Rule::Trivial(num_columns);
  root.weight = 0;
  root.mass = total_mass;
  root.exact = true;
  root.parent = -1;
  root.depth = 0;
  return root;
}

}  // namespace

void ExplorationSession::Bind(ExplorationEngine* engine,
                              SessionOptions options) {
  engine_ = engine;
  options_ = std::move(options);
  if (options_.num_threads == 0) {
    options_.num_threads = engine_->options().num_threads;
  }
  if (options_.kernel == KernelPref::kAuto) {
    options_.kernel = engine_->options().kernel;
  }
  id_ = engine_->RegisterSession();
  double total_mass = engine_->table() != nullptr
                          ? static_cast<double>(engine_->table()->num_rows())
                          : static_cast<double>(engine_->source()->num_rows());
  nodes_.push_back(MakeRoot(engine_->prototype().num_columns(), total_mass));
}

void ExplorationSession::Release() {
  if (engine_ != nullptr && id_ != 0) {
    engine_->UnregisterSession(id_);
  }
  id_ = 0;
  engine_ = nullptr;
}

ExplorationSession::ExplorationSession(ExplorationEngine* engine,
                                       SessionOptions options) {
  Bind(engine, std::move(options));
}

ExplorationSession::~ExplorationSession() { Release(); }

ExplorationSession::ExplorationSession(ExplorationSession&& other) noexcept
    : engine_(other.engine_),
      options_(std::move(other.options_)),
      id_(other.id_),
      sync_prefetch_status_(std::move(other.sync_prefetch_status_)),
      nodes_(std::move(other.nodes_)) {
  other.engine_ = nullptr;
  other.id_ = 0;
}

ExplorationSession& ExplorationSession::operator=(
    ExplorationSession&& other) noexcept {
  if (this == &other) return *this;
  Release();
  engine_ = other.engine_;
  options_ = std::move(other.options_);
  id_ = other.id_;
  sync_prefetch_status_ = std::move(other.sync_prefetch_status_);
  nodes_ = std::move(other.nodes_);
  other.engine_ = nullptr;
  other.id_ = 0;
  return *this;
}

const Table& ExplorationSession::prototype() const {
  return engine_->prototype();
}

const SampleHandler* ExplorationSession::sampler() const {
  return engine_->sampler();
}

Result<DrillDownResponse> ExplorationSession::RunDrillDown(
    const Rule& base, std::optional<size_t> star_column,
    const ExpandStepCallback& on_step, const Deadline& deadline) {
  DrillDownRequest request;
  request.base = base;
  request.star_column = star_column;
  request.k = options_.k;
  request.max_weight = options_.max_weight;
  request.pruning = options_.pruning;
  request.num_threads = options_.num_threads;
  request.kernel = options_.kernel;
  request.deadline = deadline;
  if (on_step) {
    // Non-sampling paths search the full data: step masses are exact. The
    // sampling branch below replaces this with a scale-aware wrapper.
    request.on_step = [&on_step](const ScoredRule& r, size_t step) {
      return on_step(r, step, /*exact=*/true);
    };
  }

  const WeightFunction& weight = engine_->weight();

  // Switches a view to the session's Sum measure if one is configured.
  auto apply_measure = [this](TableView& view) -> Status {
    if (!options_.measure_column) return Status::OK();
    SMARTDD_ASSIGN_OR_RETURN(
        size_t m, view.table().FindMeasure(*options_.measure_column));
    view.SelectMeasure(m);
    return Status::OK();
  };

  if (engine_->table() != nullptr) {
    // Sharded engines scatter-gather the exact drill-down across their
    // shard slices; results are byte-identical to the unsharded view path.
    const ShardedEngine* sharded = engine_->sharded();
    if (sharded != nullptr) {
      return sharded->RunDrillDown(request, options_.measure_column);
    }
    TableView view(*engine_->table());
    SMARTDD_RETURN_IF_ERROR(apply_measure(view));
    return SmartDrillDown(view, weight, request);
  }

  const ScanSource* source = engine_->source();
  SMARTDD_CHECK(source != nullptr);
  SampleHandler* sampler = engine_->sampler();
  if (sampler != nullptr) {
    SMARTDD_ASSIGN_OR_RETURN(SampleRequest sample,
                             sampler->GetSampleFor(base, id_, deadline));
    TableView view(sample.table);
    SMARTDD_RETURN_IF_ERROR(apply_measure(view));
    if (on_step) {
      // Stream full-table estimates, not raw sample masses: the observer
      // sees the same scale — and the same exactness — the final children
      // will carry (a complete cover, scale <= 1, is exact).
      const double scale = sample.scale;
      request.on_step = [&on_step, scale](const ScoredRule& r, size_t step) {
        ScoredRule scaled = r;
        scaled.mass *= scale;
        scaled.marginal_mass *= scale;
        return on_step(scaled, step, /*exact=*/scale <= 1.0);
      };
    }
    SMARTDD_ASSIGN_OR_RETURN(DrillDownResponse response,
                             SmartDrillDown(view, weight, request));
    // Scale sample masses to full-table estimates; attach CI info via the
    // caller (which knows the sample size).
    const double n_sample = static_cast<double>(sample.table.num_rows());
    for (auto& r : response.rules) {
      r.marginal_mass *= sample.scale;
      r.mass *= sample.scale;
    }
    response.base_mass *= sample.scale;
    // Stash the sampling context for CI computation in ExpandInternal.
    response.sample_scale = sample.scale;
    response.sample_rows = static_cast<uint64_t>(n_sample);
    return response;
  }

  // Scan-source without sampling: materialize the covered tuples once.
  Table materialized = source->MakeEmptyTable();
  Status s = source->Scan(
      [&](uint64_t, const uint32_t* codes, const double* measures) {
        if (base.Covers(codes)) {
          materialized.AppendRow(
              std::span<const uint32_t>(codes, materialized.num_columns()),
              std::span<const double>(measures,
                                      measures ? materialized.num_measures()
                                               : 0));
        }
        return true;
      });
  SMARTDD_RETURN_IF_ERROR(s);
  TableView view(materialized);
  SMARTDD_RETURN_IF_ERROR(apply_measure(view));
  return SmartDrillDown(view, weight, request);
}

Result<std::vector<int>> ExplorationSession::ExpandInternal(
    int node_id, std::optional<size_t> star_column,
    const ExpandStepCallback& on_step, const Deadline& deadline) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size()) ||
      !nodes_[node_id].alive) {
    return Status::InvalidArgument("no such display node");
  }
  // Join this session's background prefetch before the expansion: the
  // handler is thread-safe, but the §4.3 contract is that the prefetch pass
  // finishes "while the user reads", i.e. before the next interaction
  // consults the sample store — and a failed prefetch must surface here.
  SMARTDD_RETURN_IF_ERROR(WaitForPrefetch());
  // Re-expanding first rolls up the old children.
  if (!nodes_[node_id].children.empty()) {
    SMARTDD_RETURN_IF_ERROR(Collapse(node_id));
  }

  SMARTDD_ASSIGN_OR_RETURN(
      DrillDownResponse response,
      RunDrillDown(nodes_[node_id].rule, star_column, on_step, deadline));

  std::vector<int> child_ids;
  const bool sampled = response.sample_rows > 0;
  for (const auto& sr : response.rules) {
    ExplorationNode child;
    child.rule = sr.rule;
    child.weight = sr.weight;
    child.mass = sr.mass;
    child.marginal_mass = sr.marginal_mass;
    child.exact = !sampled;
    if (sampled && response.sample_scale > 0) {
      // Binomial CI on the covered-count fraction; for Sum aggregation this
      // is an approximation (treats per-tuple mass as homogeneous).
      child.ci_half_width = CountConfidenceHalfWidth(
          sr.mass / response.sample_scale,
          static_cast<double>(response.sample_rows), response.sample_scale);
      child.exact = response.sample_scale <= 1.0;
    }
    child.parent = node_id;
    child.depth = nodes_[node_id].depth + 1;
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(child));
    nodes_[node_id].children.push_back(id);
    child_ids.push_back(id);
  }
  // The drill-down also re-measured the expanded rule itself (its slice
  // mass); adopt it — this is how the root learns its Sum total.
  nodes_[node_id].mass = response.base_mass;
  nodes_[node_id].exact = !sampled;
  if (response.partial) {
    // Degrade, don't fail: the children found in budget stay in the tree
    // (appended above) and the sampler still learns the new displayed tree,
    // but the §4.3 prefetch — more work against an already-blown budget —
    // is skipped. The status tells the caller to mark the result partial.
    SampleHandler* sampler = engine_->sampler();
    if (sampler != nullptr) sampler->SetDisplayedTree(id_, BuildDisplayTree());
    return Status::DeadlineExceeded(
        "expansion deadline exceeded; partial tree retained");
  }
  AfterExpansion();
  return child_ids;
}

Result<std::vector<int>> ExplorationSession::Expand(
    int node_id, ExpandStepCallback on_step, const Deadline& deadline) {
  return ExpandInternal(node_id, std::nullopt, on_step, deadline);
}

Result<std::vector<int>> ExplorationSession::ExpandStar(
    int node_id, size_t column, ExpandStepCallback on_step,
    const Deadline& deadline) {
  return ExpandInternal(node_id, column, on_step, deadline);
}

Result<std::vector<int>> ExplorationSession::ApplyExpansion(
    int node_id, const std::vector<ScoredRule>& steps,
    const std::vector<ScoredRule>& rules, double base_mass,
    const ExpandStepCallback& on_step) {
  // Mirror ExpandInternal's exact (non-sampling) branch step for step, so a
  // cache hit is observationally identical to the cold run it memoized:
  // `steps` replays the greedy-order stream, `rules` the weight-sorted,
  // exactly re-scored children the cold run installed.
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size()) ||
      !nodes_[node_id].alive) {
    return Status::InvalidArgument("no such display node");
  }
  SMARTDD_RETURN_IF_ERROR(WaitForPrefetch());
  if (!nodes_[node_id].children.empty()) {
    SMARTDD_RETURN_IF_ERROR(Collapse(node_id));
  }
  // Stream the steps in greedy order. A declining callback stops the
  // stream (matching the cold path's observer contract) but the full child
  // list still lands in the tree: the result is already computed, so
  // unlike the cold path there is no work left to save, and truncating
  // would leave the session's tree dependent on client speed.
  for (size_t step = 0; step < steps.size(); ++step) {
    if (on_step && !on_step(steps[step], step, /*exact=*/true)) break;
  }
  std::vector<int> child_ids;
  for (const ScoredRule& sr : rules) {
    ExplorationNode child;
    child.rule = sr.rule;
    child.weight = sr.weight;
    child.mass = sr.mass;
    child.marginal_mass = sr.marginal_mass;
    child.exact = true;
    child.parent = node_id;
    child.depth = nodes_[node_id].depth + 1;
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(child));
    nodes_[node_id].children.push_back(id);
    child_ids.push_back(id);
  }
  nodes_[node_id].mass = base_mass;
  nodes_[node_id].exact = true;
  AfterExpansion();
  return child_ids;
}

void ExplorationSession::KillSubtree(int node_id) {
  for (int child : nodes_[node_id].children) {
    KillSubtree(child);
    nodes_[child].alive = false;
  }
  nodes_[node_id].children.clear();
}

Status ExplorationSession::Collapse(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size()) ||
      !nodes_[node_id].alive) {
    return Status::InvalidArgument("no such display node");
  }
  KillSubtree(node_id);
  SampleHandler* sampler = engine_->sampler();
  if (sampler != nullptr) {
    // Join this session's in-flight background prefetch before declaring
    // the new displayed tree. The join is what matters here; a failed
    // prefetch status still surfaces via WaitForPrefetch()/the next Expand.
    (void)engine_->scheduler().Drain(id_);
    sampler->SetDisplayedTree(id_, BuildDisplayTree());
  }
  return Status::OK();
}

bool ExplorationSession::IsExpanded(int node_id) const {
  return node_id >= 0 && node_id < static_cast<int>(nodes_.size()) &&
         nodes_[node_id].alive && !nodes_[node_id].children.empty();
}

std::vector<int> ExplorationSession::DisplayOrder() const {
  std::vector<int> order;
  std::function<void(int)> walk = [&](int id) {
    order.push_back(id);
    for (int c : nodes_[id].children) {
      if (nodes_[c].alive) walk(c);
    }
  };
  walk(0);
  return order;
}

DisplayTree ExplorationSession::BuildDisplayTree() const {
  DisplayTree tree;
  // Map alive nodes to dense indices, root first (pre-order).
  std::vector<int> order = DisplayOrder();
  std::vector<int> dense(nodes_.size(), -1);
  for (size_t i = 0; i < order.size(); ++i) dense[order[i]] = static_cast<int>(i);
  for (int id : order) {
    DisplayTree::Node n;
    n.rule = nodes_[id].rule;
    n.estimated_mass = nodes_[id].mass;
    n.parent = nodes_[id].parent >= 0 ? dense[nodes_[id].parent] : -1;
    for (int c : nodes_[id].children) {
      if (nodes_[c].alive) n.children.push_back(dense[c]);
    }
    n.expand_probability = 0;  // uniform-over-leaves default in the handler
    tree.nodes.push_back(std::move(n));
  }
  return tree;
}

void ExplorationSession::AfterExpansion() {
  SampleHandler* sampler = engine_->sampler();
  if (sampler == nullptr) return;
  sampler->SetDisplayedTree(id_, BuildDisplayTree());
  switch (options_.prefetch) {
    case Prefetcher::Mode::kDisabled:
      break;
    case Prefetcher::Mode::kSynchronous:
      sync_prefetch_status_ = sampler->Prefetch(id_);
      break;
    case Prefetcher::Mode::kBackground: {
      // Engine-scheduled background task on this session's fair queue — no
      // thread spawn per pass, and one session's prefetch backlog cannot
      // starve another session's.
      const uint64_t session = id_;
      engine_->scheduler().Submit(
          id_, [sampler, session]() { return sampler->Prefetch(session); });
      break;
    }
  }
}

Status ExplorationSession::RefreshExactCounts() {
  SMARTDD_RETURN_IF_ERROR(WaitForPrefetch());
  std::vector<int> order = DisplayOrder();
  std::vector<Rule> rules;
  for (int id : order) rules.push_back(nodes_[id].rule);

  std::optional<size_t> measure;
  if (options_.measure_column) {
    SMARTDD_ASSIGN_OR_RETURN(
        size_t m, engine_->prototype().FindMeasure(*options_.measure_column));
    measure = m;
  }

  std::vector<double> masses;
  if (engine_->table() != nullptr) {
    if (engine_->sharded() != nullptr) {
      SMARTDD_ASSIGN_OR_RETURN(masses,
                               engine_->sharded()->ExactMasses(rules, measure));
    } else {
      TableView view(*engine_->table());
      if (measure) view.SelectMeasure(*measure);
      for (const Rule& r : rules) masses.push_back(RuleMass(view, r));
    }
  } else if (engine_->sampler() != nullptr) {
    SMARTDD_ASSIGN_OR_RETURN(masses,
                             engine_->sampler()->ExactMasses(rules, measure));
  } else {
    masses.assign(rules.size(), 0.0);
    Status s = engine_->source()->Scan(
        [&](uint64_t, const uint32_t* codes, const double* measures) {
          double m = measure ? measures[*measure] : 1.0;
          for (size_t i = 0; i < rules.size(); ++i) {
            if (rules[i].Covers(codes)) masses[i] += m;
          }
          return true;
        });
    SMARTDD_RETURN_IF_ERROR(s);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    nodes_[order[i]].mass = masses[i];
    nodes_[order[i]].exact = true;
    nodes_[order[i]].ci_half_width = 0;
  }
  return Status::OK();
}

Status ExplorationSession::WaitForPrefetch() {
  Status drained = engine_->scheduler().Drain(id_);
  if (options_.prefetch == Prefetcher::Mode::kSynchronous) {
    return sync_prefetch_status_;
  }
  return drained;
}

}  // namespace smartdd
