#include "explore/session.h"

#include <algorithm>
#include <functional>

#include "common/string_util.h"
#include "rules/rule_ops.h"
#include "sampling/minss_guidance.h"

namespace smartdd {

namespace {

ExplorationNode MakeRoot(size_t num_columns, double total_mass) {
  ExplorationNode root;
  root.rule = Rule::Trivial(num_columns);
  root.weight = 0;
  root.mass = total_mass;
  root.exact = true;
  root.parent = -1;
  root.depth = 0;
  return root;
}

}  // namespace

ExplorationSession::ExplorationSession(const Table& table,
                                       const WeightFunction& weight,
                                       SessionOptions options)
    : weight_(&weight),
      options_(std::move(options)),
      table_(&table),
      prototype_(Table::EmptyLike(table)),
      prefetcher_(options_.prefetch) {
  SMARTDD_CHECK(!options_.use_sampling)
      << "sampling mode requires the ScanSource constructor";
  nodes_.push_back(
      MakeRoot(table.num_columns(), static_cast<double>(table.num_rows())));
}

ExplorationSession::ExplorationSession(const ScanSource& source,
                                       const WeightFunction& weight,
                                       SessionOptions options)
    : weight_(&weight),
      options_(std::move(options)),
      source_(&source),
      prototype_(source.MakeEmptyTable()),
      prefetcher_(options_.prefetch) {
  if (options_.use_sampling) {
    // The sampler's scan passes share the session's thread knob unless it
    // was configured separately.
    if (options_.sampler.num_threads == 0) {
      options_.sampler.num_threads = options_.num_threads;
    }
    sampler_ = std::make_unique<SampleHandler>(source, options_.sampler);
  }
  nodes_.push_back(MakeRoot(source.schema().num_columns(),
                            static_cast<double>(source.num_rows())));
}

Result<DrillDownResponse> ExplorationSession::RunDrillDown(
    const Rule& base, std::optional<size_t> star_column) {
  DrillDownRequest request;
  request.base = base;
  request.star_column = star_column;
  request.k = options_.k;
  request.max_weight = options_.max_weight;
  request.pruning = options_.pruning;
  request.num_threads = options_.num_threads;

  // Switches a view to the session's Sum measure if one is configured.
  auto apply_measure = [this](TableView& view) -> Status {
    if (!options_.measure_column) return Status::OK();
    SMARTDD_ASSIGN_OR_RETURN(
        size_t m, view.table().FindMeasure(*options_.measure_column));
    view.SelectMeasure(m);
    return Status::OK();
  };

  if (table_ != nullptr) {
    TableView view(*table_);
    SMARTDD_RETURN_IF_ERROR(apply_measure(view));
    return SmartDrillDown(view, *weight_, request);
  }

  SMARTDD_CHECK(source_ != nullptr);
  if (sampler_ != nullptr) {
    SMARTDD_ASSIGN_OR_RETURN(SampleRequest sample,
                             sampler_->GetSampleFor(base));
    TableView view(sample.table);
    SMARTDD_RETURN_IF_ERROR(apply_measure(view));
    SMARTDD_ASSIGN_OR_RETURN(DrillDownResponse response,
                             SmartDrillDown(view, *weight_, request));
    // Scale sample masses to full-table estimates; attach CI info via the
    // caller (which knows the sample size).
    const double n_sample = static_cast<double>(sample.table.num_rows());
    for (auto& r : response.rules) {
      r.marginal_mass *= sample.scale;
      r.mass *= sample.scale;
    }
    response.base_mass *= sample.scale;
    // Stash the sampling context for CI computation in ExpandInternal.
    // (Encodes (scale, sample_rows) in stats fields? No — recompute there.)
    // We return scale via a field on the response:
    response.sample_scale = sample.scale;
    response.sample_rows = static_cast<uint64_t>(n_sample);
    return response;
  }

  // Scan-source without sampling: materialize the covered tuples once.
  Table materialized = source_->MakeEmptyTable();
  Status s = source_->Scan(
      [&](uint64_t, const uint32_t* codes, const double* measures) {
        if (base.Covers(codes)) {
          materialized.AppendRow(
              std::span<const uint32_t>(codes, materialized.num_columns()),
              std::span<const double>(measures,
                                      measures ? materialized.num_measures()
                                               : 0));
        }
        return true;
      });
  SMARTDD_RETURN_IF_ERROR(s);
  TableView view(materialized);
  SMARTDD_RETURN_IF_ERROR(apply_measure(view));
  return SmartDrillDown(view, *weight_, request);
}

Result<std::vector<int>> ExplorationSession::ExpandInternal(
    int node_id, std::optional<size_t> star_column) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size()) ||
      !nodes_[node_id].alive) {
    return Status::InvalidArgument("no such display node");
  }
  // Join any background prefetch before touching the sampler — including
  // the SetDisplayedTree inside Collapse below.
  SMARTDD_RETURN_IF_ERROR(prefetcher_.Wait());
  // Re-expanding first rolls up the old children.
  if (!nodes_[node_id].children.empty()) {
    SMARTDD_RETURN_IF_ERROR(Collapse(node_id));
  }

  SMARTDD_ASSIGN_OR_RETURN(
      DrillDownResponse response,
      RunDrillDown(nodes_[node_id].rule, star_column));

  std::vector<int> child_ids;
  const bool sampled = response.sample_rows > 0;
  for (const auto& sr : response.rules) {
    ExplorationNode child;
    child.rule = sr.rule;
    child.weight = sr.weight;
    child.mass = sr.mass;
    child.marginal_mass = sr.marginal_mass;
    child.exact = !sampled;
    if (sampled && response.sample_scale > 0) {
      // Binomial CI on the covered-count fraction; for Sum aggregation this
      // is an approximation (treats per-tuple mass as homogeneous).
      child.ci_half_width = CountConfidenceHalfWidth(
          sr.mass / response.sample_scale,
          static_cast<double>(response.sample_rows), response.sample_scale);
      child.exact = response.sample_scale <= 1.0;
    }
    child.parent = node_id;
    child.depth = nodes_[node_id].depth + 1;
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(child));
    nodes_[node_id].children.push_back(id);
    child_ids.push_back(id);
  }
  // The drill-down also re-measured the expanded rule itself (its slice
  // mass); adopt it — this is how the root learns its Sum total.
  nodes_[node_id].mass = response.base_mass;
  nodes_[node_id].exact = !sampled;
  AfterExpansion();
  return child_ids;
}

Result<std::vector<int>> ExplorationSession::Expand(int node_id) {
  return ExpandInternal(node_id, std::nullopt);
}

Result<std::vector<int>> ExplorationSession::ExpandStar(int node_id,
                                                        size_t column) {
  return ExpandInternal(node_id, column);
}

void ExplorationSession::KillSubtree(int node_id) {
  for (int child : nodes_[node_id].children) {
    KillSubtree(child);
    nodes_[child].alive = false;
  }
  nodes_[node_id].children.clear();
}

Status ExplorationSession::Collapse(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size()) ||
      !nodes_[node_id].alive) {
    return Status::InvalidArgument("no such display node");
  }
  KillSubtree(node_id);
  if (sampler_ != nullptr) {
    // Serialize against an in-flight background prefetch before mutating
    // the handler's displayed tree. The join is what matters here; a failed
    // prefetch status still surfaces via WaitForPrefetch()/the next Expand.
    (void)prefetcher_.Wait();
    sampler_->SetDisplayedTree(BuildDisplayTree());
  }
  return Status::OK();
}

bool ExplorationSession::IsExpanded(int node_id) const {
  return node_id >= 0 && node_id < static_cast<int>(nodes_.size()) &&
         nodes_[node_id].alive && !nodes_[node_id].children.empty();
}

std::vector<int> ExplorationSession::DisplayOrder() const {
  std::vector<int> order;
  std::function<void(int)> walk = [&](int id) {
    order.push_back(id);
    for (int c : nodes_[id].children) {
      if (nodes_[c].alive) walk(c);
    }
  };
  walk(0);
  return order;
}

DisplayTree ExplorationSession::BuildDisplayTree() const {
  DisplayTree tree;
  // Map alive nodes to dense indices, root first (pre-order).
  std::vector<int> order = DisplayOrder();
  std::vector<int> dense(nodes_.size(), -1);
  for (size_t i = 0; i < order.size(); ++i) dense[order[i]] = static_cast<int>(i);
  for (int id : order) {
    DisplayTree::Node n;
    n.rule = nodes_[id].rule;
    n.estimated_mass = nodes_[id].mass;
    n.parent = nodes_[id].parent >= 0 ? dense[nodes_[id].parent] : -1;
    for (int c : nodes_[id].children) {
      if (nodes_[c].alive) n.children.push_back(dense[c]);
    }
    n.expand_probability = 0;  // uniform-over-leaves default in the handler
    tree.nodes.push_back(std::move(n));
  }
  return tree;
}

void ExplorationSession::AfterExpansion() {
  if (sampler_ == nullptr) return;
  sampler_->SetDisplayedTree(BuildDisplayTree());
  if (options_.prefetch != Prefetcher::Mode::kDisabled) {
    SampleHandler* handler = sampler_.get();
    prefetcher_.Schedule([handler]() { return handler->Prefetch(); });
  }
}

Status ExplorationSession::RefreshExactCounts() {
  SMARTDD_RETURN_IF_ERROR(prefetcher_.Wait());
  std::vector<int> order = DisplayOrder();
  std::vector<Rule> rules;
  for (int id : order) rules.push_back(nodes_[id].rule);

  std::optional<size_t> measure;
  if (options_.measure_column) {
    SMARTDD_ASSIGN_OR_RETURN(
        size_t m, prototype_.FindMeasure(*options_.measure_column));
    measure = m;
  }

  std::vector<double> masses;
  if (table_ != nullptr) {
    TableView view(*table_);
    if (measure) view.SelectMeasure(*measure);
    for (const Rule& r : rules) masses.push_back(RuleMass(view, r));
  } else if (sampler_ != nullptr) {
    SMARTDD_ASSIGN_OR_RETURN(masses, sampler_->ExactMasses(rules, measure));
  } else {
    masses.assign(rules.size(), 0.0);
    Status s = source_->Scan(
        [&](uint64_t, const uint32_t* codes, const double* measures) {
          double m = measure ? measures[*measure] : 1.0;
          for (size_t i = 0; i < rules.size(); ++i) {
            if (rules[i].Covers(codes)) masses[i] += m;
          }
          return true;
        });
    SMARTDD_RETURN_IF_ERROR(s);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    nodes_[order[i]].mass = masses[i];
    nodes_[order[i]].exact = true;
    nodes_[order[i]].ci_half_width = 0;
  }
  return Status::OK();
}

Status ExplorationSession::WaitForPrefetch() { return prefetcher_.Wait(); }

}  // namespace smartdd
