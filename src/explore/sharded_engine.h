#ifndef SMARTDD_EXPLORE_SHARDED_ENGINE_H_
#define SMARTDD_EXPLORE_SHARDED_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "core/drilldown.h"
#include "explore/engine.h"
#include "storage/scan_source.h"
#include "storage/shard_plan.h"
#include "storage/table.h"
#include "weights/weight_function.h"

namespace smartdd {

/// Configuration of a sharded engine.
struct ShardedEngineOptions {
  /// Row partitions the dataset is split into (clamped to >= 1). Results
  /// are byte-identical for every value; the knob trades per-shard scan
  /// parallelism against per-shard working-set size.
  size_t num_shards = 1;
  /// Forwarded to the front ExplorationEngine (sampler, thread defaults,
  /// scheduler workers).
  EngineOptions engine;
};

/// N row-partitioned shards behind one engine: the dataset is split by a
/// ShardPlan into contiguous row slices (shared dictionaries), and every
/// drill-down is a scatter-gather over the shards — scattered as one
/// concatenated row space into the deterministic lane/chunk grids, gathered
/// by the same shape-driven merge order as the unsharded search. Sessions,
/// the wire protocol, deadlines, and fault injection ride through the
/// embedded front ExplorationEngine unchanged; expansion trees are
/// byte-identical to a single-shard serial engine for every
/// num_shards x num_threads combination.
///
/// In-memory mode slices the Table and routes exact drill-downs through
/// SmartDrillDownSharded. Scan-source mode slices the source into
/// RangeScanSources recombined by a ShardedScanSource — same rows, same
/// order — so the sampling subsystem (sub-reservoir stitch, ExactMasses
/// chunk merges) is byte-identical by construction without any routing.
///
/// Like ExplorationEngine, the sharded engine is pinned in memory and
/// borrows its table/source and weight; destroy all sessions before it.
class ShardedEngine {
 public:
  /// In-memory mode: `table` and `weight` must outlive the engine.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      const Table& table, const WeightFunction& weight,
      ShardedEngineOptions options = {});

  /// Scan-source mode: `source` and `weight` must outlive the engine.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      const ScanSource& source, const WeightFunction& weight,
      ShardedEngineOptions options = {});

  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// The front engine sessions are created from (NewSession etc.). Its
  /// exact drill-downs are routed back through this sharded engine.
  ExplorationEngine& front() const { return *front_; }

  size_t num_shards() const { return plan_.num_shards(); }
  const ShardPlan& plan() const { return plan_; }

  /// Scatter-gather exact drill-down over the shard slices (in-memory mode
  /// only; scan-source mode flows through the front engine's sampler).
  /// `measure_column` selects Sum aggregation on every shard view. The
  /// request's num_threads is scaled by the shard count (when non-zero), so
  /// a session's per-shard thread knob fans out across shards.
  Result<DrillDownResponse> RunDrillDown(
      DrillDownRequest request,
      const std::optional<std::string>& measure_column) const;

  /// Exact masses of `rules` over the sharded table, each accumulated
  /// sequentially across the shards in shard order (byte-identical to the
  /// unsharded pass; in-memory mode only).
  Result<std::vector<double>> ExactMasses(const std::vector<Rule>& rules,
                                          std::optional<size_t> measure) const;

 private:
  ShardedEngine() = default;

  /// Registers the per-shard observability instruments (smartdd_shard_rows,
  /// per-shard scan-pass counters, merge-latency histogram).
  void RegisterMetrics();

  const WeightFunction* weight_ = nullptr;
  ShardPlan plan_;
  /// In-memory mode: one row slice per shard, sharing the original table's
  /// dictionaries.
  const Table* table_ = nullptr;
  std::vector<Table> shard_tables_;
  /// Scan-source mode: per-shard row-range slices and their concatenation
  /// (the front engine's source).
  std::vector<std::unique_ptr<RangeScanSource>> shard_sources_;
  std::unique_ptr<ShardedScanSource> sharded_source_;
  std::unique_ptr<ExplorationEngine> front_;

  /// Per-shard pass-1 scan counters and the scatter-gather merge-latency
  /// histogram; mutable-by-design process-wide instruments.
  std::vector<Counter*> shard_scan_passes_;
  Histogram* merge_latency_ = nullptr;
};

}  // namespace smartdd

#endif  // SMARTDD_EXPLORE_SHARDED_ENGINE_H_
