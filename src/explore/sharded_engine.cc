#include "explore/sharded_engine.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "rules/rule_ops.h"
#include "storage/table_view.h"

namespace smartdd {

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const Table& table, const WeightFunction& weight,
    ShardedEngineOptions options) {
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  engine->weight_ = &weight;
  engine->table_ = &table;
  engine->plan_ = ShardPlan::Make(table.num_rows(), options.num_shards);
  engine->shard_tables_.reserve(engine->plan_.num_shards());
  for (const ShardRange& r : engine->plan_.ranges()) {
    engine->shard_tables_.push_back(table.SliceRows(r.begin, r.end));
  }
  // The front engine serves sessions over the *full* table, so unrouted
  // paths (prototype, validation, root mass) stay correct; its exact
  // drill-downs are routed back here via the sharded back-pointer.
  SMARTDD_ASSIGN_OR_RETURN(
      engine->front_,
      ExplorationEngine::Create(table, weight, std::move(options.engine)));
  engine->front_->sharded_ = engine.get();
  engine->RegisterMetrics();
  return engine;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const ScanSource& source, const WeightFunction& weight,
    ShardedEngineOptions options) {
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  engine->weight_ = &weight;
  engine->plan_ = ShardPlan::Make(source.num_rows(), options.num_shards);
  std::vector<const ScanSource*> slices;
  for (const ShardRange& r : engine->plan_.ranges()) {
    engine->shard_sources_.push_back(
        std::make_unique<RangeScanSource>(source, r.begin, r.end));
    slices.push_back(engine->shard_sources_.back().get());
  }
  // The front engine (and its sampler) scans the shards' concatenation:
  // same rows in the same order as the unsharded source, so every sampling
  // artifact — sub-reservoir stitches, ExactMasses chunk merges — is
  // byte-identical for every shard count by construction.
  engine->sharded_source_ =
      std::make_unique<ShardedScanSource>(std::move(slices));
  SMARTDD_ASSIGN_OR_RETURN(
      engine->front_,
      ExplorationEngine::Create(*engine->sharded_source_, weight,
                                std::move(options.engine)));
  engine->front_->sharded_ = engine.get();
  engine->RegisterMetrics();
  return engine;
}

ShardedEngine::~ShardedEngine() {
  // Sever the routing pointer before the front engine (and its sessions'
  // invariants) wind down.
  if (front_ != nullptr) front_->sharded_ = nullptr;
}

void ShardedEngine::RegisterMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Default();
  shard_scan_passes_.reserve(plan_.num_shards());
  for (size_t s = 0; s < plan_.num_shards(); ++s) {
    const std::string label = StrFormat("{shard=\"%zu\"}", s);
    registry
        .GetGauge("smartdd_shard_rows" + label,
                  "Rows owned by each shard of the sharded engine")
        .Set(static_cast<int64_t>(plan_.shard(s).num_rows()));
    // Scan-source sharded engines hold no in-memory slices; the byte gauge
    // only exists for table-sharded engines.
    if (s < shard_tables_.size()) {
      registry
          .GetGauge("smartdd_table_bytes" + label,
                    "Resident bytes of each shard slice's packed column "
                    "storage")
          .Set(static_cast<int64_t>(shard_tables_[s].resident_column_bytes()));
    }
    shard_scan_passes_.push_back(&registry.GetCounter(
        "smartdd_shard_scan_passes_total" + label,
        "Counting-pass scans executed against each shard's rows"));
  }
  merge_latency_ = &registry.GetHistogram(
      "smartdd_sharded_merge_latency_seconds",
      "Wall time of the scatter-gather merge stages (folding per-lane and "
      "per-block partials in deterministic order) per sharded drill-down",
      Histogram::LatencySeconds());
}

Result<DrillDownResponse> ShardedEngine::RunDrillDown(
    DrillDownRequest request,
    const std::optional<std::string>& measure_column) const {
  SMARTDD_CHECK(table_ != nullptr)
      << "sharded exact drill-down requires in-memory mode";
  // Fan the session's per-shard thread knob out across the shards: N shards
  // at k threads each search with N*k lanes (0 stays 0 = all hardware).
  if (request.num_threads != 0) {
    request.num_threads *= plan_.num_shards();
  }

  std::vector<TableView> views;
  views.reserve(shard_tables_.size());
  for (const Table& t : shard_tables_) {
    TableView view(t);
    if (measure_column) {
      SMARTDD_ASSIGN_OR_RETURN(size_t m, t.FindMeasure(*measure_column));
      view.SelectMeasure(m);
    }
    views.push_back(std::move(view));
  }
  std::vector<const TableView*> view_ptrs;
  for (const TableView& v : views) view_ptrs.push_back(&v);

  SMARTDD_ASSIGN_OR_RETURN(
      DrillDownResponse response,
      SmartDrillDownSharded(view_ptrs, *weight_, request));

  // Observability: every counting pass scanned every shard's rows once;
  // the gather/merge wall time is the scatter-gather overhead.
  for (Counter* c : shard_scan_passes_) c->Inc(response.stats.passes);
  merge_latency_->Observe(response.stats.merge_seconds);
  return response;
}

Result<std::vector<double>> ShardedEngine::ExactMasses(
    const std::vector<Rule>& rules, std::optional<size_t> measure) const {
  SMARTDD_CHECK(table_ != nullptr)
      << "sharded ExactMasses requires in-memory mode";
  std::vector<double> masses(rules.size(), 0.0);
  // Each rule's accumulator advances sequentially across the shards in
  // shard order — the same addition sequence as one pass over the unsharded
  // table, so the floats are byte-identical for every shard count.
  for (const Table& t : shard_tables_) {
    TableView view(t);
    if (measure) view.SelectMeasure(*measure);
    const uint64_t n = view.num_rows();
    for (size_t i = 0; i < rules.size(); ++i) {
      double acc = masses[i];
      for (uint64_t row = 0; row < n; ++row) {
        if (RuleCoversRow(rules[i], view, row)) acc += view.mass(row);
      }
      masses[i] = acc;
    }
  }
  for (Counter* c : shard_scan_passes_) c->Inc(1);
  return masses;
}

}  // namespace smartdd
