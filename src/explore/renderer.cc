#include "explore/renderer.h"

#include <vector>

#include "common/string_util.h"
#include "rules/rule_format.h"

namespace smartdd {

std::string FormatMassCell(double mass, bool exact, double ci, bool show_ci) {
  std::string s;
  if (!exact) s += "~";
  s += FormatDouble(mass, 10);
  if (show_ci && !exact && ci > 0) {
    s += " ±" + FormatDouble(ci, 3);
  }
  return s;
}

std::string RenderAlignedGrid(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  std::vector<size_t> width(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += PadRight(row[c], width[c]);
    }
    out += "\n";
  }
  return out;
}

namespace {

std::string MassLabel(const RenderOptions& options,
                      const std::optional<std::string>& measure) {
  if (!options.mass_label.empty()) return options.mass_label;
  if (measure) return "Sum(" + *measure + ")";
  return "Count";
}

std::vector<std::string> HeaderRow(const Table& prototype,
                                   const RenderOptions& options,
                                   const std::string& mass_label) {
  std::vector<std::string> header;
  for (const auto& name : prototype.schema().names()) header.push_back(name);
  header.push_back(mass_label);
  if (options.show_marginal) header.push_back("M" + mass_label);
  if (options.show_weight) header.push_back("Weight");
  return header;
}

}  // namespace

std::string RenderSession(const ExplorationSession& session,
                          const RenderOptions& options) {
  const Table& proto = session.prototype();
  std::string mass_label = MassLabel(options, session.measure_column());
  std::vector<std::vector<std::string>> rows;
  rows.push_back(HeaderRow(proto, options, mass_label));

  for (int id : session.DisplayOrder()) {
    const ExplorationNode& node = session.node(id);
    std::vector<std::string> cells = RuleCells(node.rule, proto);
    std::string indent;
    for (int d = 0; d < node.depth; ++d) indent += options.depth_marker;
    cells[0] = indent + cells[0];
    cells.push_back(FormatMassCell(node.mass, node.exact, node.ci_half_width,
                               options.show_confidence));
    if (options.show_marginal) {
      cells.push_back(id == session.root()
                          ? "-"
                          : FormatMassCell(node.marginal_mass, node.exact, 0,
                                       false));
    }
    if (options.show_weight) {
      cells.push_back(FormatDouble(node.weight, 6));
    }
    rows.push_back(std::move(cells));
  }
  return RenderAlignedGrid(rows);
}

std::string RenderRuleList(const Table& prototype,
                           const std::vector<ScoredRule>& rules,
                           const RenderOptions& options) {
  std::string mass_label = MassLabel(options, std::nullopt);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(HeaderRow(prototype, options, mass_label));
  for (const auto& sr : rules) {
    std::vector<std::string> cells = RuleCells(sr.rule, prototype);
    cells.push_back(FormatMassCell(sr.mass, /*exact=*/true, 0, false));
    if (options.show_marginal) {
      cells.push_back(FormatMassCell(sr.marginal_mass, true, 0, false));
    }
    if (options.show_weight) cells.push_back(FormatDouble(sr.weight, 6));
    rows.push_back(std::move(cells));
  }
  return RenderAlignedGrid(rows);
}

}  // namespace smartdd
