#ifndef SMARTDD_EXPLORE_RENDERER_H_
#define SMARTDD_EXPLORE_RENDERER_H_

#include <string>

#include "explore/session.h"

namespace smartdd {

/// Rendering options for the ASCII rule-table output.
struct RenderOptions {
  /// Prefix repeated per tree depth in the first column (the paper's
  /// tables indent expanded rules with ". ").
  std::string depth_marker = ". ";
  /// Show the Weight column (the paper's tables do).
  bool show_weight = true;
  /// Show 95% confidence intervals next to estimated counts.
  bool show_confidence = false;
  /// Show the MCount/MSum column (paper §2.1: "it would be a simple
  /// extension to display MCount in another column").
  bool show_marginal = false;
  /// Label of the mass column ("Count" or e.g. "Sum(Sales)"). When empty,
  /// RenderSession derives it from the session's measure selection.
  std::string mass_label;
};

/// Renders the session's displayed tree as an aligned ASCII table in the
/// style of the paper's Tables 1-3 / Figures 1-4.
std::string RenderSession(const ExplorationSession& session,
                          const RenderOptions& options = {});

/// Building blocks shared with the api-layer snapshot renderer
/// (api/render.h), which must not be depended on from here — the service
/// API sits on top of this layer, not under it.
///
/// Aligns rows into the " | "-separated ASCII grid all renderers emit.
std::string RenderAlignedGrid(
    const std::vector<std::vector<std::string>>& rows);
/// Mass-cell formatting: "~" prefix for estimates, optional "±ci".
std::string FormatMassCell(double mass, bool exact, double ci, bool show_ci);

/// Renders a flat rule list (e.g. a DrillDownResponse) against a table's
/// dictionaries, one row per rule plus a header.
std::string RenderRuleList(const Table& prototype,
                           const std::vector<ScoredRule>& rules,
                           const RenderOptions& options = {});

}  // namespace smartdd

#endif  // SMARTDD_EXPLORE_RENDERER_H_
