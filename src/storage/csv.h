#ifndef SMARTDD_STORAGE_CSV_H_
#define SMARTDD_STORAGE_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace smartdd {

/// Options controlling CSV import.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names. If false, columns are named "col0"...
  bool has_header = true;
  /// Names (or, if no header, indices rendered as "col<i>") of columns to
  /// load as numeric measure columns instead of categorical ones.
  std::vector<std::string> measure_columns;
  /// Stop after this many data rows (0 = no limit).
  uint64_t max_rows = 0;
  /// Cell value substituted for empty fields.
  std::string empty_value = "?missing";
};

/// Parses one CSV record (handles RFC-4180 quoting: quoted fields, embedded
/// delimiters/newlines inside quotes, "" escapes). `input` is the full file
/// content; `pos` advances past the record. Returns false at end of input.
bool ParseCsvRecord(const std::string& input, size_t* pos, char delimiter,
                    std::vector<std::string>* fields);

/// Loads a CSV file into an in-memory table.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Parses CSV from an in-memory string (same semantics as ReadCsvFile).
Result<Table> ReadCsvString(const std::string& content,
                            const CsvOptions& options = {});

/// Writes a table (categorical columns then measure columns) as CSV.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_CSV_H_
