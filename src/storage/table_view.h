#ifndef SMARTDD_STORAGE_TABLE_VIEW_H_
#define SMARTDD_STORAGE_TABLE_VIEW_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "storage/table.h"

namespace smartdd {

/// A lightweight, non-owning view of (a subset of the rows of) a Table,
/// optionally weighting each tuple by a measure column.
///
/// All smart-drill-down algorithms run over a TableView. The per-tuple
/// "mass" is 1.0 for the Count aggregate or the measure value for the Sum
/// aggregate (paper §6.3); Count/MCount and Sum/MSum are then the same code
/// path.
class TableView {
 public:
  /// View over all rows, Count aggregate.
  explicit TableView(const Table& table) : table_(&table) {}

  /// View over an explicit subset of row ids, Count aggregate.
  TableView(const Table& table, std::vector<uint32_t> rows)
      : table_(&table), rows_(std::move(rows)) {}

  /// Switches the per-tuple mass to measure column `m` (Sum aggregate).
  void SelectMeasure(size_t m) {
    SMARTDD_CHECK(m < table_->num_measures());
    measure_ = m;
  }
  void ClearMeasure() { measure_.reset(); }
  bool has_measure() const { return measure_.has_value(); }
  std::optional<size_t> measure_index() const { return measure_; }

  const Table& table() const { return *table_; }
  size_t num_columns() const { return table_->num_columns(); }

  /// Number of rows visible through the view.
  uint64_t num_rows() const {
    return rows_ ? rows_->size() : table_->num_rows();
  }

  /// Whether this is a subset view (vs. the whole table).
  bool is_subset() const { return rows_.has_value(); }

  /// Table row id of the i-th view row.
  uint32_t row_id(uint64_t i) const {
    return rows_ ? (*rows_)[i] : static_cast<uint32_t>(i);
  }

  /// Code of column `col` in the i-th view row.
  uint32_t code(size_t col, uint64_t i) const {
    return table_->code(col, row_id(i));
  }

  /// Per-tuple mass: 1 (Count) or the selected measure value (Sum).
  double mass(uint64_t i) const {
    return measure_ ? table_->measure(*measure_, row_id(i)) : 1.0;
  }

  /// Total mass of the view (== num_rows() for Count).
  double total_mass() const {
    if (!measure_) return static_cast<double>(num_rows());
    double total = 0;
    for (uint64_t i = 0; i < num_rows(); ++i) total += mass(i);
    return total;
  }

 private:
  const Table* table_;
  std::optional<std::vector<uint32_t>> rows_;
  std::optional<size_t> measure_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_TABLE_VIEW_H_
