#ifndef SMARTDD_STORAGE_SHARD_PLAN_H_
#define SMARTDD_STORAGE_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smartdd {

/// One shard's contiguous row range [begin, end) of a table or scan source.
struct ShardRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t num_rows() const { return end - begin; }
  bool operator==(const ShardRange&) const = default;
};

/// The row partitioner behind the sharded engine: splits [0, num_rows) into
/// `num_shards` contiguous, non-overlapping ranges that cover every row.
///
/// Contract (asserted by tests):
///  - Make(n, s) is a pure function of its two inputs — never of the
///    machine, the thread count, or any runtime state — so every replica
///    of a deployment computes the same partitioning.
///  - The ranges are contiguous in shard order: shard i ends where shard
///    i+1 begins, shard 0 begins at 0, the last shard ends at n.
///  - Balanced to within one scan granule: interior boundaries are aligned
///    down to ScanSource::PlanChunks' 4096-row granule (when n is large
///    enough for that), so each shard's own chunk plan tiles the shard
///    without a fractional tail chunk on the boundary.
///
/// Shard boundaries do NOT have to align with the lane/chunk grids of the
/// deterministic fold (see core/best_marginal.cc): the sharded search walks
/// the shards as one concatenated row space, so its merge order is a pure
/// function of the global shape regardless of where the cuts fall. The
/// alignment here is an I/O nicety, not a correctness requirement.
class ShardPlan {
 public:
  /// An empty plan (no shards). Rebuild with Make before use.
  ShardPlan() = default;

  /// Splits `num_rows` rows into `num_shards` ranges. `num_shards` is
  /// clamped to at least 1; shards beyond the row count come out empty
  /// (their begin == end), never dropped — shard identities are stable.
  static ShardPlan Make(uint64_t num_rows, size_t num_shards);

  size_t num_shards() const { return ranges_.size(); }
  uint64_t num_rows() const { return num_rows_; }
  const ShardRange& shard(size_t i) const { return ranges_[i]; }
  const std::vector<ShardRange>& ranges() const { return ranges_; }

  /// Index of the shard owning global row `row` (row < num_rows()).
  size_t ShardOf(uint64_t row) const;

 private:
  uint64_t num_rows_ = 0;
  std::vector<ShardRange> ranges_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_SHARD_PLAN_H_
