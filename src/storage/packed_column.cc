#include "storage/packed_column.h"

#include <cstdlib>

#include "common/flat_map.h"
#include "common/logging.h"

namespace smartdd {

namespace {

/// Spare elements appended past the payload so that (a) the sub-byte
/// 64-bit-window read and (b) the SIMD 4-byte gathers of the k8/k16 paths
/// never touch unmapped memory at the tail.
constexpr size_t kPadBytes = 8;

}  // namespace

void PackedColumn::FailFrozenAppend() {
  SMARTDD_CHECK(false)
      << "PackedColumn::Append on a frozen column (freeze a table only after "
         "all rows are loaded)";
  std::abort();  // unreachable: the failed check aborts
}

size_t PackedColumn::byte_size() const {
  switch (width_) {
    case PackedWidth::kUnpacked:
    case PackedWidth::k32:
      return raw_.size() * sizeof(uint32_t);
    case PackedWidth::k8:
      return b8_.size();
    case PackedWidth::k16:
      return b16_.size() * sizeof(uint16_t);
    case PackedWidth::kSub:
      return words_.size() * sizeof(uint64_t);
    case PackedWidth::kConst:
      return 0;
  }
  return 0;
}

void PackedColumn::Freeze(size_t dict_size) {
  if (width_ != PackedWidth::kUnpacked) return;  // idempotent
  bits_ = dict_size <= 1 ? 0 : CodeBitWidth(dict_size);
  if (bits_ == 0) {
    width_ = PackedWidth::kConst;
    raw_.clear();
    raw_.shrink_to_fit();
    return;
  }
  if (bits_ > 16) {
    // Wide dictionaries keep the raw u32 payload: already the right width.
    bits_ = 32;
    width_ = PackedWidth::k32;
    raw_.shrink_to_fit();
    return;
  }
  // Sub-byte widths are rounded up to a power of two (1, 2, 4) so codes
  // never straddle a byte — the property the SWAR counting kernels and the
  // single-byte Get depend on. 5..7 bits round to a whole byte.
  if (bits_ == 3) bits_ = 4;
  if (bits_ > 4 && bits_ < 8) bits_ = 8;
  if (bits_ > 8) {
    bits_ = 16;
    b16_.reserve(size_ + kPadBytes / sizeof(uint16_t));
    b16_.assign(raw_.begin(), raw_.end());
    b16_.resize(size_ + kPadBytes / sizeof(uint16_t), 0);
    width_ = PackedWidth::k16;
  } else if (bits_ == 8) {
    b8_.reserve(size_ + kPadBytes);
    b8_.assign(raw_.begin(), raw_.end());
    b8_.resize(size_ + kPadBytes, 0);
    width_ = PackedWidth::k8;
  } else {
    // 1, 2, or 4 bits: tight pack into 64-bit words, little-endian bit
    // order. Because bits divides 8 a code never crosses a byte (or word)
    // boundary.
    words_.assign((size_ * bits_ + 63) / 64 + kPadBytes / sizeof(uint64_t),
                  0u);
    for (uint64_t i = 0; i < size_; ++i) {
      const uint64_t bit = i * bits_;
      words_[bit >> 6] |= uint64_t{raw_[i]} << (bit & 63);
    }
    width_ = PackedWidth::kSub;
  }
  raw_.clear();
  raw_.shrink_to_fit();
}

void PackedColumn::Unpack(uint64_t begin, uint64_t end, uint32_t* out) const {
  SMARTDD_DCHECK(begin <= end && end <= size_);
  const PackedRef r = ref();
  switch (width_) {
    case PackedWidth::kUnpacked:
    case PackedWidth::k32: {
      std::memcpy(out, raw_.data() + begin, (end - begin) * sizeof(uint32_t));
      return;
    }
    case PackedWidth::kConst:
      std::memset(out, 0, (end - begin) * sizeof(uint32_t));
      return;
    default:
      for (uint64_t i = begin; i < end; ++i) *out++ = r.Get(i);
      return;
  }
}

}  // namespace smartdd
