#ifndef SMARTDD_STORAGE_BUCKETIZE_H_
#define SMARTDD_STORAGE_BUCKETIZE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace smartdd {

/// Maps continuous numeric values to categorical bucket labels, so numeric
/// attributes participate in drill-down (paper §6.2: "bucketize a numerical
/// attribute and treat the bucket id as a categorical attribute").
class Bucketizer {
 public:
  /// Equal-width buckets spanning [min(values), max(values)].
  static Result<Bucketizer> EqualWidth(const std::vector<double>& values,
                                       size_t num_buckets);

  /// Equal-depth (quantile) buckets: each bucket receives roughly the same
  /// number of input values. Duplicate boundaries are merged, so the result
  /// may have fewer than `num_buckets` buckets on skewed data.
  static Result<Bucketizer> EqualDepth(const std::vector<double>& values,
                                       size_t num_buckets);

  /// Explicit boundaries b0 < b1 < ... < bk: bucket i is [b_i, b_{i+1})
  /// (last bucket closed). Values outside are clamped to the end buckets.
  static Result<Bucketizer> FromBoundaries(std::vector<double> boundaries);

  /// Index of the bucket containing `v`.
  size_t BucketOf(double v) const;

  /// Human-readable label of bucket `i`, e.g. "[18, 25)".
  const std::string& LabelOf(size_t i) const { return labels_[i]; }

  /// Label of the bucket containing `v`.
  const std::string& LabelFor(double v) const { return labels_[BucketOf(v)]; }

  size_t num_buckets() const { return labels_.size(); }
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Applies the bucketizer to a column of values, producing labels ready to
  /// feed into Table::AppendRowValues.
  std::vector<std::string> Apply(const std::vector<double>& values) const;

 private:
  Bucketizer(std::vector<double> boundaries);

  std::vector<double> boundaries_;  // size = num_buckets + 1
  std::vector<std::string> labels_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_BUCKETIZE_H_
