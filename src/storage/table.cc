#include "storage/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd {

Table::Table(std::vector<std::string> column_names)
    : schema_(std::move(column_names)) {
  dicts_.reserve(schema_.num_columns());
  cols_.resize(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    dicts_.push_back(std::make_shared<ValueDictionary>());
  }
}

Table Table::EmptyLike(const Table& other) {
  Table t(other.schema_.names());
  t.dicts_ = other.dicts_;  // share code space
  t.measure_names_ = other.measure_names_;
  t.measures_.resize(t.measure_names_.size());
  return t;
}

Table Table::SliceRows(uint64_t row_begin, uint64_t row_end) const {
  SMARTDD_CHECK(row_begin <= row_end && row_end <= num_rows_)
      << "slice [" << row_begin << ", " << row_end << ") out of range";
  Table t = EmptyLike(*this);
  for (size_t c = 0; c < cols_.size(); ++c) {
    t.cols_[c].Reserve(row_end - row_begin);
    for (uint64_t r = row_begin; r < row_end; ++r) {
      t.cols_[c].Append(cols_[c].Get(r));
    }
  }
  for (size_t m = 0; m < measures_.size(); ++m) {
    t.measures_[m].assign(measures_[m].begin() + row_begin,
                          measures_[m].begin() + row_end);
  }
  t.num_rows_ = row_end - row_begin;
  // Slices of a frozen table come out frozen: the shard partitioner's
  // slices inherit the parent's packed representation.
  if (frozen_) t.Freeze();
  return t;
}

Table Table::UnfrozenCopyWithPrivateDicts() const {
  Table t(schema_.names());
  for (size_t c = 0; c < dicts_.size(); ++c) {
    *t.dicts_[c] = *dicts_[c];  // clone the code space, keep codes stable
  }
  t.measure_names_ = measure_names_;
  t.measures_ = measures_;
  for (size_t c = 0; c < cols_.size(); ++c) {
    t.cols_[c].Reserve(num_rows_);
    for (uint64_t r = 0; r < num_rows_; ++r) {
      t.cols_[c].Append(cols_[c].Get(r));
    }
  }
  t.num_rows_ = num_rows_;
  return t;
}

uint32_t Table::EncodeValue(size_t col, std::string_view value) {
  SMARTDD_CHECK(col < dicts_.size());
  return dicts_[col]->GetOrAdd(value);
}

void Table::AppendRow(std::span<const uint32_t> codes,
                      std::span<const double> measures) {
  SMARTDD_CHECK(codes.size() == cols_.size())
      << "expected " << cols_.size() << " codes, got " << codes.size();
  SMARTDD_CHECK(measures.size() == measures_.size())
      << "expected " << measures_.size() << " measures, got "
      << measures.size();
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].Append(codes[c]);
  for (size_t m = 0; m < measures_.size(); ++m) {
    measures_[m].push_back(measures[m]);
  }
  ++num_rows_;
}

Status Table::AppendRowValues(const std::vector<std::string>& values,
                              std::span<const double> measures) {
  if (values.size() != cols_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", values.size(),
                  cols_.size()));
  }
  std::vector<uint32_t> codes(values.size());
  for (size_t c = 0; c < values.size(); ++c) {
    codes[c] = EncodeValue(c, values[c]);
  }
  AppendRow(codes, measures);
  return Status::OK();
}

void Table::AppendRowFrom(const Table& src, uint64_t row) {
  SMARTDD_DCHECK(src.num_columns() == num_columns());
  SMARTDD_DCHECK(row < src.num_rows());
  for (size_t c = 0; c < cols_.size(); ++c) {
    SMARTDD_DCHECK(dicts_[c] == src.dicts_[c])
        << "AppendRowFrom requires shared dictionaries";
    cols_[c].Append(src.cols_[c].Get(row));
  }
  for (size_t m = 0; m < measures_.size(); ++m) {
    measures_[m].push_back(src.measures_[m][row]);
  }
  ++num_rows_;
}

size_t Table::AddMeasureColumn(std::string name) {
  SMARTDD_CHECK(num_rows_ == 0) << "add measure columns before appending rows";
  measure_names_.push_back(std::move(name));
  measures_.emplace_back();
  return measure_names_.size() - 1;
}

Result<size_t> Table::FindMeasure(const std::string& name) const {
  for (size_t m = 0; m < measure_names_.size(); ++m) {
    if (measure_names_[m] == name) return m;
  }
  return Status::NotFound("no measure column named '" + name + "'");
}

void Table::Freeze() {
  if (frozen_) return;
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].Freeze(dicts_[c]->size());
  }
  frozen_ = true;
}

size_t Table::resident_column_bytes() const {
  size_t total = 0;
  for (const PackedColumn& c : cols_) total += c.byte_size();
  return total;
}

void Table::GetRow(uint64_t row, uint32_t* out) const {
  for (size_t c = 0; c < cols_.size(); ++c) out[c] = cols_[c].Get(row);
}

}  // namespace smartdd
