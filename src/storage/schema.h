#ifndef SMARTDD_STORAGE_SCHEMA_H_
#define SMARTDD_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace smartdd {

/// Describes the categorical (drillable) columns of a table. Numeric measure
/// columns (used by the Sum aggregate) are tracked separately by Table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> column_names)
      : names_(std::move(column_names)) {}

  size_t num_columns() const { return names_.size(); }
  const std::string& name(size_t col) const { return names_[col]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the column with the given name, if any.
  std::optional<size_t> FindColumn(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return i;
    }
    return std::nullopt;
  }

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_SCHEMA_H_
