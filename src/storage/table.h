#ifndef SMARTDD_STORAGE_TABLE_H_
#define SMARTDD_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/packed_column.h"
#include "storage/schema.h"

namespace smartdd {

/// In-memory, dictionary-encoded, column-major table of categorical columns
/// plus optional numeric measure columns (for Sum aggregation, paper §6.3).
///
/// Dictionaries are held by shared_ptr so that derived tables (samples,
/// drill-down slices) share code space with their parent: a code means the
/// same value in both.
class Table {
 public:
  /// An empty zero-column table (useful as a default member; rebuild with a
  /// real schema before use).
  Table() : Table(std::vector<std::string>{}) {}

  explicit Table(std::vector<std::string> column_names);

  /// Creates an empty table sharing `other`'s schema, dictionaries, and
  /// measure-column names. Used for samples and filtered slices.
  static Table EmptyLike(const Table& other);

  /// Copies rows [row_begin, row_end) into a new table sharing this table's
  /// dictionaries (a code means the same value in both). This is the shard
  /// partitioner's storage primitive: a ShardPlan's ranges sliced off a
  /// loaded table give N row-contiguous shard tables whose concatenation,
  /// in shard order, is exactly the original row sequence.
  Table SliceRows(uint64_t row_begin, uint64_t row_end) const;

  /// Copies every row into a new *unfrozen* table whose dictionaries are
  /// private clones (same codes, separate objects). This is the live-table
  /// snapshot builder's primitive: appending new rows into the copy may
  /// grow its dictionaries without racing readers of the original — the
  /// shared-dictionary invariant EmptyLike relies on would make a frozen
  /// snapshot's code space mutate under concurrent sessions otherwise.
  Table UnfrozenCopyWithPrivateDicts() const;

  // --- Building -------------------------------------------------------

  /// Encodes `value` in column `col`'s dictionary (get-or-add).
  uint32_t EncodeValue(size_t col, std::string_view value);

  /// Appends a row of pre-encoded codes (one per categorical column) and
  /// measure values (one per measure column, may be empty if none).
  void AppendRow(std::span<const uint32_t> codes,
                 std::span<const double> measures = {});

  /// Encodes and appends a row of raw string cell values.
  Status AppendRowValues(const std::vector<std::string>& values,
                         std::span<const double> measures = {});

  /// Copies row `row` of `src` into this table. Requires shared dictionaries
  /// (i.e., this was created via EmptyLike(src) or src itself).
  void AppendRowFrom(const Table& src, uint64_t row);

  /// Declares a measure column. Must be called before appending rows.
  size_t AddMeasureColumn(std::string name);

  /// Freezes the table: bit-packs every categorical column to
  /// ceil(log2(dict_size)) bits (see storage/packed_column.h). Call once
  /// after loading, before handing the table to engines — appends are
  /// rejected afterwards. Idempotent. Tables that keep growing (samples
  /// built via EmptyLike/AppendRowFrom) simply never freeze and stay on the
  /// raw u32 representation.
  void Freeze();
  [[nodiscard]] bool is_frozen() const { return frozen_; }

  /// Resident bytes of the categorical column payloads in their current
  /// representation (packed after Freeze).
  [[nodiscard]] size_t resident_column_bytes() const;
  /// Bytes the same columns would occupy unpacked (4 bytes per cell) — the
  /// denominator of the packing-reduction metric.
  [[nodiscard]] size_t unpacked_column_bytes() const {
    return static_cast<size_t>(num_rows_) * cols_.size() * sizeof(uint32_t);
  }

  // --- Access ---------------------------------------------------------

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] uint64_t num_rows() const { return num_rows_; }
  [[nodiscard]] size_t num_columns() const { return schema_.num_columns(); }

  [[nodiscard]] uint32_t code(size_t col, uint64_t row) const {
    return cols_[col].Get(row);
  }
  [[nodiscard]] const PackedColumn& column(size_t col) const {
    return cols_[col];
  }

  [[nodiscard]] const ValueDictionary& dictionary(size_t col) const {
    return *dicts_[col];
  }
  const std::shared_ptr<ValueDictionary>& dictionary_ptr(size_t col) const {
    return dicts_[col];
  }

  /// The decoded string value of a cell.
  const std::string& ValueAt(size_t col, uint64_t row) const {
    return dicts_[col]->ValueOf(cols_[col].Get(row));
  }

  [[nodiscard]] size_t num_measures() const { return measure_names_.size(); }
  [[nodiscard]] const std::string& measure_name(size_t m) const {
    return measure_names_[m];
  }
  [[nodiscard]] double measure(size_t m, uint64_t row) const {
    return measures_[m][row];
  }
  const std::vector<double>& measure_column(size_t m) const {
    return measures_[m];
  }
  Result<size_t> FindMeasure(const std::string& name) const;

  /// Materializes the codes of row `row` into `out` (size num_columns()).
  void GetRow(uint64_t row, uint32_t* out) const;

 private:
  Schema schema_;
  std::vector<std::shared_ptr<ValueDictionary>> dicts_;
  std::vector<PackedColumn> cols_;
  std::vector<std::string> measure_names_;
  std::vector<std::vector<double>> measures_;
  uint64_t num_rows_ = 0;
  bool frozen_ = false;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_TABLE_H_
