#ifndef SMARTDD_STORAGE_PACKED_COLUMN_H_
#define SMARTDD_STORAGE_PACKED_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace smartdd {

/// Physical layout class of a column's codes. A column starts kUnpacked
/// (raw u32 vector, append-able) and is converted to the narrowest class
/// that holds ceil(log2(dict_size)) bits when the owning Table freezes.
enum class PackedWidth : uint8_t {
  kUnpacked,  ///< building representation: raw uint32_t codes
  kConst,     ///< 0 bits — dictionary of size 1, every code is 0
  kSub,       ///< 1, 2, or 4 bits, tight bit-packing in 64-bit words
  k8,         ///< one byte per code
  k16,        ///< two bytes per code
  k32,        ///< four bytes per code (dictionaries wider than 16 bits)
};

/// A trivially copyable, non-owning reader over a PackedColumn's payload:
/// the hot loops hoist one of these per column and decode inline, and the
/// SIMD kernels (core/scan_kernels) switch on `width` to pick a lane
/// layout. The owning column must outlive the ref.
struct PackedRef {
  const void* data = nullptr;
  uint64_t n = 0;            ///< number of codes
  PackedWidth width = PackedWidth::kUnpacked;
  uint8_t bits = 32;         ///< logical code width (32 while unpacked)

  /// Random access. Sub-byte widths are powers of two (1/2/4 bits), so a
  /// code always lives entirely inside one byte: a single byte load, shift,
  /// and mask.
  [[nodiscard]] inline uint32_t Get(uint64_t i) const {
    switch (width) {
      case PackedWidth::kUnpacked:
      case PackedWidth::k32:
        return static_cast<const uint32_t*>(data)[i];
      case PackedWidth::k8:
        return static_cast<const uint8_t*>(data)[i];
      case PackedWidth::k16:
        return static_cast<const uint16_t*>(data)[i];
      case PackedWidth::kConst:
        return 0;
      case PackedWidth::kSub: {
        const uint64_t bit = i * bits;
        return (static_cast<const uint8_t*>(data)[bit >> 3] >> (bit & 7)) &
               ((uint32_t{1} << bits) - 1);
      }
    }
    return 0;
  }
};

/// One column's dictionary codes, bit-packed to ceil(log2(dict_size)) bits
/// (rounded up to a power of two below a byte: 1, 2, 4, 8, 16, or 32) once
/// frozen. Building appends into a raw u32 vector; Freeze(dict_size)
/// converts in place to the narrowest width class (idempotent; appends are
/// rejected afterwards). Unfrozen columns keep full read support, so
/// derived tables that grow forever (samples) simply never freeze.
class PackedColumn {
 public:
  [[nodiscard]] uint64_t size() const { return size_; }
  [[nodiscard]] bool frozen() const { return width_ != PackedWidth::kUnpacked; }
  [[nodiscard]] PackedWidth width() const { return width_; }
  /// Logical code width after freeze (32 while unpacked, 0 for kConst).
  [[nodiscard]] uint8_t bits() const { return bits_; }

  /// Resident payload bytes of the current representation (includes the
  /// small over-read padding the sub-byte and SIMD gather paths rely on).
  [[nodiscard]] size_t byte_size() const;

  [[nodiscard]] PackedRef ref() const {
    PackedRef r;
    r.n = size_;
    r.width = width_;
    r.bits = bits_;
    switch (width_) {
      case PackedWidth::kUnpacked:
      case PackedWidth::k32:
        r.data = raw_.data();
        break;
      case PackedWidth::k8:
        r.data = b8_.data();
        break;
      case PackedWidth::k16:
        r.data = b16_.data();
        break;
      case PackedWidth::kSub:
        r.data = words_.data();
        break;
      case PackedWidth::kConst:
        r.data = nullptr;
        break;
    }
    return r;
  }

  [[nodiscard]] uint32_t Get(uint64_t i) const { return ref().Get(i); }

  /// Appends one code. Only legal before Freeze.
  void Append(uint32_t code) {
    if (width_ != PackedWidth::kUnpacked) FailFrozenAppend();
    raw_.push_back(code);
    ++size_;
  }

  void Reserve(uint64_t n) {
    if (width_ == PackedWidth::kUnpacked) raw_.reserve(n);
  }

  /// Packs the codes to ceil(log2(dict_size)) bits. Every stored code must
  /// be < dict_size (codes come from the column's dictionary, so this holds
  /// by construction). Idempotent: freezing a frozen column is a no-op —
  /// the width was fixed by the first freeze, which is what keeps slices of
  /// frozen tables byte-compatible with their parent even if the shared
  /// dictionary grows later.
  void Freeze(size_t dict_size);

  /// Decodes codes [begin, end) into `out` (portable scalar path; the
  /// runtime-dispatched SIMD unpack lives in core/scan_kernels and reads
  /// through ref()).
  void Unpack(uint64_t begin, uint64_t end, uint32_t* out) const;

 private:
  [[noreturn]] static void FailFrozenAppend();

  PackedWidth width_ = PackedWidth::kUnpacked;
  uint8_t bits_ = 32;
  uint64_t size_ = 0;
  std::vector<uint32_t> raw_;    // kUnpacked / k32
  std::vector<uint8_t> b8_;      // k8   (padded: SIMD gathers read 4 bytes)
  std::vector<uint16_t> b16_;    // k16  (padded likewise)
  std::vector<uint64_t> words_;  // kSub (padded: 64-bit window reads)
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_PACKED_COLUMN_H_
