#include "storage/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace smartdd {

bool ParseCsvRecord(const std::string& input, size_t* pos, char delimiter,
                    std::vector<std::string>* fields) {
  fields->clear();
  size_t i = *pos;
  const size_t n = input.size();
  if (i >= n) return false;

  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  for (; i < n; ++i) {
    char c = input[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && input[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      saw_any = true;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      saw_any = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
      saw_any = true;
    } else if (c == '\n' || c == '\r') {
      // End of record; swallow a CRLF pair.
      if (c == '\r' && i + 1 < n && input[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field += c;
      saw_any = true;
    }
  }
  fields->push_back(std::move(field));
  *pos = i;
  // A lone trailing newline yields an empty "record"; report no record.
  if (!saw_any && fields->size() == 1 && (*fields)[0].empty()) {
    return *pos < n;  // there may be more content (e.g. blank line mid-file)
  }
  return true;
}

namespace {

Result<Table> ParseCsv(const std::string& content, const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::string> fields;

  // Header / column names.
  std::vector<std::string> names;
  if (options.has_header) {
    if (!ParseCsvRecord(content, &pos, options.delimiter, &fields)) {
      return Status::InvalidArgument("CSV is empty (no header)");
    }
    for (auto& f : fields) names.push_back(std::string(Trim(f)));
  } else {
    // Peek the first record to learn the column count.
    size_t peek = pos;
    if (!ParseCsvRecord(content, &peek, options.delimiter, &fields)) {
      return Status::InvalidArgument("CSV is empty");
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      names.push_back(StrFormat("col%zu", i));
    }
  }

  // Split into categorical vs measure columns.
  std::vector<bool> is_measure(names.size(), false);
  for (const auto& m : options.measure_columns) {
    bool found = false;
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == m) {
        is_measure[i] = true;
        found = true;
      }
    }
    if (!found) {
      return Status::InvalidArgument("measure column '" + m +
                                     "' not found in CSV header");
    }
  }
  std::vector<std::string> cat_names;
  std::vector<std::string> measure_names;
  for (size_t i = 0; i < names.size(); ++i) {
    (is_measure[i] ? measure_names : cat_names).push_back(names[i]);
  }

  Table table(cat_names);
  for (auto& m : measure_names) table.AddMeasureColumn(m);

  std::vector<std::string> cat_values(cat_names.size());
  std::vector<double> measure_values(measure_names.size());
  uint64_t row_count = 0;
  uint64_t record_no = options.has_header ? 1 : 0;
  while (ParseCsvRecord(content, &pos, options.delimiter, &fields)) {
    ++record_no;
    // Skip fully blank records (e.g. trailing newline artifacts).
    if (fields.size() == 1 && Trim(fields[0]).empty()) continue;
    if (fields.size() != names.size()) {
      return Status::InvalidArgument(
          StrFormat("CSV record %llu has %zu fields, expected %zu",
                    static_cast<unsigned long long>(record_no), fields.size(),
                    names.size()));
    }
    size_t ci = 0;
    size_t mi = 0;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (is_measure[i]) {
        auto parsed = ParseDouble(fields[i]);
        if (!parsed.ok()) {
          return Status::InvalidArgument(
              StrFormat("CSV record %llu: measure field '%s' is not numeric",
                        static_cast<unsigned long long>(record_no),
                        fields[i].c_str()));
        }
        measure_values[mi++] = *parsed;
      } else {
        std::string v(Trim(fields[i]));
        cat_values[ci++] = v.empty() ? options.empty_value : v;
      }
    }
    SMARTDD_RETURN_IF_ERROR(table.AppendRowValues(cat_values, measure_values));
    ++row_count;
    if (options.max_rows > 0 && row_count >= options.max_rows) break;
  }
  table.Freeze();
  return table;
}

std::string EscapeCsvField(const std::string& field, char delimiter) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open CSV file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), options);
}

Result<Table> ReadCsvString(const std::string& content,
                            const CsvOptions& options) {
  return ParseCsv(content, options);
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot create CSV file: " + path);
  std::string sep(1, delimiter);
  // Header.
  std::vector<std::string> header;
  for (const auto& n : table.schema().names()) {
    header.push_back(EscapeCsvField(n, delimiter));
  }
  for (size_t m = 0; m < table.num_measures(); ++m) {
    header.push_back(EscapeCsvField(table.measure_name(m), delimiter));
  }
  out << Join(header, sep) << "\n";
  // Rows.
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row.push_back(EscapeCsvField(table.ValueAt(c, r), delimiter));
    }
    for (size_t m = 0; m < table.num_measures(); ++m) {
      row.push_back(FormatDouble(table.measure(m, r), 15));
    }
    out << Join(row, sep) << "\n";
  }
  if (!out) return Status::IOError("error writing CSV file: " + path);
  return Status::OK();
}

}  // namespace smartdd
