#ifndef SMARTDD_STORAGE_DICTIONARY_H_
#define SMARTDD_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smartdd {

/// Per-column value dictionary: maps distinct cell strings to dense uint32
/// codes. Rules and tuples both live in code space, so coverage checks are
/// integer compares. Append-only; codes are stable once assigned.
class ValueDictionary {
 public:
  ValueDictionary() = default;

  /// Returns the code for `value`, inserting it if new.
  uint32_t GetOrAdd(std::string_view value);

  /// Returns the code for `value` if present.
  std::optional<uint32_t> Find(std::string_view value) const;

  /// Returns the string for `code`. Requires code < size().
  const std::string& ValueOf(uint32_t code) const;

  /// Number of distinct values.
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  bool empty() const { return values_.empty(); }

  /// All values in code order.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_DICTIONARY_H_
