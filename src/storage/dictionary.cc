#include "storage/dictionary.h"

#include "common/logging.h"

namespace smartdd {

uint32_t ValueDictionary::GetOrAdd(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), code);
  return code;
}

std::optional<uint32_t> ValueDictionary::Find(std::string_view value) const {
  auto it = index_.find(std::string(value));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& ValueDictionary::ValueOf(uint32_t code) const {
  SMARTDD_CHECK(code < values_.size()) << "dictionary code out of range";
  return values_[code];
}

}  // namespace smartdd
