#include "storage/shard_plan.h"

#include "common/logging.h"

namespace smartdd {

namespace {

/// The scan granule shards align to (ScanSource::PlanChunks' chunk floor).
constexpr uint64_t kGranule = 4096;

}  // namespace

ShardPlan ShardPlan::Make(uint64_t num_rows, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  ShardPlan plan;
  plan.num_rows_ = num_rows;
  plan.ranges_.resize(num_shards);

  // Even split; interior boundaries aligned down to the scan granule when
  // every shard still gets at least one full granule that way. Integer
  // arithmetic on (num_rows, i, num_shards) only: pure by construction.
  const bool align = num_rows >= kGranule * num_shards;
  uint64_t begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    uint64_t end = num_rows * (i + 1) / num_shards;
    if (align && i + 1 < num_shards) end -= end % kGranule;
    SMARTDD_DCHECK(end >= begin);
    plan.ranges_[i] = ShardRange{begin, end};
    begin = end;
  }
  plan.ranges_.back().end = num_rows;
  return plan;
}

size_t ShardPlan::ShardOf(uint64_t row) const {
  SMARTDD_CHECK(row < num_rows_) << "row out of range";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (row < ranges_[i].end) return i;
  }
  return ranges_.size() - 1;  // unreachable: the last range ends at num_rows_
}

}  // namespace smartdd
