#include "storage/scan_source.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace smartdd {

Status ScanSource::Scan(const ScanCallback& fn) const {
  Status s = ScanRange(0, num_rows(), fn);
  scan_count_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status ScanSource::ScanChunks(uint64_t num_chunks, size_t parallelism,
                              const ChunkedScanCallback& fn) const {
  SMARTDD_CHECK(num_chunks > 0) << "ScanChunks needs at least one chunk";
  const uint64_t n = num_rows();
  // Per-chunk statuses, examined in chunk order afterwards so the reported
  // error is the same regardless of which thread ran which chunk.
  std::vector<Status> statuses(num_chunks);
  ThreadPool::Global().ParallelFor(num_chunks, parallelism, [&](uint64_t c) {
    const uint64_t begin = n * c / num_chunks;
    const uint64_t end = n * (c + 1) / num_chunks;
    if (begin == end) return;  // empty chunk (more chunks than rows)
    statuses[c] = ScanRange(
        begin, end,
        [&fn, c](uint64_t row, const uint32_t* codes, const double* measures) {
          return fn(c, row, codes, measures);
        });
  });
  scan_count_.fetch_add(1, std::memory_order_relaxed);
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

uint64_t ScanSource::PlanChunks(uint64_t num_rows) {
  constexpr uint64_t kMinRowsPerChunk = 4096;
  constexpr uint64_t kMaxChunks = 64;
  return std::clamp<uint64_t>(num_rows / kMinRowsPerChunk, 1, kMaxChunks);
}

uint64_t ScanSource::PlanChunks(uint64_t num_rows, uint64_t parallelism) {
  constexpr uint64_t kMaxChunks = 64;
  const uint64_t floor =
      std::clamp<uint64_t>(parallelism, 1, std::max<uint64_t>(1, num_rows));
  return std::min(kMaxChunks, std::max(PlanChunks(num_rows), floor));
}

Status RangeScanSource::ScanRange(uint64_t row_begin, uint64_t row_end,
                                  const ScanCallback& fn) const {
  const uint64_t end = std::min(row_end, num_rows());
  if (row_begin >= end) return Status::OK();
  const uint64_t base = begin_;
  return base_->ScanRange(
      base + row_begin, base + end,
      [&fn, base](uint64_t row, const uint32_t* codes, const double* measures) {
        return fn(row - base, codes, measures);
      });
}

ShardedScanSource::ShardedScanSource(std::vector<const ScanSource*> shards)
    : shards_(std::move(shards)) {
  SMARTDD_CHECK(!shards_.empty()) << "a sharded source needs >= 1 shard";
  offsets_.reserve(shards_.size() + 1);
  offsets_.push_back(0);
  for (const ScanSource* s : shards_) {
    SMARTDD_CHECK(s != nullptr);
    SMARTDD_CHECK(s->num_measures() == shards_[0]->num_measures());
    offsets_.push_back(offsets_.back() + s->num_rows());
  }
}

Status ShardedScanSource::ScanRange(uint64_t row_begin, uint64_t row_end,
                                    const ScanCallback& fn) const {
  const uint64_t end = std::min(row_end, num_rows());
  // Visit the overlapped shards in shard order, translating local row ids
  // back to global. An early stop (fn returning false) inside one shard
  // ends the whole pass, matching a monolithic ScanRange.
  bool stopped = false;
  for (size_t s = 0; s < shards_.size() && !stopped; ++s) {
    const uint64_t lo = std::max(row_begin, offsets_[s]);
    const uint64_t hi = std::min(end, offsets_[s + 1]);
    if (lo >= hi) continue;
    const uint64_t base = offsets_[s];
    Status st = shards_[s]->ScanRange(
        lo - base, hi - base,
        [&fn, &stopped, base](uint64_t row, const uint32_t* codes,
                              const double* measures) {
          if (!fn(row + base, codes, measures)) {
            stopped = true;
            return false;
          }
          return true;
        });
    SMARTDD_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

Status MemoryScanSource::ScanRange(uint64_t row_begin, uint64_t row_end,
                                   const ScanCallback& fn) const {
  const size_t num_cols = table_->num_columns();
  const size_t num_meas = table_->num_measures();
  std::vector<uint32_t> codes(num_cols);
  std::vector<double> measures(num_meas);
  const uint64_t end = std::min<uint64_t>(row_end, table_->num_rows());
  // Bulk-decode each column a block at a time (one Unpack per column per
  // block instead of a bit-extraction per cell), then transpose per row for
  // the row-major callback. Same rows in the same order as the direct loop.
  constexpr uint64_t kBlockRows = 4096;
  std::vector<uint32_t> decoded(num_cols * kBlockRows);
  for (uint64_t b0 = row_begin; b0 < end; b0 += kBlockRows) {
    const uint64_t b1 = std::min(end, b0 + kBlockRows);
    for (size_t c = 0; c < num_cols; ++c) {
      table_->column(c).Unpack(b0, b1, decoded.data() + c * kBlockRows);
    }
    for (uint64_t r = b0; r < b1; ++r) {
      const uint64_t t = r - b0;
      for (size_t c = 0; c < num_cols; ++c) {
        codes[c] = decoded[c * kBlockRows + t];
      }
      for (size_t m = 0; m < num_meas; ++m) {
        measures[m] = table_->measure(m, r);
      }
      if (!fn(r, codes.data(), num_meas ? measures.data() : nullptr)) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace smartdd
