#include "storage/scan_source.h"

#include <vector>

namespace smartdd {

Status MemoryScanSource::Scan(const ScanCallback& fn) const {
  const size_t num_cols = table_->num_columns();
  const size_t num_meas = table_->num_measures();
  std::vector<uint32_t> codes(num_cols);
  std::vector<double> measures(num_meas);
  const uint64_t n = table_->num_rows();
  for (uint64_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_cols; ++c) codes[c] = table_->code(c, r);
    for (size_t m = 0; m < num_meas; ++m) measures[m] = table_->measure(m, r);
    if (!fn(r, codes.data(), num_meas ? measures.data() : nullptr)) break;
  }
  ++scan_count_;
  return Status::OK();
}

}  // namespace smartdd
