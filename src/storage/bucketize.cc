#include "storage/bucketize.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace smartdd {

Bucketizer::Bucketizer(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  labels_.reserve(boundaries_.size() - 1);
  for (size_t i = 0; i + 1 < boundaries_.size(); ++i) {
    bool last = (i + 2 == boundaries_.size());
    labels_.push_back(StrFormat("[%s, %s%c", FormatDouble(boundaries_[i]).c_str(),
                                FormatDouble(boundaries_[i + 1]).c_str(),
                                last ? ']' : ')'));
  }
}

Result<Bucketizer> Bucketizer::EqualWidth(const std::vector<double>& values,
                                          size_t num_buckets) {
  if (values.empty()) return Status::InvalidArgument("no values to bucketize");
  if (num_buckets == 0) return Status::InvalidArgument("num_buckets must be > 0");
  auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  double mn = *mn_it;
  double mx = *mx_it;
  if (mn == mx) {
    // Degenerate: one bucket covering the single value.
    return Bucketizer({mn, mx + 1});
  }
  std::vector<double> bounds;
  bounds.reserve(num_buckets + 1);
  double width = (mx - mn) / static_cast<double>(num_buckets);
  for (size_t i = 0; i <= num_buckets; ++i) {
    bounds.push_back(mn + width * static_cast<double>(i));
  }
  bounds.back() = mx;  // avoid floating drift on the top edge
  return Bucketizer(std::move(bounds));
}

Result<Bucketizer> Bucketizer::EqualDepth(const std::vector<double>& values,
                                          size_t num_buckets) {
  if (values.empty()) return Status::InvalidArgument("no values to bucketize");
  if (num_buckets == 0) return Status::InvalidArgument("num_buckets must be > 0");
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> bounds;
  bounds.push_back(sorted.front());
  for (size_t i = 1; i < num_buckets; ++i) {
    size_t idx = (i * sorted.size()) / num_buckets;
    double b = sorted[idx];
    if (b > bounds.back()) bounds.push_back(b);
  }
  if (sorted.back() > bounds.back()) {
    bounds.push_back(sorted.back());
  } else {
    // All values identical (or collapse to one boundary).
    bounds.push_back(bounds.back() + 1);
  }
  return Bucketizer(std::move(bounds));
}

Result<Bucketizer> Bucketizer::FromBoundaries(std::vector<double> boundaries) {
  if (boundaries.size() < 2) {
    return Status::InvalidArgument("need at least two boundaries");
  }
  for (size_t i = 1; i < boundaries.size(); ++i) {
    if (boundaries[i] <= boundaries[i - 1]) {
      return Status::InvalidArgument("boundaries must be strictly increasing");
    }
  }
  return Bucketizer(std::move(boundaries));
}

size_t Bucketizer::BucketOf(double v) const {
  // upper_bound over interior boundaries; clamp to valid range.
  auto it = std::upper_bound(boundaries_.begin() + 1, boundaries_.end() - 1, v);
  size_t idx = static_cast<size_t>(it - (boundaries_.begin() + 1));
  return idx;
}

std::vector<std::string> Bucketizer::Apply(
    const std::vector<double>& values) const {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(LabelFor(v));
  return out;
}

}  // namespace smartdd
