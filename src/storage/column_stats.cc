#include "storage/column_stats.h"

namespace smartdd {

std::vector<ColumnStats> ComputeTableStats(const TableView& view) {
  const size_t num_cols = view.num_columns();
  std::vector<ColumnStats> stats(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    stats[c].dictionary_size = view.table().dictionary(c).size();
    stats[c].mass_per_code.assign(stats[c].dictionary_size, 0.0);
  }
  double total_mass = 0;
  const uint64_t n = view.num_rows();
  for (uint64_t i = 0; i < n; ++i) {
    double m = view.mass(i);
    total_mass += m;
    for (size_t c = 0; c < num_cols; ++c) {
      stats[c].mass_per_code[view.code(c, i)] += m;
    }
  }
  for (size_t c = 0; c < num_cols; ++c) {
    auto& s = stats[c];
    for (uint32_t code = 0; code < s.mass_per_code.size(); ++code) {
      double m = s.mass_per_code[code];
      if (m > 0) ++s.observed_distinct;
      if (m > s.most_frequent_mass) {
        s.most_frequent_mass = m;
        s.most_frequent_code = code;
      }
    }
    s.max_frequency_fraction =
        total_mass > 0 ? s.most_frequent_mass / total_mass : 0.0;
  }
  return stats;
}

ColumnStats ComputeColumnStats(const TableView& view, size_t col) {
  // Single-column variant; kept separate to avoid scanning all columns.
  ColumnStats s;
  s.dictionary_size = view.table().dictionary(col).size();
  s.mass_per_code.assign(s.dictionary_size, 0.0);
  double total_mass = 0;
  const uint64_t n = view.num_rows();
  for (uint64_t i = 0; i < n; ++i) {
    double m = view.mass(i);
    total_mass += m;
    s.mass_per_code[view.code(col, i)] += m;
  }
  for (uint32_t code = 0; code < s.mass_per_code.size(); ++code) {
    double m = s.mass_per_code[code];
    if (m > 0) ++s.observed_distinct;
    if (m > s.most_frequent_mass) {
      s.most_frequent_mass = m;
      s.most_frequent_code = code;
    }
  }
  s.max_frequency_fraction =
      total_mass > 0 ? s.most_frequent_mass / total_mass : 0.0;
  return s;
}

}  // namespace smartdd
