#ifndef SMARTDD_STORAGE_COLUMN_STATS_H_
#define SMARTDD_STORAGE_COLUMN_STATS_H_

#include <cstdint>
#include <vector>

#include "storage/table_view.h"

namespace smartdd {

/// Frequency statistics of one categorical column over a TableView. Used by
/// the Bits weighting function (dictionary cardinality), the minSS guidance
/// of §4.2, and the parametric-weight analysis of §6.1.
struct ColumnStats {
  /// Total mass per dictionary code (indexed by code; zero-mass codes are
  /// codes that exist in the dictionary but not in the view).
  std::vector<double> mass_per_code;
  /// Codes observed in the view (mass > 0).
  uint32_t observed_distinct = 0;
  /// Dictionary cardinality (|c| in the paper).
  uint32_t dictionary_size = 0;
  /// Code with the largest mass and that mass.
  uint32_t most_frequent_code = 0;
  double most_frequent_mass = 0;
  /// most_frequent_mass / total view mass (f_c in §6.1); 0 for empty views.
  double max_frequency_fraction = 0;
};

/// Computes stats for one column.
ColumnStats ComputeColumnStats(const TableView& view, size_t col);

/// Computes stats for every column in one pass over the view.
std::vector<ColumnStats> ComputeTableStats(const TableView& view);

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_COLUMN_STATS_H_
