#ifndef SMARTDD_STORAGE_SCAN_SOURCE_H_
#define SMARTDD_STORAGE_SCAN_SOURCE_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "storage/table.h"

namespace smartdd {

/// Callback invoked once per tuple during a sequential pass.
/// `codes` has one entry per categorical column; `measures` has one entry per
/// measure column (nullptr when the source has none). Return false to stop
/// the scan early.
using ScanCallback = std::function<bool(uint64_t row_id, const uint32_t* codes,
                                        const double* measures)>;

/// A table that can only be read by full sequential passes — the abstraction
/// the SampleHandler is written against. The paper's setting is a table too
/// large for memory where every Create costs a disk pass; implementations
/// here are an in-memory table (tests, small data) and a file-backed
/// DiskTable (large data).
class ScanSource {
 public:
  virtual ~ScanSource() = default;

  virtual const Schema& schema() const = 0;
  virtual uint64_t num_rows() const = 0;
  virtual size_t num_measures() const = 0;

  /// Performs one sequential pass over all tuples.
  virtual Status Scan(const ScanCallback& fn) const = 0;

  /// Creates an empty in-memory Table sharing this source's dictionaries
  /// (codes emitted by Scan are valid codes in the returned table).
  virtual Table MakeEmptyTable() const = 0;

  /// Number of completed Scan passes (for tests/benchmarks asserting how
  /// often the "disk" was touched).
  uint64_t scan_count() const { return scan_count_; }

 protected:
  mutable uint64_t scan_count_ = 0;
};

/// ScanSource over an in-memory Table.
class MemoryScanSource : public ScanSource {
 public:
  /// Does not take ownership; `table` must outlive the source.
  explicit MemoryScanSource(const Table& table) : table_(&table) {}

  const Schema& schema() const override { return table_->schema(); }
  uint64_t num_rows() const override { return table_->num_rows(); }
  size_t num_measures() const override { return table_->num_measures(); }
  Status Scan(const ScanCallback& fn) const override;
  Table MakeEmptyTable() const override { return Table::EmptyLike(*table_); }

  const Table& table() const { return *table_; }

 private:
  const Table* table_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_SCAN_SOURCE_H_
