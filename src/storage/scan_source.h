#ifndef SMARTDD_STORAGE_SCAN_SOURCE_H_
#define SMARTDD_STORAGE_SCAN_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/table.h"

namespace smartdd {

/// Callback invoked once per tuple during a sequential pass.
/// `codes` has one entry per categorical column; `measures` has one entry per
/// measure column (nullptr when the source has none). Return false to stop
/// the scan early.
using ScanCallback = std::function<bool(uint64_t row_id, const uint32_t* codes,
                                        const double* measures)>;

/// Callback for chunked passes: like ScanCallback plus the index of the
/// chunk the tuple belongs to, so callers can index per-chunk accumulators
/// without sharing state between chunks. Returning false stops only the
/// current chunk.
using ChunkedScanCallback =
    std::function<bool(uint64_t chunk, uint64_t row_id, const uint32_t* codes,
                       const double* measures)>;

/// A table that can only be read by full sequential passes — the abstraction
/// the SampleHandler is written against. The paper's setting is a table too
/// large for memory where every Create costs a disk pass; implementations
/// here are an in-memory table (tests, small data) and a file-backed
/// DiskTable (large data).
class ScanSource {
 public:
  virtual ~ScanSource() = default;

  virtual const Schema& schema() const = 0;
  virtual uint64_t num_rows() const = 0;
  virtual size_t num_measures() const = 0;

  /// Sequential pass over the row range [row_begin, row_end). Implementations
  /// must allow concurrent ScanRange calls on disjoint ranges from different
  /// threads (each call carries its own buffers/file handles). A range pass
  /// does not count towards scan_count(); only whole-table passes do.
  virtual Status ScanRange(uint64_t row_begin, uint64_t row_end,
                           const ScanCallback& fn) const = 0;

  /// Performs one sequential pass over all tuples.
  Status Scan(const ScanCallback& fn) const;

  /// One partitioned pass over all tuples: splits [0, num_rows) into
  /// `num_chunks` contiguous ranges and scans them on the shared thread pool
  /// with up to `parallelism` concurrent lanes (1 runs fully inline).
  ///
  /// Determinism contract: chunk boundaries depend only on num_rows and
  /// num_chunks — never on `parallelism` or the machine — and `fn` receives
  /// the chunk index, so callers that keep per-chunk accumulators and merge
  /// them in chunk order afterwards get bit-identical results for every
  /// thread count. `fn` must be safe to call concurrently for *different*
  /// chunk indices; within a chunk, tuples arrive in row order on one
  /// thread. Counts as a single pass in scan_count().
  Status ScanChunks(uint64_t num_chunks, size_t parallelism,
                    const ChunkedScanCallback& fn) const;

  /// Deterministic chunk-count policy for partitioned passes: a pure
  /// function of the row count (roughly one chunk per 4096 rows, capped at
  /// 64), so chunked results are reproducible across machines and thread
  /// counts.
  static uint64_t PlanChunks(uint64_t num_rows);

  /// Shard-aware variant: a pure function of (num_rows, parallelism) that
  /// never plans fewer chunks than the caller's fan-out, so a shard small
  /// enough for one chunk still splits across its workers. `parallelism`
  /// must be a configuration constant (a shard count, a fixed lane count) —
  /// NOT a runtime thread count — or chunk-merged sums stop being
  /// reproducible across machines. Chunks are still capped at 64 and at one
  /// per row.
  static uint64_t PlanChunks(uint64_t num_rows, uint64_t parallelism);

  /// Creates an empty in-memory Table sharing this source's dictionaries
  /// (codes emitted by Scan are valid codes in the returned table).
  virtual Table MakeEmptyTable() const = 0;

  /// Number of completed whole-table passes — Scan() or ScanChunks() calls —
  /// for tests/benchmarks asserting how often the "disk" was touched. Safe
  /// to read while a background pass is in flight (e.g. the §4.3
  /// prefetcher): increments are atomic.
  uint64_t scan_count() const {
    return scan_count_.load(std::memory_order_relaxed);
  }

 protected:
  mutable std::atomic<uint64_t> scan_count_{0};
};

/// A contiguous row-range slice of another source — shard s of a ShardPlan,
/// viewed as a source in its own right. Row ids are local to the slice
/// (0-based), so per-shard consumers (chunk plans, per-shard samplers) see
/// a self-contained row space; ShardedScanSource adds the offsets back when
/// presenting the shards as one table. Range passes delegate to the base
/// source's ScanRange, which must allow concurrent calls on disjoint ranges
/// (DiskTable opens a file handle per call), so N shard slices can scan in
/// parallel.
class RangeScanSource : public ScanSource {
 public:
  /// Does not take ownership; `base` must outlive the slice.
  RangeScanSource(const ScanSource& base, uint64_t row_begin, uint64_t row_end)
      : base_(&base), begin_(row_begin), end_(row_end) {
    SMARTDD_CHECK(row_begin <= row_end && row_end <= base.num_rows())
        << "slice [" << row_begin << ", " << row_end << ") out of range";
  }

  const Schema& schema() const override { return base_->schema(); }
  uint64_t num_rows() const override { return end_ - begin_; }
  size_t num_measures() const override { return base_->num_measures(); }
  Status ScanRange(uint64_t row_begin, uint64_t row_end,
                   const ScanCallback& fn) const override;
  Table MakeEmptyTable() const override { return base_->MakeEmptyTable(); }

  uint64_t base_row_begin() const { return begin_; }
  uint64_t base_row_end() const { return end_; }

 private:
  const ScanSource* base_;
  uint64_t begin_;
  uint64_t end_;
};

/// N row-contiguous shard sources presented as one logical table: row ids
/// are global (shard offsets added back), and a range pass visits the
/// overlapped shards in shard order — so every scan over the sharded source
/// delivers the same tuples in the same order as a scan over the unsharded
/// original, and chunk-merged consumers (the SampleHandler's sub-reservoir
/// stitch, ExactMasses accumulators) are byte-identical for every shard
/// count by construction.
class ShardedScanSource : public ScanSource {
 public:
  /// Does not take ownership; the shard sources must outlive this source
  /// and be row-contiguous in the given order.
  explicit ShardedScanSource(std::vector<const ScanSource*> shards);

  const Schema& schema() const override { return shards_[0]->schema(); }
  uint64_t num_rows() const override { return offsets_.back(); }
  size_t num_measures() const override { return shards_[0]->num_measures(); }
  Status ScanRange(uint64_t row_begin, uint64_t row_end,
                   const ScanCallback& fn) const override;
  Table MakeEmptyTable() const override { return shards_[0]->MakeEmptyTable(); }

  size_t num_shards() const { return shards_.size(); }
  const ScanSource& shard(size_t i) const { return *shards_[i]; }
  /// Global row offset of shard i (offsets_[num_shards()] == num_rows()).
  uint64_t shard_offset(size_t i) const { return offsets_[i]; }

 private:
  std::vector<const ScanSource*> shards_;
  std::vector<uint64_t> offsets_;
};

/// ScanSource over an in-memory Table.
class MemoryScanSource : public ScanSource {
 public:
  /// Does not take ownership; `table` must outlive the source.
  explicit MemoryScanSource(const Table& table) : table_(&table) {}

  const Schema& schema() const override { return table_->schema(); }
  uint64_t num_rows() const override { return table_->num_rows(); }
  size_t num_measures() const override { return table_->num_measures(); }
  Status ScanRange(uint64_t row_begin, uint64_t row_end,
                   const ScanCallback& fn) const override;
  Table MakeEmptyTable() const override { return Table::EmptyLike(*table_); }

  const Table& table() const { return *table_; }

 private:
  const Table* table_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_SCAN_SOURCE_H_
