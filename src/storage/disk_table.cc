#include "storage/disk_table.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace smartdd {

namespace {

constexpr uint32_t kMagic = 0x54444453;  // "SDDT" little-endian
constexpr uint32_t kVersion = 1;
constexpr size_t kScanBufferBytes = 4 << 20;  // 4 MiB read buffer

// Transient-I/O retry policy: an open or block read gets kMaxIoRetries
// additional attempts with exponential backoff (1ms, 2ms, 4ms) before its
// error escapes to the caller. Retries re-seek and re-read, never
// re-deliver rows, so the scan callback observes each tuple exactly once.
constexpr int kMaxIoRetries = 3;

Counter& IoRetries() {
  static Counter* counter = &MetricsRegistry::Default().GetCounter(
      "smartdd_io_retries_total",
      "Disk table open/read attempts retried after a transient failure");
  return *counter;
}

void BackoffSleep(int attempt) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1LL << attempt));
}

uint8_t WidthForDictSize(uint32_t dict_size) {
  if (dict_size <= 0x100) return 1;
  if (dict_size <= 0x10000) return 2;
  return 4;
}

bool WritePod(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool WriteU32(std::FILE* f, uint32_t v) { return WritePod(f, &v, 4); }
bool WriteU64(std::FILE* f, uint64_t v) { return WritePod(f, &v, 8); }

bool WriteString(std::FILE* f, const std::string& s) {
  return WriteU32(f, static_cast<uint32_t>(s.size())) &&
         WritePod(f, s.data(), s.size());
}

bool ReadPod(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

/// 64-bit-safe absolute seek: chunked range scans of multi-GiB tables need
/// byte offsets beyond what a `long` holds on LLP64 platforms.
bool SeekTo(std::FILE* f, uint64_t offset) {
#if defined(_WIN32)
  return _fseeki64(f, static_cast<long long>(offset), SEEK_SET) == 0;
#else
  return fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0;
#endif
}

bool ReadU32(std::FILE* f, uint32_t* v) { return ReadPod(f, v, 4); }
bool ReadU64(std::FILE* f, uint64_t* v) { return ReadPod(f, v, 8); }

bool ReadString(std::FILE* f, std::string* s) {
  uint32_t len;
  if (!ReadU32(f, &len)) return false;
  s->resize(len);
  return len == 0 || ReadPod(f, s->data(), len);
}

/// Writes the header (everything before the row data) for a table shape.
/// Returns the file offset where the u64 row count lives, or -1 on error.
long WriteHeader(std::FILE* f, const Schema& schema,
                 const std::vector<std::shared_ptr<ValueDictionary>>& dicts,
                 const std::vector<std::string>& measure_names,
                 uint64_t num_rows) {
  if (!WriteU32(f, kMagic) || !WriteU32(f, kVersion)) return -1;
  if (!WriteU32(f, static_cast<uint32_t>(schema.num_columns()))) return -1;
  if (!WriteU32(f, static_cast<uint32_t>(measure_names.size()))) return -1;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (!WriteString(f, schema.name(c))) return -1;
    uint8_t width = WidthForDictSize(dicts[c]->size());
    if (!WritePod(f, &width, 1)) return -1;
    if (!WriteU32(f, dicts[c]->size())) return -1;
    for (const auto& v : dicts[c]->values()) {
      if (!WriteString(f, v)) return -1;
    }
  }
  for (const auto& m : measure_names) {
    if (!WriteString(f, m)) return -1;
  }
  long row_count_offset = std::ftell(f);
  if (row_count_offset < 0) return -1;
  if (!WriteU64(f, num_rows)) return -1;
  return row_count_offset;
}

void EncodeRow(const uint32_t* codes, const double* measures,
               const std::vector<uint8_t>& widths, size_t num_measures,
               uint8_t* out) {
  size_t off = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    std::memcpy(out + off, &codes[c], widths[c]);
    off += widths[c];
  }
  for (size_t m = 0; m < num_measures; ++m) {
    std::memcpy(out + off, &measures[m], 8);
    off += 8;
  }
}

}  // namespace

// --- DiskTable --------------------------------------------------------

Status DiskTable::Write(const Table& table, const std::string& path) {
  auto writer_or = DiskTableWriter::Create(table, path);
  if (!writer_or.ok()) return writer_or.status();
  auto writer = std::move(writer_or).value();
  std::vector<uint32_t> codes(table.num_columns());
  std::vector<double> measures(table.num_measures());
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    table.GetRow(r, codes.data());
    for (size_t m = 0; m < table.num_measures(); ++m) {
      measures[m] = table.measure(m, r);
    }
    SMARTDD_RETURN_IF_ERROR(writer->AppendRow(
        codes.data(), measures.empty() ? nullptr : measures.data()));
  }
  return writer->Finish();
}

Result<std::shared_ptr<DiskTable>> DiskTable::Open(const std::string& path) {
  // Treat open failures as transient (NFS blips, fd-limit races): bounded
  // retry with backoff. Header parse errors below are structural and fail
  // immediately.
  std::FILE* f = nullptr;
  for (int attempt = 0;; ++attempt) {
    Status injected = InjectFault("disk_table.open");
    if (injected.ok()) {
      f = std::fopen(path.c_str(), "rb");
      if (f != nullptr) break;
      injected = Status::IOError("cannot open disk table: " + path);
    }
    if (attempt >= kMaxIoRetries) return injected;
    IoRetries().Inc();
    BackoffSleep(attempt);
  }
  auto fail = [&](const std::string& msg) -> Status {
    std::fclose(f);
    return Status::IOError(msg + ": " + path);
  };

  uint32_t magic, version, num_cols, num_meas;
  if (!ReadU32(f, &magic) || magic != kMagic) return fail("bad magic");
  if (!ReadU32(f, &version) || version != kVersion) return fail("bad version");
  if (!ReadU32(f, &num_cols)) return fail("truncated header");
  if (!ReadU32(f, &num_meas)) return fail("truncated header");

  auto t = std::shared_ptr<DiskTable>(new DiskTable());
  t->path_ = path;
  std::vector<std::string> names;
  for (uint32_t c = 0; c < num_cols; ++c) {
    std::string name;
    if (!ReadString(f, &name)) return fail("truncated column name");
    names.push_back(std::move(name));
    uint8_t width;
    if (!ReadPod(f, &width, 1)) return fail("truncated width");
    if (width != 1 && width != 2 && width != 4) return fail("bad cell width");
    t->widths_.push_back(width);
    uint32_t dict_size;
    if (!ReadU32(f, &dict_size)) return fail("truncated dict size");
    auto dict = std::make_shared<ValueDictionary>();
    for (uint32_t i = 0; i < dict_size; ++i) {
      std::string v;
      if (!ReadString(f, &v)) return fail("truncated dict entry");
      dict->GetOrAdd(v);
    }
    if (dict->size() != dict_size) return fail("duplicate dict entries");
    t->dicts_.push_back(std::move(dict));
  }
  t->schema_ = Schema(std::move(names));
  for (uint32_t m = 0; m < num_meas; ++m) {
    std::string name;
    if (!ReadString(f, &name)) return fail("truncated measure name");
    t->measure_names_.push_back(std::move(name));
  }
  if (!ReadU64(f, &t->num_rows_)) return fail("truncated row count");
  long off = std::ftell(f);
  if (off < 0) return fail("ftell failed");
  t->data_offset_ = static_cast<uint64_t>(off);
  t->row_bytes_ = 0;
  for (uint8_t w : t->widths_) t->row_bytes_ += w;
  t->row_bytes_ += 8 * t->measure_names_.size();
  std::fclose(f);
  return t;
}

Status DiskTable::ScanRange(uint64_t row_begin, uint64_t row_end,
                            const ScanCallback& fn) const {
  row_end = std::min(row_end, num_rows_);
  if (row_begin >= row_end) return Status::OK();
  std::FILE* f = nullptr;
  for (int attempt = 0;; ++attempt) {
    Status injected = InjectFault("disk_table.scan_open");
    if (injected.ok()) {
      f = std::fopen(path_.c_str(), "rb");
      if (f != nullptr) break;
      injected = Status::IOError("cannot open disk table: " + path_);
    }
    if (attempt >= kMaxIoRetries) return injected;
    IoRetries().Inc();
    BackoffSleep(attempt);
  }
  if (!SeekTo(f, data_offset_ + row_begin * row_bytes_)) {
    std::fclose(f);
    return Status::IOError("seek failed: " + path_);
  }
  const size_t num_cols = schema_.num_columns();
  const size_t num_meas = measure_names_.size();
  const size_t rows_per_block =
      row_bytes_ == 0 ? 1 : std::max<size_t>(1, kScanBufferBytes / row_bytes_);
  std::vector<uint8_t> buf(rows_per_block * row_bytes_);
  std::vector<uint32_t> codes(num_cols);
  std::vector<double> measures(num_meas);
  // Byte offset of each column within a row, hoisted out of the decode loop
  // so the per-cell work is one fixed-width load selected by the switch
  // below (the compiler turns the 1/2/4 memcpy cases into plain loads).
  std::vector<size_t> col_off(num_cols);
  {
    size_t off = 0;
    for (size_t c = 0; c < num_cols; ++c) {
      col_off[c] = off;
      off += widths_[c];
    }
  }
  const size_t meas_off = num_cols == 0
                              ? 0
                              : col_off[num_cols - 1] + widths_[num_cols - 1];

  uint64_t row = row_begin;
  bool keep_going = true;
  while (keep_going && row < row_end) {
    uint64_t want = std::min<uint64_t>(rows_per_block, row_end - row);
    // A short or failed block read is retried from the block's start offset
    // (clearerr + re-seek), so a torn read from a flaky device heals without
    // the callback ever seeing a duplicate or missing row.
    const uint64_t block_offset = data_offset_ + row * row_bytes_;
    size_t got = 0;
    for (int attempt = 0;; ++attempt) {
      bool short_read = false;
      Status injected = InjectFault("disk_table.read", &short_read);
      if (injected.ok()) {
        got = std::fread(buf.data(), row_bytes_, want, f);
        if (short_read) got /= 2;
        if (got == want) break;
        injected = Status::IOError(
            StrFormat("disk table truncated at row %llu",
                      static_cast<unsigned long long>(row + got)));
      }
      if (attempt >= kMaxIoRetries) {
        std::fclose(f);
        return injected;
      }
      IoRetries().Inc();
      BackoffSleep(attempt);
      std::clearerr(f);
      if (!SeekTo(f, block_offset)) {
        std::fclose(f);
        return Status::IOError("seek failed: " + path_);
      }
    }
    const uint8_t* p = buf.data();
    for (uint64_t i = 0; i < want; ++i) {
      for (size_t c = 0; c < num_cols; ++c) {
        const uint8_t* q = p + col_off[c];
        switch (widths_[c]) {
          case 1:
            codes[c] = *q;
            break;
          case 2: {
            uint16_t v;
            std::memcpy(&v, q, 2);
            codes[c] = v;
            break;
          }
          default: {
            uint32_t v;
            std::memcpy(&v, q, 4);
            codes[c] = v;
            break;
          }
        }
      }
      size_t off = meas_off;
      for (size_t m = 0; m < num_meas; ++m) {
        std::memcpy(&measures[m], p + off, 8);
        off += 8;
      }
      if (!fn(row, codes.data(), num_meas ? measures.data() : nullptr)) {
        keep_going = false;
        break;
      }
      ++row;
      p += row_bytes_;
    }
  }
  std::fclose(f);
  return Status::OK();
}

Table DiskTable::MakeEmptyTable() const {
  Table t(schema_.names());
  // Rebuild a Table whose dictionaries are the shared ones from this file.
  // Table::EmptyLike only works Table->Table, so reconstruct manually: add
  // values in code order so codes line up, via a prototype.
  Table proto(schema_.names());
  for (size_t c = 0; c < dicts_.size(); ++c) {
    for (const auto& v : dicts_[c]->values()) proto.EncodeValue(c, v);
  }
  for (const auto& m : measure_names_) proto.AddMeasureColumn(m);
  return proto;
}

// --- DiskTableWriter ---------------------------------------------------

Result<std::unique_ptr<DiskTableWriter>> DiskTableWriter::Create(
    const Table& prototype, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IOError("cannot create disk table: " + path);

  std::vector<std::shared_ptr<ValueDictionary>> dicts;
  for (size_t c = 0; c < prototype.num_columns(); ++c) {
    dicts.push_back(prototype.dictionary_ptr(c));
  }
  std::vector<std::string> measure_names;
  for (size_t m = 0; m < prototype.num_measures(); ++m) {
    measure_names.push_back(prototype.measure_name(m));
  }
  long row_count_offset =
      WriteHeader(f, prototype.schema(), dicts, measure_names, 0);
  if (row_count_offset < 0) {
    std::fclose(f);
    return Status::IOError("failed writing disk table header: " + path);
  }

  auto w = std::unique_ptr<DiskTableWriter>(new DiskTableWriter());
  w->file_ = f;
  w->path_ = path;
  w->num_measures_ = measure_names.size();
  w->row_count_offset_ = row_count_offset;
  size_t row_bytes = 0;
  for (size_t c = 0; c < prototype.num_columns(); ++c) {
    uint8_t width = WidthForDictSize(prototype.dictionary(c).size());
    w->widths_.push_back(width);
    w->dict_sizes_.push_back(prototype.dictionary(c).size());
    row_bytes += width;
  }
  row_bytes += 8 * w->num_measures_;
  w->row_buf_.resize(row_bytes);
  return w;
}

DiskTableWriter::~DiskTableWriter() {
  if (file_ != nullptr && !finished_) {
    SMARTDD_LOG(Warning) << "DiskTableWriter destroyed without Finish(): "
                         << path_;
    std::fclose(file_);
  }
}

Status DiskTableWriter::AppendRow(const uint32_t* codes,
                                  const double* measures) {
  SMARTDD_CHECK(!finished_) << "AppendRow after Finish";
  for (size_t c = 0; c < widths_.size(); ++c) {
    if (codes[c] >= dict_sizes_[c]) {
      return Status::InvalidArgument(StrFormat(
          "code %u out of dictionary range %u in column %zu (dictionaries "
          "must be final before DiskTableWriter::Create)",
          codes[c], dict_sizes_[c], c));
    }
  }
  EncodeRow(codes, measures, widths_, num_measures_, row_buf_.data());
  if (std::fwrite(row_buf_.data(), 1, row_buf_.size(), file_) !=
      row_buf_.size()) {
    return Status::IOError("short write to disk table: " + path_);
  }
  ++rows_written_;
  return Status::OK();
}

Status DiskTableWriter::Finish() {
  SMARTDD_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  if (std::fseek(file_, row_count_offset_, SEEK_SET) != 0 ||
      std::fwrite(&rows_written_, 8, 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IOError("failed to patch row count: " + path_);
  }
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("close failed: " + path_);
  return Status::OK();
}

}  // namespace smartdd
