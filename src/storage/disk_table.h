#ifndef SMARTDD_STORAGE_DISK_TABLE_H_
#define SMARTDD_STORAGE_DISK_TABLE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/scan_source.h"
#include "storage/table.h"

namespace smartdd {

/// File-backed, dictionary-encoded table. This is the "big table on disk"
/// substrate of the paper's Section 4: reading it requires a full sequential
/// pass, which is exactly what the SampleHandler tries to avoid.
///
/// Binary layout (little-endian):
///   magic "SDDT" | version u32
///   num_columns u32 | num_measures u32
///   per column: name (u32 len + bytes), cell width u8 (1|2|4),
///               dict size u32, dict entries (u32 len + bytes each)
///   per measure: name (u32 len + bytes)
///   num_rows u64
///   row-major cell data: per row, each categorical cell in its column's
///   width, then each measure as a double.
///
/// Cell width is the smallest of u8/u16/u32 that fits the column's
/// dictionary, so a 68-column census table stores ~1 byte per cell.
class DiskTable {
 public:
  /// Writes an in-memory table to `path`.
  static Status Write(const Table& table, const std::string& path);

  /// Opens an existing file; reads header + dictionaries, not the rows.
  static Result<std::shared_ptr<DiskTable>> Open(const std::string& path);

  const std::string& path() const { return path_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_measures() const { return measure_names_.size(); }
  const std::vector<std::string>& measure_names() const {
    return measure_names_;
  }
  const ValueDictionary& dictionary(size_t col) const { return *dicts_[col]; }

  /// Bytes consumed by one row on disk.
  size_t row_bytes() const { return row_bytes_; }

  /// One buffered sequential pass over all rows.
  Status Scan(const ScanCallback& fn) const {
    return ScanRange(0, num_rows_, fn);
  }

  /// Buffered sequential pass over rows [row_begin, row_end). Each call
  /// opens its own file handle, so concurrent range scans (the chunked
  /// parallel pass) are safe.
  Status ScanRange(uint64_t row_begin, uint64_t row_end,
                   const ScanCallback& fn) const;

  /// Empty in-memory table sharing the dictionaries of this file.
  Table MakeEmptyTable() const;

 private:
  DiskTable() = default;

  std::string path_;
  Schema schema_;
  std::vector<std::shared_ptr<ValueDictionary>> dicts_;
  std::vector<uint8_t> widths_;
  std::vector<std::string> measure_names_;
  uint64_t num_rows_ = 0;
  uint64_t data_offset_ = 0;
  size_t row_bytes_ = 0;
};

/// Streaming writer: declare schema + final dictionaries up front, then
/// append rows one at a time without materializing the table in memory.
/// Used by the census generator to produce multi-GB files.
class DiskTableWriter {
 public:
  /// `prototype` supplies schema, dictionaries (must be final: codes may not
  /// grow after creation), and measure column names; its rows are ignored.
  static Result<std::unique_ptr<DiskTableWriter>> Create(
      const Table& prototype, const std::string& path);

  ~DiskTableWriter();

  DiskTableWriter(const DiskTableWriter&) = delete;
  DiskTableWriter& operator=(const DiskTableWriter&) = delete;

  /// Appends one row. `codes` must have one entry per categorical column and
  /// every code must be within the prototype dictionary; `measures` one per
  /// measure column (may be nullptr if there are none).
  Status AppendRow(const uint32_t* codes, const double* measures);

  /// Patches the row count into the header and closes the file. Must be
  /// called exactly once; no appends afterwards.
  Status Finish();

  uint64_t rows_written() const { return rows_written_; }

 private:
  DiskTableWriter() = default;

  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<uint8_t> widths_;
  std::vector<uint32_t> dict_sizes_;
  size_t num_measures_ = 0;
  uint64_t rows_written_ = 0;
  long row_count_offset_ = 0;
  std::vector<uint8_t> row_buf_;
  bool finished_ = false;
};

/// ScanSource adapter over a DiskTable.
class DiskScanSource : public ScanSource {
 public:
  explicit DiskScanSource(std::shared_ptr<DiskTable> table)
      : table_(std::move(table)) {}

  const Schema& schema() const override { return table_->schema(); }
  uint64_t num_rows() const override { return table_->num_rows(); }
  size_t num_measures() const override { return table_->num_measures(); }
  Status ScanRange(uint64_t row_begin, uint64_t row_end,
                   const ScanCallback& fn) const override {
    return table_->ScanRange(row_begin, row_end, fn);
  }
  Table MakeEmptyTable() const override { return table_->MakeEmptyTable(); }

  const DiskTable& disk_table() const { return *table_; }

 private:
  std::shared_ptr<DiskTable> table_;
};

}  // namespace smartdd

#endif  // SMARTDD_STORAGE_DISK_TABLE_H_
