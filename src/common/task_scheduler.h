#ifndef SMARTDD_COMMON_TASK_SCHEDULER_H_
#define SMARTDD_COMMON_TASK_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace smartdd {

/// A fair, queue-per-client scheduler for coarse-grained background tasks
/// (prefetch passes, count refreshes), layered on top of the data-parallel
/// ThreadPool: a task may itself fan out over the shared pool via
/// ParallelFor; this class only decides *whose* task runs next.
///
/// Fairness policy: every client (an ExplorationSession, in the engine) owns
/// a queue. A queue runs its tasks strictly in FIFO order, at most one at a
/// time — exactly the serialization a dedicated per-session thread would
/// provide, without the thread. Across queues the workers adopt the next
/// runnable queue round-robin, so a client with a deep backlog cannot starve
/// another client's single task.
///
/// Worker threads are spawned lazily on the first Submit, so schedulers
/// owned by sessions that never run background work cost nothing.
class TaskScheduler {
 public:
  using QueueId = uint64_t;
  /// Never a live queue; Drain/DestroyQueue of it are no-ops.
  static constexpr QueueId kInvalidQueue = 0;

  /// `num_workers` caps how many tasks (across all queues) run at once;
  /// clamped to at least 1.
  explicit TaskScheduler(size_t num_workers = 1);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Process-wide scheduler for components that need background execution
  /// without owning worker threads (e.g. a standalone Prefetcher). Created
  /// on first use and intentionally never destroyed, so it is safe to use
  /// from static teardown.
  static TaskScheduler& Shared();

  /// Registers a new task queue. Queue ids are never reused.
  QueueId CreateQueue();

  /// Drains the queue (blocking), then removes it. Safe when tasks are
  /// still pending; no-op for kInvalidQueue or an already-destroyed id.
  /// Must not race with a concurrent Drain/DestroyQueue of the same id.
  void DestroyQueue(QueueId id);

  /// Enqueues `fn` on queue `id` (which must be live). Returns immediately;
  /// the task runs FIFO with respect to other tasks of the same queue.
  void Submit(QueueId id, std::function<Status()> fn);

  /// Blocks until queue `id` has no queued or running task; returns the
  /// status of the queue's most recently completed task (OK when none ran,
  /// or for kInvalidQueue / an unknown id). Must not race with a concurrent
  /// DestroyQueue of the same id. Re-entrant: when called from within a task
  /// of queue `id` it returns immediately (FIFO + one-in-flight means every
  /// earlier task already finished) instead of deadlocking on itself.
  Status Drain(QueueId id);

  /// Workers actually spawned so far (0 until the first Submit).
  size_t num_workers() const;

  /// Live queues (deferred self-destroys count until actually erased).
  size_t num_queues() const;

  /// Tasks queued or running across all queues.
  size_t pending_tasks() const;

 private:
  struct Queue {
    QueueId id = kInvalidQueue;
    std::deque<std::function<Status()>> tasks;
    bool running = false;
    /// Set by DestroyQueue when called from inside this queue's own task:
    /// the worker erases the queue once it has no running or queued task.
    bool destroy_on_idle = false;
    Status last_status;
  };

  void WorkerLoop();
  /// Next queue with work and no task in flight, round-robin from the
  /// cursor. Returns nullptr when nothing is runnable. Caller holds mu_.
  Queue* PickRunnableLocked();
  Queue* FindLocked(QueueId id);
  /// Erases queue `id` and repairs the round-robin cursor. Caller holds
  /// mu_; the queue must have no running or queued task.
  void EraseQueueLocked(QueueId id);

  const size_t max_workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for runnable queues
  std::condition_variable idle_cv_;  // Drain/DestroyQueue wait here
  std::vector<std::unique_ptr<Queue>> queues_;  // creation order (stable ptrs)
  size_t rr_cursor_ = 0;   // round-robin start position into queues_
  QueueId next_id_ = 1;
  size_t queued_or_running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;  // lazily spawned, guarded by mu_
};

/// Overrides the stuck-task watchdog threshold (normally the
/// SMARTDD_STUCK_TASK_MS env var, default 10000). The watchdog keeps the
/// smartdd_scheduler_stuck_tasks gauge at the number of currently-running
/// scheduler tasks older than this threshold.
void SetStuckTaskThresholdMsForTest(uint64_t ms);

}  // namespace smartdd

#endif  // SMARTDD_COMMON_TASK_SCHEDULER_H_
