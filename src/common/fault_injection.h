#ifndef SMARTDD_COMMON_FAULT_INJECTION_H_
#define SMARTDD_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace smartdd {

/// Registry of named fault points for chaos testing the request path.
///
/// Call sites declare a point by name and consult it on every pass through
/// (see InjectFault below); the registry decides whether that pass fires a
/// fault. Three fault kinds exist:
///
///   - error:      the point returns an injected non-OK Status
///   - latency:    the point sleeps for a configured duration, then proceeds
///   - short_read: the point proceeds but reports a torn read (DiskTable
///                 truncates the block it just read, as a flaky disk would)
///
/// Points are armed programmatically (tests) or from the environment
/// (`SMARTDD_FAULTS`, parsed once on first use — see ArmFromSpec for the
/// grammar). Each arming carries a firing budget: fire N times then fall
/// quiet, or fire on every hit (times <= 0). When nothing is armed the
/// whole machinery collapses to one relaxed atomic load and a predictable
/// branch, so production paths pay effectively nothing.
///
/// Fault points wired in so far:
///   disk_table.open        DiskTable::Open header read
///   disk_table.scan_open   per-ScanRange file open
///   disk_table.read        per fread block inside ScanRange
///   scheduler.task         TaskScheduler, before each task body
///   sample_handler.create  SampleHandler, before each Create pass
///   http.dispatch          HTTP adapter, before routing a request
///   rpc.server.dispatch    RPC server, before invoking a call handler
///   rpc.client.send        RPC channel, before writing a CALL frame
///   rpc.client.recv        RPC channel reader loop (kills the connection,
///                          exactly like a peer crash)
class FaultRegistry {
 public:
  /// Process-wide instance. First call arms points from $SMARTDD_FAULTS.
  static FaultRegistry& Default();

  /// Arms `point` to return `status` on its next `times` hits
  /// (times <= 0: every hit until disarmed).
  void ArmError(std::string_view point, Status status, int64_t times = 1);

  /// Arms `point` to sleep `millis` before proceeding on its next `times`
  /// hits. The injected Status is OK, so callers see a slow success.
  void ArmLatency(std::string_view point, double millis, int64_t times = 1);

  /// Arms `point` to report a torn read on its next `times` hits.
  void ArmShortRead(std::string_view point, int64_t times = 1);

  void Disarm(std::string_view point);
  void DisarmAll();

  /// Fast guard consulted by InjectFault: true when any point is armed.
  bool any_armed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

  /// Total times `point` has fired since process start (test assertions).
  uint64_t fired(std::string_view point) const;

  /// Arms points from a schedule spec, the same grammar $SMARTDD_FAULTS
  /// uses: `point=kind[:param][:times]` entries separated by ';' or ','.
  ///   disk_table.read=error            fail the next read once
  ///   disk_table.read=error:0          fail every read until disarmed
  ///   scheduler.task=latency:20:5      sleep 20ms on the next 5 tasks
  ///   disk_table.read=short_read:3     tear the next 3 block reads
  Status ArmFromSpec(std::string_view spec);

  /// Slow path behind InjectFault; call only when any_armed() is true.
  Status Hit(std::string_view point, bool* short_read);

 private:
  FaultRegistry() = default;
  struct Impl;
  Impl& impl() const;

  std::atomic<bool> any_armed_{false};
};

/// Consults fault point `point`: returns OK and does nothing when the point
/// is not armed (the common case — one relaxed load). An armed error fault
/// returns its Status; a latency fault sleeps, then returns OK; a
/// short-read fault sets *short_read (when provided) and returns OK. Every
/// firing increments the smartdd_faults_injected_total counter.
inline Status InjectFault(std::string_view point, bool* short_read = nullptr) {
  FaultRegistry& registry = FaultRegistry::Default();
  if (!registry.any_armed()) return Status::OK();
  return registry.Hit(point, short_read);
}

}  // namespace smartdd

#endif  // SMARTDD_COMMON_FAULT_INJECTION_H_
