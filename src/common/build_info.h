#ifndef SMARTDD_COMMON_BUILD_INFO_H_
#define SMARTDD_COMMON_BUILD_INFO_H_

#include <string>

namespace smartdd {

/// Identity of this binary, for telling cluster members apart in a mixed
/// deployment: the library version, the git revision it was built from, and
/// the scan-kernel path the process resolved at startup (scalar vs avx2 —
/// the one knob that legitimately differs between otherwise identical
/// builds on heterogeneous hosts).
struct BuildInfo {
  std::string version;
  std::string git_sha;
  std::string kernel;
};

/// The process's build identity. `kernel` reflects the auto-resolved kernel
/// path at call time (SMARTDD_KERNEL + CPU detection).
BuildInfo GetBuildInfo();

/// Registers the `smartdd_build_info` gauge (constant 1, identity in the
/// labels — the standard Prometheus build-info idiom) so /metrics exposes
/// which build each cluster member runs. Idempotent.
void RegisterBuildInfoMetric();

/// One-line "version=<v> git_sha=<sha> kernel=<k>" rendering (cluster
/// handshakes, startup banners).
std::string BuildInfoLine();

}  // namespace smartdd

#endif  // SMARTDD_COMMON_BUILD_INFO_H_
