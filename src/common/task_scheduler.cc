#include "common/task_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace smartdd {

TaskScheduler::TaskScheduler(size_t num_workers)
    : max_workers_(std::max<size_t>(1, num_workers)) {}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

TaskScheduler& TaskScheduler::Shared() {
  // Leaked on purpose: standalone prefetchers may be destroyed during static
  // teardown, after a function-local static scheduler would have been.
  static TaskScheduler* scheduler = new TaskScheduler(2);
  return *scheduler;
}

TaskScheduler::Queue* TaskScheduler::FindLocked(QueueId id) {
  for (auto& q : queues_) {
    if (q->id == id) return q.get();
  }
  return nullptr;
}

TaskScheduler::Queue* TaskScheduler::PickRunnableLocked() {
  const size_t n = queues_.size();
  for (size_t k = 0; k < n; ++k) {
    Queue* q = queues_[(rr_cursor_ + k) % n].get();
    if (!q->running && !q->tasks.empty()) {
      // Advance past the adopted queue so the next pick starts at its
      // successor: strict round-robin across runnable queues.
      rr_cursor_ = (rr_cursor_ + k + 1) % n;
      return q;
    }
  }
  return nullptr;
}

TaskScheduler::QueueId TaskScheduler::CreateQueue() {
  std::lock_guard<std::mutex> lock(mu_);
  auto q = std::make_unique<Queue>();
  q->id = next_id_++;
  queues_.push_back(std::move(q));
  return queues_.back()->id;
}

void TaskScheduler::DestroyQueue(QueueId id) {
  if (id == kInvalidQueue) return;
  (void)Drain(id);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i]->id == id) {
      queues_.erase(queues_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (!queues_.empty()) rr_cursor_ %= queues_.size();
}

void TaskScheduler::Submit(QueueId id, std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Queue* q = FindLocked(id);
    SMARTDD_CHECK(q != nullptr) << "Submit on unknown task queue " << id;
    q->tasks.push_back(std::move(fn));
    ++queued_or_running_;
    // Lazy worker spawn: one thread per outstanding task until the cap.
    if (workers_.size() < max_workers_ &&
        workers_.size() < queued_or_running_) {
      workers_.emplace_back([this]() { WorkerLoop(); });
    }
  }
  work_cv_.notify_one();
}

Status TaskScheduler::Drain(QueueId id) {
  if (id == kInvalidQueue) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  Queue* q = FindLocked(id);
  if (q == nullptr) return Status::OK();
  idle_cv_.wait(lock, [&]() { return q->tasks.empty() && !q->running; });
  return q->last_status;
}

size_t TaskScheduler::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

size_t TaskScheduler::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_or_running_;
}

void TaskScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Queue* q = nullptr;
    work_cv_.wait(lock, [&]() {
      if (shutdown_) return true;
      q = PickRunnableLocked();
      return q != nullptr;
    });
    if (shutdown_) return;
    std::function<Status()> fn = std::move(q->tasks.front());
    q->tasks.pop_front();
    q->running = true;
    lock.unlock();
    Status s = fn();
    lock.lock();
    // `q` stays valid across the unlocked region: DestroyQueue drains the
    // queue first, and the drain cannot finish while running is set.
    q->running = false;
    q->last_status = std::move(s);
    --queued_or_running_;
    idle_cv_.notify_all();
    if (!q->tasks.empty()) work_cv_.notify_one();
  }
}

}  // namespace smartdd
