#include "common/task_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"

namespace smartdd {

namespace {
/// The queue whose task the current thread is executing, if any. Lets Drain
/// detect self-drain: a task draining its own queue would otherwise wait for
/// itself forever.
thread_local const TaskScheduler* tls_running_scheduler = nullptr;
thread_local TaskScheduler::QueueId tls_running_queue =
    TaskScheduler::kInvalidQueue;

/// Process-wide scheduler instruments, aggregated across every
/// TaskScheduler instance (per-engine schedulers, the shared singleton).
struct SchedulerMetrics {
  Gauge& queue_depth;
  Histogram& task_seconds;
};

SchedulerMetrics& Metrics() {
  static SchedulerMetrics* metrics = new SchedulerMetrics{
      MetricsRegistry::Default().GetGauge(
          "smartdd_scheduler_queue_depth",
          "Background tasks queued or running across all task schedulers"),
      MetricsRegistry::Default().GetHistogram(
          "smartdd_scheduler_task_seconds",
          "Run time of background tasks (prefetch passes, expansions)",
          Histogram::LatencySeconds())};
  return *metrics;
}

std::atomic<uint64_t>& StuckThresholdMs() {
  static std::atomic<uint64_t>* threshold = [] {
    uint64_t ms = 10000;
    if (const char* env = std::getenv("SMARTDD_STUCK_TASK_MS")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v > 0) ms = v;
    }
    return new std::atomic<uint64_t>(ms);
  }();
  return *threshold;
}

/// Stuck-task watchdog: tracks the start time of every task currently
/// running on any scheduler and keeps the smartdd_scheduler_stuck_tasks
/// gauge at the number of running tasks older than SMARTDD_STUCK_TASK_MS
/// (default 10s). The gauge is refreshed on every task start/finish, so a
/// wedged task becomes visible as soon as any other task transitions —
/// which, under the load that makes wedging matter, is continuously.
class TaskWatchdog {
 public:
  static TaskWatchdog& Instance() {
    static TaskWatchdog* watchdog = new TaskWatchdog;
    return *watchdog;
  }

  uint64_t Enter() {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t token = next_token_++;
    running_[token] = std::chrono::steady_clock::now();
    RefreshLocked();
    return token;
  }

  void Exit(uint64_t token) {
    std::lock_guard<std::mutex> lock(mu_);
    running_.erase(token);
    RefreshLocked();
  }

 private:
  TaskWatchdog()
      : stuck_(MetricsRegistry::Default().GetGauge(
            "smartdd_scheduler_stuck_tasks",
            "Running scheduler tasks older than SMARTDD_STUCK_TASK_MS")) {}

  void RefreshLocked() {
    const auto now = std::chrono::steady_clock::now();
    const auto threshold = std::chrono::milliseconds(
        StuckThresholdMs().load(std::memory_order_relaxed));
    int64_t stuck = 0;
    for (const auto& [token, start] : running_) {
      if (now - start >= threshold) ++stuck;
    }
    stuck_.Set(stuck);
  }

  std::mutex mu_;
  std::map<uint64_t, std::chrono::steady_clock::time_point> running_;
  uint64_t next_token_ = 0;
  Gauge& stuck_;
};

/// Runs one task with its latency observed and the watchdog armed. The
/// scheduler.task fault point fires before the body: latency faults stall
/// inside the watchdog window (so chaos tests can trip the stuck gauge),
/// error faults replace the task's status without running it.
Status RunTimed(const std::function<Status()>& fn) {
  WallTimer timer;
  uint64_t token = TaskWatchdog::Instance().Enter();
  Status status = InjectFault("scheduler.task");
  if (status.ok()) status = fn();
  TaskWatchdog::Instance().Exit(token);
  Metrics().task_seconds.Observe(timer.ElapsedSeconds());
  return status;
}
}  // namespace

void SetStuckTaskThresholdMsForTest(uint64_t ms) {
  StuckThresholdMs().store(ms, std::memory_order_relaxed);
}

TaskScheduler::TaskScheduler(size_t num_workers)
    : max_workers_(std::max<size_t>(1, num_workers)) {}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Tasks still queued at shutdown never run; return their depth so the
  // process-wide gauge does not drift.
  if (queued_or_running_ > 0) {
    Metrics().queue_depth.Sub(static_cast<int64_t>(queued_or_running_));
  }
}

TaskScheduler& TaskScheduler::Shared() {
  // Leaked on purpose: standalone prefetchers may be destroyed during static
  // teardown, after a function-local static scheduler would have been.
  static TaskScheduler* scheduler = new TaskScheduler(2);
  return *scheduler;
}

TaskScheduler::Queue* TaskScheduler::FindLocked(QueueId id) {
  for (auto& q : queues_) {
    if (q->id == id) return q.get();
  }
  return nullptr;
}

TaskScheduler::Queue* TaskScheduler::PickRunnableLocked() {
  const size_t n = queues_.size();
  for (size_t k = 0; k < n; ++k) {
    Queue* q = queues_[(rr_cursor_ + k) % n].get();
    if (!q->running && !q->tasks.empty()) {
      // Advance past the adopted queue so the next pick starts at its
      // successor: strict round-robin across runnable queues.
      rr_cursor_ = (rr_cursor_ + k + 1) % n;
      return q;
    }
  }
  return nullptr;
}

TaskScheduler::QueueId TaskScheduler::CreateQueue() {
  std::lock_guard<std::mutex> lock(mu_);
  auto q = std::make_unique<Queue>();
  q->id = next_id_++;
  queues_.push_back(std::move(q));
  return queues_.back()->id;
}

void TaskScheduler::DestroyQueue(QueueId id) {
  if (id == kInvalidQueue) return;
  (void)Drain(id);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i]->id == id) {
      if (queues_[i]->running || !queues_[i]->tasks.empty()) {
        // Drain returned early because we are inside this queue's own
        // running task (self-destroy, e.g. a progress sink closing its
        // session from OnDone). Erasing now would free the Queue the
        // worker still writes to when the task returns — defer: the
        // worker erases the queue once it falls idle, after running any
        // remaining tasks.
        queues_[i]->destroy_on_idle = true;
        return;
      }
      EraseQueueLocked(id);
      return;
    }
  }
}

void TaskScheduler::Submit(QueueId id, std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Queue* q = FindLocked(id);
    SMARTDD_CHECK(q != nullptr) << "Submit on unknown task queue " << id;
    q->tasks.push_back(std::move(fn));
    ++queued_or_running_;
    Metrics().queue_depth.Add(1);
    // Lazy worker spawn: one thread per outstanding task until the cap.
    if (workers_.size() < max_workers_ &&
        workers_.size() < queued_or_running_) {
      workers_.emplace_back([this]() { WorkerLoop(); });
    }
  }
  work_cv_.notify_one();
}

Status TaskScheduler::Drain(QueueId id) {
  if (id == kInvalidQueue) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  Queue* q = FindLocked(id);
  if (q == nullptr) return Status::OK();
  if (tls_running_scheduler == this && tls_running_queue == id) {
    // Drain called from within a task of this very queue (e.g. a
    // service-submitted expansion joining its session's prefetch). The
    // queue is FIFO with at most one task in flight, so every earlier task
    // has already completed; waiting would deadlock on ourselves. Report
    // the previous task's status.
    return q->last_status;
  }
  if (tls_running_scheduler == this) {
    // Cross-queue drain from inside a task: the caller occupies one of a
    // bounded set of workers, and no new workers spawn while it blocks — if
    // every worker ended up here, the queues being waited on could never
    // run (e.g. scheduler_workers=1, a service expansion task draining its
    // session's pending prefetch). Instead of blocking, help: run the
    // target queue's tasks inline, in their FIFO order, until it is empty.
    while (!q->tasks.empty() || q->running) {
      if (q->running || q->tasks.empty()) {
        // A task of q runs on another worker (or q emptied meanwhile);
        // wait for its completion notification and re-check.
        idle_cv_.wait(lock);
        continue;
      }
      std::function<Status()> fn = std::move(q->tasks.front());
      q->tasks.pop_front();
      q->running = true;
      lock.unlock();
      const QueueId outer = tls_running_queue;
      tls_running_queue = id;
      Status s = RunTimed(fn);
      tls_running_queue = outer;
      lock.lock();
      q->running = false;
      q->last_status = std::move(s);
      --queued_or_running_;
      Metrics().queue_depth.Sub(1);
      idle_cv_.notify_all();
    }
    Status last = q->last_status;
    if (q->destroy_on_idle) {
      // An inline-run task self-destroyed the queue; honour the deferred
      // erase here — WorkerLoop never sees this queue fall idle.
      EraseQueueLocked(q->id);
    }
    return last;
  }
  idle_cv_.wait(lock, [&]() { return q->tasks.empty() && !q->running; });
  return q->last_status;
}

size_t TaskScheduler::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

size_t TaskScheduler::num_queues() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queues_.size();
}

size_t TaskScheduler::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_or_running_;
}

void TaskScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Queue* q = nullptr;
    work_cv_.wait(lock, [&]() {
      if (shutdown_) return true;
      q = PickRunnableLocked();
      return q != nullptr;
    });
    if (shutdown_) return;
    std::function<Status()> fn = std::move(q->tasks.front());
    q->tasks.pop_front();
    q->running = true;
    lock.unlock();
    tls_running_scheduler = this;
    tls_running_queue = q->id;
    Status s = RunTimed(fn);
    tls_running_scheduler = nullptr;
    tls_running_queue = kInvalidQueue;
    lock.lock();
    // `q` stays valid across the unlocked region: DestroyQueue drains the
    // queue first, and a drain cannot finish while running is set — a
    // self-destroy from inside the task only marks destroy_on_idle, which
    // is honoured here.
    q->running = false;
    q->last_status = std::move(s);
    --queued_or_running_;
    Metrics().queue_depth.Sub(1);
    idle_cv_.notify_all();
    if (!q->tasks.empty()) {
      work_cv_.notify_one();
    } else if (q->destroy_on_idle) {
      EraseQueueLocked(q->id);
    }
  }
}

void TaskScheduler::EraseQueueLocked(QueueId id) {
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i]->id == id) {
      queues_.erase(queues_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (!queues_.empty()) rr_cursor_ %= queues_.size();
}

}  // namespace smartdd
