#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace smartdd {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t DeriveSeed(uint64_t root, uint64_t stream) {
  uint64_t s = root;
  s = SplitMix64(s) ^ stream;
  return SplitMix64(s);
}

uint64_t DeriveSeed(uint64_t root, uint64_t stream, uint64_t substream) {
  return DeriveSeed(DeriveSeed(root, stream), substream);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SMARTDD_DCHECK(bound > 0);
  // Debiased modulo (rejection sampling on the top of the range).
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  SMARTDD_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng::ZipfTable::ZipfTable(size_t n, double s) {
  SMARTDD_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
}

size_t Rng::ZipfTable::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace smartdd
