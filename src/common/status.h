#ifndef SMARTDD_COMMON_STATUS_H_
#define SMARTDD_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace smartdd {

/// Error categories used throughout the library. Follows the Arrow/RocksDB
/// convention: fallible operations return a Status (or Result<T>) instead of
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kCapacityExceeded,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  /// A required peer (a cluster backend, a dead connection) cannot serve the
  /// request right now; retrying later or elsewhere may succeed.
  kUnavailable,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the success case (no message
/// allocation), carries a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace smartdd

/// Propagates a non-OK Status from the enclosing function.
#define SMARTDD_RETURN_IF_ERROR(expr)                    \
  do {                                                   \
    ::smartdd::Status _smartdd_status = (expr);          \
    if (!_smartdd_status.ok()) return _smartdd_status;   \
  } while (false)

#endif  // SMARTDD_COMMON_STATUS_H_
