#include "common/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"

namespace smartdd {
namespace {

enum class FaultKind { kNone, kError, kLatency, kShortRead };

struct PointState {
  FaultKind kind = FaultKind::kNone;
  Status status;          // kError payload
  double latency_ms = 0;  // kLatency payload
  int64_t remaining = 0;  // hits left to fire; < 0 means unlimited
  uint64_t fired = 0;     // lifetime firings, survives disarm
};

Counter& InjectedCounter() {
  static Counter* counter = &MetricsRegistry::Default().GetCounter(
      "smartdd_faults_injected_total",
      "Faults fired by armed fault points (chaos testing)");
  return *counter;
}

}  // namespace

struct FaultRegistry::Impl {
  std::mutex mu;
  // Keyed by point name; transparent less<> so string_view lookups do not
  // allocate.
  std::map<std::string, PointState, std::less<>> points;
};

FaultRegistry::Impl& FaultRegistry::impl() const {
  static Impl* impl = new Impl;
  return *impl;
}

FaultRegistry& FaultRegistry::Default() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry;
    if (const char* spec = std::getenv("SMARTDD_FAULTS")) {
      // Env arming is best-effort: a malformed spec must not take the
      // process down, it just logs through the returned status being
      // dropped. Tests use ArmFromSpec directly and check the status.
      (void)r->ArmFromSpec(spec);
    }
    return r;
  }();
  return *registry;
}

void FaultRegistry::ArmError(std::string_view point, Status status,
                             int64_t times) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  PointState& state = im.points[std::string(point)];
  state.kind = FaultKind::kError;
  state.status = std::move(status);
  state.remaining = times <= 0 ? -1 : times;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::ArmLatency(std::string_view point, double millis,
                               int64_t times) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  PointState& state = im.points[std::string(point)];
  state.kind = FaultKind::kLatency;
  state.latency_ms = millis;
  state.remaining = times <= 0 ? -1 : times;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::ArmShortRead(std::string_view point, int64_t times) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  PointState& state = im.points[std::string(point)];
  state.kind = FaultKind::kShortRead;
  state.remaining = times <= 0 ? -1 : times;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::Disarm(std::string_view point) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.points.find(point);
  if (it != im.points.end()) {
    it->second.kind = FaultKind::kNone;
    it->second.remaining = 0;
  }
  bool armed = false;
  for (const auto& [name, state] : im.points) {
    if (state.kind != FaultKind::kNone && state.remaining != 0) armed = true;
  }
  any_armed_.store(armed, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, state] : im.points) {
    state.kind = FaultKind::kNone;
    state.remaining = 0;
  }
  any_armed_.store(false, std::memory_order_relaxed);
}

uint64_t FaultRegistry::fired(std::string_view point) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.points.find(point);
  return it == im.points.end() ? 0 : it->second.fired;
}

Status FaultRegistry::ArmFromSpec(std::string_view spec) {
  std::string normalized(spec);
  for (char& c : normalized) {
    if (c == ';') c = ',';
  }
  for (const std::string& raw : Split(normalized, ',')) {
    std::string_view entry = Trim(raw);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("fault spec entry '%s' is not point=kind[:param][:times]",
                    std::string(entry).c_str()));
    }
    std::string point(Trim(entry.substr(0, eq)));
    std::vector<std::string> parts = Split(entry.substr(eq + 1), ':');
    const std::string& kind = parts[0];
    if (kind == "error") {
      int64_t times = 1;
      if (parts.size() >= 2) {
        SMARTDD_ASSIGN_OR_RETURN(times, ParseInt64(parts[1]));
      }
      ArmError(point,
               Status::IOError(StrFormat("injected fault at %s",
                                         point.c_str())),
               times);
    } else if (kind == "latency") {
      if (parts.size() < 2) {
        return Status::InvalidArgument(
            StrFormat("latency fault '%s' needs latency:<ms>[:times]",
                      point.c_str()));
      }
      double ms = 0;
      SMARTDD_ASSIGN_OR_RETURN(ms, ParseDouble(parts[1]));
      int64_t times = 1;
      if (parts.size() >= 3) {
        SMARTDD_ASSIGN_OR_RETURN(times, ParseInt64(parts[2]));
      }
      ArmLatency(point, ms, times);
    } else if (kind == "short_read") {
      int64_t times = 1;
      if (parts.size() >= 2) {
        SMARTDD_ASSIGN_OR_RETURN(times, ParseInt64(parts[1]));
      }
      ArmShortRead(point, times);
    } else {
      return Status::InvalidArgument(StrFormat(
          "unknown fault kind '%s' for point '%s' (want error, latency, or "
          "short_read)",
          kind.c_str(), point.c_str()));
    }
  }
  return Status::OK();
}

Status FaultRegistry::Hit(std::string_view point, bool* short_read) {
  FaultKind kind = FaultKind::kNone;
  Status status;
  double latency_ms = 0;
  {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.points.find(point);
    if (it == im.points.end()) return Status::OK();
    PointState& state = it->second;
    if (state.kind == FaultKind::kNone || state.remaining == 0) {
      return Status::OK();
    }
    if (state.remaining > 0) --state.remaining;
    ++state.fired;
    kind = state.kind;
    status = state.status;
    latency_ms = state.latency_ms;
  }
  InjectedCounter().Inc();
  switch (kind) {
    case FaultKind::kError:
      return status;
    case FaultKind::kLatency:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(latency_ms));
      return Status::OK();
    case FaultKind::kShortRead:
      if (short_read != nullptr) *short_read = true;
      return Status::OK();
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace smartdd
