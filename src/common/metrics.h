#ifndef SMARTDD_COMMON_METRICS_H_
#define SMARTDD_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace smartdd {

/// Lock-cheap operational metrics: a process-wide registry of named
/// counters, gauges, and histograms, rendered in the Prometheus text
/// exposition format by the HTTP server's GET /metrics. The hot path is a
/// single relaxed atomic RMW per update — cheap enough to live inside the
/// TaskScheduler worker loop and the epoll event loop; the registry mutex
/// is only taken at registration and render time. Instruments are created
/// once and never destroyed (components cache plain references), so
/// updates from static-teardown stragglers stay safe.

/// Monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, open connections).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: each bucket counts
/// observations <= its upper bound; +Inf is implicit). Bounds are fixed at
/// registration, so Observe is branch-light and allocation-free.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an empty list still tracks
  /// sum/count (a +Inf-only histogram).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Raw (non-cumulative) hits in bucket i; i == bounds().size() is the
  /// +Inf overflow bucket.
  uint64_t BucketCount(size_t i) const;
  /// Cumulative count of observations <= bounds()[i].
  uint64_t CumulativeCount(size_t i) const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Latency bucket ladder used by the built-in instruments: 100us .. ~100s
  /// in decade steps with 1-2.5-5 subdivisions.
  static std::vector<double> LatencySeconds();

 private:
  std::vector<double> bounds_;
  /// Non-cumulative per-bucket hits; bucket_[bounds_.size()] is the +Inf
  /// overflow. Rendered cumulatively.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Named instrument registry. Get* registers on first use and returns the
/// same instrument for the same name thereafter (the help text and bounds
/// of the first registration win), so independent components may share one
/// time series by naming it identically.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrument registers with.
  /// Created on first use and intentionally leaked, so instruments cached
  /// by objects destroyed during static teardown remain valid.
  static MetricsRegistry& Default();

  Counter& GetCounter(std::string_view name, std::string_view help);
  Gauge& GetGauge(std::string_view name, std::string_view help);
  Histogram& GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds);

  /// Prometheus text exposition format (# HELP / # TYPE / samples), families
  /// sorted by name. Counter/gauge values are live atomic reads; a
  /// histogram's bucket/sum/count lines are each individually coherent but
  /// not cut from one atomic snapshot (standard for lock-free collectors).
  std::string RenderPrometheus() const;

  /// Instrument count across all kinds (for tests).
  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  /// Ordered so RenderPrometheus output is deterministic.
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace smartdd

#endif  // SMARTDD_COMMON_METRICS_H_
