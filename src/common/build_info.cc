#include "common/build_info.h"

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/scan_kernels.h"

// The build system stamps the revision (CMake runs `git rev-parse` at
// configure time); a tarball build without git falls back to "unknown".
#ifndef SMARTDD_GIT_SHA
#define SMARTDD_GIT_SHA "unknown"
#endif
#ifndef SMARTDD_VERSION
#define SMARTDD_VERSION "0.9.0"
#endif

namespace smartdd {

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.version = SMARTDD_VERSION;
  info.git_sha = SMARTDD_GIT_SHA;
  info.kernel = KernelPathName(ResolveKernelPath(KernelPref::kAuto));
  return info;
}

void RegisterBuildInfoMetric() {
  BuildInfo info = GetBuildInfo();
  MetricsRegistry::Default()
      .GetGauge(StrFormat("smartdd_build_info{version=\"%s\",git_sha=\"%s\","
                          "kernel=\"%s\"}",
                          info.version.c_str(), info.git_sha.c_str(),
                          info.kernel.c_str()),
                "Build identity of this process (value is always 1; the "
                "information is in the labels)")
      .Set(1);
}

std::string BuildInfoLine() {
  BuildInfo info = GetBuildInfo();
  return StrFormat("version=%s git_sha=%s kernel=%s", info.version.c_str(),
                   info.git_sha.c_str(), info.kernel.c_str());
}

}  // namespace smartdd
