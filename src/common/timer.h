#ifndef SMARTDD_COMMON_TIMER_H_
#define SMARTDD_COMMON_TIMER_H_

#include <chrono>

namespace smartdd {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace smartdd

#endif  // SMARTDD_COMMON_TIMER_H_
