#ifndef SMARTDD_COMMON_FLAT_MAP_H_
#define SMARTDD_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace smartdd {

/// A 128-bit packed key. Candidate value tuples (and column sets) pack into
/// one of these, so hashing and equality are two-word arithmetic instead of
/// a heap-allocated std::vector walk.
struct Key128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Key128& a, const Key128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Key128& a, const Key128& b) {
    return !(a == b);
  }
};

inline uint64_t HashKey128(const Key128& k) {
  return HashMix64(k.lo ^ (HashMix64(k.hi) + 0x9E3779B97F4A7C15ULL));
}

/// Open-addressing hash map from Key128 to V with linear probing and a
/// dense, insertion-ordered entry store.
///
/// Layout: `entries_` is a flat vector of (key, value) pairs in insertion
/// order; `slots_` is a power-of-two index table whose cells hold
/// entry-index + 1 (0 = empty). Lookups never allocate; growth re-derives
/// only the 4-byte index cells (no per-entry rehash storage); iteration is
/// a linear scan of `entries_` in insertion order — which makes iteration
/// order deterministic, a property the best-marginal search's tie-breaking
/// and thread-count-independence proofs rely on.
///
/// Value pointers follow std::vector rules: valid until the next insert.
/// Not thread-safe for concurrent mutation; once the map is fully built,
/// concurrent reads and concurrent writes to *distinct* values (addressed
/// by entry index) are safe — the candidate-counting pass exploits this,
/// with many threads counting into disjoint entries of one map.
template <typename V>
class FlatMap {
 public:
  using Entry = std::pair<Key128, V>;

  FlatMap() = default;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void Reserve(size_t n) {
    entries_.reserve(n);
    size_t needed = SlotCountFor(n);
    if (needed > slots_.size()) Rehash(needed);
  }

  void Clear() {
    entries_.clear();
    std::fill(slots_.begin(), slots_.end(), 0u);
  }

  /// Returns (pointer to value, inserted). The pointer is valid until the
  /// next insert (std::vector semantics); hold entry indices across
  /// inserts, not pointers.
  std::pair<V*, bool> FindOrInsert(const Key128& key) {
    if (NeedsGrow()) Rehash(SlotCountFor(entries_.size() + 1));
    size_t i = ProbeStart(key);
    while (slots_[i] != 0) {
      Entry& e = entries_[slots_[i] - 1];
      if (e.first == key) return {&e.second, false};
      i = (i + 1) & mask_;
    }
    entries_.emplace_back(key, V{});
    slots_[i] = static_cast<uint32_t>(entries_.size());
    return {&entries_.back().second, true};
  }

  V* Find(const Key128& key) {
    return const_cast<V*>(std::as_const(*this).Find(key));
  }
  const V* Find(const Key128& key) const {
    if (slots_.empty()) return nullptr;
    size_t i = ProbeStart(key);
    while (slots_[i] != 0) {
      const Entry& e = entries_[slots_[i] - 1];
      if (e.first == key) return &e.second;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// Insertion-ordered entry access (for deterministic iteration).
  Entry& entry(size_t i) { return entries_[i]; }
  const Entry& entry(size_t i) const { return entries_[i]; }

  typename std::vector<Entry>::iterator begin() { return entries_.begin(); }
  typename std::vector<Entry>::iterator end() { return entries_.end(); }
  typename std::vector<Entry>::const_iterator begin() const {
    return entries_.begin();
  }
  typename std::vector<Entry>::const_iterator end() const {
    return entries_.end();
  }

 private:
  static constexpr size_t kMinSlots = 16;

  /// Max load factor 0.75 over the slot table.
  static size_t SlotCountFor(size_t n) {
    size_t slots = kMinSlots;
    while (n * 4 >= slots * 3) slots <<= 1;
    return slots;
  }

  bool NeedsGrow() const {
    return slots_.empty() || (entries_.size() + 1) * 4 >= slots_.size() * 3;
  }

  size_t ProbeStart(const Key128& key) const {
    return static_cast<size_t>(HashKey128(key)) & mask_;
  }

  void Rehash(size_t new_slot_count) {
    SMARTDD_DCHECK((new_slot_count & (new_slot_count - 1)) == 0);
    slots_.assign(new_slot_count, 0u);
    mask_ = new_slot_count - 1;
    for (size_t e = 0; e < entries_.size(); ++e) {
      size_t i = ProbeStart(entries_[e].first);
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = static_cast<uint32_t>(e + 1);
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
};

/// Packs value tuples over a fixed column set into Key128s.
///
/// Each column contributes bit_width(dictionary size) bits, so realistic
/// rule arities (e.g. 12 columns of ≤1024 values) pack exactly. When the
/// widths sum past 128 bits the packer degrades to a two-lane 128-bit hash
/// of the tuple: lookups stay allocation-free and deterministic, at a
/// collision risk of ~n²/2¹²⁸ — negligible against any physical candidate
/// count (and identical across thread counts, so differential tests are
/// unaffected).
class TuplePacker {
 public:
  TuplePacker() = default;

  /// `bits[i]` is the bit width of position i's code space.
  explicit TuplePacker(const std::vector<uint8_t>& bits) {
    size_t total = 0;
    for (uint8_t b : bits) total += b;
    exact_ = total <= 128;
    bits_.assign(bits.begin(), bits.end());
  }

  bool exact() const { return exact_; }

  Key128 Pack(const uint32_t* vals, size_t arity) const {
    SMARTDD_DCHECK(arity == bits_.size());
    Key128 key;
    if (exact_) {
      size_t shift = 0;
      for (size_t i = 0; i < arity; ++i) {
        uint64_t v = vals[i];
        if (shift < 64) {
          key.lo |= v << shift;
          if (shift + bits_[i] > 64 && shift != 0) {
            key.hi |= v >> (64 - shift);
          }
        } else {
          key.hi |= v << (shift - 64);
        }
        shift += bits_[i];
      }
    } else {
      key.lo = HashCodes(vals, arity);
      key.hi = HashMix64(key.lo ^ 0xA24BAED4963EE407ULL);
      for (size_t i = 0; i < arity; ++i) {
        key.hi = HashCombine(key.hi, vals[i]);
      }
    }
    return key;
  }

 private:
  std::vector<uint8_t> bits_;
  bool exact_ = true;
};

/// Bit width needed to store codes in [0, cardinality).
inline uint8_t CodeBitWidth(size_t cardinality) {
  uint8_t bits = 1;
  while ((size_t{1} << bits) < cardinality) ++bits;
  return bits;
}

}  // namespace smartdd

#endif  // SMARTDD_COMMON_FLAT_MAP_H_
