#ifndef SMARTDD_COMMON_DEADLINE_H_
#define SMARTDD_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>

namespace smartdd {

/// A cooperative cancellation token for the request path: an optional
/// wall-budget (steady-clock expiry point) plus an optional external cancel
/// flag, carried by value through every options struct from the service
/// front door down to the chunked counting/sampling scans.
///
/// The contract mirrors gRPC deadlines: work units poll expired() at chunk
/// boundaries (never per tuple), so cancellation latency is bounded by one
/// chunk while the no-deadline hot path stays branch-cheap — a default
/// Deadline is inert and expired() is a single bool test. Checks never
/// influence results when the deadline does not fire, so the engine's
/// bit-identical determinism contract is untouched.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert deadline: never expires, active() is false.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (<= 0 expires immediately).
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.has_time_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  /// Attaches an external cancel flag (not owned; must outlive every check):
  /// expired() also returns true once *flag is true. Lets a transport tie a
  /// running search to its connection (e.g. an SSE stream's cancelled bit).
  Deadline WithCancelFlag(const std::atomic<bool>* flag) const {
    Deadline d = *this;
    d.cancel_ = flag;
    return d;
  }

  /// Whether any expiry condition is armed. Callers gate their per-chunk
  /// bookkeeping on this so inert deadlines cost one branch.
  bool active() const { return has_time_ || cancel_ != nullptr; }

  bool expired() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_acquire)) {
      return true;
    }
    return has_time_ && Clock::now() >= at_;
  }

  /// Milliseconds until expiry (+inf when no time budget is armed; <= 0
  /// once expired). Ignores the cancel flag.
  double remaining_ms() const {
    if (!has_time_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  Clock::time_point at_{};
  bool has_time_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace smartdd

#endif  // SMARTDD_COMMON_DEADLINE_H_
