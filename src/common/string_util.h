#ifndef SMARTDD_COMMON_STRING_UTIL_H_
#define SMARTDD_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace smartdd {

/// Splits `input` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer / double parsing (whole string must parse).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("1.5", "200", "0.033").
std::string FormatDouble(double v, int digits = 6);

/// Pads or truncates `s` to exactly `width` characters (left-aligned).
std::string PadRight(std::string s, size_t width);
std::string PadLeft(std::string s, size_t width);

}  // namespace smartdd

#endif  // SMARTDD_COMMON_STRING_UTIL_H_
