#include "common/thread_pool.h"

#include <algorithm>

namespace smartdd {

namespace {
thread_local bool tls_inside_pool_job = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: benchmarks and tests may run searches from static
  // teardown, and joining at exit buys nothing.
  static ThreadPool* pool = new ThreadPool(
      std::max(8u, std::thread::hardware_concurrency()) - 1);
  return *pool;
}

size_t ThreadPool::EffectiveThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::RunChunks(Job* job) {
  while (true) {
    uint64_t chunk = job->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->num_chunks) break;
    if (!job->failed.load(std::memory_order_relaxed)) {
      try {
        (*job->fn)(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job->error_mu);
        if (!job->error) job->error = std::current_exception();
        job->failed.store(true, std::memory_order_relaxed);
      }
    }
    job->done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::UnqueueLocked(Job* job) {
  auto it = std::find(pending_.begin(), pending_.end(), job);
  if (it != pending_.end()) pending_.erase(it);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&]() { return shutdown_ || !pending_.empty(); });
      if (shutdown_) return;
      // Round-robin adoption across pending jobs: concurrent ParallelFor
      // calls (multi-user sessions on the shared pool) split the workers
      // fairly instead of all helpers piling onto the oldest job, so a
      // large expansion cannot monopolize the helpers against a small one.
      job = pending_[rr_next_++ % pending_.size()];
      ++job->active_workers;  // guarded by mu_: keeps `job` alive below
    }
    tls_inside_pool_job = true;
    RunChunks(job);
    tls_inside_pool_job = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --job->active_workers;
      // All chunks are claimed (RunChunks returned); retire the job so
      // waiting workers move on to the next one instead of re-adopting it.
      UnqueueLocked(job);
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(uint64_t num_chunks, size_t parallelism,
                             const std::function<void(uint64_t)>& fn) {
  if (num_chunks == 0) return;
  // Serial request, nothing to fan out to, or a nested call from inside a
  // worker (workers must not block on sub-jobs): run inline.
  if (parallelism <= 1 || workers_.empty() || num_chunks == 1 ||
      tls_inside_pool_job) {
    for (uint64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  Job job;
  job.fn = &fn;
  job.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(&job);
  }
  // Wake only as many workers as this job can use; the caller is one lane.
  size_t helpers = std::min<size_t>(workers_.size(),
                                    std::min<uint64_t>(parallelism - 1,
                                                       num_chunks - 1));
  if (helpers == workers_.size()) {
    work_cv_.notify_all();
  } else {
    for (size_t i = 0; i < helpers; ++i) work_cv_.notify_one();
  }

  RunChunks(&job);

  {
    // All chunks are claimed; retire the job, then wait until every chunk
    // ran AND no worker still holds a pointer to this stack frame.
    // active_workers is mutated under mu_, so the predicate is race-free;
    // `done` alone would let a straggler touch `job` after unwinding.
    std::unique_lock<std::mutex> lock(mu_);
    UnqueueLocked(&job);
    done_cv_.wait(lock, [&]() {
      return job.done.load(std::memory_order_acquire) >= job.num_chunks &&
             job.active_workers == 0;
    });
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace smartdd
