#ifndef SMARTDD_COMMON_THREAD_POOL_H_
#define SMARTDD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smartdd {

/// A fixed pool of worker threads executing chunked parallel-for jobs.
///
/// The pool exists so that interactive search passes (best-marginal
/// counting, scoring) can fan out over cores without paying thread spawn
/// cost per pass. ParallelFor blocks the caller until every chunk has
/// finished, and the calling thread itself works on chunks, so every
/// caller always makes progress even with zero workers. Concurrent
/// ParallelFor calls (multi-user sessions) share the workers fairly:
/// each freed worker adopts the next pending job round-robin, and each
/// caller still drives its own job inline, so a big job cannot starve a
/// small one and no call can stall.
///
/// Determinism contract: chunk *boundaries* are chosen by the caller and
/// must not depend on the thread count. Workers pull chunk indices from an
/// atomic counter, so the assignment of chunks to threads is racy — callers
/// that accumulate floating-point state must accumulate per chunk and merge
/// in chunk order afterwards. Under that discipline results are bit-identical
/// for any thread count (see core/best_marginal.cc).
class ThreadPool {
 public:
  /// Spawns `num_workers` background threads (0 is allowed: every
  /// ParallelFor then runs inline on the caller).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Process-wide pool, created on first use. Sized to honor explicit
  /// num_threads requests above the core count (differential tests run
  /// 8-way even on small CI boxes; idle workers just sleep). Never
  /// destroyed, so it is safe to use from static destructors.
  static ThreadPool& Global();

  /// Resolves a user-facing `num_threads` knob: 0 means "all hardware
  /// threads", anything else is taken literally.
  static size_t EffectiveThreads(size_t num_threads);

  /// Runs fn(chunk) for every chunk in [0, num_chunks), waking at most
  /// `parallelism - 1` workers to help the caller (best-effort cap:
  /// spuriously woken workers may also join). Blocks until all chunks are
  /// done. Exceptions thrown by fn are rethrown on the caller (first one
  /// wins). Reentrant calls from inside a worker run inline.
  void ParallelFor(uint64_t num_chunks, size_t parallelism,
                   const std::function<void(uint64_t)>& fn);

 private:
  struct Job {
    const std::function<void(uint64_t)>* fn = nullptr;
    std::atomic<uint64_t> next{0};
    uint64_t num_chunks = 0;
    std::atomic<uint64_t> done{0};
    int active_workers = 0;  // guarded by the pool's mu_
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void WorkerLoop();
  static void RunChunks(Job* job);
  /// Removes `job` from the pending queue if still enqueued (guarded by
  /// mu_, which the caller must hold).
  void UnqueueLocked(Job* job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for jobs
  std::condition_variable done_cv_;   // callers wait here for completion
  std::vector<Job*> pending_;         // jobs with unclaimed chunks
  size_t rr_next_ = 0;                // round-robin cursor (guarded by mu_)
  bool shutdown_ = false;
};

}  // namespace smartdd

#endif  // SMARTDD_COMMON_THREAD_POOL_H_
