#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace smartdd {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int digits) {
  std::string s = StrFormat("%.*g", digits, v);
  return s;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(s.begin(), width - s.size(), ' ');
  return s;
}

}  // namespace smartdd
