#include "common/status.h"

namespace smartdd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace smartdd
