#ifndef SMARTDD_COMMON_FLOAT_SUM_H_
#define SMARTDD_COMMON_FLOAT_SUM_H_

#include <cmath>
#include <cstdint>

namespace smartdd {

/// The float that `count` sequential additions of `w` (w >= 0) into a zero
/// accumulator produce — WITHOUT scanning. Used by the count-mode fold
/// paths (pass-1 Phase B, single-rule list evaluation) to replace a
/// row scan whose additions are all the same constant.
///
/// Closed form count * w whenever every partial sum k * w (k <= count) is
/// exactly representable: writing w = m * 2^e with m odd, k * w = (k * m)
/// * 2^e and k * m < 2^(bits(count) + bits(m)) <= 2^53, so each partial is
/// an integer scaled by a power of two that fits the significand; by
/// induction fl(k*w + w) = (k+1)*w exactly. That covers every practical
/// weight function (small rationals); anything else takes the literal
/// loop, so the result is bit-identical to the scan in all cases.
inline double ExactRepeatAdd(double w, uint64_t count) {
  if (count == 0 || w == 0) return 0.0;
  if (!std::isfinite(w)) return w;  // +inf: the first addition saturates
  int exp = 0;
  uint64_t mant = static_cast<uint64_t>(std::ldexp(std::frexp(w, &exp), 53));
  mant >>= __builtin_ctzll(mant);
  const int mant_bits = 64 - __builtin_clzll(mant);
  const int count_bits = 64 - __builtin_clzll(count);
  if (mant_bits + count_bits <= 53) {
    return static_cast<double>(count) * w;
  }
  double s = 0;
  for (uint64_t i = 0; i < count; ++i) s += w;
  return s;
}

}  // namespace smartdd

#endif  // SMARTDD_COMMON_FLOAT_SUM_H_
