#include "common/metrics.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd {

namespace {

/// Prometheus sample value rendering: human-shaped (le="0.1", not
/// le="0.10000000000000001") while keeping 15 significant digits, which
/// round-trips every bound and sum we produce.
std::string MetricNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return FormatDouble(v, 15);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SMARTDD_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // Lower-bound search; bounds ladders are short (tens of entries), so a
  // linear scan beats binary search on branch prediction.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::BucketCount(size_t i) const {
  SMARTDD_CHECK(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

uint64_t Histogram::CumulativeCount(size_t i) const {
  SMARTDD_CHECK(i < bounds_.size());
  uint64_t total = 0;
  for (size_t b = 0; b <= i; ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> Histogram::LatencySeconds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
          1e-1, 2.5e-1, 5e-1, 1.0,  2.5,    5.0,  10.0, 25.0,   50.0,
          100.0};
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instruments cached by objects destroyed during
  // static teardown (shared schedulers, registries) must stay valid.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = Kind::kCounter;
    family.help = std::string(help);
    family.counter = std::make_unique<Counter>();
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  SMARTDD_CHECK(it->second.kind == Kind::kCounter)
      << "metric '" << it->first << "' already registered with another kind";
  return *it->second.counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = Kind::kGauge;
    family.help = std::string(help);
    family.gauge = std::make_unique<Gauge>();
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  SMARTDD_CHECK(it->second.kind == Kind::kGauge)
      << "metric '" << it->first << "' already registered with another kind";
  return *it->second.gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = Kind::kHistogram;
    family.help = std::string(help);
    family.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  SMARTDD_CHECK(it->second.kind == Kind::kHistogram)
      << "metric '" << it->first << "' already registered with another kind";
  return *it->second.histogram;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // An instrument named `base{label="v",...}` renders as a labeled sample of
  // the `base` family (HELP/TYPE emitted once per base). Labeled names of one
  // base sort adjacently after the unlabeled name ('{' > any name character),
  // so one pass with a previous-base latch suffices.
  std::string prev_base;
  for (const auto& [name, family] : families_) {
    const size_t brace = name.find('{');
    const std::string base = name.substr(0, brace);
    // Inner label list, without the braces; empty for unlabeled instruments.
    std::string labels;
    if (brace != std::string::npos && name.back() == '}') {
      labels = name.substr(brace + 1, name.size() - brace - 2);
    }
    const std::string sample_suffix =
        labels.empty() ? "" : "{" + labels + "}";

    if (base != prev_base) {
      out += "# HELP " + base + " " + family.help + "\n";
      switch (family.kind) {
        case Kind::kCounter:
          out += "# TYPE " + base + " counter\n";
          break;
        case Kind::kGauge:
          out += "# TYPE " + base + " gauge\n";
          break;
        case Kind::kHistogram:
          out += "# TYPE " + base + " histogram\n";
          break;
      }
      prev_base = base;
    }
    switch (family.kind) {
      case Kind::kCounter:
        out += base + sample_suffix + " " +
               std::to_string(family.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += base + sample_suffix + " " +
               std::to_string(family.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *family.histogram;
        // Bucket lines merge the instrument's labels with `le`.
        const std::string le_prefix =
            labels.empty() ? "{le=\"" : "{" + labels + ",le=\"";
        // One pass over the raw buckets: each bucket read once, running
        // total accumulated, and the same total reused for +Inf/_count so
        // the rendered series stays monotonic under concurrent Observes.
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out += base + "_bucket" + le_prefix + MetricNumber(h.bounds()[i]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        out += base + "_bucket" + le_prefix + "+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += base + "_sum" + sample_suffix + " " + MetricNumber(h.sum()) +
               "\n";
        out += base + "_count" + sample_suffix + " " +
               std::to_string(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

}  // namespace smartdd
