#ifndef SMARTDD_COMMON_RESULT_H_
#define SMARTDD_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace smartdd {

/// A value-or-error holder, analogous to arrow::Result. Either contains a T
/// (status is OK) or a non-OK Status describing why the value is absent.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from an error status. Constructing a Result from
  /// an OK status without a value is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SMARTDD_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    SMARTDD_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SMARTDD_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SMARTDD_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace smartdd

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// Status out of the enclosing function.
#define SMARTDD_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  SMARTDD_ASSIGN_OR_RETURN_IMPL_(                                  \
      SMARTDD_CONCAT_(_smartdd_result_, __LINE__), lhs, rexpr)

#define SMARTDD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define SMARTDD_CONCAT_(a, b) SMARTDD_CONCAT_IMPL_(a, b)
#define SMARTDD_CONCAT_IMPL_(a, b) a##b

#endif  // SMARTDD_COMMON_RESULT_H_
