#ifndef SMARTDD_COMMON_HASH_H_
#define SMARTDD_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smartdd {

/// Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a hash with a new value (boost-style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (HashMix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Hash of a span of 32-bit codes; used for rule keys.
inline uint64_t HashCodes(const uint32_t* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL ^ n;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

inline uint64_t HashCodes(const std::vector<uint32_t>& v) {
  return HashCodes(v.data(), v.size());
}

/// FNV-1a over raw bytes; used for cache-key sharding.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace smartdd

#endif  // SMARTDD_COMMON_HASH_H_
