#ifndef SMARTDD_COMMON_LOGGING_H_
#define SMARTDD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace smartdd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level that is actually emitted; default kInfo. Not thread-safe to
/// mutate concurrently with logging (set it once at startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink. Emits on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed values when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace smartdd

#define SMARTDD_LOG(level)                                                 \
  ::smartdd::internal::LogMessage(::smartdd::LogLevel::k##level, __FILE__, \
                                  __LINE__)

/// Fatal-on-failure invariant check; additional context may be streamed:
///   SMARTDD_CHECK(a < b) << "a=" << a;
/// Use for internal logic errors only; user-facing failures go via Status.
#define SMARTDD_CHECK(cond)                                        \
  switch (0)                                                       \
  case 0:                                                          \
  default:                                                         \
    if (cond)                                                      \
      ;                                                            \
    else                                                           \
      ::smartdd::internal::LogMessage(::smartdd::LogLevel::kFatal, \
                                      __FILE__, __LINE__)          \
          << "Check failed: " #cond " "

#ifndef NDEBUG
#define SMARTDD_DCHECK(cond) SMARTDD_CHECK(cond)
#else
#define SMARTDD_DCHECK(cond) \
  while (false) ::smartdd::internal::NullStream()
#endif

#endif  // SMARTDD_COMMON_LOGGING_H_
