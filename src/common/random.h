#ifndef SMARTDD_COMMON_RANDOM_H_
#define SMARTDD_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace smartdd {

/// Deterministic, seedable PRNG (xoshiro256**). All randomized components of
/// the library (reservoir sampling, data generators, solvers) draw from this
/// so that every experiment is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Zipf-distributed integer in [0, n) with exponent s >= 0 (s=0 is
  /// uniform). Uses an inverse-CDF table; cheap for repeated draws via
  /// ZipfTable.
  class ZipfTable {
   public:
    ZipfTable(size_t n, double s);
    /// Draws one value in [0, n).
    size_t Sample(Rng& rng) const;
    size_t size() const { return cdf_.size(); }

   private:
    std::vector<double> cdf_;
  };

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// SplitMix64 step, used for seeding and hashing.
uint64_t SplitMix64(uint64_t& state);

/// Derives the seed of child stream `stream` from a root seed via two
/// SplitMix64 avalanches (pure function; does not mutate anything). Unlike
/// additive schemes such as `root + stream * constant`, nearby stream ids
/// (0, 1, 2, ...) map to statistically independent seeds, so per-reservoir
/// and per-chunk RNG streams decorrelate. Distinct streams of the same root
/// can never collide (the root hash is XORed with the stream id before the
/// final avalanche).
uint64_t DeriveSeed(uint64_t root, uint64_t stream);

/// Two-level stream split: DeriveSeed(DeriveSeed(root, stream), substream).
/// Used for per-chunk sub-reservoir seeds inside a per-rule stream.
uint64_t DeriveSeed(uint64_t root, uint64_t stream, uint64_t substream);

}  // namespace smartdd

#endif  // SMARTDD_COMMON_RANDOM_H_
