#ifndef SMARTDD_WEIGHTS_PARAMETRIC_WEIGHT_H_
#define SMARTDD_WEIGHTS_PARAMETRIC_WEIGHT_H_

#include <vector>

#include "weights/weight_function.h"

namespace smartdd {

/// The paper's generalized weighting family (§6.1):
///   W(r) = ( sum_c o_{r,c} * w_c )^alpha
/// where o_{r,c} is 1 iff r instantiates column c. Size is (all w_c = 1,
/// alpha = 1); Bits is (w_c = ceil(log2|c|), alpha = 1). alpha > 1 rewards
/// rules that instantiate several columns super-linearly.
/// Requires w_c >= 0 and alpha >= 0 so the function stays monotonic.
class ParametricWeight : public WeightFunction {
 public:
  ParametricWeight(std::vector<double> column_weights, double alpha);

  double Weight(const Rule& rule) const override;
  std::string name() const override { return "Parametric"; }
  double MaxPossibleWeight(size_t num_columns) const override;

  double alpha() const { return alpha_; }
  const std::vector<double>& column_weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  double alpha_;
};

/// Analysis helpers reproducing the §6.1 KKT reasoning about which columns
/// the top-scoring rule instantiates under the parametric family.
/// `max_freq_fraction[c]` is f_c, the frequency fraction of the most common
/// value in column c.
struct ParametricAnalysis {
  /// ln(f_c)/w_c per column — the KKT selection statistic; the top rule
  /// prefers columns with the *largest* values (closest to 0, since logs are
  /// negative). Columns with w_c == 0 get -infinity (never selected).
  std::vector<double> selection_statistic;
  /// Estimated weighted fraction of columns instantiated by the top rule:
  /// -alpha / sum_c ln f_c (clamped to [0, 1]).
  double predicted_instantiation_fraction = 0;
  /// Estimated weight of the top rule (useful as an mw hint).
  double predicted_max_weight = 0;
};

ParametricAnalysis AnalyzeParametricWeight(
    const std::vector<double>& column_weights, double alpha,
    const std::vector<double>& max_freq_fraction);

/// The alpha that makes the predicted top rule instantiate fraction `s` of
/// the (weighted) columns: alpha = -s * sum_c ln f_c (§6.1).
double AlphaForInstantiationFraction(
    double s, const std::vector<double>& max_freq_fraction);

}  // namespace smartdd

#endif  // SMARTDD_WEIGHTS_PARAMETRIC_WEIGHT_H_
