#include "weights/parametric_weight.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace smartdd {

ParametricWeight::ParametricWeight(std::vector<double> column_weights,
                                   double alpha)
    : weights_(std::move(column_weights)), alpha_(alpha) {
  SMARTDD_CHECK(alpha_ >= 0) << "alpha must be non-negative";
  for (double w : weights_) {
    SMARTDD_CHECK(w >= 0) << "column weights must be non-negative";
  }
}

double ParametricWeight::Weight(const Rule& rule) const {
  SMARTDD_DCHECK(rule.num_columns() == weights_.size());
  double base = 0;
  for (size_t c = 0; c < rule.num_columns(); ++c) {
    if (!rule.is_star(c)) base += weights_[c];
  }
  if (base == 0) return 0;
  return std::pow(base, alpha_);
}

double ParametricWeight::MaxPossibleWeight(size_t num_columns) const {
  double base = 0;
  for (size_t c = 0; c < num_columns && c < weights_.size(); ++c) {
    base += weights_[c];
  }
  if (base == 0) return 0;
  return std::pow(base, alpha_);
}

ParametricAnalysis AnalyzeParametricWeight(
    const std::vector<double>& column_weights, double alpha,
    const std::vector<double>& max_freq_fraction) {
  SMARTDD_CHECK(column_weights.size() == max_freq_fraction.size());
  ParametricAnalysis out;
  double sum_ln_f = 0;
  double sum_w = 0;
  for (size_t c = 0; c < column_weights.size(); ++c) {
    double f = std::clamp(max_freq_fraction[c], 1e-12, 1.0);
    double lf = std::log(f);
    sum_ln_f += lf;
    sum_w += column_weights[c];
    if (column_weights[c] <= 0) {
      out.selection_statistic.push_back(
          -std::numeric_limits<double>::infinity());
    } else {
      out.selection_statistic.push_back(lf / column_weights[c]);
    }
  }
  // s = -alpha / sum_c ln f_c  (sum_ln_f < 0 for non-degenerate columns).
  double s = sum_ln_f < 0 ? -alpha / sum_ln_f : 1.0;
  out.predicted_instantiation_fraction = std::clamp(s, 0.0, 1.0);
  // Predicted top-rule weight: instantiating fraction s of weighted columns
  // gives base s * sum_w, raised to alpha.
  double base = out.predicted_instantiation_fraction * sum_w;
  out.predicted_max_weight = base <= 0 ? 0 : std::pow(base, alpha);
  return out;
}

double AlphaForInstantiationFraction(
    double s, const std::vector<double>& max_freq_fraction) {
  double sum_ln_f = 0;
  for (double f : max_freq_fraction) {
    sum_ln_f += std::log(std::clamp(f, 1e-12, 1.0));
  }
  return -s * sum_ln_f;
}

}  // namespace smartdd
