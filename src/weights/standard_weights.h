#ifndef SMARTDD_WEIGHTS_STANDARD_WEIGHTS_H_
#define SMARTDD_WEIGHTS_STANDARD_WEIGHTS_H_

#include <vector>

#include "storage/table.h"
#include "weights/weight_function.h"

namespace smartdd {

/// Size weighting (paper §2.2): W(r) = number of non-star values. "The
/// number of table cells pre-filled by the rule-list."
class SizeWeight : public WeightFunction {
 public:
  double Weight(const Rule& rule) const override {
    return static_cast<double>(rule.size());
  }
  std::string name() const override { return "Size"; }
  double MaxPossibleWeight(size_t num_columns) const override {
    return static_cast<double>(num_columns);
  }
};

/// Bits weighting (paper §2.2): W(r) = sum over instantiated columns c of
/// ceil(log2(|c|)), where |c| is the column's dictionary cardinality.
/// Columns with many distinct values convey more information when pinned.
class BitsWeight : public WeightFunction {
 public:
  /// `bits_per_column[c]` = ceil(log2(|c|)). Use FromTable for the standard
  /// construction.
  explicit BitsWeight(std::vector<double> bits_per_column);

  /// Builds the paper's Bits function from a table's dictionaries.
  static BitsWeight FromTable(const Table& table);

  double Weight(const Rule& rule) const override;
  std::string name() const override { return "Bits"; }
  double MaxPossibleWeight(size_t num_columns) const override;

  const std::vector<double>& bits_per_column() const {
    return bits_per_column_;
  }

 private:
  std::vector<double> bits_per_column_;
};

/// W(r) = max(0, Size(r) - 1) (paper §5.1.2; the paper's text writes
/// "Min(0, Size(r)-1)" but its semantics — zero weight for single-column
/// rules, forcing rules with >= 2 instantiated columns — require max).
class SizeMinusOneWeight : public WeightFunction {
 public:
  double Weight(const Rule& rule) const override {
    size_t s = rule.size();
    return s > 0 ? static_cast<double>(s - 1) : 0.0;
  }
  std::string name() const override { return "SizeMinusOne"; }
  double MaxPossibleWeight(size_t num_columns) const override {
    return num_columns > 0 ? static_cast<double>(num_columns - 1) : 0.0;
  }
};

/// Linear per-column weighting: W(r) = sum of w_c over instantiated columns.
/// Generalizes Size (all 1) and Bits (log cardinalities), and expresses
/// column preference (larger w_c) or indifference (w_c = 0) per §2.2/§6.1.
/// All w_c must be >= 0 for monotonicity.
class LinearColumnWeight : public WeightFunction {
 public:
  explicit LinearColumnWeight(std::vector<double> column_weights,
                              std::string name = "LinearColumn");

  double Weight(const Rule& rule) const override;
  std::string name() const override { return name_; }
  double MaxPossibleWeight(size_t num_columns) const override;

  const std::vector<double>& column_weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  std::string name_;
};

/// Indicator weighting used to emulate a *traditional* drill-down on column
/// `col` (paper §5.1.2): W(r) = 1 if r instantiates `col`, else 0. Combined
/// with k = |col|, BRS then enumerates the distinct values of `col` by
/// decreasing count — a regular drill-down.
class ColumnIndicatorWeight : public WeightFunction {
 public:
  explicit ColumnIndicatorWeight(size_t col) : col_(col) {}

  double Weight(const Rule& rule) const override {
    return rule.is_star(col_) ? 0.0 : 1.0;
  }
  std::string name() const override { return "ColumnIndicator"; }
  double MaxPossibleWeight(size_t) const override { return 1.0; }

 private:
  size_t col_;
};

/// Column-interest adjustment (paper §6.1: "the user can express interest
/// ... in certain columns ... the system internally adjusts the weight
/// function by increasing the weight given to rules instantiating that
/// column"): W'(r) = W_base(r) + sum over instantiated c of boost[c].
/// Boosts must be >= 0 to preserve monotonicity; express *disinterest* by
/// building the base function with zero weight on a column instead.
class ColumnBoostWeight : public WeightFunction {
 public:
  /// Does not take ownership; `base` must outlive this object.
  ColumnBoostWeight(const WeightFunction& base, std::vector<double> boosts);

  double Weight(const Rule& rule) const override;
  std::string name() const override { return base_->name() + "+Boost"; }
  double MaxPossibleWeight(size_t num_columns) const override;

 private:
  const WeightFunction* base_;
  std::vector<double> boosts_;
};

}  // namespace smartdd

#endif  // SMARTDD_WEIGHTS_STANDARD_WEIGHTS_H_
