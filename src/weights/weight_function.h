#ifndef SMARTDD_WEIGHTS_WEIGHT_FUNCTION_H_
#define SMARTDD_WEIGHTS_WEIGHT_FUNCTION_H_

#include <limits>
#include <string>

#include "rules/rule.h"

namespace smartdd {

/// Assigns a non-negative goodness score to a rule, independent of the data
/// (paper §2.2). Implementations must be:
///   * non-negative: W(r) >= 0 for all rules, and
///   * monotonic:    if r1 is a sub-rule of r2 then W(r1) <= W(r2)
///     (more specific rules never weigh less).
/// These two properties are what the BRS pruning bounds and the greedy
/// approximation guarantee rely on; tests/weights_test.cc property-checks
/// every implementation shipped here.
class WeightFunction {
 public:
  virtual ~WeightFunction() = default;

  /// The weight of `rule`. Must be cheap; BRS evaluates it once per
  /// candidate rule.
  virtual double Weight(const Rule& rule) const = 0;

  /// Human-readable name for logs and benchmark output.
  virtual std::string name() const = 0;

  /// An upper bound on Weight over all rules of the given width, used by
  /// parameter guidance (§6.1). Defaults to +infinity when unknown.
  virtual double MaxPossibleWeight(size_t num_columns) const {
    (void)num_columns;
    return std::numeric_limits<double>::infinity();
  }
};

}  // namespace smartdd

#endif  // SMARTDD_WEIGHTS_WEIGHT_FUNCTION_H_
