#include "weights/standard_weights.h"

#include <cmath>

#include "common/logging.h"

namespace smartdd {

BitsWeight::BitsWeight(std::vector<double> bits_per_column)
    : bits_per_column_(std::move(bits_per_column)) {
  for (double b : bits_per_column_) {
    SMARTDD_CHECK(b >= 0) << "bits per column must be non-negative";
  }
}

BitsWeight BitsWeight::FromTable(const Table& table) {
  std::vector<double> bits;
  bits.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    uint32_t distinct = table.dictionary(c).size();
    // ceil(log2(|c|)); a single-valued column conveys 0 bits.
    double b = distinct <= 1 ? 0.0
                             : std::ceil(std::log2(static_cast<double>(distinct)));
    bits.push_back(b);
  }
  return BitsWeight(std::move(bits));
}

double BitsWeight::Weight(const Rule& rule) const {
  SMARTDD_DCHECK(rule.num_columns() == bits_per_column_.size());
  double w = 0;
  for (size_t c = 0; c < rule.num_columns(); ++c) {
    if (!rule.is_star(c)) w += bits_per_column_[c];
  }
  return w;
}

double BitsWeight::MaxPossibleWeight(size_t num_columns) const {
  double total = 0;
  for (size_t c = 0; c < num_columns && c < bits_per_column_.size(); ++c) {
    total += bits_per_column_[c];
  }
  return total;
}

LinearColumnWeight::LinearColumnWeight(std::vector<double> column_weights,
                                       std::string name)
    : weights_(std::move(column_weights)), name_(std::move(name)) {
  for (double w : weights_) {
    SMARTDD_CHECK(w >= 0) << "column weights must be non-negative";
  }
}

double LinearColumnWeight::Weight(const Rule& rule) const {
  SMARTDD_DCHECK(rule.num_columns() == weights_.size());
  double w = 0;
  for (size_t c = 0; c < rule.num_columns(); ++c) {
    if (!rule.is_star(c)) w += weights_[c];
  }
  return w;
}

double LinearColumnWeight::MaxPossibleWeight(size_t num_columns) const {
  double total = 0;
  for (size_t c = 0; c < num_columns && c < weights_.size(); ++c) {
    total += weights_[c];
  }
  return total;
}

ColumnBoostWeight::ColumnBoostWeight(const WeightFunction& base,
                                     std::vector<double> boosts)
    : base_(&base), boosts_(std::move(boosts)) {
  for (double b : boosts_) {
    SMARTDD_CHECK(b >= 0) << "column boosts must be non-negative";
  }
}

double ColumnBoostWeight::Weight(const Rule& rule) const {
  SMARTDD_DCHECK(rule.num_columns() == boosts_.size());
  double w = base_->Weight(rule);
  for (size_t c = 0; c < rule.num_columns(); ++c) {
    if (!rule.is_star(c)) w += boosts_[c];
  }
  return w;
}

double ColumnBoostWeight::MaxPossibleWeight(size_t num_columns) const {
  double total = base_->MaxPossibleWeight(num_columns);
  for (size_t c = 0; c < num_columns && c < boosts_.size(); ++c) {
    total += boosts_[c];
  }
  return total;
}

}  // namespace smartdd
