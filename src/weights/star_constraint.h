#ifndef SMARTDD_WEIGHTS_STAR_CONSTRAINT_H_
#define SMARTDD_WEIGHTS_STAR_CONSTRAINT_H_

#include <memory>

#include "weights/weight_function.h"

namespace smartdd {

/// The star-drill-down weight rewrite (paper §3.1): when the user clicks the
/// `?` in column `col` of a rule, the sub-problem uses
///   W'(r) = 0            if r has a star in `col`
///   W'(r) = W_base(r)    otherwise
/// which steers BRS toward rules instantiating `col` while keeping W'
/// monotonic (a sub-rule that instantiates `col` forces its super-rules to
/// instantiate `col` too).
class StarConstraintWeight : public WeightFunction {
 public:
  /// Does not take ownership; `base` must outlive this object.
  StarConstraintWeight(const WeightFunction& base, size_t col)
      : base_(&base), col_(col) {}

  double Weight(const Rule& rule) const override {
    return rule.is_star(col_) ? 0.0 : base_->Weight(rule);
  }
  std::string name() const override {
    return base_->name() + "+StarConstraint";
  }
  double MaxPossibleWeight(size_t num_columns) const override {
    return base_->MaxPossibleWeight(num_columns);
  }

  size_t constrained_column() const { return col_; }

 private:
  const WeightFunction* base_;
  size_t col_;
};

}  // namespace smartdd

#endif  // SMARTDD_WEIGHTS_STAR_CONSTRAINT_H_
