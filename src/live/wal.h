#ifndef SMARTDD_LIVE_WAL_H_
#define SMARTDD_LIVE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace smartdd::live {

/// Append-only write-ahead log for live tables: the durability half of the
/// WAL -> versioned-snapshot pipeline (live/table_versions.h).
///
/// On-disk format. The file opens with an 8-byte header:
///
///   "SDWL" u16 format_version(=1) u16 reserved(=0)
///
/// followed by length-prefixed, checksummed record frames:
///
///   u32 payload_len | u32 crc32(payload) | payload bytes
///
/// All integers little-endian. A payload is one opaque record — for live
/// tables, the raw CSV row text of one append — capped at kMaxRecordBytes.
/// The frame grammar is deliberately tiny: a record is valid iff its length
/// fits, its CRC matches, and every prior frame was valid. The first frame
/// that fails either test marks the torn tail: everything from its offset on
/// is the debris of a crash mid-write (kill -9, power loss, ENOSPC), and
/// recovery truncates it away, yielding a valid *prefix* of the append
/// history — never a torn row, never a resurrected one.
///
/// Durability knob: fsync batching. Every append is written (and buffered by
/// the kernel) immediately; fsync is issued once per `fsync_every_records`
/// appends rather than per record, trading a bounded window of recent
/// appends against fsync latency on the hot path. Sync() forces the fsync.
///
/// Fault points (common/fault_injection.h):
///   live.wal.append   before writing a record frame
///   live.wal.fsync    before fsync
///   live.wal.replay   per frame during Replay; an armed short_read tears
///                     the current frame, exercising tail truncation
struct WalWriterOptions {
  /// fsync once per this many appended records (1 = every append, the
  /// safe default; 0 = never fsync, caller syncs explicitly).
  size_t fsync_every_records = 1;
};

class WalWriter {
 public:
  using Options = WalWriterOptions;

  /// Longest accepted payload. Keeps a corrupt length prefix from driving a
  /// multi-gigabyte allocation during replay.
  static constexpr uint32_t kMaxRecordBytes = 1u << 20;

  /// Opens `path` for appending, creating it (with a fresh header) when
  /// absent. An existing file must carry a valid header; run Replay first
  /// when recovering — opening does not scan or truncate.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 Options options = Options());

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record frame and applies the fsync-batching policy. On an
  /// injected or real write error the frame may be partially on disk — the
  /// torn tail Replay truncates on the next recovery.
  Status Append(std::string_view payload);

  /// Forces an fsync of everything appended so far.
  Status Sync();

  /// Bytes of the file (header + all committed frames).
  uint64_t byte_size() const { return offset_; }
  /// Records appended through this writer (not counting pre-existing ones).
  uint64_t records_appended() const { return appended_; }

 private:
  WalWriter(int fd, uint64_t offset, Options options)
      : fd_(fd), offset_(offset), options_(options) {}

  int fd_ = -1;
  uint64_t offset_ = 0;
  uint64_t appended_ = 0;
  size_t unsynced_ = 0;
  Options options_;
};

/// Replay outcome: how much of the log was valid and what was cut.
struct WalReplayStats {
  uint64_t records = 0;        ///< valid records delivered to the callback
  uint64_t valid_bytes = 0;    ///< header + valid frames
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes removed (0 = clean log)
};

/// Replays every valid record of the WAL at `path` through `on_record`, in
/// append order. A torn tail — short frame, bad CRC, oversized length — is
/// truncated from the file (the crash-recovery contract: recover to a valid
/// prefix, never a torn row). A missing file is not an error: zero records.
/// The callback returning a non-OK status aborts the replay with it.
Result<WalReplayStats> WalReplay(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& on_record);

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) of `data` — exposed
/// for tests that forge corrupt frames.
uint32_t WalCrc32(std::string_view data);

}  // namespace smartdd::live

#endif  // SMARTDD_LIVE_WAL_H_
