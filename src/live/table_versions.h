#ifndef SMARTDD_LIVE_TABLE_VERSIONS_H_
#define SMARTDD_LIVE_TABLE_VERSIONS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "live/wal.h"
#include "storage/table.h"

namespace smartdd::live {

/// One immutable, frozen generation of a live table. Snapshots are handed
/// out as shared_ptr<const TableSnapshot>: the refcount IS the version
/// lifecycle — a long-lived session (via its version engine) keeps the
/// snapshot it opened alive while the LiveTable moves on, and a retired
/// version's storage frees when the last holder lets go.
struct TableSnapshot {
  uint64_t version = 0;
  Table table;  ///< frozen; dictionaries private to this version
};

/// Snapshot cadence + durability knobs for a LiveTable.
struct LiveTableOptions {
  /// WAL file path. Empty disables durability: appends live only in memory
  /// (still versioned, just not crash-safe).
  std::string wal_path;
  /// Publish a new snapshot once this many appended rows are pending
  /// (0 = only on explicit PublishSnapshot calls or the time cadence).
  uint64_t snapshot_every_rows = 256;
  /// Publish pending rows when this many milliseconds passed since the last
  /// publish (0 = off). Checked on append — there is no timer thread.
  int64_t snapshot_every_ms = 0;
  /// WAL fsync batching (see WalWriter::Options).
  size_t fsync_every_records = 1;
  /// Millisecond clock for the time cadence; tests inject a fake.
  std::function<int64_t()> clock_ms;
};

/// Point-in-time shape of a live table, the `tableinfo` verb's payload.
struct LiveTableInfo {
  uint64_t version = 0;        ///< latest published snapshot version
  uint64_t rows = 0;           ///< rows in that snapshot
  uint64_t pending_rows = 0;   ///< appended but not yet in a snapshot
  uint64_t wal_bytes = 0;      ///< WAL file size (0 when not durable)
};

/// An append-only live table: a WAL feeding versioned immutable snapshots.
///
/// Version lifecycle:
///
///   base table ──► snapshot v1 (frozen)
///        append rows… (WAL'd, buffered as pending)
///   publish    ──► snapshot v2 = copy(v1) + pending, frozen
///        sessions opened on v1 keep their shared_ptr and explore an
///        unchanging table; new sessions get v2; v1 frees with its last ref
///
/// Each snapshot's Table owns private dictionary clones
/// (Table::UnfrozenCopyWithPrivateDicts), so encoding new values for
/// version N+1 never mutates the code space version-N readers scan.
///
/// Appends take raw CSV row text (categorical cells then measure cells, the
/// same column order the base table was loaded with). The WAL records the
/// raw text; recovery re-parses it, so the log is self-describing and
/// greppable. Create() replays an existing WAL before returning — rows in
/// the valid prefix land in snapshot v2 (v1 stays the pristine base), torn
/// tails are truncated per the WAL contract.
///
/// All methods are thread-safe; Latest() is a shared_ptr copy under a short
/// critical section, publishing is O(rows) but leaves readers untouched.
class LiveTable {
 public:
  /// Wraps a frozen `base` table. Replays `options.wal_path` when present:
  /// recovered rows are published immediately as version 2.
  static Result<std::unique_ptr<LiveTable>> Create(Table base,
                                                   LiveTableOptions options);

  /// Appends one CSV row (RFC-4180 quoting honored). Validates arity and
  /// measure parse *before* touching the WAL, so the log never stores a row
  /// that cannot replay. May publish a snapshot per the cadence knobs.
  Status Append(std::string_view csv_row);

  /// Publishes pending rows as a new snapshot now (no-op when none are
  /// pending). Returns the latest snapshot either way.
  std::shared_ptr<const TableSnapshot> PublishSnapshot();

  /// The latest published snapshot.
  std::shared_ptr<const TableSnapshot> Latest() const;

  LiveTableInfo Info() const;

  /// Forces the WAL to disk (no-op when not durable).
  Status SyncWal();

 private:
  LiveTable(LiveTableOptions options, size_t num_measures);

  Status ParseRow(std::string_view csv_row, std::vector<std::string>* cells,
                  std::vector<double>* measures) const;
  Status AppendParsedLocked(std::vector<std::string> cells,
                            std::vector<double> measures);
  void PublishLocked();

  struct PendingRow {
    std::vector<std::string> cells;
    std::vector<double> measures;
  };

  LiveTableOptions options_;
  size_t num_columns_ = 0;
  size_t num_measures_ = 0;

  mutable std::mutex mu_;
  std::shared_ptr<const TableSnapshot> latest_;
  std::vector<PendingRow> pending_;
  std::unique_ptr<WalWriter> wal_;
  int64_t last_publish_ms_ = 0;
};

}  // namespace smartdd::live

#endif  // SMARTDD_LIVE_TABLE_VERSIONS_H_
