#include "live/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace smartdd::live {

namespace {

constexpr char kMagic[4] = {'S', 'D', 'W', 'L'};
constexpr uint16_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 8;
constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

Status WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("wal write failed: %s", std::strerror(errno)));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, char* data, size_t len, size_t* got) {
  *got = 0;
  while (*got < len) {
    ssize_t n = ::read(fd, data + *got, len - *got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("wal read failed: %s", std::strerror(errno)));
    }
    if (n == 0) break;  // EOF
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t WalCrc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : std::string_view(data)) {
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   Options options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("wal open(%s) failed: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::Internal(
        StrFormat("wal lseek failed: %s", std::strerror(errno)));
  }
  if (size == 0) {
    char header[kHeaderBytes];
    std::memcpy(header, kMagic, 4);
    header[4] = static_cast<char>(kFormatVersion & 0xFF);
    header[5] = static_cast<char>(kFormatVersion >> 8);
    header[6] = 0;
    header[7] = 0;
    Status status = WriteAll(fd, header, kHeaderBytes);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    size = kHeaderBytes;
  } else {
    if (::lseek(fd, 0, SEEK_SET) < 0) {
      ::close(fd);
      return Status::Internal(
          StrFormat("wal lseek failed: %s", std::strerror(errno)));
    }
    char header[kHeaderBytes];
    size_t got = 0;
    Status status = ReadExact(fd, header, kHeaderBytes, &got);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    if (got != kHeaderBytes || std::memcmp(header, kMagic, 4) != 0) {
      ::close(fd);
      return Status::InvalidArgument(
          StrFormat("%s is not a smartdd WAL (bad header)", path.c_str()));
    }
    uint16_t version = static_cast<uint16_t>(
        static_cast<unsigned char>(header[4]) |
        static_cast<unsigned char>(header[5]) << 8);
    if (version != kFormatVersion) {
      ::close(fd);
      return Status::InvalidArgument(
          StrFormat("wal %s has format version %u, expected %u", path.c_str(),
                    unsigned{version}, unsigned{kFormatVersion}));
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return Status::Internal(
          StrFormat("wal lseek failed: %s", std::strerror(errno)));
    }
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, static_cast<uint64_t>(size), options));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(std::string_view payload) {
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument(
        StrFormat("wal record of %zu bytes exceeds the %u byte cap",
                  payload.size(), kMaxRecordBytes));
  }
  SMARTDD_RETURN_IF_ERROR(InjectFault("live.wal.append"));
  char frame_header[kFrameHeaderBytes];
  PutU32(frame_header, static_cast<uint32_t>(payload.size()));
  PutU32(frame_header + 4, WalCrc32(payload));
  SMARTDD_RETURN_IF_ERROR(WriteAll(fd_, frame_header, kFrameHeaderBytes));
  SMARTDD_RETURN_IF_ERROR(WriteAll(fd_, payload.data(), payload.size()));
  offset_ += kFrameHeaderBytes + payload.size();
  ++appended_;
  ++unsynced_;
  if (options_.fsync_every_records > 0 &&
      unsynced_ >= options_.fsync_every_records) {
    return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  SMARTDD_RETURN_IF_ERROR(InjectFault("live.wal.fsync"));
  if (::fsync(fd_) != 0) {
    return Status::Internal(
        StrFormat("wal fsync failed: %s", std::strerror(errno)));
  }
  unsynced_ = 0;
  return Status::OK();
}

Result<WalReplayStats> WalReplay(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& on_record) {
  WalReplayStats stats;
  int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no log yet: empty history
    return Status::Internal(StrFormat("wal open(%s) failed: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  char header[kHeaderBytes];
  size_t got = 0;
  Status status = ReadExact(fd, header, kHeaderBytes, &got);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  if (got != kHeaderBytes || std::memcmp(header, kMagic, 4) != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("%s is not a smartdd WAL (bad header)", path.c_str()));
  }
  uint64_t valid_end = kHeaderBytes;
  std::vector<char> payload;
  bool torn = false;
  for (;;) {
    bool short_read = false;
    Status fault = InjectFault("live.wal.replay", &short_read);
    if (!fault.ok()) {
      ::close(fd);
      return fault;
    }
    if (short_read) {
      // An armed short read models a frame the crash cut mid-write: stop
      // treating bytes past this point as committed history.
      torn = true;
      break;
    }
    char frame_header[kFrameHeaderBytes];
    status = ReadExact(fd, frame_header, kFrameHeaderBytes, &got);
    if (!status.ok()) break;
    if (got == 0) break;  // clean end of log
    if (got < kFrameHeaderBytes) {
      torn = true;
      break;
    }
    uint32_t len = GetU32(frame_header);
    uint32_t crc = GetU32(frame_header + 4);
    if (len > WalWriter::kMaxRecordBytes) {
      torn = true;  // garbage length: corruption, not a record
      break;
    }
    payload.resize(len);
    status = ReadExact(fd, payload.data(), len, &got);
    if (!status.ok()) break;
    if (got < len ||
        WalCrc32(std::string_view(payload.data(), len)) != crc) {
      torn = true;
      break;
    }
    status = on_record(std::string_view(payload.data(), len));
    if (!status.ok()) break;
    ++stats.records;
    valid_end += kFrameHeaderBytes + len;
  }
  if (status.ok() && torn) {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      status = Status::Internal(
          StrFormat("wal lseek failed: %s", std::strerror(errno)));
    } else {
      stats.truncated_bytes = static_cast<uint64_t>(size) - valid_end;
      if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
        status = Status::Internal(
            StrFormat("wal truncate failed: %s", std::strerror(errno)));
      } else if (::fsync(fd) != 0) {
        status = Status::Internal(
            StrFormat("wal fsync after truncate failed: %s",
                      std::strerror(errno)));
      }
    }
  }
  ::close(fd);
  if (!status.ok()) return status;
  stats.valid_bytes = valid_end;
  return stats;
}

}  // namespace smartdd::live
