#include "live/table_versions.h"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/csv.h"

namespace smartdd::live {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LiveTable::LiveTable(LiveTableOptions options, size_t num_measures)
    : options_(std::move(options)), num_measures_(num_measures) {
  if (!options_.clock_ms) options_.clock_ms = SteadyNowMs;
}

Result<std::unique_ptr<LiveTable>> LiveTable::Create(Table base,
                                                     LiveTableOptions options) {
  if (!base.is_frozen()) base.Freeze();
  auto live = std::unique_ptr<LiveTable>(
      new LiveTable(std::move(options), base.num_measures()));
  live->num_columns_ = base.num_columns();
  auto snapshot = std::make_shared<TableSnapshot>();
  snapshot->version = 1;
  snapshot->table = std::move(base);
  live->latest_ = std::move(snapshot);
  live->last_publish_ms_ = live->options_.clock_ms();

  if (!live->options_.wal_path.empty()) {
    // Recovery first: replay the valid prefix into pending rows (the WAL is
    // truncated past the first torn frame), then start the writer at the
    // now-clean tail.
    auto stats = WalReplay(
        live->options_.wal_path, [&live](std::string_view payload) -> Status {
          std::vector<std::string> cells;
          std::vector<double> measures;
          SMARTDD_RETURN_IF_ERROR(live->ParseRow(payload, &cells, &measures));
          live->pending_.push_back({std::move(cells), std::move(measures)});
          return Status::OK();
        });
    if (!stats.ok()) return stats.status();
    if (stats->truncated_bytes > 0) {
      SMARTDD_LOG(Warning) << "live table WAL " << live->options_.wal_path
                           << ": truncated " << stats->truncated_bytes
                           << " torn-tail bytes, recovered " << stats->records
                           << " rows";
    }
    WalWriter::Options wal_options;
    wal_options.fsync_every_records = live->options_.fsync_every_records;
    auto writer = WalWriter::Open(live->options_.wal_path, wal_options);
    if (!writer.ok()) return writer.status();
    live->wal_ = std::move(writer).value();
    if (!live->pending_.empty()) {
      std::lock_guard<std::mutex> lock(live->mu_);
      live->PublishLocked();
    }
  }
  return live;
}

Status LiveTable::ParseRow(std::string_view csv_row,
                           std::vector<std::string>* cells,
                           std::vector<double>* measures) const {
  std::string input(csv_row);
  size_t pos = 0;
  std::vector<std::string> fields;
  if (!ParseCsvRecord(input, &pos, ',', &fields)) {
    return Status::InvalidArgument("empty append row");
  }
  if (pos < input.size()) {
    return Status::InvalidArgument(
        "append row holds more than one CSV record");
  }
  if (fields.size() != num_columns_ + num_measures_) {
    return Status::InvalidArgument(StrFormat(
        "append row has %zu fields, table expects %zu (%zu categorical + "
        "%zu measure)",
        fields.size(), num_columns_ + num_measures_, num_columns_,
        num_measures_));
  }
  cells->assign(fields.begin(),
                fields.begin() + static_cast<ptrdiff_t>(num_columns_));
  for (std::string& cell : *cells) {
    if (cell.empty()) cell = "?missing";
  }
  measures->clear();
  for (size_t m = 0; m < num_measures_; ++m) {
    const std::string& field = fields[num_columns_ + m];
    char* end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("measure field '%s' is not numeric", field.c_str()));
    }
    measures->push_back(value);
  }
  return Status::OK();
}

Status LiveTable::Append(std::string_view csv_row) {
  std::vector<std::string> cells;
  std::vector<double> measures;
  SMARTDD_RETURN_IF_ERROR(ParseRow(csv_row, &cells, &measures));
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) {
    SMARTDD_RETURN_IF_ERROR(wal_->Append(csv_row));
  }
  return AppendParsedLocked(std::move(cells), std::move(measures));
}

Status LiveTable::AppendParsedLocked(std::vector<std::string> cells,
                                     std::vector<double> measures) {
  pending_.push_back({std::move(cells), std::move(measures)});
  bool publish = options_.snapshot_every_rows > 0 &&
                 pending_.size() >= options_.snapshot_every_rows;
  if (!publish && options_.snapshot_every_ms > 0) {
    publish =
        options_.clock_ms() - last_publish_ms_ >= options_.snapshot_every_ms;
  }
  if (publish) PublishLocked();
  return Status::OK();
}

void LiveTable::PublishLocked() {
  if (pending_.empty()) return;
  auto next = std::make_shared<TableSnapshot>();
  next->version = latest_->version + 1;
  next->table = latest_->table.UnfrozenCopyWithPrivateDicts();
  for (const PendingRow& row : pending_) {
    // Arity was validated before the row entered pending/WAL, so this
    // cannot fail.
    Status status = next->table.AppendRowValues(row.cells, row.measures);
    SMARTDD_CHECK(status.ok()) << status.ToString();
  }
  next->table.Freeze();
  pending_.clear();
  latest_ = std::move(next);
  last_publish_ms_ = options_.clock_ms();
}

std::shared_ptr<const TableSnapshot> LiveTable::PublishSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();
  return latest_;
}

std::shared_ptr<const TableSnapshot> LiveTable::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

LiveTableInfo LiveTable::Info() const {
  std::lock_guard<std::mutex> lock(mu_);
  LiveTableInfo info;
  info.version = latest_->version;
  info.rows = latest_->table.num_rows();
  info.pending_rows = pending_.size();
  info.wal_bytes = wal_ != nullptr ? wal_->byte_size() : 0;
  return info;
}

Status LiveTable::SyncWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

}  // namespace smartdd::live
