#ifndef SMARTDD_RULES_RULE_FORMAT_H_
#define SMARTDD_RULES_RULE_FORMAT_H_

#include <string>
#include <vector>

#include "rules/rule.h"
#include "storage/table.h"

namespace smartdd {

/// Decodes the cells of a rule against a table's dictionaries; stars render
/// as "?". Values that would read back as wildcards — a literal "?" or "*",
/// or anything starting with a backslash — are escaped with one leading
/// backslash, so RuleCells/ParseRule round-trip for every dictionary value
/// (the service wire contract for api::NodeView cells).
std::vector<std::string> RuleCells(const Rule& rule, const Table& table);

/// One-line rendering, e.g. "(Walmart, ?, CA-1)".
std::string RuleToString(const Rule& rule, const Table& table);

/// Parses a rule from cell strings ("?" or "*" = star; "\?" / "\*" / a
/// backslash-prefixed cell = the literal value, see RuleCells). Each
/// non-star value must exist in the corresponding column dictionary.
Result<Rule> ParseRule(const std::vector<std::string>& cells,
                       const Table& table);

}  // namespace smartdd

#endif  // SMARTDD_RULES_RULE_FORMAT_H_
