#include "rules/rule_ops.h"

#include <algorithm>

namespace smartdd {

bool IsSubRuleOf(const Rule& general, const Rule& specific) {
  if (general.num_columns() != specific.num_columns()) return false;
  for (size_t c = 0; c < general.num_columns(); ++c) {
    uint32_t g = general.value(c);
    if (g == kStar) continue;
    if (specific.value(c) != g) return false;
  }
  return true;
}

Result<Rule> MergeRules(const Rule& a, const Rule& b) {
  if (a.num_columns() != b.num_columns()) {
    return Status::InvalidArgument("rules have different widths");
  }
  Rule merged(a.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    uint32_t av = a.value(c);
    uint32_t bv = b.value(c);
    if (av == kStar) {
      if (bv != kStar) merged.set_value(c, bv);
    } else if (bv == kStar || bv == av) {
      merged.set_value(c, av);
    } else {
      return Status::InvalidArgument("rules conflict; cannot merge");
    }
  }
  return merged;
}

double RuleMass(const TableView& view, const Rule& r) {
  double mass = 0;
  const uint64_t n = view.num_rows();
  for (uint64_t i = 0; i < n; ++i) {
    if (RuleCoversRow(r, view, i)) mass += view.mass(i);
  }
  return mass;
}

std::vector<uint32_t> FilterRows(const TableView& view, const Rule& r,
                                 KernelPref kernel) {
  std::vector<uint32_t> rows;
  const uint64_t n = view.num_rows();
  if (!view.is_subset()) {
    // Whole-table views: block match masks through the dispatched kernels,
    // then sweep the mask in row order — same output as the direct loop.
    const ScanKernels& kern = GetScanKernels(ResolveKernelPath(kernel));
    uint8_t mask[kScanBlockRows];
    for (uint64_t b0 = 0; b0 < n; b0 += kScanBlockRows) {
      const uint64_t b1 = std::min(n, b0 + kScanBlockRows);
      ComputeRuleMask(r, view.table(), b0, b1, mask, kern);
      for (uint64_t t = b0; t < b1; ++t) {
        if (mask[t - b0] != 0) rows.push_back(static_cast<uint32_t>(t));
      }
    }
    return rows;
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (RuleCoversRow(r, view, i)) rows.push_back(view.row_id(i));
  }
  return rows;
}

TableView FilterView(const TableView& view, const Rule& r,
                     KernelPref kernel) {
  TableView out(view.table(), FilterRows(view, r, kernel));
  if (view.has_measure()) out.SelectMeasure(*view.measure_index());
  return out;
}

double SelectivityRatio(const TableView& view, const Rule& general,
                        const Rule& specific) {
  if (!IsSubRuleOf(general, specific)) return 0.0;
  double general_mass = 0;
  double specific_mass = 0;
  const uint64_t n = view.num_rows();
  for (uint64_t i = 0; i < n; ++i) {
    if (RuleCoversRow(general, view, i)) {
      double m = view.mass(i);
      general_mass += m;
      if (RuleCoversRow(specific, view, i)) specific_mass += m;
    }
  }
  if (general_mass <= 0) return 0.0;
  return specific_mass / general_mass;
}

}  // namespace smartdd
