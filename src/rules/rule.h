#ifndef SMARTDD_RULES_RULE_H_
#define SMARTDD_RULES_RULE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace smartdd {

/// The wildcard value: matches every value in a column (the paper's `?`).
inline constexpr uint32_t kStar = 0xFFFFFFFFu;

/// A rule is a tuple over the table's columns where each position is either
/// a dictionary code or the `?` wildcard (kStar). A rule *covers* a tuple if
/// every non-star position matches the tuple (paper §2.1).
class Rule {
 public:
  /// Constructs the trivial rule (all stars) over `num_columns` columns.
  explicit Rule(size_t num_columns)
      : values_(num_columns, kStar) {}

  /// Constructs a rule from explicit per-column values.
  explicit Rule(std::vector<uint32_t> values) : values_(std::move(values)) {}

  static Rule Trivial(size_t num_columns) { return Rule(num_columns); }

  [[nodiscard]] size_t num_columns() const { return values_.size(); }

  [[nodiscard]] uint32_t value(size_t col) const { return values_[col]; }
  [[nodiscard]] bool is_star(size_t col) const {
    return values_[col] == kStar;
  }

  void set_value(size_t col, uint32_t code) {
    SMARTDD_DCHECK(col < values_.size());
    values_[col] = code;
  }
  void clear_value(size_t col) { values_[col] = kStar; }

  /// Batch assignment used by the best-marginal search's scratch rule: sets
  /// `cols[i] = vals[i]` for every position in one call, so candidate
  /// evaluation mutates one reusable rule instead of constructing a
  /// full-width Rule (one heap allocation) per candidate.
  void set_values(std::span<const uint32_t> cols,
                  std::span<const uint32_t> vals) {
    SMARTDD_DCHECK(cols.size() == vals.size());
    for (size_t i = 0; i < cols.size(); ++i) values_[cols[i]] = vals[i];
  }

  /// Inverse of set_values: re-stars the given columns.
  void clear_values(std::span<const uint32_t> cols) {
    for (uint32_t c : cols) values_[c] = kStar;
  }

  /// Number of non-star positions (the paper's Size of a rule).
  [[nodiscard]] size_t size() const {
    size_t s = 0;
    for (uint32_t v : values_) s += (v != kStar);
    return s;
  }

  [[nodiscard]] bool is_trivial() const { return size() == 0; }

  /// Indices of the instantiated (non-star) columns, ascending.
  [[nodiscard]] std::vector<size_t> InstantiatedColumns() const {
    std::vector<size_t> cols;
    for (size_t c = 0; c < values_.size(); ++c) {
      if (values_[c] != kStar) cols.push_back(c);
    }
    return cols;
  }

  /// True if this rule covers the tuple `codes` (one code per column).
  [[nodiscard]] bool Covers(const uint32_t* codes) const {
    for (size_t c = 0; c < values_.size(); ++c) {
      if (values_[c] != kStar && values_[c] != codes[c]) return false;
    }
    return true;
  }

  [[nodiscard]] const std::vector<uint32_t>& values() const {
    return values_;
  }

  bool operator==(const Rule& other) const { return values_ == other.values_; }
  bool operator!=(const Rule& other) const { return !(*this == other); }

  [[nodiscard]] uint64_t Hash() const { return HashCodes(values_); }

 private:
  std::vector<uint32_t> values_;
};

/// Hash functor for using Rule in unordered containers.
struct RuleHash {
  size_t operator()(const Rule& r) const {
    return static_cast<size_t>(r.Hash());
  }
};

}  // namespace smartdd

#endif  // SMARTDD_RULES_RULE_H_
