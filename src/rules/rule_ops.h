#ifndef SMARTDD_RULES_RULE_OPS_H_
#define SMARTDD_RULES_RULE_OPS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/scan_kernels.h"
#include "rules/rule.h"
#include "storage/table_view.h"

namespace smartdd {

/// True if `general` is a sub-rule of `specific` (paper §2.1): `general` has
/// stars wherever it differs, so every tuple covered by `specific` is covered
/// by `general`. Non-strict: every rule is a sub-rule of itself.
/// Example: (a, ?) is a sub-rule of (a, b).
bool IsSubRuleOf(const Rule& general, const Rule& specific);

/// True if `specific` is a super-rule of `general` (the inverse relation).
inline bool IsSuperRuleOf(const Rule& specific, const Rule& general) {
  return IsSubRuleOf(general, specific);
}

/// Merges two rules into the least specific common super-rule. Fails if the
/// rules conflict (both instantiate a column with different values).
Result<Rule> MergeRules(const Rule& a, const Rule& b);

/// True if rule `r` covers the `i`-th row of the view. Column-major fast
/// path: resolves the table row once and decodes only the rule's non-star
/// columns straight from the packed column payloads, instead of funneling
/// every cell through view.code()'s per-cell row_id resolution.
inline bool RuleCoversRow(const Rule& r, const TableView& view, uint64_t i) {
  const Table& table = view.table();
  const uint32_t row = view.row_id(i);
  const std::vector<uint32_t>& values = r.values();
  for (size_t c = 0; c < values.size(); ++c) {
    uint32_t v = values[c];
    if (v != kStar && v != table.column(c).Get(row)) return false;
  }
  return true;
}

/// A rule compiled for repeated row checks: only the non-star columns,
/// each as a (packed column ref, wanted code) predicate, so covering a
/// row is a handful of inline decodes with no per-cell indirection and no
/// wildcard scanning. The canonical column-major predicate — reuse this
/// instead of re-deriving it (core/score.cc does; core/best_marginal.cc
/// keeps a stack-array variant to stay allocation-free per candidate).
/// The source table must outlive the compiled form.
struct CompiledRule {
  std::vector<PackedRef> cols;
  std::vector<uint32_t> want;

  CompiledRule() = default;
  CompiledRule(const Rule& r, const Table& table) { Compile(r, table); }

  void Compile(const Rule& r, const Table& table) {
    cols.clear();
    want.clear();
    for (size_t c = 0; c < r.num_columns(); ++c) {
      uint32_t v = r.value(c);
      if (v == kStar) continue;
      cols.push_back(table.column(c).ref());
      want.push_back(v);
    }
  }

  /// `row` is a *table* row id (resolve view row ids once, outside).
  [[nodiscard]] bool Covers(uint32_t row) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].Get(row) != want[i]) return false;
    }
    return true;
  }
};

/// A rule compiled for repeated checks against decoded code *arrays* (scan
/// callbacks, sample rows) rather than table rows: only the non-star
/// columns, as (column, wanted code) pairs, so wildcard columns cost
/// nothing per row. The codes-array sibling of CompiledRule.
struct RowPredicate {
  /// (column index, wanted code) for each instantiated column.
  std::vector<std::pair<uint32_t, uint32_t>> preds;

  RowPredicate() = default;
  explicit RowPredicate(const Rule& r) { Compile(r); }

  void Compile(const Rule& r) {
    preds.clear();
    for (size_t c = 0; c < r.num_columns(); ++c) {
      uint32_t v = r.value(c);
      if (v != kStar) preds.emplace_back(static_cast<uint32_t>(c), v);
    }
  }

  /// `codes` must span every column of the rule's table.
  [[nodiscard]] bool Covers(const uint32_t* codes) const {
    for (const auto& [c, w] : preds) {
      if (codes[c] != w) return false;
    }
    return true;
  }
};

/// Total mass (Count, or Sum of the selected measure) of tuples covered by
/// `r` in the view. This is the paper's Count(r) / Sum(r).
double RuleMass(const TableView& view, const Rule& r);

/// Row ids (into the underlying table) of view rows covered by `r`.
/// Whole-table views run block-wise through the dispatched match-mask
/// kernels; output order and content are identical on every path.
std::vector<uint32_t> FilterRows(const TableView& view, const Rule& r,
                                 KernelPref kernel = KernelPref::kAuto);

/// A subset view of `view` restricted to rows covered by `r`.
TableView FilterView(const TableView& view, const Rule& r,
                     KernelPref kernel = KernelPref::kAuto);

/// Selectivity ratio S(r1, r2) from paper §4.1: the fraction of r1-covered
/// mass that is also covered by r2, for r1 a sub-rule of r2 (0 otherwise; 0
/// when r1 covers nothing). Used by the sample-allocation problem.
double SelectivityRatio(const TableView& view, const Rule& general,
                        const Rule& specific);

}  // namespace smartdd

#endif  // SMARTDD_RULES_RULE_OPS_H_
