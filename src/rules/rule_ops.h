#ifndef SMARTDD_RULES_RULE_OPS_H_
#define SMARTDD_RULES_RULE_OPS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rules/rule.h"
#include "storage/table_view.h"

namespace smartdd {

/// True if `general` is a sub-rule of `specific` (paper §2.1): `general` has
/// stars wherever it differs, so every tuple covered by `specific` is covered
/// by `general`. Non-strict: every rule is a sub-rule of itself.
/// Example: (a, ?) is a sub-rule of (a, b).
bool IsSubRuleOf(const Rule& general, const Rule& specific);

/// True if `specific` is a super-rule of `general` (the inverse relation).
inline bool IsSuperRuleOf(const Rule& specific, const Rule& general) {
  return IsSubRuleOf(general, specific);
}

/// Merges two rules into the least specific common super-rule. Fails if the
/// rules conflict (both instantiate a column with different values).
Result<Rule> MergeRules(const Rule& a, const Rule& b);

/// True if rule `r` covers the `i`-th row of the view.
inline bool RuleCoversRow(const Rule& r, const TableView& view, uint64_t i) {
  for (size_t c = 0; c < r.num_columns(); ++c) {
    uint32_t v = r.value(c);
    if (v != kStar && v != view.code(c, i)) return false;
  }
  return true;
}

/// Total mass (Count, or Sum of the selected measure) of tuples covered by
/// `r` in the view. This is the paper's Count(r) / Sum(r).
double RuleMass(const TableView& view, const Rule& r);

/// Row ids (into the underlying table) of view rows covered by `r`.
std::vector<uint32_t> FilterRows(const TableView& view, const Rule& r);

/// A subset view of `view` restricted to rows covered by `r`.
TableView FilterView(const TableView& view, const Rule& r);

/// Selectivity ratio S(r1, r2) from paper §4.1: the fraction of r1-covered
/// mass that is also covered by r2, for r1 a sub-rule of r2 (0 otherwise; 0
/// when r1 covers nothing). Used by the sample-allocation problem.
double SelectivityRatio(const TableView& view, const Rule& general,
                        const Rule& specific);

}  // namespace smartdd

#endif  // SMARTDD_RULES_RULE_OPS_H_
