#include "rules/rule_format.h"

#include "common/string_util.h"

namespace smartdd {

std::vector<std::string> RuleCells(const Rule& rule, const Table& table) {
  std::vector<std::string> cells;
  cells.reserve(rule.num_columns());
  for (size_t c = 0; c < rule.num_columns(); ++c) {
    if (rule.is_star(c)) {
      cells.push_back("?");
    } else {
      cells.push_back(table.dictionary(c).ValueOf(rule.value(c)));
    }
  }
  return cells;
}

std::string RuleToString(const Rule& rule, const Table& table) {
  return "(" + Join(RuleCells(rule, table), ", ") + ")";
}

Result<Rule> ParseRule(const std::vector<std::string>& cells,
                       const Table& table) {
  if (cells.size() != table.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("rule has %zu cells, table has %zu columns", cells.size(),
                  table.num_columns()));
  }
  Rule rule(cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    if (cells[c] == "?" || cells[c] == "*") continue;
    auto code = table.dictionary(c).Find(cells[c]);
    if (!code) {
      return Status::NotFound(StrFormat("value '%s' not found in column '%s'",
                                        cells[c].c_str(),
                                        table.schema().name(c).c_str()));
    }
    rule.set_value(c, *code);
  }
  return rule;
}

}  // namespace smartdd
