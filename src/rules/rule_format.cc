#include "rules/rule_format.h"

#include "common/string_util.h"

namespace smartdd {

std::vector<std::string> RuleCells(const Rule& rule, const Table& table) {
  std::vector<std::string> cells;
  cells.reserve(rule.num_columns());
  for (size_t c = 0; c < rule.num_columns(); ++c) {
    if (rule.is_star(c)) {
      cells.push_back("?");
    } else {
      const std::string& value = table.dictionary(c).ValueOf(rule.value(c));
      // Escape values that would read back as wildcards (or as escapes):
      // the cells are the wire's parseable rule form, and a literal "?"
      // in the data must not round-trip into a star.
      if (value == "?" || value == "*" ||
          (!value.empty() && value[0] == '\\')) {
        cells.push_back("\\" + value);
      } else {
        cells.push_back(value);
      }
    }
  }
  return cells;
}

std::string RuleToString(const Rule& rule, const Table& table) {
  return "(" + Join(RuleCells(rule, table), ", ") + ")";
}

Result<Rule> ParseRule(const std::vector<std::string>& cells,
                       const Table& table) {
  if (cells.size() != table.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("rule has %zu cells, table has %zu columns", cells.size(),
                  table.num_columns()));
  }
  Rule rule(cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    if (cells[c] == "?" || cells[c] == "*") continue;
    // Inverse of RuleCells's escaping: one leading backslash shields a
    // literal "?", "*", or backslash-prefixed value.
    std::string_view value = cells[c];
    if (!value.empty() && value[0] == '\\') value.remove_prefix(1);
    auto code = table.dictionary(c).Find(value);
    if (!code) {
      return Status::NotFound(StrFormat("value '%s' not found in column '%s'",
                                        cells[c].c_str(),
                                        table.schema().name(c).c_str()));
    }
    rule.set_value(c, *code);
  }
  return rule;
}

}  // namespace smartdd
