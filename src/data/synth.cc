#include "data/synth.h"

#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace smartdd {

Table GenerateSyntheticTable(const SynthSpec& spec) {
  const size_t num_cols = spec.cardinalities.size();
  SMARTDD_CHECK(num_cols > 0);
  std::vector<std::string> names;
  for (size_t c = 0; c < num_cols; ++c) names.push_back(StrFormat("c%zu", c));
  Table table(names);
  if (spec.with_measure) table.AddMeasureColumn("value");

  Rng rng(spec.seed);
  std::vector<Rng::ZipfTable> zipfs;
  for (size_t c = 0; c < num_cols; ++c) {
    double s = c < spec.zipf.size() ? spec.zipf[c] : 1.0;
    zipfs.emplace_back(spec.cardinalities[c], s);
    for (uint32_t v = 0; v < spec.cardinalities[c]; ++v) {
      table.EncodeValue(c, StrFormat("v%u", v));
    }
  }

  std::vector<uint32_t> codes(num_cols);
  for (uint64_t r = 0; r < spec.rows; ++r) {
    for (size_t c = 0; c < num_cols; ++c) {
      codes[c] = static_cast<uint32_t>(zipfs[c].Sample(rng));
    }
    if (spec.with_measure) {
      double value = rng.UniformDouble() * 100.0;
      table.AppendRow(codes, std::vector<double>{value});
    } else {
      table.AppendRow(codes);
    }
  }
  table.Freeze();
  return table;
}

}  // namespace smartdd
