#include "data/census_gen.h"

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "storage/disk_table.h"

namespace smartdd {

namespace {

/// Census-like cardinality profile, cycled across the 68 columns: mostly
/// small categorical domains with occasional wide ones (ancestry, POB...).
constexpr uint32_t kCardinalityCycle[] = {2,  3, 5,  9, 2, 4,  13, 2, 7, 10,
                                          2,  5, 31, 3, 2, 8,  4,  6, 2, 17,
                                          5,  3, 9,  2, 6, 51, 4,  2, 7, 3};
constexpr size_t kCycleLen =
    sizeof(kCardinalityCycle) / sizeof(kCardinalityCycle[0]);

/// Zipf exponent per column (cycled): 0 = uniform .. 1.4 = heavily skewed.
constexpr double kZipfCycle[] = {1.1, 0.6, 0.9, 1.3, 0.4, 1.0, 0.8,
                                 1.2, 0.5, 1.4, 0.7, 1.0, 1.1, 0.9};
constexpr size_t kZipfLen = sizeof(kZipfCycle) / sizeof(kZipfCycle[0]);

struct ColumnModel {
  uint32_t cardinality;
  Rng::ZipfTable zipf;
  bool correlated_with_prev;
};

std::vector<ColumnModel> BuildModels(const CensusSpec& spec) {
  std::vector<ColumnModel> models;
  models.reserve(spec.columns);
  for (size_t c = 0; c < spec.columns; ++c) {
    uint32_t card = kCardinalityCycle[c % kCycleLen];
    double zipf = kZipfCycle[c % kZipfLen];
    // Every 7th column (except column 0) echoes its predecessor: 80% of the
    // time its value is a deterministic function of the previous column's.
    bool correlated = (c % 7 == 0) && c > 0;
    models.push_back(ColumnModel{card, Rng::ZipfTable(card, zipf),
                                 correlated});
  }
  return models;
}

Table BuildPrototype(const std::vector<ColumnModel>& models,
                     size_t num_cols) {
  std::vector<std::string> names;
  for (size_t c = 0; c < num_cols; ++c) {
    names.push_back(StrFormat("attr%02zu", c));
  }
  Table proto(names);
  for (size_t c = 0; c < num_cols; ++c) {
    for (uint32_t v = 0; v < models[c].cardinality; ++v) {
      proto.EncodeValue(c, StrFormat("v%u", v));
    }
  }
  return proto;
}

/// Generates rows, invoking `emit(codes)` per row.
template <typename Emit>
void GenerateRows(const CensusSpec& spec,
                  const std::vector<ColumnModel>& models, size_t num_cols,
                  Emit&& emit) {
  Rng rng(spec.seed);
  std::vector<uint32_t> codes(num_cols);
  for (uint64_t r = 0; r < spec.rows; ++r) {
    for (size_t c = 0; c < num_cols; ++c) {
      const ColumnModel& m = models[c];
      if (m.correlated_with_prev && rng.Bernoulli(0.8)) {
        // Deterministic echo of the previous column, folded into this
        // column's domain.
        codes[c] = (codes[c - 1] * 2654435761u) % m.cardinality;
      } else {
        codes[c] = static_cast<uint32_t>(m.zipf.Sample(rng));
      }
    }
    emit(codes.data());
  }
}

}  // namespace

Table GenerateCensusTable(const CensusSpec& spec) {
  size_t num_cols = spec.columns_used == 0
                        ? spec.columns
                        : std::min(spec.columns_used, spec.columns);
  std::vector<ColumnModel> models = BuildModels(spec);
  Table table = BuildPrototype(models, num_cols);
  GenerateRows(spec, models, num_cols, [&](const uint32_t* codes) {
    table.AppendRow(std::span<const uint32_t>(codes, num_cols));
  });
  if (spec.freeze) table.Freeze();
  return table;
}

Status GenerateCensusDiskTable(const CensusSpec& spec,
                               const std::string& path) {
  size_t num_cols = spec.columns_used == 0
                        ? spec.columns
                        : std::min(spec.columns_used, spec.columns);
  std::vector<ColumnModel> models = BuildModels(spec);
  Table proto = BuildPrototype(models, num_cols);
  auto writer_or = DiskTableWriter::Create(proto, path);
  if (!writer_or.ok()) return writer_or.status();
  auto writer = std::move(writer_or).value();
  Status status = Status::OK();
  GenerateRows(spec, models, num_cols, [&](const uint32_t* codes) {
    if (status.ok()) status = writer->AppendRow(codes, nullptr);
  });
  SMARTDD_RETURN_IF_ERROR(status);
  return writer->Finish();
}

}  // namespace smartdd
