#ifndef SMARTDD_DATA_SYNTH_H_
#define SMARTDD_DATA_SYNTH_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace smartdd {

/// Fully parameterized synthetic table generator, used by the scaling
/// benchmark (§5.2.3) and by randomized property tests.
struct SynthSpec {
  uint64_t rows = 1000;
  /// Distinct values per column (one entry per column).
  std::vector<uint32_t> cardinalities = {5, 5, 5};
  /// Zipf exponent per column; missing entries default to 1.0.
  std::vector<double> zipf = {};
  uint64_t seed = 11;
  /// Adds a "value" measure column drawn uniformly from [0, 100).
  bool with_measure = false;
};

Table GenerateSyntheticTable(const SynthSpec& spec);

}  // namespace smartdd

#endif  // SMARTDD_DATA_SYNTH_H_
