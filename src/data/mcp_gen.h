#ifndef SMARTDD_DATA_MCP_GEN_H_
#define SMARTDD_DATA_MCP_GEN_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"
#include "weights/weight_function.h"

namespace smartdd {

/// A Maximum Coverage Problem instance: a universe {0..universe_size-1} and
/// m subsets. Used to exercise the paper's Lemma 2 NP-hardness reduction
/// (MCP -> Problem 3) in tests and benchmarks.
struct McpInstance {
  size_t universe_size = 0;
  std::vector<std::vector<size_t>> subsets;
};

/// Random instance: each element joins each subset with probability
/// `density`. Deterministic for a seed.
McpInstance GenerateMcpInstance(size_t universe_size, size_t num_subsets,
                                double density, uint64_t seed);

/// Lemma 2 construction: a table with one row per universe element and one
/// column per subset; cell (i, j) = "1" iff element i is in subset j.
Table McpToTable(const McpInstance& instance);

/// Lemma 2 weight: W(r) = 1 if r instantiates at least one column with the
/// value "1" (code resolved per table), else 0. Monotonic and non-negative,
/// so BRS applies; maximizing Score over this table/weight is exactly MCP.
class McpWeight : public WeightFunction {
 public:
  /// `one_codes[c]` is the dictionary code of "1" in column c (kStar if the
  /// column has no "1"). Use FromTable.
  explicit McpWeight(std::vector<uint32_t> one_codes);
  static McpWeight FromTable(const Table& table);

  double Weight(const Rule& rule) const override;
  std::string name() const override { return "McpIndicator"; }
  double MaxPossibleWeight(size_t) const override { return 1.0; }

 private:
  std::vector<uint32_t> one_codes_;
};

/// Classic greedy max-coverage (picks the subset covering the most
/// uncovered elements, k times). Returns covered-element count.
size_t GreedyMaxCoverage(const McpInstance& instance, size_t k);

/// Exact max coverage by exhaustive subset search (small instances).
size_t BruteForceMaxCoverage(const McpInstance& instance, size_t k);

}  // namespace smartdd

#endif  // SMARTDD_DATA_MCP_GEN_H_
