#ifndef SMARTDD_DATA_RETAIL_GEN_H_
#define SMARTDD_DATA_RETAIL_GEN_H_

#include <cstdint>

#include "storage/table.h"

namespace smartdd {

/// Configuration for the department-store table of the paper's running
/// example (Tables 1-3): columns Store, Product, Region plus a Sales
/// measure. The defaults plant exactly the patterns the paper reports:
///   (Target, bicycles, ?)     200 tuples
///   (?, comforters, MA-3)     600 tuples
///   (Walmart, ?, ?)          1000 tuples, containing
///       (Walmart, cookies, ?) 200, (Walmart, ?, CA-1) 150,
///       (Walmart, ?, WA-5)    130
/// with the remaining tuples spread thinly so no spurious pattern outranks
/// the planted ones.
struct RetailSpec {
  uint64_t total_rows = 6000;
  uint64_t target_bicycles = 200;
  uint64_t comforters_ma3 = 600;
  uint64_t walmart_total = 1000;
  uint64_t walmart_cookies = 200;
  uint64_t walmart_ca1 = 150;
  uint64_t walmart_wa5 = 130;
  uint64_t seed = 17;
};

/// Generates the retail table. Deterministic for a given spec.
Table GenerateRetailTable(const RetailSpec& spec = {});

}  // namespace smartdd

#endif  // SMARTDD_DATA_RETAIL_GEN_H_
