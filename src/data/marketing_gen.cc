#include "data/marketing_gen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace smartdd {

namespace {

/// Draws an index from a discrete distribution (weights need not sum to 1).
size_t Draw(Rng& rng, const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double u = rng.UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

const std::vector<std::string> kIncome = {
    "<10k", "10-15k", "15-20k", "20-25k", "25-30k",
    "30-40k", "40-50k", "50-75k", "75k+"};
const std::vector<std::string> kSex = {"Female", "Male", "NA"};
const std::vector<std::string> kMarital = {
    "Married", "LivingTogether", "Divorced", "Widowed", "NeverMarried"};
const std::vector<std::string> kAge = {"14-17", "18-24", "25-34", "35-44",
                                       "45-54", "55-64", "65+"};
const std::vector<std::string> kEducation = {
    "<Grade8", "Grades9-11", "HighSchoolGrad", "SomeCollege",
    "CollegeGrad", "GradStudy"};
const std::vector<std::string> kOccupation = {
    "Professional", "Sales", "Laborer", "Clerical", "Homemaker",
    "Student", "Military", "Retired", "Unemployed"};
const std::vector<std::string> kTimeBay = {"<1yr", "1-3yrs", "4-6yrs",
                                           "7-10yrs", ">10yrs"};
const std::vector<std::string> kDualIncome = {"NotMarried", "Yes", "No"};
const std::vector<std::string> kPersons = {"1", "2", "3", "4", "5",
                                           "6", "7", "8", "9+"};
const std::vector<std::string> kUnder18 = {"0", "1", "2", "3", "4",
                                           "5", "6", "7", "8+"};
const std::vector<std::string> kHouseholder = {"Own", "Rent",
                                               "LiveWithFamily"};
const std::vector<std::string> kHome = {"House", "Condo", "Apartment",
                                        "MobileHome", "Other"};
const std::vector<std::string> kEthnic = {
    "White", "Hispanic", "Asian", "Black", "AmericanIndian",
    "PacificIslander", "Other", "NA"};
const std::vector<std::string> kLanguage = {"English", "Spanish", "Other"};

}  // namespace

Table GenerateMarketingTable(const MarketingSpec& spec) {
  const std::vector<std::string> all_names = {
      "Income",       "Sex",          "MaritalStatus",  "Age",
      "Education",    "Occupation",   "TimeInBayArea",  "DualIncome",
      "Persons",      "PersonsU18",   "Householder",    "TypeOfHome",
      "EthnicClass",  "Language"};
  size_t num_cols = spec.columns == 0
                        ? all_names.size()
                        : std::min(spec.columns, all_names.size());
  Table table(std::vector<std::string>(all_names.begin(),
                                       all_names.begin() + num_cols));
  Rng rng(spec.seed);

  // Sex gets *exact* counts matching the paper's Figure 1 proportions:
  // 4918 Female / 4075 Male / 416 missing out of 9409.
  const uint64_t n = spec.rows;
  uint64_t males = static_cast<uint64_t>(
      std::llround(0.43310 * static_cast<double>(n)));
  uint64_t missing = static_cast<uint64_t>(
      std::llround(0.04421 * static_cast<double>(n)));
  std::vector<size_t> sex_codes;
  sex_codes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (i < males) {
      sex_codes.push_back(1);
    } else if (i < males + missing) {
      sex_codes.push_back(2);
    } else {
      sex_codes.push_back(0);
    }
  }
  rng.Shuffle(sex_codes);

  std::vector<std::string> row(all_names.size());
  for (uint64_t i = 0; i < n; ++i) {
    size_t sex = sex_codes[i];

    // Age: skewed toward 25-44.
    size_t age = Draw(rng, {0.04, 0.17, 0.28, 0.20, 0.12, 0.10, 0.09});

    // Marital status conditioned on sex and age (young -> never married).
    // The male never-married share is calibrated so the greedy picks the
    // paper's (Male, NeverMarried, >10yrs) size-3 rule (see DESIGN.md).
    std::vector<double> marital_w;
    if (age <= 1) {
      marital_w = sex == 1 ? std::vector<double>{0.12, 0.12, 0.04, 0.02, 0.70}
                           : std::vector<double>{0.12, 0.14, 0.04, 0.00, 0.70};
    } else if (sex == 1) {  // Male
      marital_w = {0.30, 0.07, 0.09, 0.02, 0.52};
    } else {
      marital_w = {0.48, 0.09, 0.16, 0.07, 0.20};
    }
    size_t marital = Draw(rng, marital_w);

    // Education conditioned on age.
    std::vector<double> edu_w;
    if (age == 0) {
      edu_w = {0.25, 0.65, 0.08, 0.02, 0.00, 0.00};
    } else if (age == 1) {
      edu_w = {0.02, 0.12, 0.28, 0.45, 0.11, 0.02};
    } else {
      edu_w = {0.04, 0.10, 0.30, 0.26, 0.20, 0.10};
    }
    size_t education = Draw(rng, edu_w);

    // Income conditioned on education (shift mass upward with education).
    std::vector<double> income_w = {0.08, 0.08, 0.09, 0.10, 0.11,
                                    0.16, 0.14, 0.15, 0.09};
    for (size_t b = 0; b < income_w.size(); ++b) {
      double tilt = (static_cast<double>(b) - 4.0) *
                    (static_cast<double>(education) - 2.5) * 0.02;
      income_w[b] = std::max(0.01, income_w[b] + tilt);
    }
    size_t income = Draw(rng, income_w);

    // Occupation conditioned on age/education.
    std::vector<double> occ_w = {0.22, 0.12, 0.12, 0.16, 0.10,
                                 0.08, 0.02, 0.10, 0.08};
    if (age <= 1) {
      occ_w = {0.08, 0.12, 0.12, 0.14, 0.02, 0.42, 0.03, 0.00, 0.07};
    } else if (age >= 5) {
      occ_w = {0.12, 0.06, 0.05, 0.08, 0.12, 0.00, 0.01, 0.48, 0.08};
    } else if (education >= 4) {
      occ_w = {0.48, 0.12, 0.03, 0.12, 0.06, 0.06, 0.02, 0.05, 0.06};
    }
    size_t occupation = Draw(rng, occ_w);

    // Time in Bay Area: calibrated so that the greedy's 4-rule summary is
    // exactly {Female, Male, (Female,>10yrs), (Male,NeverMarried,>10yrs)} —
    // the Figure 1 rule set — with comfortable marginal-value margins.
    double p_gt10 = 0.45;
    if (sex == 1) p_gt10 = (marital == 4) ? 0.70 : 0.15;
    if (age >= 4) p_gt10 = std::max(p_gt10, 0.65);  // long-time residents
    double rest = (1.0 - p_gt10) / 4.0;
    size_t timebay = Draw(rng, {rest, rest, rest, rest, p_gt10});

    // Dual income is a function of marital status.
    size_t dual;
    if (marital == 0 || marital == 1) {
      dual = rng.Bernoulli(0.55) ? 1 : 2;
    } else {
      dual = 0;
    }

    // Household sizes.
    std::vector<double> persons_w;
    if (marital == 0 || marital == 1) {
      persons_w = {0.02, 0.30, 0.22, 0.24, 0.12, 0.06, 0.02, 0.01, 0.01};
    } else {
      persons_w = {0.42, 0.26, 0.14, 0.09, 0.05, 0.02, 0.01, 0.005, 0.005};
    }
    size_t persons = Draw(rng, persons_w);
    std::vector<double> under18_w = {0.58, 0.16, 0.14, 0.07, 0.03,
                                     0.01, 0.005, 0.003, 0.002};
    size_t under18 = std::min(Draw(rng, under18_w), persons);

    // Householder status conditioned on age.
    std::vector<double> hh_w = age <= 1
                                   ? std::vector<double>{0.06, 0.40, 0.54}
                                   : std::vector<double>{0.48, 0.40, 0.12};
    size_t householder = Draw(rng, hh_w);

    // Home type conditioned on householder status.
    std::vector<double> home_w =
        householder == 0 ? std::vector<double>{0.70, 0.12, 0.08, 0.06, 0.04}
                         : std::vector<double>{0.28, 0.12, 0.48, 0.06, 0.06};
    size_t home = Draw(rng, home_w);

    size_t ethnic = Draw(rng, {0.62, 0.12, 0.12, 0.06, 0.01,
                               0.01, 0.03, 0.03});
    size_t language = ethnic == 1 ? Draw(rng, {0.55, 0.42, 0.03})
                                  : Draw(rng, {0.93, 0.01, 0.06});

    row[0] = kIncome[income];
    row[1] = kSex[sex];
    row[2] = kMarital[marital];
    row[3] = kAge[age];
    row[4] = kEducation[education];
    row[5] = kOccupation[occupation];
    row[6] = kTimeBay[timebay];
    row[7] = kDualIncome[dual];
    row[8] = kPersons[persons];
    row[9] = kUnder18[under18];
    row[10] = kHouseholder[householder];
    row[11] = kHome[home];
    row[12] = kEthnic[ethnic];
    row[13] = kLanguage[language];

    std::vector<std::string> cells(row.begin(), row.begin() + num_cols);
    SMARTDD_CHECK(table.AppendRowValues(cells).ok());
  }
  table.Freeze();
  return table;
}

}  // namespace smartdd
