#include "data/retail_gen.h"

#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace smartdd {

namespace {

constexpr size_t kNumStores = 20;
constexpr size_t kNumProducts = 30;
constexpr size_t kNumRegions = 30;

}  // namespace

Table GenerateRetailTable(const RetailSpec& spec) {
  SMARTDD_CHECK(spec.walmart_cookies + spec.walmart_ca1 + spec.walmart_wa5 <=
                spec.walmart_total);
  SMARTDD_CHECK(spec.target_bicycles + spec.comforters_ma3 +
                    spec.walmart_total <=
                spec.total_rows);

  Table table({"Store", "Product", "Region"});
  table.AddMeasureColumn("Sales");
  Rng rng(spec.seed);

  // Vocabulary. Named values first so they get stable codes.
  std::vector<std::string> stores = {"Walmart", "Target"};
  for (size_t i = stores.size(); i < kNumStores; ++i) {
    stores.push_back(StrFormat("Store-%02zu", i));
  }
  std::vector<std::string> products = {"bicycles", "comforters", "cookies"};
  for (size_t i = products.size(); i < kNumProducts; ++i) {
    products.push_back(StrFormat("Product-%02zu", i));
  }
  std::vector<std::string> regions = {"MA-3", "CA-1", "WA-5"};
  for (size_t i = regions.size(); i < kNumRegions; ++i) {
    regions.push_back(StrFormat("Region-%02zu", i));
  }

  auto sales = [&](double mean) {
    return std::max(1.0, mean * (0.5 + rng.UniformDouble()));
  };
  auto add = [&](const std::string& s, const std::string& p,
                 const std::string& r, double mean_sales) {
    double sale = sales(mean_sales);
    SMARTDD_CHECK(
        table
            .AppendRowValues({s, p, r}, std::vector<double>{sale})
            .ok());
  };
  // Helpers drawing "background" values that avoid the planted patterns.
  auto other_store = [&]() {
    return stores[2 + rng.UniformInt(kNumStores - 2)];
  };
  auto other_product = [&]() {
    return products[3 + rng.UniformInt(kNumProducts - 3)];
  };
  auto other_region = [&]() {
    return regions[3 + rng.UniformInt(kNumRegions - 3)];
  };

  // (Target, bicycles, *): spread over non-planted regions.
  for (uint64_t i = 0; i < spec.target_bicycles; ++i) {
    add("Target", "bicycles", other_region(), 120);
  }
  // (*, comforters, MA-3): spread over stores other than Walmart/Target so
  // the pattern stays multi-store.
  for (uint64_t i = 0; i < spec.comforters_ma3; ++i) {
    add(other_store(), "comforters", "MA-3", 80);
  }
  // Walmart block.
  for (uint64_t i = 0; i < spec.walmart_cookies; ++i) {
    add("Walmart", "cookies", other_region(), 60);
  }
  for (uint64_t i = 0; i < spec.walmart_ca1; ++i) {
    add("Walmart", other_product(), "CA-1", 70);
  }
  for (uint64_t i = 0; i < spec.walmart_wa5; ++i) {
    add("Walmart", other_product(), "WA-5", 70);
  }
  uint64_t walmart_rest = spec.walmart_total - spec.walmart_cookies -
                          spec.walmart_ca1 - spec.walmart_wa5;
  for (uint64_t i = 0; i < walmart_rest; ++i) {
    add("Walmart", other_product(), other_region(), 50);
  }

  // Background: everything else, avoiding the planted stores/patterns. The
  // small Target share keeps Target a multi-product store without letting
  // (Target, ?, ?) outrank (Target, bicycles, ?) in marginal value.
  uint64_t background = spec.total_rows - spec.target_bicycles -
                        spec.comforters_ma3 - spec.walmart_total;
  for (uint64_t i = 0; i < background; ++i) {
    std::string store =
        rng.Bernoulli(0.02) ? "Target" : other_store();
    std::string product = other_product();
    std::string region = other_region();
    add(store, product, region, 40);
  }

  table.Freeze();
  return table;
}

}  // namespace smartdd
