#ifndef SMARTDD_DATA_CENSUS_GEN_H_
#define SMARTDD_DATA_CENSUS_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace smartdd {

/// Synthetic stand-in for the paper's "Census" dataset (UCI USCensus1990,
/// ~2.5M tuples x 68 pre-bucketized columns). Column cardinalities cycle
/// through a census-like profile (many binary/small columns, a few dozens-
/// wide), marginals are Zipf-skewed with per-column exponents, and every
/// 7th column is strongly correlated with its predecessor so that
/// multi-column rules carry real mass (see DESIGN.md §3 for why this
/// preserves the Figure 5/8 shapes).
struct CensusSpec {
  /// Paper scale is 2458285; default is container-friendly. Override via
  /// the SMARTDD_CENSUS_ROWS environment variable in the benches.
  uint64_t rows = 500000;
  size_t columns = 68;
  uint64_t seed = 7;
  /// Restrict to the first `columns_used` columns (0 = all). The paper's
  /// qualitative experiments use 7.
  size_t columns_used = 0;
  /// Freeze the generated table (bit-pack its columns) before returning.
  /// Leave set unless the caller appends rows afterwards.
  bool freeze = true;
};

/// In-memory generation (use for row counts that comfortably fit in RAM).
Table GenerateCensusTable(const CensusSpec& spec = {});

/// Streams the table straight to a DiskTable file without materializing it
/// (the substrate for the paper's large-table experiments).
Status GenerateCensusDiskTable(const CensusSpec& spec,
                               const std::string& path);

}  // namespace smartdd

#endif  // SMARTDD_DATA_CENSUS_GEN_H_
