#ifndef SMARTDD_DATA_MARKETING_GEN_H_
#define SMARTDD_DATA_MARKETING_GEN_H_

#include <cstdint>

#include "storage/table.h"

namespace smartdd {

/// Synthetic stand-in for the paper's "Marketing" dataset [1] (Stanford
/// ElemStatLearn marketing survey): 9409 questionnaires, 14 demographic
/// columns, every column bucketized to <= 10 distinct values.
///
/// The paper's own figures pin several marginals, which this generator is
/// calibrated to reproduce (see DESIGN.md §3):
///   * Sex: 4918 Female / 4075 Male (416 missing),
///   * (Female, >10 years in Bay Area) ~ 2940,
///   * (Male, Never married, >10 years) ~ 980.
/// Remaining columns follow plausible skewed distributions with mild
/// correlations (age <-> marital status <-> education <-> income, etc.) so
/// that multi-column rules of size 2-3 emerge under Size/Bits weighting just
/// as in the paper's Figures 1-3 and 6-7.
struct MarketingSpec {
  uint64_t rows = 9409;
  uint64_t seed = 5;
  /// Restrict to the first `columns` columns (the paper uses 7 for its
  /// qualitative figures "to make the result tables fit in the page");
  /// 0 = all 14.
  size_t columns = 0;
};

/// Generates the Marketing-like table. Deterministic for a given spec.
Table GenerateMarketingTable(const MarketingSpec& spec = {});

}  // namespace smartdd

#endif  // SMARTDD_DATA_MARKETING_GEN_H_
