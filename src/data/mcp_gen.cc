#include "data/mcp_gen.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace smartdd {

McpInstance GenerateMcpInstance(size_t universe_size, size_t num_subsets,
                                double density, uint64_t seed) {
  McpInstance inst;
  inst.universe_size = universe_size;
  inst.subsets.resize(num_subsets);
  Rng rng(seed);
  for (size_t e = 0; e < universe_size; ++e) {
    for (size_t s = 0; s < num_subsets; ++s) {
      if (rng.Bernoulli(density)) inst.subsets[s].push_back(e);
    }
  }
  return inst;
}

Table McpToTable(const McpInstance& instance) {
  std::vector<std::string> names;
  for (size_t s = 0; s < instance.subsets.size(); ++s) {
    names.push_back(StrFormat("S%zu", s));
  }
  Table table(names);
  std::vector<std::vector<bool>> member(
      instance.subsets.size(), std::vector<bool>(instance.universe_size));
  for (size_t s = 0; s < instance.subsets.size(); ++s) {
    for (size_t e : instance.subsets[s]) member[s][e] = true;
  }
  std::vector<std::string> row(names.size());
  for (size_t e = 0; e < instance.universe_size; ++e) {
    for (size_t s = 0; s < names.size(); ++s) {
      row[s] = member[s][e] ? "1" : "0";
    }
    SMARTDD_CHECK(table.AppendRowValues(row).ok());
  }
  table.Freeze();
  return table;
}

McpWeight::McpWeight(std::vector<uint32_t> one_codes)
    : one_codes_(std::move(one_codes)) {}

McpWeight McpWeight::FromTable(const Table& table) {
  std::vector<uint32_t> codes;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    auto code = table.dictionary(c).Find("1");
    codes.push_back(code ? *code : kStar);
  }
  return McpWeight(std::move(codes));
}

double McpWeight::Weight(const Rule& rule) const {
  SMARTDD_DCHECK(rule.num_columns() == one_codes_.size());
  for (size_t c = 0; c < rule.num_columns(); ++c) {
    if (!rule.is_star(c) && one_codes_[c] != kStar &&
        rule.value(c) == one_codes_[c]) {
      return 1.0;
    }
  }
  return 0.0;
}

size_t GreedyMaxCoverage(const McpInstance& instance, size_t k) {
  std::vector<bool> covered(instance.universe_size, false);
  std::vector<bool> used(instance.subsets.size(), false);
  size_t total = 0;
  for (size_t step = 0; step < k; ++step) {
    size_t best = instance.subsets.size();
    size_t best_gain = 0;
    for (size_t s = 0; s < instance.subsets.size(); ++s) {
      if (used[s]) continue;
      size_t gain = 0;
      for (size_t e : instance.subsets[s]) {
        if (!covered[e]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = s;
      }
    }
    if (best == instance.subsets.size()) break;
    used[best] = true;
    for (size_t e : instance.subsets[best]) covered[e] = true;
    total += best_gain;
  }
  return total;
}

size_t BruteForceMaxCoverage(const McpInstance& instance, size_t k) {
  const size_t m = instance.subsets.size();
  SMARTDD_CHECK(m <= 20) << "brute force limited to small instances";
  size_t best = 0;
  std::vector<size_t> chosen;
  std::function<void(size_t)> recurse = [&](size_t start) {
    if (chosen.size() == std::min(k, m)) {
      std::vector<bool> covered(instance.universe_size, false);
      for (size_t s : chosen) {
        for (size_t e : instance.subsets[s]) covered[e] = true;
      }
      size_t count = static_cast<size_t>(
          std::count(covered.begin(), covered.end(), true));
      best = std::max(best, count);
      return;
    }
    for (size_t s = start; s < m; ++s) {
      chosen.push_back(s);
      recurse(s + 1);
      chosen.pop_back();
    }
  };
  recurse(0);
  return best;
}

}  // namespace smartdd
