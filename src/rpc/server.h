#ifndef SMARTDD_RPC_SERVER_H_
#define SMARTDD_RPC_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/status.h"
#include "rpc/frame.h"

namespace smartdd::rpc {

struct RpcServerCore;
struct RpcConn;

struct ServerOptions {
  /// Address/port to listen on; port 0 binds an ephemeral port (read it
  /// back from Server::port() after Start()).
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  /// Threads running call handlers. The shard-server's engine work rides
  /// the engine's own scheduler, so a handful is plenty.
  size_t worker_threads = 4;
  /// Accepted connections beyond this are closed immediately (a router
  /// keeps one multiplexed connection per backend, so the cap is small).
  size_t max_connections = 64;
  /// Per-connection cap on buffered unsent bytes. A peer that stops
  /// reading past this backlog has its connection aborted rather than
  /// buffering without bound.
  size_t max_out_buffer_bytes = 4 * 1024 * 1024;
  /// How long Shutdown() waits for in-flight calls to drain before closing
  /// their connections anyway.
  uint64_t drain_timeout_ms = 10000;
};

/// Thread-safe handle for answering one CALL. Handlers may keep it past
/// their return (async completion); the in-flight slot is released by
/// Finish. A Responder abandoned without Finish answers Internal on
/// destruction, so a buggy handler can never hang its caller.
class Responder {
 public:
  ~Responder();

  Responder(const Responder&) = delete;
  Responder& operator=(const Responder&) = delete;

  /// The codec request line carried by the CALL.
  const std::string& line() const { return line_; }

  /// Whether the caller asked for STREAM frames before the RESULT.
  bool wants_stream() const { return wants_stream_; }

  /// The call's budget, re-armed server-side from the CALL's remaining
  /// milliseconds and tied to the cancel state — expired() also fires once
  /// the peer sent CANCEL or its connection died. Valid while this
  /// Responder is alive.
  const Deadline& deadline() const { return deadline_; }

  /// True once the peer cancelled this call or its connection is gone.
  bool cancelled() const;

  /// Sends one STREAM frame (seq assigned 0,1,2,... in call order).
  /// Returns false once the call is cancelled or the connection died —
  /// the handler should stop producing.
  bool Stream(std::string_view step_json);

  /// Sends the RESULT frame and completes the call. One-shot (later calls
  /// are ignored); safe from any thread.
  void Finish(const ResultPayload& result);

 private:
  friend class Server;
  Responder(std::shared_ptr<RpcServerCore> core, std::shared_ptr<RpcConn> conn,
            uint64_t call_id, CallPayload call);

  const std::shared_ptr<RpcServerCore> core_;
  const std::shared_ptr<RpcConn> conn_;
  const uint64_t call_id_;
  const std::string line_;
  const bool wants_stream_;
  const std::shared_ptr<std::atomic<bool>> cancel_flag_;
  Deadline deadline_;
  uint64_t dispatch_ms_ = 0;
  std::atomic<uint32_t> next_seq_{0};
  std::atomic<bool> finished_{false};
};

/// The call handler. Runs on a server worker thread; must eventually call
/// responder->Finish (directly or from an async completion).
using CallHandler = std::function<void(const std::shared_ptr<Responder>&)>;

/// A non-blocking epoll-driven RPC server speaking the rpc/frame wire
/// format: one event-loop thread owns every socket (accept, handshake,
/// frame reassembly, flush) and a small worker pool runs handlers, so a
/// slow peer can never wedge the loop and a slow handler can never wedge
/// other connections' I/O. Calls multiplex freely on one connection;
/// CANCEL frames flip the matching call's cancel flag (visible through
/// Responder::deadline()). Shutdown() is graceful (GOAWAY to every peer,
/// drain in-flight calls, flush, close); Stop() is abrupt (close
/// everything now — the chaos path). Instrumented via common/metrics
/// (smartdd_rpc_server_*). Fault point `rpc.server.dispatch` fires before
/// each handler invocation.
class Server {
 public:
  explicit Server(CallHandler handler, ServerOptions options = {});
  /// Calls Shutdown() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event loop + workers. IOError on any
  /// socket failure (port in use, bad address).
  Status Start();

  /// Graceful shutdown: closes the listener, sends GOAWAY on live
  /// connections, waits up to drain_timeout_ms for in-flight calls, then
  /// flushes and closes everything and joins. Idempotent.
  void Shutdown();

  /// Abrupt stop: closes every connection immediately, abandoning buffered
  /// output and in-flight calls (their Responders outlive the server
  /// safely and their peers observe a dead connection). For tests that
  /// simulate a crashing backend without a process kill.
  void Stop();

  /// The bound port (after Start()); useful with port 0.
  uint16_t port() const { return port_; }

  /// True between successful Start() and Shutdown()/Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Live accepted connections (for tests).
  size_t open_connections() const;

  /// Calls dispatched but not yet finished (for tests).
  size_t inflight_calls() const;

 private:
  void EventLoop();
  void WorkerLoop();
  void AcceptAll();
  void HandleIo(const std::shared_ptr<RpcConn>& conn, uint32_t events);
  /// Decodes buffered input into frames and acts on them.
  void Advance(const std::shared_ptr<RpcConn>& conn);
  void DispatchCall(const std::shared_ptr<RpcConn>& conn, Frame frame);
  /// Writes as much pending output as the socket accepts; arms EPOLLOUT
  /// when it blocks. Event-loop thread only.
  void FlushOut(const std::shared_ptr<RpcConn>& conn);
  void CloseConn(const std::shared_ptr<RpcConn>& conn);
  void ShutdownThreads(bool flush);

  const CallHandler handler_;
  const ServerOptions options_;
  const std::shared_ptr<RpcServerCore> core_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::mutex tasks_mu_;
  std::condition_variable tasks_cv_;
  std::deque<std::function<void()>> tasks_;
  bool workers_stop_ = false;

  /// Event-loop-thread-only connection table.
  std::unordered_map<uint64_t, std::shared_ptr<RpcConn>> conns_;
  uint64_t next_conn_id_ = 1;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> abort_flush_{false};
  std::atomic<size_t> open_conns_{0};

  // smartdd_rpc_server_* instruments (process-wide registry).
  Counter& calls_total_;
  Counter& protocol_errors_total_;
  Counter& connections_total_;
  Gauge& connections_open_;
};

}  // namespace smartdd::rpc

#endif  // SMARTDD_RPC_SERVER_H_
