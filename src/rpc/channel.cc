#include "rpc/channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd::rpc {

namespace {

uint64_t NowMsSteady() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Non-blocking dial with a budget, then back to blocking mode (the
/// channel's socket I/O is blocking: sends are short and serialized, reads
/// live on a dedicated thread).
Result<int> DialBlocking(const std::string& host, uint16_t port,
                         double timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("bad host '%s'", host.c_str()));
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    Status status = Status::Unavailable(StrFormat(
        "connect %s:%u: %s", host.c_str(), unsigned{port},
        std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready > 0) ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (ready <= 0 || err != 0) {
      Status status = Status::Unavailable(StrFormat(
          "connect %s:%u: %s", host.c_str(), unsigned{port},
          ready <= 0 ? "timed out" : std::strerror(err)));
      ::close(fd);
      return status;
    }
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Blocking read of exactly `n` bytes with a poll budget.
bool ReadExactly(int fd, char* buf, size_t n, double timeout_ms) {
  size_t got = 0;
  uint64_t give_up = NowMsSteady() + static_cast<uint64_t>(timeout_ms);
  while (got < n) {
    uint64_t now = NowMsSteady();
    if (now >= give_up) return false;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(give_up - now)) <= 0) return false;
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

Channel::Channel(ChannelOptions options)
    : options_(std::move(options)),
      target_(StrFormat("%s:%u", options_.host.c_str(),
                        unsigned{options_.port})),
      calls_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_rpc_client_calls_total", "RPC calls issued")),
      errors_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_rpc_client_errors_total",
          "RPC calls failed at the transport (dead peer, timeout)")),
      reconnects_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_rpc_client_reconnects_total",
          "Connections dialed beyond each channel's first")),
      call_seconds_(MetricsRegistry::Default().GetHistogram(
          "smartdd_rpc_client_call_seconds",
          "Send-to-result latency of RPC calls",
          Histogram::LatencySeconds())) {}

Channel::~Channel() { Close(); }

bool Channel::connected() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return fd_ >= 0 && !reader_done_ && !goaway_;
}

Status Channel::Connect() {
  std::lock_guard<std::mutex> lock(state_mu_);
  ReapReaderLocked();
  if (fd_ >= 0) return Status::OK();
  return ConnectLocked();
}

Status Channel::ConnectLocked() {
  auto dialed =
      DialBlocking(options_.host, options_.port, options_.connect_timeout_ms);
  if (!dialed.ok()) return dialed.status();
  int fd = *dialed;

  // Greetings are eager on both ends: write ours, demand the peer's before
  // the first frame.
  std::string hello = EncodeHandshake();
  if (::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(hello.size())) {
    ::close(fd);
    return Status::Unavailable(
        StrFormat("%s: handshake send failed", target_.c_str()));
  }
  char buf[kHandshakeBytes];
  if (!ReadExactly(fd, buf, sizeof(buf), options_.connect_timeout_ms)) {
    ::close(fd);
    return Status::Unavailable(
        StrFormat("%s: no handshake from peer", target_.c_str()));
  }
  auto version = DecodeHandshake(std::string_view(buf, sizeof(buf)));
  if (!version.ok()) {
    ::close(fd);
    return version.status();
  }

  if (connected_once_) reconnects_total_.Inc();
  connected_once_ = true;
  fd_ = fd;
  goaway_ = false;
  reader_done_ = false;
  reader_ = std::thread([this, fd]() { ReaderLoop(fd); });
  return Status::OK();
}

void Channel::ReapReaderLocked() {
  if (reader_done_) {
    if (reader_.joinable()) reader_.join();
    reader_done_ = false;
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
}

void Channel::FailPendingLocked(const Status& status) {
  for (auto& [id, call] : pending_) {
    if (!call->done) {
      call->transport = status;
      call->done = true;
    }
  }
  cv_.notify_all();
}

void Channel::Close() {
  std::unique_lock<std::mutex> lock(state_mu_);
  if (fd_ >= 0 && !reader_done_) {
    // Wake the reader out of recv; it fails the pending calls and flags
    // itself done.
    ::shutdown(fd_, SHUT_RDWR);
    cv_.wait(lock, [this]() { return reader_done_; });
  }
  ReapReaderLocked();
}

void Channel::ReaderLoop(int fd) {
  std::string in;
  char buf[16384];
  Status death = Status::Unavailable(
      StrFormat("%s: connection lost", target_.c_str()));
  while (true) {
    if (Status injected = InjectFault("rpc.client.recv"); !injected.ok()) {
      death = Status::Unavailable(StrFormat(
          "%s: %s", target_.c_str(), injected.message().c_str()));
      break;
    }
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r == 0) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    in.append(buf, static_cast<size_t>(r));
    bool fatal = false;
    while (true) {
      Frame frame;
      size_t consumed = 0;
      std::string error;
      DecodeState state = DecodeFrame(in, &frame, &consumed, &error);
      if (state == DecodeState::kNeedMore) break;
      if (state == DecodeState::kError) {
        death = Status::Unavailable(
            StrFormat("%s: protocol error: %s", target_.c_str(),
                      error.c_str()));
        fatal = true;
        break;
      }
      in.erase(0, consumed);
      if (frame.type == FrameType::kGoAway) {
        std::lock_guard<std::mutex> lock(state_mu_);
        goaway_ = true;
        continue;
      }
      if (frame.type == FrameType::kStream) {
        std::shared_ptr<PendingCall> call;
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          auto it = pending_.find(frame.call_id);
          if (it != pending_.end()) call = it->second;
        }
        if (call && call->on_step && !call->cancelled) {
          auto step = DecodeStreamPayload(frame.payload);
          if (step.ok() && !call->on_step(*step)) {
            call->cancelled = true;
            SendCancel(frame.call_id);
          }
        }
        continue;
      }
      if (frame.type == FrameType::kResult) {
        std::lock_guard<std::mutex> lock(state_mu_);
        auto it = pending_.find(frame.call_id);
        if (it != pending_.end()) {
          it->second->result_bytes = std::move(frame.payload);
          it->second->done = true;
          cv_.notify_all();
        }
        continue;
      }
      // CALL/CANCEL from a server are nonsense.
      death = Status::Unavailable(
          StrFormat("%s: unexpected frame from server", target_.c_str()));
      fatal = true;
      break;
    }
    if (fatal) break;
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  FailPendingLocked(death);
  reader_done_ = true;
  cv_.notify_all();
}

bool Channel::SendBytes(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  int fd;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    if (fd_ < 0 || reader_done_) return false;
    fd = fd_;
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

void Channel::SendCancel(uint64_t call_id) {
  std::string bytes;
  AppendFrame(bytes, FrameType::kCancel, call_id, "");
  SendBytes(bytes);
}

Result<ResultPayload> Channel::Call(std::string_view line,
                                    const Deadline& deadline) {
  return DoCall(line, deadline, nullptr);
}

Result<ResultPayload> Channel::CallStream(std::string_view line,
                                          const Deadline& deadline,
                                          StreamCallback on_step) {
  return DoCall(line, deadline, std::move(on_step));
}

Result<ResultPayload> Channel::DoCall(std::string_view line,
                                      const Deadline& deadline,
                                      StreamCallback on_step) {
  calls_total_.Inc();
  const uint64_t started_ms = NowMsSteady();

  if (Status injected = InjectFault("rpc.client.send"); !injected.ok()) {
    errors_total_.Inc();
    return Status::Unavailable(StrFormat("%s: %s", target_.c_str(),
                                         injected.message().c_str()));
  }

  CallPayload call;
  call.wants_stream = on_step != nullptr;
  call.line.assign(line);
  if (deadline.active()) {
    double remaining = deadline.remaining_ms();
    if (remaining != std::numeric_limits<double>::infinity()) {
      // Propagate the remaining budget (floored so an already-expired
      // deadline still travels as a tiny positive budget, keeping the
      // "deadline fired" decision at the server where the work runs).
      call.deadline_ms = std::max(remaining, 0.0001);
    }
  }

  uint64_t call_id;
  auto pending = std::make_shared<PendingCall>();
  pending->on_step = std::move(on_step);
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    ReapReaderLocked();
    if (goaway_ && fd_ >= 0) {
      // Peer said GOAWAY: abandon this connection for new calls (in-flight
      // ones finish on the reader) and dial a fresh one.
      ::shutdown(fd_, SHUT_RDWR);
      cv_.wait(lock, [this]() { return reader_done_; });
      ReapReaderLocked();
    }
    if (fd_ < 0) {
      Status status = ConnectLocked();
      if (!status.ok()) {
        errors_total_.Inc();
        return status;
      }
    }
    call_id = next_call_id_++;
    pending_[call_id] = pending;
  }

  std::string bytes;
  AppendFrame(bytes, FrameType::kCall, call_id, EncodeCallPayload(call));
  if (!SendBytes(bytes)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    pending_.erase(call_id);
    errors_total_.Inc();
    return Status::Unavailable(
        StrFormat("%s: send failed", target_.c_str()));
  }

  std::unique_lock<std::mutex> lock(state_mu_);
  bool expired = false;
  while (!pending->done) {
    if (deadline.active() && deadline.expired()) {
      expired = true;
      break;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  if (expired && !pending->done) {
    pending_.erase(call_id);
    lock.unlock();
    SendCancel(call_id);
    errors_total_.Inc();
    return Status::DeadlineExceeded(
        StrFormat("%s: rpc deadline expired", target_.c_str()));
  }
  pending_.erase(call_id);
  Status transport = pending->transport;
  std::string result_bytes = std::move(pending->result_bytes);
  lock.unlock();

  if (!transport.ok()) {
    errors_total_.Inc();
    return transport;
  }
  auto result = DecodeResultPayload(result_bytes);
  if (!result.ok()) {
    errors_total_.Inc();
    return Status::Unavailable(
        StrFormat("%s: malformed RESULT: %s", target_.c_str(),
                  result.status().message().c_str()));
  }
  call_seconds_.Observe(static_cast<double>(NowMsSteady() - started_ms) / 1e3);
  return std::move(*result);
}

}  // namespace smartdd::rpc
