#include "rpc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "api/codec.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd::rpc {

namespace {

/// epoll user-data keys for the two non-connection fds; connection ids
/// start above them.
constexpr uint64_t kListenKey = 0;
constexpr uint64_t kEventKey = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr int kEpollWaitMs = 50;

uint64_t NowMsSteady() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// Shared state co-owned by the server and every live Responder, so a call
/// finishing after the server object is gone — an expansion that outlived
/// the shutdown drain window — touches only memory it co-owns.
struct RpcServerCore {
  RpcServerCore()
      : call_seconds(MetricsRegistry::Default().GetHistogram(
            "smartdd_rpc_server_call_seconds",
            "Dispatch-to-finish latency of handled RPC calls",
            Histogram::LatencySeconds())),
        stream_frames_total(MetricsRegistry::Default().GetCounter(
            "smartdd_rpc_server_stream_frames_total",
            "STREAM frames sent to RPC peers")) {}

  /// Queues `id` for event-loop attention and pokes the eventfd. Safe from
  /// any thread, at any point in the server's lifetime: after shutdown the
  /// fd reads -1 under the same lock and the poke is skipped.
  void MarkDirty(uint64_t id) {
    std::lock_guard<std::mutex> lock(dirty_mu);
    if (id >= kFirstConnId) dirty.push_back(id);
    if (event_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof(one));
    }
  }

  void DecrementInflight() {
    if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mu);
      drain_cv.notify_all();
    }
  }

  size_t max_out_buffer_bytes = 4 * 1024 * 1024;
  std::atomic<size_t> inflight{0};
  std::mutex drain_mu;
  std::condition_variable drain_cv;
  std::mutex dirty_mu;
  std::vector<uint64_t> dirty;
  /// Wakeup fd; -1 once shutdown closes it (lifetime guarded by dirty_mu).
  int event_fd = -1;
  Histogram& call_seconds;
  Counter& stream_frames_total;
};

/// Per-connection state. The unannotated fields belong to the event-loop
/// thread alone (input, frame reassembly, epoll bookkeeping); everything a
/// worker or Responder touches sits behind `mu` or is atomic.
struct RpcConn {
  RpcConn(int fd, uint64_t id) : fd(fd), id(id) {}

  const int fd;
  const uint64_t id;

  // --- event-loop thread only ---
  std::string in;
  bool handshaken = false;
  bool read_eof = false;
  uint32_t armed_mask = 0;

  // --- shared with workers / responders ---
  std::atomic<bool> closed{false};
  std::mutex mu;
  std::string out;  ///< bytes awaiting the socket (guarded by mu)
  bool abort_conn = false;  ///< discard `out` and close now (guarded by mu)
  /// Live calls' cancel flags, keyed by call_id (guarded by mu). A CANCEL
  /// frame or connection death flips the flag; Finish erases the entry.
  std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>> calls;
};

// --- Responder -----------------------------------------------------------

Responder::Responder(std::shared_ptr<RpcServerCore> core,
                     std::shared_ptr<RpcConn> conn, uint64_t call_id,
                     CallPayload call)
    : core_(std::move(core)),
      conn_(std::move(conn)),
      call_id_(call_id),
      line_(std::move(call.line)),
      wants_stream_(call.wants_stream),
      cancel_flag_(std::make_shared<std::atomic<bool>>(false)),
      dispatch_ms_(NowMsSteady()) {
  {
    std::lock_guard<std::mutex> lock(conn_->mu);
    conn_->calls[call_id_] = cancel_flag_;
  }
  // Re-arm the caller's remaining budget on this side of the wire and tie
  // it to the cancel state, so one expired() poll inside the engine
  // observes both deadline expiry and peer cancellation.
  deadline_ = (call.deadline_ms > 0 ? Deadline::AfterMillis(call.deadline_ms)
                                    : Deadline())
                  .WithCancelFlag(cancel_flag_.get());
}

Responder::~Responder() {
  // Safety net: a handler that never finished must not hang its caller or
  // leak the in-flight slot.
  if (!finished_.load(std::memory_order_acquire)) {
    ResultPayload result;
    result.code = StatusCode::kInternal;
    result.json =
        "{\"ok\":false,\"error\":{\"code\":\"INTERNAL\",\"message\":"
        "\"handler abandoned the call\"}}";
    Finish(result);
  }
}

bool Responder::cancelled() const {
  return cancel_flag_->load(std::memory_order_acquire) ||
         conn_->closed.load(std::memory_order_acquire);
}

bool Responder::Stream(std::string_view step_json) {
  if (finished_.load(std::memory_order_acquire) || cancelled()) return false;
  StreamPayload step;
  step.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  step.json.assign(step_json);
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn_->mu);
    if (conn_->out.size() + step.json.size() > core_->max_out_buffer_bytes) {
      overflow = true;
      conn_->abort_conn = true;  // the peer stopped reading; cut it loose
    } else {
      AppendFrame(conn_->out, FrameType::kStream, call_id_,
                  EncodeStreamPayload(step));
    }
  }
  if (overflow) {
    cancel_flag_->store(true, std::memory_order_release);
    core_->MarkDirty(conn_->id);
    return false;
  }
  core_->stream_frames_total.Inc();
  core_->MarkDirty(conn_->id);
  return true;
}

void Responder::Finish(const ResultPayload& result) {
  if (finished_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(conn_->mu);
    conn_->calls.erase(call_id_);
    if (!conn_->closed.load(std::memory_order_acquire) && !conn_->abort_conn) {
      AppendFrame(conn_->out, FrameType::kResult, call_id_,
                  EncodeResultPayload(result));
    }
  }
  core_->call_seconds.Observe(
      static_cast<double>(NowMsSteady() - dispatch_ms_) / 1e3);
  core_->DecrementInflight();
  core_->MarkDirty(conn_->id);
}

// --- Server --------------------------------------------------------------

Server::Server(CallHandler handler, ServerOptions options)
    : handler_(std::move(handler)),
      options_(std::move(options)),
      core_(std::make_shared<RpcServerCore>()),
      calls_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_rpc_server_calls_total", "RPC calls dispatched")),
      protocol_errors_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_rpc_server_protocol_errors_total",
          "Connections dropped for handshake or framing violations")),
      connections_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_rpc_server_connections_total", "RPC connections accepted")),
      connections_open_(MetricsRegistry::Default().GetGauge(
          "smartdd_rpc_server_connections_open",
          "Currently open RPC connections")) {
  SMARTDD_CHECK(handler_ != nullptr);
  core_->max_out_buffer_bytes = options_.max_out_buffer_bytes;
}

Server::~Server() { Shutdown(); }

size_t Server::open_connections() const {
  return open_conns_.load(std::memory_order_acquire);
}

size_t Server::inflight_calls() const {
  return core_->inflight.load(std::memory_order_acquire);
}

Status Server::Start() {
  SMARTDD_CHECK(!running_.load()) << "rpc::Server started twice";

  // Same belt-and-braces as the HTTP server: a peer slamming its socket
  // shut mid-write must surface as EPIPE, never SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("bad bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status status = Status::IOError(
        StrFormat("bind/listen %s:%u: %s", options_.bind_address.c_str(),
                  unsigned{options_.port}, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  int event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd < 0) {
    Status status = Status::IOError("epoll_create1/eventfd failed");
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
    if (event_fd >= 0) ::close(event_fd);
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(core_->dirty_mu);
    core_->event_fd = event_fd;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd, &ev);

  stop_.store(false);
  draining_.store(false);
  abort_flush_.store(false);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this]() { EventLoop(); });
  const size_t workers = std::max<size_t>(1, options_.worker_threads);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  draining_.store(true, std::memory_order_release);
  core_->MarkDirty(kEventKey);  // just a poke; the loop sends GOAWAYs

  {
    std::unique_lock<std::mutex> lock(core_->drain_mu);
    core_->drain_cv.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this]() {
          return core_->inflight.load(std::memory_order_acquire) == 0;
        });
  }

  ShutdownThreads(/*flush=*/true);
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);
  abort_flush_.store(true, std::memory_order_release);
  ShutdownThreads(/*flush=*/false);
}

void Server::ShutdownThreads(bool flush) {
  if (!flush) abort_flush_.store(true, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  core_->MarkDirty(kEventKey);
  loop_thread_.join();

  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    workers_stop_ = true;
  }
  tasks_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // Close the wakeup fds only after every thread that could poke them is
  // gone; a straggler Responder::Finish co-owns the core, takes dirty_mu,
  // sees -1, and skips the write.
  {
    std::lock_guard<std::mutex> lock(core_->dirty_mu);
    if (core_->event_fd >= 0) ::close(core_->event_fd);
    core_->event_fd = -1;
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(tasks_mu_);
      tasks_cv_.wait(lock,
                     [this]() { return workers_stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // workers_stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void Server::EventLoop() {
  std::vector<epoll_event> events(64);
  bool listener_open = true;
  bool goaways_sent = false;
  uint64_t flush_deadline = 0;
  while (true) {
    if (stop_.load(std::memory_order_acquire)) {
      if (abort_flush_.load(std::memory_order_acquire)) break;
      // Final-flush phase: in-flight calls have drained (or timed out),
      // but finished RESULTs may still sit in connection buffers. Pump
      // briefly so graceful shutdown delivers them.
      if (flush_deadline == 0) flush_deadline = NowMsSteady() + 2000;
      bool pending = false;
      for (auto& [id, conn] : conns_) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->out.empty()) {
          pending = true;
          break;
        }
      }
      if (!pending || NowMsSteady() >= flush_deadline) break;
    }
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), kEpollWaitMs);
    if (draining_.load(std::memory_order_acquire)) {
      if (listener_open) {
        // Graceful shutdown step 1: stop accepting. Live connections keep
        // flushing and in-flight calls keep running until drained.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
        listener_open = false;
      }
      if (!goaways_sent && !abort_flush_.load(std::memory_order_acquire)) {
        goaways_sent = true;
        for (auto& [id, conn] : conns_) {
          std::lock_guard<std::mutex> lock(conn->mu);
          AppendFrame(conn->out, FrameType::kGoAway, 0, "draining");
        }
        for (auto& [id, conn] : conns_) FlushOut(conn);
      }
    }
    for (int i = 0; i < n; ++i) {
      uint64_t key = events[i].data.u64;
      if (key == kListenKey) {
        if (listener_open) AcceptAll();
      } else if (key == kEventKey) {
        uint64_t drainer;
        while (::read(core_->event_fd, &drainer, sizeof(drainer)) > 0) {
        }
      } else {
        auto it = conns_.find(key);
        if (it != conns_.end()) {
          // Copy the owner: HandleIo may CloseConn, which erases the map
          // entry this iterator points at.
          std::shared_ptr<RpcConn> conn = it->second;
          HandleIo(conn, events[i].events);
        }
      }
    }
    // Serve wakeups from workers/responders (RESULT/STREAM bytes ready).
    std::vector<uint64_t> dirty;
    {
      std::lock_guard<std::mutex> lock(core_->dirty_mu);
      dirty.swap(core_->dirty);
    }
    for (uint64_t id : dirty) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      std::shared_ptr<RpcConn> conn = it->second;
      bool abort;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        abort = conn->abort_conn;
      }
      if (abort) {
        CloseConn(conn);
        continue;
      }
      FlushOut(conn);
    }
  }
  // Loop exit: tear down whatever is left (drain timeout stragglers).
  std::vector<std::shared_ptr<RpcConn>> leftover;
  leftover.reserve(conns_.size());
  for (auto& [id, conn] : conns_) leftover.push_back(conn);
  for (auto& conn : leftover) CloseConn(conn);
  if (listener_open && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptAll() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_total_.Inc();
    if (conns_.size() >= options_.max_connections ||
        draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    uint64_t id = kFirstConnId + next_conn_id_++;
    auto conn = std::make_shared<RpcConn>(fd, id);
    // Both sides greet eagerly: our preamble goes out before any frame,
    // and the peer's must arrive before any frame is parsed.
    conn->out = EncodeHandshake();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->armed_mask = EPOLLIN;
    conns_.emplace(id, std::move(conn));
    open_conns_.fetch_add(1, std::memory_order_acq_rel);
    connections_open_.Add(1);
    FlushOut(conns_.at(id));
  }
}

void Server::HandleIo(const std::shared_ptr<RpcConn>& conn, uint32_t events) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(conn);
    return;
  }
  if (events & EPOLLIN) {
    char buf[16384];
    while (true) {
      ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (r > 0) {
        conn->in.append(buf, static_cast<size_t>(r));
        // Bounded input: a peer cannot buffer more than one max frame
        // plus a read quantum before the loop parses it down.
        if (conn->in.size() > kMaxFramePayload + kFrameHeaderBytes +
                                  sizeof(buf)) {
          break;
        }
      } else if (r == 0) {
        conn->read_eof = true;
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          CloseConn(conn);
          return;
        }
        break;
      }
    }
    Advance(conn);
    if (conn->closed.load(std::memory_order_acquire)) return;
    if (conn->read_eof && conn->in.empty()) {
      // Peer is gone; cancel whatever it had in flight and close once the
      // (now pointless) output would have flushed.
      CloseConn(conn);
      return;
    }
  }
  FlushOut(conn);
}

void Server::Advance(const std::shared_ptr<RpcConn>& conn) {
  if (!conn->handshaken) {
    if (conn->in.size() < kHandshakeBytes) return;
    auto version = DecodeHandshake(conn->in);
    if (!version.ok()) {
      protocol_errors_total_.Inc();
      SMARTDD_LOG(Warning) << "rpc: dropping peer: "
                           << version.status().ToString();
      CloseConn(conn);
      return;
    }
    conn->in.erase(0, kHandshakeBytes);
    conn->handshaken = true;
  }
  while (!conn->closed.load(std::memory_order_acquire)) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    DecodeState state = DecodeFrame(conn->in, &frame, &consumed, &error);
    if (state == DecodeState::kNeedMore) break;
    if (state == DecodeState::kError) {
      protocol_errors_total_.Inc();
      SMARTDD_LOG(Warning) << "rpc: dropping peer: " << error;
      CloseConn(conn);
      return;
    }
    conn->in.erase(0, consumed);
    switch (frame.type) {
      case FrameType::kCall:
        DispatchCall(conn, std::move(frame));
        break;
      case FrameType::kCancel: {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->calls.find(frame.call_id);
        if (it != conn->calls.end()) {
          it->second->store(true, std::memory_order_release);
        }
        break;
      }
      case FrameType::kGoAway:
        // A client saying goodbye: stop reading new frames; the
        // connection closes once its output drains and calls finish.
        conn->read_eof = true;
        break;
      default:
        // RESULT/STREAM from a client are nonsense.
        protocol_errors_total_.Inc();
        CloseConn(conn);
        return;
    }
  }
}

void Server::DispatchCall(const std::shared_ptr<RpcConn>& conn, Frame frame) {
  calls_total_.Inc();
  auto call = DecodeCallPayload(frame.payload);
  core_->inflight.fetch_add(1, std::memory_order_acq_rel);
  std::shared_ptr<Responder> responder;
  if (call.ok()) {
    responder.reset(new Responder(core_, conn, frame.call_id,
                                  std::move(*call)));
  } else {
    // A malformed CALL still earns a coded RESULT: create the responder
    // with an empty line and fail it on the worker, keeping all result
    // serialization on one path.
    responder.reset(new Responder(core_, conn, frame.call_id, CallPayload{}));
  }
  Status defect = call.ok() ? Status::OK() : call.status();
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back([this, responder, defect = std::move(defect)]() {
      Status blocked = defect;
      if (blocked.ok()) blocked = InjectFault("rpc.server.dispatch");
      if (!blocked.ok()) {
        ResultPayload result;
        result.code = blocked.code();
        api::Response response;
        response.status = blocked;
        result.json = api::EncodeResponse(response);
        responder->Finish(result);
        return;
      }
      handler_(responder);
    });
  }
  tasks_cv_.notify_one();
}

void Server::FlushOut(const std::shared_ptr<RpcConn>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool io_error = false;
  bool out_empty;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->out.empty()) {
      ssize_t w = ::send(conn->fd, conn->out.data(),
                         std::min<size_t>(conn->out.size(), 1 << 16),
                         MSG_NOSIGNAL);
      if (w > 0) {
        conn->out.erase(0, static_cast<size_t>(w));
      } else if (w < 0 && errno == EINTR) {
        continue;
      } else if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        io_error = true;
        break;
      }
    }
    out_empty = conn->out.empty();
  }
  if (io_error) {
    CloseConn(conn);
    return;
  }
  if (out_empty && conn->read_eof) {
    bool idle;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      idle = conn->calls.empty();
    }
    if (idle) {
      CloseConn(conn);
      return;
    }
  }

  // Re-arm epoll for exactly what this connection still needs.
  uint32_t mask = 0;
  if (!conn->read_eof) mask |= EPOLLIN;
  if (!out_empty) mask |= EPOLLOUT;
  if (mask != conn->armed_mask) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->armed_mask = mask;
  }
}

void Server::CloseConn(const std::shared_ptr<RpcConn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  {
    // Calls still running against this connection observe cancellation at
    // their next deadline poll and their Finish becomes a no-op write.
    std::lock_guard<std::mutex> lock(conn->mu);
    for (auto& [call_id, flag] : conn->calls) {
      flag->store(true, std::memory_order_release);
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->id);
  open_conns_.fetch_sub(1, std::memory_order_acq_rel);
  connections_open_.Sub(1);
}

}  // namespace smartdd::rpc
