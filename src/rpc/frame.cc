#include "rpc/frame.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd::rpc {

namespace {

constexpr char kMagic[4] = {'S', 'D', 'R', 'P'};

void AppendU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendF64(std::string& out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8));
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

double ReadF64(const char* p) {
  uint64_t bits = ReadU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kCall) &&
         t <= static_cast<uint8_t>(FrameType::kGoAway);
}

}  // namespace

std::string EncodeHandshake(uint16_t version) {
  std::string out;
  out.reserve(kHandshakeBytes);
  out.append(kMagic, sizeof(kMagic));
  AppendU16(out, version);
  AppendU16(out, 0);  // reserved
  return out;
}

Result<uint16_t> DecodeHandshake(std::string_view bytes) {
  if (bytes.size() < kHandshakeBytes) {
    return Status::InvalidArgument(
        StrFormat("handshake needs %zu bytes, got %zu", kHandshakeBytes,
                  bytes.size()));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad handshake magic (not an SDRP peer)");
  }
  uint16_t version = ReadU16(bytes.data() + 4);
  if (version == 0 || version > kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported protocol version %u (this build speaks <= %u)",
                  unsigned{version}, unsigned{kProtocolVersion}));
  }
  return version;
}

void AppendFrame(std::string& out, FrameType type, uint64_t call_id,
                 std::string_view payload) {
  SMARTDD_CHECK(payload.size() <= kMaxFramePayload);
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out.push_back(static_cast<char>(type));
  AppendU64(out, call_id);
  out.append(payload);
}

DecodeState DecodeFrame(std::string_view buf, Frame* frame, size_t* consumed,
                        std::string* error) {
  *consumed = 0;
  if (buf.size() < kFrameHeaderBytes) return DecodeState::kNeedMore;
  uint32_t len = ReadU32(buf.data());
  uint8_t type = static_cast<uint8_t>(buf[4]);
  if (len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = StrFormat("frame payload of %u bytes exceeds the %zu cap",
                         unsigned{len}, kMaxFramePayload);
    }
    return DecodeState::kError;
  }
  if (!ValidFrameType(type)) {
    if (error != nullptr) {
      *error = StrFormat("unknown frame type %u", unsigned{type});
    }
    return DecodeState::kError;
  }
  if (buf.size() < kFrameHeaderBytes + len) return DecodeState::kNeedMore;
  frame->type = static_cast<FrameType>(type);
  frame->call_id = ReadU64(buf.data() + 5);
  frame->payload.assign(buf.data() + kFrameHeaderBytes, len);
  *consumed = kFrameHeaderBytes + len;
  return DecodeState::kFrame;
}

std::string EncodeCallPayload(const CallPayload& call) {
  std::string out;
  out.reserve(1 + 8 + call.line.size());
  out.push_back(static_cast<char>(call.wants_stream ? 1 : 0));
  AppendF64(out, call.deadline_ms);
  out.append(call.line);
  return out;
}

Result<CallPayload> DecodeCallPayload(std::string_view payload) {
  if (payload.size() < 9) {
    return Status::InvalidArgument("CALL payload truncated");
  }
  CallPayload call;
  uint8_t flags = static_cast<uint8_t>(payload[0]);
  if ((flags & ~uint8_t{1}) != 0) {
    return Status::InvalidArgument("CALL payload has unknown flag bits");
  }
  call.wants_stream = (flags & 1) != 0;
  call.deadline_ms = ReadF64(payload.data() + 1);
  if (!(call.deadline_ms >= 0)) {  // also rejects NaN
    return Status::InvalidArgument("CALL deadline must be >= 0");
  }
  call.line.assign(payload.substr(9));
  return call;
}

std::string EncodeResultPayload(const ResultPayload& result) {
  std::string out;
  out.reserve(2 + result.json.size());
  out.push_back(static_cast<char>(result.code));
  uint8_t flags = (result.partial ? 1 : 0) | (result.has_tree ? 2 : 0);
  out.push_back(static_cast<char>(flags));
  out.append(result.json);
  return out;
}

Result<ResultPayload> DecodeResultPayload(std::string_view payload) {
  if (payload.size() < 2) {
    return Status::InvalidArgument("RESULT payload truncated");
  }
  uint8_t code = static_cast<uint8_t>(payload[0]);
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(
        StrFormat("RESULT carries unknown status code %u", unsigned{code}));
  }
  uint8_t flags = static_cast<uint8_t>(payload[1]);
  if ((flags & ~uint8_t{3}) != 0) {
    return Status::InvalidArgument("RESULT payload has unknown flag bits");
  }
  ResultPayload result;
  result.code = static_cast<StatusCode>(code);
  result.partial = (flags & 1) != 0;
  result.has_tree = (flags & 2) != 0;
  result.json.assign(payload.substr(2));
  return result;
}

std::string EncodeStreamPayload(const StreamPayload& step) {
  std::string out;
  out.reserve(4 + step.json.size());
  AppendU32(out, step.seq);
  out.append(step.json);
  return out;
}

Result<StreamPayload> DecodeStreamPayload(std::string_view payload) {
  if (payload.size() < 4) {
    return Status::InvalidArgument("STREAM payload truncated");
  }
  StreamPayload step;
  step.seq = ReadU32(payload.data());
  step.json.assign(payload.substr(4));
  return step;
}

}  // namespace smartdd::rpc
