#ifndef SMARTDD_RPC_FRAME_H_
#define SMARTDD_RPC_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace smartdd::rpc {

/// The cluster's wire format: a compact length-prefixed binary framing for
/// carrying the api/codec byte protocol between the front router and the
/// shard-server processes. The payload of a call is literally a codec
/// request line and the payload of a result is literally the codec's JSON
/// response line — the golden-tested text protocol stays the canonical
/// surface, and this layer only adds what a multi-process deployment needs:
/// version negotiation, call multiplexing, deadline propagation, streaming,
/// and cancellation.
///
/// Connection preamble (both directions, client first):
///
///   +----+----+----+----+----------+----------+
///   | 'S'| 'D'| 'R'| 'P'| u16 ver  | u16 rsvd |
///   +----+----+----+----+----------+----------+
///
/// Frame grammar (all integers little-endian):
///
///   +-------------+---------+--------------+----------------------+
///   | u32 len     | u8 type | u64 call_id  | payload (len bytes)  |
///   +-------------+---------+--------------+----------------------+
///
///   CALL    payload = u8 flags (bit0: wants stream) |
///                     f64 deadline_ms (0 = none)    | request line bytes
///   RESULT  payload = u8 status code | u8 flags (bit0: partial,
///                     bit1: has-tree) | response JSON bytes
///   STREAM  payload = u32 seq | step JSON bytes  (one greedy BRS step)
///   CANCEL  payload = empty   (client stops caring about call_id)
///   GOAWAY  payload = reason bytes (server is draining; finish and leave)
///
/// A RESULT terminates its call_id; STREAM frames (0..n, ordered by seq)
/// may precede it. Payloads are capped at kMaxFramePayload so a hostile or
/// corrupted peer cannot make a receiver buffer without bound.
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kHandshakeBytes = 8;
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 8;
inline constexpr size_t kMaxFramePayload = 16u << 20;

enum class FrameType : uint8_t {
  kCall = 1,
  kResult = 2,
  kStream = 3,
  kCancel = 4,
  kGoAway = 5,
};

struct Frame {
  FrameType type = FrameType::kCall;
  uint64_t call_id = 0;
  std::string payload;
};

/// The 8-byte connection preamble for `version`.
std::string EncodeHandshake(uint16_t version = kProtocolVersion);

/// Validates a peer's preamble; returns its protocol version. Bad magic or
/// a version this build cannot speak is InvalidArgument (the connection
/// must be closed — nothing after a failed handshake is trustworthy).
Result<uint16_t> DecodeHandshake(std::string_view bytes);

/// Appends one encoded frame to `out`. `payload` must fit kMaxFramePayload.
void AppendFrame(std::string& out, FrameType type, uint64_t call_id,
                 std::string_view payload);

/// Incremental frame extraction from the front of a receive buffer.
enum class DecodeState {
  kFrame,     ///< *frame is filled, *consumed bytes belong to it
  kNeedMore,  ///< the buffer holds a frame prefix; read more bytes
  kError,     ///< malformed (bad type, oversized payload); close the peer
};
DecodeState DecodeFrame(std::string_view buf, Frame* frame, size_t* consumed,
                        std::string* error);

/// CALL payload: the codec request line plus what the transport must know
/// without parsing it — whether the caller wants STREAM frames, and how
/// much of the client's deadline budget remains (re-armed server-side, so
/// the budget spans the process boundary).
struct CallPayload {
  bool wants_stream = false;
  double deadline_ms = 0;  ///< 0 = no deadline
  std::string line;
};
std::string EncodeCallPayload(const CallPayload& call);
Result<CallPayload> DecodeCallPayload(std::string_view payload);

/// RESULT payload: the codec JSON response line plus the envelope facts an
/// adapter needs without parsing JSON — the wire status code, the degraded
/// marker, and whether a tree payload is attached (HTTP maps
/// partial-with-tree to 200; SSE names its final event by `partial`).
struct ResultPayload {
  StatusCode code = StatusCode::kOk;
  bool partial = false;
  bool has_tree = false;
  std::string json;
};
std::string EncodeResultPayload(const ResultPayload& result);
Result<ResultPayload> DecodeResultPayload(std::string_view payload);

/// STREAM payload: one pre-encoded greedy-step JSON object, sequenced.
struct StreamPayload {
  uint32_t seq = 0;
  std::string json;
};
std::string EncodeStreamPayload(const StreamPayload& step);
Result<StreamPayload> DecodeStreamPayload(std::string_view payload);

}  // namespace smartdd::rpc

#endif  // SMARTDD_RPC_FRAME_H_
