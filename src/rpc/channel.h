#ifndef SMARTDD_RPC_CHANNEL_H_
#define SMARTDD_RPC_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/result.h"
#include "rpc/frame.h"

namespace smartdd::rpc {

struct ChannelOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Dial + handshake budget for each (re)connect attempt.
  double connect_timeout_ms = 2000;
};

/// Per-step callback for streaming calls. Runs on the channel's reader
/// thread, in seq order; return false to cancel the remaining steps (a
/// CANCEL frame goes out and the call still completes with its RESULT).
using StreamCallback = std::function<bool(const StreamPayload&)>;

/// A multiplexing client for rpc::Server: one TCP connection, any number of
/// concurrent calls from any number of threads, matched to responses by
/// call id on a single reader thread. A dead connection fails every
/// in-flight call with Unavailable and is re-dialed lazily by the next
/// call, so a restarted backend heals without external coordination.
/// Instrumented via common/metrics (smartdd_rpc_client_*). Fault points:
/// `rpc.client.send` fires before each call is written, `rpc.client.recv`
/// in the reader loop (an armed error kills the connection, exactly like a
/// peer crash).
class Channel {
 public:
  explicit Channel(ChannelOptions options);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Dials and handshakes if not connected. Unary and streaming calls do
  /// this lazily; an explicit Connect() is for fail-fast startup checks.
  Status Connect();

  /// True while a handshaken connection is up (a dead peer flips this the
  /// moment the reader notices).
  bool connected() const;

  /// "host:port", for logs and error messages.
  const std::string& target() const { return target_; }

  /// One codec line in, one RESULT out. The deadline bounds the whole
  /// exchange; its remaining budget also rides the CALL frame so the
  /// server re-arms it. Transport failures (dead/unreachable peer) come
  /// back as Unavailable; a deadline that fires while waiting sends CANCEL
  /// and returns DeadlineExceeded. Application-level errors are NOT errors
  /// here: they arrive as a RESULT whose payload carries the coded
  /// envelope.
  Result<ResultPayload> Call(std::string_view line,
                             const Deadline& deadline = {});

  /// Like Call, but asks the server for STREAM frames and feeds each to
  /// `on_step` (reader thread) before the RESULT completes the call.
  Result<ResultPayload> CallStream(std::string_view line,
                                   const Deadline& deadline,
                                   StreamCallback on_step);

  /// Drops the connection (in-flight calls fail with Unavailable).
  /// Idempotent; the next call re-dials.
  void Close();

 private:
  struct PendingCall {
    std::string result_bytes;  ///< encoded RESULT payload once done
    Status transport = Status::OK();
    bool done = false;
    bool cancelled = false;  ///< on_step said stop; drop later steps
    StreamCallback on_step;
  };

  /// Dials + handshakes; requires state_mu_ held and no live connection.
  Status ConnectLocked();
  /// Reaps a finished reader thread; requires state_mu_ held.
  void ReapReaderLocked();
  /// Fails every pending call; requires state_mu_ held.
  void FailPendingLocked(const Status& status);
  void ReaderLoop(int fd);
  Result<ResultPayload> DoCall(std::string_view line, const Deadline& deadline,
                               StreamCallback on_step);
  /// Serialized socket write; false on a send failure (connection is dead).
  bool SendBytes(const std::string& bytes);
  void SendCancel(uint64_t call_id);

  const ChannelOptions options_;
  const std::string target_;

  mutable std::mutex state_mu_;
  std::condition_variable cv_;
  int fd_ = -1;
  bool connected_once_ = false;  ///< distinguishes dials from re-dials
  bool reader_done_ = false;     ///< reader exited; thread awaits join
  bool goaway_ = false;          ///< peer is draining; new calls must re-dial
  std::thread reader_;
  uint64_t next_call_id_ = 1;
  std::map<uint64_t, std::shared_ptr<PendingCall>> pending_;

  std::mutex send_mu_;

  Counter& calls_total_;
  Counter& errors_total_;
  Counter& reconnects_total_;
  Histogram& call_seconds_;
};

}  // namespace smartdd::rpc

#endif  // SMARTDD_RPC_CHANNEL_H_
