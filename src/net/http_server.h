#ifndef SMARTDD_NET_HTTP_SERVER_H_
#define SMARTDD_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/http_parser.h"

namespace smartdd::net {

class HttpServer;
/// Shared state co-owned by the server and every live StreamWriter
/// (in-flight accounting, event-loop wakeups, stream metrics), so a stream
/// finishing after the server object is gone — an expansion that outlived
/// the shutdown drain window — touches only memory it co-owns, never the
/// destroyed server. Defined in http_server.cc.
struct ServerCore;

struct HttpServerOptions {
  /// Address/port to listen on; port 0 binds an ephemeral port (read it
  /// back from HttpServer::port() after Start()).
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  /// Threads running request handlers. Engine-bound work (SubmitExpand)
  /// rides the engine's own scheduler, so a handful is plenty.
  size_t worker_threads = 4;
  /// Accepted connections beyond this are answered 503 and closed.
  size_t max_connections = 1024;
  /// Requests dispatched-but-unfinished (including open SSE streams) beyond
  /// this are shed with 503 instead of queued — bounded work, bounded queue.
  size_t max_inflight_requests = 64;
  /// Connections with a stalled request (slow loris) or no request at all
  /// are closed after this long; 0 disables. Handling/streaming connections
  /// are exempt — a long expansion is work, not idleness.
  uint64_t idle_timeout_ms = 30000;
  /// Per-connection cap on buffered unsent stream bytes. A slow SSE reader
  /// that falls this far behind has its stream cancelled (the expansion's
  /// ProgressSink sees false) rather than blocking an engine worker.
  size_t max_stream_buffer_bytes = 256 * 1024;
  /// How long Shutdown() waits for in-flight requests/streams to drain
  /// before closing their connections anyway.
  uint64_t drain_timeout_ms = 10000;
  HttpLimits limits;
};

/// A buffered (non-streaming) response. `status` 0 is the streaming marker:
/// the handler took ownership of the StreamWriter and the response is
/// whatever it writes (see HttpResponse::Streaming()).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;

  static HttpResponse Streaming() {
    HttpResponse r;
    r.status = 0;
    return r;
  }
};

/// Incremental response channel for streaming handlers (SSE). Thread-safe;
/// writable from any thread (an engine worker inside a ProgressSink, long
/// after the handler returned). Never blocks: bytes land in the
/// connection's outbound buffer and the epoll loop flushes them as the
/// client drains. Once the buffered backlog exceeds
/// max_stream_buffer_bytes, the stream flips to cancelled — Write returns
/// false (the caller should stop producing) and End() tears the connection
/// down instead of waiting on a reader that is not reading.
class StreamWriter {
 public:
  /// Opaque per-connection state, defined in http_server.cc.
  struct Conn;

  ~StreamWriter();

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Sends the status line + headers (Transfer-Encoding: chunked on
  /// HTTP/1.1). Must be called once, before Write. Returns false if the
  /// client is already gone.
  bool Begin(int status, std::string_view content_type);

  /// Appends one chunk. Returns false once cancelled (buffer cap exceeded)
  /// or the connection died; the caller should stop streaming.
  bool Write(std::string_view data);

  /// Terminates the stream (final chunk on HTTP/1.1) and completes the
  /// request. Idempotent. Called by the destructor if forgotten, so an
  /// abandoned stream can never leak the in-flight slot.
  void End();

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  friend class HttpServer;
  StreamWriter(std::shared_ptr<ServerCore> core, std::shared_ptr<Conn> conn,
               bool chunked, bool keep_alive);

  std::shared_ptr<ServerCore> core_;
  std::shared_ptr<Conn> conn_;
  const bool chunked_;
  const bool keep_alive_;
  std::atomic<bool> begun_{false};
  std::atomic<bool> ended_{false};
  std::atomic<bool> cancelled_{false};
};

/// The request handler. Runs on a server worker thread. Return a buffered
/// HttpResponse, or call stream->Begin(...) and return
/// HttpResponse::Streaming() to produce the body incrementally (the stream
/// may outlive the handler call; End() completes the request).
using HttpHandler = std::function<HttpResponse(
    const HttpRequest&, const std::shared_ptr<StreamWriter>&)>;

/// A non-blocking, epoll-driven HTTP/1.1 server: one event-loop thread owns
/// every socket (accept, read, parse, flush, timeouts) and a small worker
/// pool runs handlers, so a slow client can never wedge the loop and a slow
/// handler can never wedge other connections' I/O. Supports keep-alive with
/// pipelining (responses serialize in request order — at most one request
/// per connection is in flight), chunked streaming responses, bounded
/// request parsing (see HttpLimits), connection/in-flight caps with 503
/// load shedding, slow-loris idle timeouts, and graceful drain-then-close
/// shutdown. Instrumented via common/metrics (smartdd_http_*).
class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler, HttpServerOptions options = {});
  /// Calls Shutdown() if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the event loop + workers. IOError on any
  /// socket failure (port in use, bad address).
  Status Start();

  /// Graceful shutdown: closes the listener, answers further requests on
  /// live connections with 503, waits up to drain_timeout_ms for in-flight
  /// requests and streams to finish, then closes everything and joins.
  /// Idempotent; safe to call from any thread except a handler.
  void Shutdown();

  /// The bound port (after Start()); useful with port 0.
  uint16_t port() const { return port_; }

  /// True between successful Start() and Shutdown().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once Shutdown() began draining (the readiness probe's "stop
  /// sending me traffic" signal; liveness stays true until the process
  /// exits).
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Live accepted connections (for tests).
  size_t open_connections() const;

  /// Requests dispatched or streaming, not yet complete (for tests).
  size_t inflight_requests() const;

 private:
  friend class StreamWriter;
  using Conn = StreamWriter::Conn;

  void EventLoop();
  void WorkerLoop();
  void AcceptAll();
  void HandleIo(const std::shared_ptr<Conn>& conn, uint32_t events);
  /// Parses buffered input and dispatches at most one request.
  void Advance(const std::shared_ptr<Conn>& conn);
  void DispatchRequest(const std::shared_ptr<Conn>& conn);
  /// Serializes a buffered response for the current request into the
  /// connection's outbound buffer and marks the request complete. Safe from
  /// any thread.
  void CompleteRequest(const std::shared_ptr<Conn>& conn,
                       const HttpResponse& response, bool keep_alive);
  /// Writes as much pending output as the socket accepts; arms EPOLLOUT
  /// when it blocks. Event-loop thread only.
  void FlushOut(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void SweepIdle(uint64_t now_ms);
  /// True when any connection still has unsent bytes (event-loop thread).
  bool AnyPendingOut();

  const HttpHandler handler_;
  const HttpServerOptions options_;
  /// Co-owned by every StreamWriter; see ServerCore.
  const std::shared_ptr<ServerCore> core_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::mutex tasks_mu_;
  std::condition_variable tasks_cv_;
  std::deque<std::function<void()>> tasks_;
  bool workers_stop_ = false;

  /// Event-loop-thread-only connection table.
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> open_conns_{0};

  // smartdd_http_* instruments (process-wide registry).
  Counter& requests_total_;
  Counter& shed_total_;
  Counter& parse_errors_total_;
  Counter& connections_total_;
  Gauge& connections_open_;
};

}  // namespace smartdd::net

#endif  // SMARTDD_NET_HTTP_SERVER_H_
