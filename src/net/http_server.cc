#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd::net {

namespace {

/// epoll user-data keys for the two non-connection fds; connection ids
/// start above them.
constexpr uint64_t kListenKey = 0;
constexpr uint64_t kEventKey = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr int kEpollWaitMs = 50;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 417: return "Expectation Failed";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              ReasonPhrase(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string ChunkFrame(std::string_view data) {
  std::string out = StrFormat("%zx\r\n", data.size());
  out += data;
  out += "\r\n";
  return out;
}

HttpResponse PlainResponse(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain; charset=utf-8";
  r.body = std::move(body);
  return r;
}

uint64_t NowMsSteady() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct ServerCore {
  explicit ServerCore(size_t stream_buffer_cap)
      : max_stream_buffer_bytes(stream_buffer_cap),
        sse_cancelled_total(MetricsRegistry::Default().GetCounter(
            "smartdd_http_sse_cancelled_total",
            "Streaming responses cancelled because the client fell behind")),
        request_seconds(MetricsRegistry::Default().GetHistogram(
            "smartdd_http_request_seconds",
            "Dispatch-to-completion latency of handled requests",
            Histogram::LatencySeconds())) {}

  /// Queues `id` for event-loop attention and pokes the eventfd. Safe from
  /// any thread, at any point in the server's lifetime: after shutdown the
  /// fd reads -1 under the same lock and the poke is skipped.
  void MarkDirty(uint64_t id) {
    std::lock_guard<std::mutex> lock(dirty_mu);
    if (id >= kFirstConnId) dirty.push_back(id);
    if (event_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof(one));
    }
  }

  void DecrementInflight() {
    if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mu);
      drain_cv.notify_all();
    }
  }

  const size_t max_stream_buffer_bytes;
  std::atomic<size_t> inflight{0};
  std::mutex drain_mu;
  std::condition_variable drain_cv;
  std::mutex dirty_mu;
  std::vector<uint64_t> dirty;
  /// Wakeup fd; -1 once shutdown closes it (lifetime guarded by dirty_mu).
  int event_fd = -1;
  Counter& sse_cancelled_total;
  Histogram& request_seconds;
};

/// Per-connection state. The unannotated fields belong to the event-loop
/// thread alone (input, parsing, epoll bookkeeping); everything a worker or
/// StreamWriter touches sits behind `mu` or is atomic.
struct StreamWriter::Conn {
  Conn(int fd, uint64_t id, const HttpLimits& limits)
      : fd(fd), id(id), parser(limits) {}

  const int fd;
  const uint64_t id;

  // --- event-loop thread only ---
  std::string in;
  HttpParser parser;
  bool handling = false;       ///< a request is dispatched / streaming
  bool dead_parse = false;     ///< fatal request defect: flush, then close
  bool read_eof = false;       ///< peer half-closed its write side
  uint32_t armed_mask = 0;     ///< events currently registered with epoll
  uint64_t last_activity_ms = 0;

  // --- shared with workers / stream writers ---
  std::atomic<bool> closed{false};
  std::mutex mu;
  std::string out;                   ///< bytes awaiting the socket
  bool response_complete = false;    ///< current request fully serialized
  bool close_after_response = false;
  bool streaming = false;
  bool abort_conn = false;           ///< discard `out` and close now
  uint64_t dispatch_ms = 0;          ///< request latency start
};

// --- request completion (shared by buffered and streamed paths) ----------

namespace {

/// Serializes a buffered response for the connection's current request and
/// marks it complete. Touches only the co-owned Conn and ServerCore, so it
/// is safe from any thread at any point in the server's lifetime.
void FinishRequest(ServerCore& core,
                   const std::shared_ptr<StreamWriter::Conn>& conn,
                   const HttpResponse& response, bool keep_alive) {
  std::string bytes = SerializeResponse(response, keep_alive);
  uint64_t started;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->out += bytes;
    conn->response_complete = true;
    if (!keep_alive) conn->close_after_response = true;
    started = conn->dispatch_ms;
  }
  core.request_seconds.Observe(static_cast<double>(NowMsSteady() - started) /
                               1e3);
  core.DecrementInflight();
  core.MarkDirty(conn->id);
}

}  // namespace

// --- StreamWriter --------------------------------------------------------

StreamWriter::StreamWriter(std::shared_ptr<ServerCore> core,
                           std::shared_ptr<Conn> conn, bool chunked,
                           bool keep_alive)
    : core_(std::move(core)),
      conn_(std::move(conn)),
      chunked_(chunked),
      keep_alive_(keep_alive) {}

StreamWriter::~StreamWriter() {
  // Safety net: a handler that claimed the stream but never finished it
  // (or an abandoned ProgressSink) must not leak the in-flight slot.
  if (!ended_.load(std::memory_order_acquire)) End();
}

bool StreamWriter::Begin(int status, std::string_view content_type) {
  if (conn_->closed.load(std::memory_order_acquire)) {
    // Client already gone. Leave begun_ unset so the handler's fallback
    // buffered response (if any) still takes the normal completion path.
    cancelled_.store(true, std::memory_order_release);
    return false;
  }
  if (begun_.exchange(true, std::memory_order_acq_rel)) return false;
  std::string head =
      StrFormat("HTTP/1.1 %d %s\r\n", status, ReasonPhrase(status));
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Cache-Control: no-cache\r\n";
  if (chunked_) head += "Transfer-Encoding: chunked\r\n";
  // A close-delimited (HTTP/1.0) stream cannot keep the connection alive.
  head += (keep_alive_ && chunked_) ? "Connection: keep-alive\r\n"
                                    : "Connection: close\r\n";
  head += "\r\n";
  {
    std::lock_guard<std::mutex> lock(conn_->mu);
    conn_->out += head;
    conn_->streaming = true;
  }
  core_->MarkDirty(conn_->id);
  return true;
}

bool StreamWriter::Write(std::string_view data) {
  if (!begun_.load(std::memory_order_acquire) ||
      ended_.load(std::memory_order_acquire) || cancelled()) {
    return false;
  }
  if (conn_->closed.load(std::memory_order_acquire)) {
    cancelled_.store(true, std::memory_order_release);
    return false;
  }
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn_->mu);
    if (conn_->out.size() + data.size() > core_->max_stream_buffer_bytes) {
      overflow = true;
    } else {
      conn_->out += chunked_ ? ChunkFrame(data) : std::string(data);
    }
  }
  if (overflow) {
    // The reader is not reading; cancel rather than buffer without bound
    // or block the producer (an engine worker).
    cancelled_.store(true, std::memory_order_release);
    core_->sse_cancelled_total.Inc();
    return false;
  }
  core_->MarkDirty(conn_->id);
  return true;
}

void StreamWriter::End() {
  if (ended_.exchange(true, std::memory_order_acq_rel)) return;
  if (!begun_.load(std::memory_order_acquire)) {
    // The handler marked the response as streaming but the stream never
    // started (e.g. the submit failed before the first byte): answer with
    // a plain 500 so the request cannot hang.
    FinishRequest(*core_, conn_, PlainResponse(500, "stream never began\n"),
                  false);
    return;
  }
  uint64_t started;
  {
    std::lock_guard<std::mutex> lock(conn_->mu);
    if (!cancelled() && !conn_->closed.load(std::memory_order_acquire) &&
        chunked_) {
      conn_->out += "0\r\n\r\n";
    }
    conn_->response_complete = true;
    if (cancelled()) conn_->abort_conn = true;
    conn_->close_after_response =
        conn_->close_after_response || !keep_alive_ || !chunked_;
    started = conn_->dispatch_ms;
  }
  core_->request_seconds.Observe(
      static_cast<double>(NowMsSteady() - started) / 1e3);
  core_->DecrementInflight();
  core_->MarkDirty(conn_->id);
}

// --- HttpServer ----------------------------------------------------------

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)),
      options_(std::move(options)),
      core_(std::make_shared<ServerCore>(options_.max_stream_buffer_bytes)),
      requests_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_http_requests_total",
          "HTTP requests fully parsed (including shed ones)")),
      shed_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_http_shed_total",
          "Requests answered 503 by connection/in-flight load shedding")),
      parse_errors_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_http_parse_errors_total",
          "Connections rejected for malformed or over-limit requests")),
      connections_total_(MetricsRegistry::Default().GetCounter(
          "smartdd_http_connections_total", "Connections accepted")),
      connections_open_(MetricsRegistry::Default().GetGauge(
          "smartdd_http_connections_open", "Currently open connections")) {
  SMARTDD_CHECK(handler_ != nullptr);
}

HttpServer::~HttpServer() { Shutdown(); }

size_t HttpServer::open_connections() const {
  return open_conns_.load(std::memory_order_acquire);
}

size_t HttpServer::inflight_requests() const {
  return core_->inflight.load(std::memory_order_acquire);
}

Status HttpServer::Start() {
  SMARTDD_CHECK(!running_.load()) << "HttpServer started twice";

  // Belt and braces with the MSG_NOSIGNAL on every ::send: a peer that
  // slams its socket shut mid-response must surface as EPIPE (handled),
  // never as a process-killing SIGPIPE — some libc paths (and any future
  // write site missing the flag) would otherwise raise it.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("bad bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status status = Status::IOError(
        StrFormat("bind/listen %s:%u: %s", options_.bind_address.c_str(),
                  unsigned{options_.port}, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  int event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd < 0) {
    Status status = Status::IOError("epoll_create1/eventfd failed");
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
    if (event_fd >= 0) ::close(event_fd);
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(core_->dirty_mu);
    core_->event_fd = event_fd;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd, &ev);

  stop_.store(false);
  draining_.store(false);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this]() { EventLoop(); });
  const size_t workers = std::max<size_t>(1, options_.worker_threads);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  draining_.store(true, std::memory_order_release);
  core_->MarkDirty(kEventKey);  // just a poke; kEventKey maps to no connection

  {
    std::unique_lock<std::mutex> lock(core_->drain_mu);
    core_->drain_cv.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this]() {
          return core_->inflight.load(std::memory_order_acquire) == 0;
        });
  }

  stop_.store(true, std::memory_order_release);
  core_->MarkDirty(kEventKey);
  loop_thread_.join();

  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    workers_stop_ = true;
  }
  tasks_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // Close the wakeup fds only after every thread that could poke them is
  // gone; a straggler StreamWriter::End (an expansion that outlived the
  // drain window) co-owns the core, takes dirty_mu, sees -1, and skips
  // the write — and touches nothing on the (possibly destroyed) server.
  {
    std::lock_guard<std::mutex> lock(core_->dirty_mu);
    if (core_->event_fd >= 0) ::close(core_->event_fd);
    core_->event_fd = -1;
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(tasks_mu_);
      tasks_cv_.wait(lock,
                     [this]() { return workers_stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // workers_stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

bool HttpServer::AnyPendingOut() {
  for (auto& [id, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->out.empty()) return true;
  }
  return false;
}

void HttpServer::EventLoop() {
  std::vector<epoll_event> events(64);
  bool listener_open = true;
  uint64_t flush_deadline = 0;
  while (true) {
    if (stop_.load(std::memory_order_acquire)) {
      // Final-flush phase: in-flight work has drained (or timed out), but
      // completed responses may still sit in connection buffers. Keep the
      // loop pumping briefly so graceful shutdown delivers them instead of
      // truncating the last response of every connection.
      if (flush_deadline == 0) flush_deadline = NowMsSteady() + 2000;
      if (!AnyPendingOut() || NowMsSteady() >= flush_deadline) break;
    }
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), kEpollWaitMs);
    if (draining_.load(std::memory_order_acquire) && listener_open) {
      // Graceful shutdown step 1: stop accepting. Live connections keep
      // flushing and in-flight work keeps running until drained.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
    }
    for (int i = 0; i < n; ++i) {
      uint64_t key = events[i].data.u64;
      if (key == kListenKey) {
        if (listener_open) AcceptAll();
      } else if (key == kEventKey) {
        uint64_t drainer;
        while (::read(core_->event_fd, &drainer, sizeof(drainer)) > 0) {
        }
      } else {
        auto it = conns_.find(key);
        if (it != conns_.end()) {
          // Copy the owner: HandleIo may CloseConn, which erases the map
          // entry this iterator points at — a reference into the map would
          // dangle mid-call.
          std::shared_ptr<Conn> conn = it->second;
          HandleIo(conn, events[i].events);
        }
      }
    }
    // Serve wakeups from workers/streams (response bytes ready, stream
    // chunks, completions).
    std::vector<uint64_t> dirty;
    {
      std::lock_guard<std::mutex> lock(core_->dirty_mu);
      dirty.swap(core_->dirty);
    }
    for (uint64_t id : dirty) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      bool completed, close_after, abort;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        completed = conn->response_complete;
        if (completed) conn->response_complete = false;
        close_after = conn->close_after_response;
        abort = conn->abort_conn;
      }
      if (abort) {
        CloseConn(conn);
        continue;
      }
      if (completed) {
        conn->handling = false;
        if (!close_after) {
          {
            std::lock_guard<std::mutex> lock(conn->mu);
            conn->streaming = false;
          }
          conn->parser.Reset();
          conn->last_activity_ms = NowMsSteady();
          Advance(conn);  // a pipelined follower may already be buffered
        }
      }
      FlushOut(conn);
    }
    SweepIdle(NowMsSteady());
  }
  // Loop exit: tear down whatever is left (drain timeout stragglers).
  std::vector<std::shared_ptr<Conn>> leftover;
  leftover.reserve(conns_.size());
  for (auto& [id, conn] : conns_) leftover.push_back(conn);
  for (auto& conn : leftover) CloseConn(conn);
  if (listener_open && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptAll() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_total_.Inc();
    if (conns_.size() >= options_.max_connections ||
        draining_.load(std::memory_order_acquire)) {
      // Connection-level shedding: a one-shot 503, best effort, never
      // blocking the loop.
      shed_total_.Inc();
      std::string bytes = SerializeResponse(
          PlainResponse(503, "connection limit reached\n"), false);
      [[maybe_unused]] ssize_t n =
          ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    uint64_t id = kFirstConnId + next_conn_id_++;
    auto conn = std::make_shared<Conn>(fd, id, options_.limits);
    conn->last_activity_ms = NowMsSteady();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->armed_mask = EPOLLIN;
    conns_.emplace(id, std::move(conn));
    open_conns_.fetch_add(1, std::memory_order_acq_rel);
    connections_open_.Add(1);
  }
}

void HttpServer::HandleIo(const std::shared_ptr<Conn>& conn, uint32_t events) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(conn);
    return;
  }
  if (events & EPOLLIN) {
    // Bounded input buffering: past the cap the loop stops reading (the
    // EPOLLIN re-arm below drops) and TCP backpressure holds the peer.
    const size_t in_cap = options_.limits.input_budget();
    char buf[16384];
    while (conn->in.size() < in_cap) {
      ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (r > 0) {
        conn->in.append(buf, static_cast<size_t>(r));
        conn->last_activity_ms = NowMsSteady();
      } else if (r == 0) {
        conn->read_eof = true;
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          CloseConn(conn);
          return;
        }
        break;
      }
    }
    Advance(conn);
    if (conn->closed.load(std::memory_order_acquire)) return;
  }
  FlushOut(conn);
}

void HttpServer::Advance(const std::shared_ptr<Conn>& conn) {
  while (!conn->handling && !conn->dead_parse &&
         !conn->closed.load(std::memory_order_acquire)) {
    HttpParser::State state = conn->parser.Consume(&conn->in);
    if (state == HttpParser::State::kNeedMore) {
      if (conn->parser.TakeExpectContinue()) {
        // The body is still outstanding and the client is waiting for the
        // interim go-ahead (curl holds >1KB bodies back for up to 1s).
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->out += "HTTP/1.1 100 Continue\r\n\r\n";
      }
      break;
    }
    if (state == HttpParser::State::kError) {
      parse_errors_total_.Inc();
      std::string bytes = SerializeResponse(
          PlainResponse(conn->parser.error_status(),
                        conn->parser.error() + "\n"),
          false);
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->out += bytes;
        conn->close_after_response = true;
      }
      conn->dead_parse = true;  // never parse this connection again
      break;
    }
    DispatchRequest(conn);
  }
  FlushOut(conn);
}

void HttpServer::DispatchRequest(const std::shared_ptr<Conn>& conn) {
  requests_total_.Inc();
  HttpRequest request = conn->parser.request();
  const bool draining = draining_.load(std::memory_order_acquire);
  const bool keep_alive = request.keep_alive && !draining;

  if (draining ||
      core_->inflight.load(std::memory_order_acquire) >=
          options_.max_inflight_requests) {
    // Request-level shedding: bounded in-flight work, instant 503, and the
    // connection survives so the client can retry after backoff.
    shed_total_.Inc();
    HttpResponse r = PlainResponse(
        503, draining ? "server is shutting down\n" : "server overloaded\n");
    r.extra_headers.emplace_back("Retry-After", "1");
    std::string bytes = SerializeResponse(r, keep_alive);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out += bytes;
      if (!keep_alive) conn->close_after_response = true;
    }
    if (keep_alive) {
      conn->parser.Reset();  // keep serving the pipeline
    } else {
      conn->dead_parse = true;
    }
    return;
  }

  core_->inflight.fetch_add(1, std::memory_order_acq_rel);
  conn->handling = true;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->dispatch_ms = NowMsSteady();
  }
  conn->parser.Reset();

  // The StreamWriter is created for every request; buffered handlers simply
  // never Begin() it.
  std::shared_ptr<StreamWriter> stream(new StreamWriter(
      core_, conn, /*chunked=*/request.version_minor >= 1, keep_alive));
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back([this, conn, request = std::move(request), keep_alive,
                      stream]() {
      HttpResponse response = handler_(request, stream);
      if (response.status != 0) {
        if (stream->begun_.load(std::memory_order_acquire)) {
          SMARTDD_LOG(Warning) << "handler both streamed and returned a "
                                  "buffered response; keeping the stream";
          return;
        }
        stream->ended_.store(true, std::memory_order_release);
        CompleteRequest(conn, response, keep_alive);
      }
      // Streaming marker: StreamWriter::End() completes the request.
    });
  }
  tasks_cv_.notify_one();
}

void HttpServer::CompleteRequest(const std::shared_ptr<Conn>& conn,
                                 const HttpResponse& response,
                                 bool keep_alive) {
  FinishRequest(*core_, conn, response, keep_alive);
}

void HttpServer::FlushOut(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool io_error = false;
  bool out_empty;
  bool close_after;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->out.empty()) {
      ssize_t w = ::send(conn->fd, conn->out.data(),
                         std::min<size_t>(conn->out.size(), 1 << 16),
                         MSG_NOSIGNAL);
      if (w > 0) {
        // erase-from-front is O(pending); pending is capped by
        // max_stream_buffer_bytes so this stays cheap at our scale.
        conn->out.erase(0, static_cast<size_t>(w));
        conn->last_activity_ms = NowMsSteady();
      } else if (w < 0 && errno == EINTR) {
        continue;
      } else if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        io_error = true;
        break;
      }
    }
    out_empty = conn->out.empty();
    close_after = conn->close_after_response;
  }
  if (io_error) {
    CloseConn(conn);
    return;
  }
  if (out_empty && close_after) {
    CloseConn(conn);
    return;
  }
  if (out_empty && conn->read_eof && !conn->handling) {
    CloseConn(conn);
    return;
  }

  // Re-arm epoll for exactly what this connection still needs.
  const size_t in_cap = options_.limits.input_budget();
  uint32_t mask = 0;
  if (!conn->read_eof && conn->in.size() < in_cap) mask |= EPOLLIN;
  if (!out_empty) mask |= EPOLLOUT;
  if (mask != conn->armed_mask) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->armed_mask = mask;
  }
}

void HttpServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->id);
  open_conns_.fetch_sub(1, std::memory_order_acq_rel);
  connections_open_.Sub(1);
}

void HttpServer::SweepIdle(uint64_t now_ms) {
  if (options_.idle_timeout_ms == 0) return;
  std::vector<std::shared_ptr<Conn>> victims;
  for (auto& [id, conn] : conns_) {
    // In-flight work is never idleness; only quiet keep-alive connections
    // and stalled (slow-loris) request reads time out.
    if (conn->handling) continue;
    if (now_ms - conn->last_activity_ms < options_.idle_timeout_ms) continue;
    victims.push_back(conn);
  }
  for (auto& conn : victims) {
    if (conn->parser.mid_request()) {
      // A half-sent request earns an answer before the close.
      std::string bytes = SerializeResponse(
          PlainResponse(408, "request timed out\n"), false);
      [[maybe_unused]] ssize_t n =
          ::send(conn->fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    }
    CloseConn(conn);
  }
}

}  // namespace smartdd::net
