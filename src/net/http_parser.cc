#include "net/http_parser.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace smartdd::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Finds the end of the next line in `buffer` starting at 0. Returns npos
/// when no full line is buffered yet; otherwise sets `*line` to the line
/// content (CR/LF stripped — bare LF is tolerated, as curl-generated
/// traffic is CRLF but hand-rolled test clients often are not) and returns
/// the index one past the terminator.
size_t NextLine(std::string_view buffer, std::string_view* line) {
  size_t nl = buffer.find('\n');
  if (nl == std::string_view::npos) return std::string_view::npos;
  size_t end = nl;
  if (end > 0 && buffer[end - 1] == '\r') --end;
  *line = buffer.substr(0, end);
  return nl + 1;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpParser::HttpParser(HttpLimits limits) : limits_(limits) {}

void HttpParser::Reset() {
  phase_ = Phase::kRequestLine;
  started_ = false;
  expects_continue_ = false;
  header_bytes_ = 0;
  content_length_ = 0;
  request_ = HttpRequest{};
  error_status_ = 0;
  error_.clear();
}

HttpParser::State HttpParser::Fail(int status, std::string message) {
  phase_ = Phase::kError;
  error_status_ = status;
  error_ = std::move(message);
  return State::kError;
}

HttpParser::State HttpParser::ParseRequestLine(std::string_view line) {
  // METHOD SP target SP HTTP/1.x — anything else is a 400.
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size()) {
    return Fail(400, "malformed request line");
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else {
    return Fail(505, "unsupported HTTP version");
  }
  size_t q = request_.target.find('?');
  request_.path = request_.target.substr(0, q);
  request_.query =
      q == std::string::npos ? std::string() : request_.target.substr(q + 1);
  phase_ = Phase::kHeaders;
  return State::kNeedMore;
}

HttpParser::State HttpParser::ParseHeaderLine(std::string_view line) {
  if (line.empty()) return FinishHeaders();
  if (request_.headers.size() >= limits_.max_headers) {
    return Fail(431, "too many headers");
  }
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return Fail(400, "malformed header line");
  }
  std::string name = ToLower(Trim(line.substr(0, colon)));
  if (name.find(' ') != std::string::npos ||
      name.find('\t') != std::string::npos) {
    return Fail(400, "whitespace in header name");
  }
  request_.headers.emplace_back(std::move(name),
                                std::string(Trim(line.substr(colon + 1))));
  return State::kNeedMore;
}

HttpParser::State HttpParser::FinishHeaders() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    // Chunked *requests* are not worth the attack surface for a line-based
    // API; chunked responses are the server's side of the protocol.
    return Fail(501, "transfer-encoding request bodies are not supported");
  }
  if (const std::string* value = request_.FindHeader("content-length")) {
    // Duplicate Content-Length headers are a request-smuggling vector: an
    // intermediary framing by one copy and this server by another would
    // desynchronize the keep-alive stream. Reject them (RFC 9112 §6.3).
    size_t copies = 0;
    for (const auto& [name, v] : request_.headers) {
      if (name == "content-length") ++copies;
    }
    if (copies > 1) return Fail(400, "duplicate Content-Length");
    auto parsed = ParseInt64(*value);
    if (!parsed.ok() || *parsed < 0) {
      return Fail(400, "malformed Content-Length");
    }
    if (static_cast<uint64_t>(*parsed) > limits_.max_body_bytes) {
      return Fail(413, "request body exceeds the configured limit");
    }
    content_length_ = static_cast<size_t>(*parsed);
  }
  if (const std::string* expect = request_.FindHeader("expect")) {
    if (ToLower(*expect) == "100-continue") {
      expects_continue_ = content_length_ > 0;
    } else {
      return Fail(417, "unsupported Expect");
    }
  }
  if (const std::string* value = request_.FindHeader("connection")) {
    std::string token = ToLower(*value);
    if (token.find("close") != std::string::npos) {
      request_.keep_alive = false;
    } else if (token.find("keep-alive") != std::string::npos) {
      request_.keep_alive = true;
    }
  }
  phase_ = Phase::kBody;
  return State::kNeedMore;
}

HttpParser::State HttpParser::Consume(std::string* buffer) {
  // Parse from a moving offset and erase once at the end: erasing the
  // buffer per header line would memmove the (possibly megabyte) buffered
  // body once per header — quadratic work on the event-loop thread.
  size_t pos = 0;
  State state = Run(*buffer, &pos);
  if (pos > 0) buffer->erase(0, pos);
  return state;
}

HttpParser::State HttpParser::Run(const std::string& buffer, size_t* pos) {
  while (true) {
    std::string_view rest = std::string_view(buffer).substr(*pos);
    switch (phase_) {
      case Phase::kDone:
        return State::kDone;
      case Phase::kError:
        return State::kError;
      case Phase::kRequestLine: {
        if (!rest.empty()) started_ = true;
        std::string_view line;
        size_t consumed = NextLine(rest, &line);
        if (consumed == std::string_view::npos) {
          if (rest.size() > limits_.max_request_line_bytes) {
            return Fail(414, "request line exceeds the configured limit");
          }
          return State::kNeedMore;
        }
        if (line.size() > limits_.max_request_line_bytes) {
          return Fail(414, "request line exceeds the configured limit");
        }
        *pos += consumed;
        // Tolerate leading blank lines between keep-alive requests
        // (RFC 9112 §2.2 asks servers to skip at least one).
        if (line.empty()) continue;
        if (ParseRequestLine(line) == State::kError) return State::kError;
        continue;
      }
      case Phase::kHeaders: {
        std::string_view line;
        size_t consumed = NextLine(rest, &line);
        if (consumed == std::string_view::npos) {
          if (rest.size() + header_bytes_ > limits_.max_header_bytes) {
            return Fail(431, "header block exceeds the configured limit");
          }
          return State::kNeedMore;
        }
        header_bytes_ += consumed;
        if (header_bytes_ > limits_.max_header_bytes) {
          return Fail(431, "header block exceeds the configured limit");
        }
        *pos += consumed;
        if (ParseHeaderLine(line) == State::kError) return State::kError;
        continue;
      }
      case Phase::kBody: {
        if (rest.size() < content_length_) return State::kNeedMore;
        request_.body = std::string(rest.substr(0, content_length_));
        *pos += content_length_;
        phase_ = Phase::kDone;
        return State::kDone;
      }
    }
  }
}

}  // namespace smartdd::net
