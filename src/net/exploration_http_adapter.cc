#include "net/exploration_http_adapter.h"

#include <optional>
#include <utility>
#include <vector>

#include "api/codec.h"
#include "common/build_info.h"
#include "common/fault_injection.h"
#include "common/string_util.h"

namespace smartdd::net {

namespace {

HttpResponse JsonResponse(int status, std::string body_line) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = std::move(body_line) + "\n";
  // Same back-off discipline as the server's shed path: overload (503) and
  // blown deadlines (504) are both transient — tell clients when to retry.
  if (status == 503 || status == 504) {
    r.extra_headers.emplace_back("Retry-After", "1");
  }
  return r;
}

HttpResponse CodecError(Status status) {
  api::Response response;
  int http = HttpStatusFor(status);
  response.status = std::move(status);
  return JsonResponse(http, api::EncodeResponse(response));
}

HttpResponse WireHttpResponse(const api::WireResponse& wire) {
  int http = HttpStatusFor(wire.status);
  // Degraded-but-usable beats failed: a deadline-exceeded expansion that
  // still carries a partial tree ships as 200 (the body's error code and
  // "partial":true marker tell the story); a 504 is reserved for blown
  // deadlines with nothing to show.
  if (wire.partial && wire.has_tree) http = 200;
  return JsonResponse(http, wire.json);
}

/// One SSE event: `event: <type>` + a single `data:` line (codec responses
/// are newline-free by contract).
std::string SseEvent(std::string_view type, std::string_view data) {
  std::string out = "event: ";
  out += type;
  out += "\ndata: ";
  out += data;
  out += "\n\n";
  return out;
}

/// Streams each greedy BRS step as an SSE `step` event and finishes with a
/// `done` event carrying the same JSON envelope a synchronous expand would
/// have returned. Write() returning false (slow client past the buffer
/// cap, or a vanished connection) cancels the remaining steps — the engine
/// worker moves on instead of blocking.
class SseSink : public api::WireObserver {
 public:
  explicit SseSink(std::shared_ptr<StreamWriter> stream)
      : stream_(std::move(stream)) {}

  bool OnStepJson(std::string_view node_json, size_t step) override {
    std::string id = StrFormat("id: %zu\n", step);
    return stream_->Write(id + SseEvent("step", node_json));
  }

  void OnDoneWire(const api::WireResponse& response) override {
    // A deadline-degraded expansion terminates with `degraded` instead of
    // `done`: the data line still carries the full envelope (error code +
    // partial tree), but the event name lets a client switch on the
    // outcome without parsing the body.
    stream_->Write(
        SseEvent(response.partial ? "degraded" : "done", response.json));
    stream_->End();
  }

 private:
  std::shared_ptr<StreamWriter> stream_;
};

/// Rejects bodies that try to smuggle extra codec lines: the HTTP surface
/// is strictly one request per call.
Result<std::string_view> SingleLineBody(const HttpRequest& request) {
  std::string_view body = Trim(request.body);
  if (body.find('\n') != std::string_view::npos ||
      body.find('\r') != std::string_view::npos) {
    return Status::InvalidArgument("request body must be a single line");
  }
  return body;
}

/// Minimal query-string accessor (no percent-decoding: tokens and node ids
/// are plain [0-9a-f-] on this API).
std::string QueryParam(std::string_view query, std::string_view name) {
  for (std::string_view rest = query; !rest.empty();) {
    size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      return std::string(pair.substr(eq + 1));
    }
  }
  return std::string();
}

HttpResponse ProbeResponse(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain; charset=utf-8";
  r.body = std::move(body);
  if (status == 503) r.extra_headers.emplace_back("Retry-After", "1");
  return r;
}

}  // namespace

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kCapacityExceeded:
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
    case StatusCode::kDeadlineExceeded:
      return 504;
  }
  return 500;
}

ExplorationHttpAdapter::ExplorationHttpAdapter(api::WireService* wire)
    : wire_(wire) {
  SMARTDD_CHECK(wire_ != nullptr);
  // Any process serving /metrics identifies its build (version, revision,
  // resolved scan-kernel path) — how mixed cluster deployments are spotted.
  RegisterBuildInfoMetric();
}

ExplorationHttpAdapter::ExplorationHttpAdapter(api::ExplorationService* service)
    : owned_wire_(std::make_unique<api::LocalWireService>(service)),
      wire_(owned_wire_.get()) {
  RegisterBuildInfoMetric();
}

HttpHandler ExplorationHttpAdapter::AsHandler() {
  return [this](const HttpRequest& request,
                const std::shared_ptr<StreamWriter>& stream) {
    return Handle(request, stream);
  };
}

HttpResponse ExplorationHttpAdapter::ServeCodecLine(std::string_view verb,
                                                    std::string_view body) {
  std::string line(verb);
  if (!body.empty()) {
    line += ' ';
    line += body;
  }
  return WireHttpResponse(wire_->ServeWire(line));
}

HttpResponse ExplorationHttpAdapter::ServeExpandStream(
    const HttpRequest& request, const std::shared_ptr<StreamWriter>& stream) {
  std::string args;
  if (request.method == "POST") {
    auto body = SingleLineBody(request);
    if (!body.ok()) return CodecError(body.status());
    args = std::string(*body);
  } else {
    args = QueryParam(request.query, "session");
    std::string node = QueryParam(request.query, "node");
    if (args.empty() || node.empty()) {
      return CodecError(Status::InvalidArgument(
          "expand stream requires session= and node= query parameters"));
    }
    args += ' ';
    args += node;
    std::string column = QueryParam(request.query, "column");
    if (!column.empty()) {
      args += ' ';
      args += column;
    }
    std::string deadline = QueryParam(request.query, "deadline_ms");
    if (!deadline.empty()) {
      args += " deadline_ms=";
      args += deadline;
    }
  }
  // 2 positional tokens = smart expand, 3 = star expand; the codec
  // validates both. key=value tokens (deadline_ms=..) are options, not
  // positions — they must not push an expand into the star arity.
  size_t tokens = 0;
  for (const std::string& t : Split(args, ' ')) {
    if (!t.empty() && t.find('=') == std::string::npos) ++tokens;
  }
  auto parsed = api::ParseRequest(
      std::string(tokens >= 3 ? "star " : "expand ") + args);
  if (!parsed.ok()) return CodecError(parsed.status());
  const auto* expand = std::get_if<api::ExpandRequest>(&*parsed);
  if (expand == nullptr) {
    return CodecError(Status::InvalidArgument("not an expand request"));
  }

  if (!stream->Begin(200, "text/event-stream")) {
    return CodecError(Status::Internal("client disconnected"));
  }
  auto sink = std::make_shared<SseSink>(stream);
  Status submitted = wire_->SubmitExpandWire(*expand, sink);
  if (!submitted.ok()) {
    // The sink will never hear OnDone; finish the stream ourselves with
    // the same envelope shape.
    api::Response response;
    response.status = submitted;
    sink->OnDoneWire(api::ToWireResponse(response));
  }
  return HttpResponse::Streaming();
}

HttpResponse ExplorationHttpAdapter::Handle(
    const HttpRequest& request, const std::shared_ptr<StreamWriter>& stream) {
  const std::string& path = request.path;

  // Chaos hook covering the whole HTTP tier: an armed fault here turns
  // into a clean coded envelope, proving transport-level failures cannot
  // produce a malformed response.
  if (Status injected = InjectFault("http.dispatch"); !injected.ok()) {
    return CodecError(std::move(injected));
  }

  if (path == "/healthz") {
    // Liveness only: the process is up and answering. Rotation decisions
    // belong to /readyz.
    if (request.method != "GET") {
      return JsonResponse(405, "{\"ok\":false,\"error\":{\"code\":"
                               "\"INVALID_ARGUMENT\",\"message\":\"GET "
                               "only\"}}");
    }
    return ProbeResponse(200, "ok\n");
  }
  if (path == "/readyz") {
    if (request.method != "GET") {
      return JsonResponse(405, "{\"ok\":false,\"error\":{\"code\":"
                               "\"INVALID_ARGUMENT\",\"message\":\"GET "
                               "only\"}}");
    }
    // Readiness: unready while the transport is draining (shutdown in
    // progress) or before the service behind the seam can actually serve
    // opens (engines still loading, no healthy cluster backend).
    if (readiness_probe_ && !readiness_probe_()) {
      return ProbeResponse(503, "draining\n");
    }
    // `replaying` outranks `loading`: a node rebuilding snapshots from its
    // WAL may already count datasets, but traffic must wait for recovery.
    if (wire_->Replaying()) {
      return ProbeResponse(503, "replaying\n");
    }
    if (!wire_->Ready()) {
      return ProbeResponse(503, "loading\n");
    }
    return ProbeResponse(200, "ready\n");
  }
  if (path == "/metrics") {
    // Scrape-time gauge: sweep age is a derived "how stale" reading, so it
    // is refreshed when observed rather than on every sweep.
    if (auto age = wire_->last_sweep_age_ms()) {
      MetricsRegistry::Default()
          .GetGauge("smartdd_sessions_last_sweep_age_ms",
                    "Milliseconds since the registry's last idle sweep")
          .Set(static_cast<int64_t>(*age));
    }
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = MetricsRegistry::Default().RenderPrometheus();
    return r;
  }
  if (path == "/") {
    HttpResponse r;
    r.content_type = "text/plain; charset=utf-8";
    r.body =
        "smartdd HTTP API\n"
        "  POST /v1/open          open k=.. [dataset=..] args\n"
        "  POST /v1/expand        <session> <node>\n"
        "  POST /v1/expandstar    <session> <node> <column>\n"
        "  POST /v1/collapse      <session> <node>\n"
        "  POST /v1/tree          <session>\n"
        "  POST /v1/exact         <session>\n"
        "  POST /v1/close         <session>\n"
        "  POST /v1/append        [dataset=<name>] <csv-row>\n"
        "  POST /v1/append/bulk[?dataset=<name>]   one CSV row per line\n"
        "  GET|POST /v1/tableinfo [dataset=<name>]\n"
        "  GET|POST /v1/expand/stream   SSE greedy steps\n"
        "  GET /healthz  GET /readyz  GET /metrics\n";
    return r;
  }

  if (path == "/v1/expand/stream") {
    if (request.method != "GET" && request.method != "POST") {
      HttpResponse r = CodecError(Status::InvalidArgument("use GET or POST"));
      r.status = 405;
      return r;
    }
    return ServeExpandStream(request, stream);
  }
  if (path == "/v1/ping") {
    if (request.method != "GET" && request.method != "POST") {
      HttpResponse r = CodecError(Status::InvalidArgument("use GET or POST"));
      r.status = 405;
      return r;
    }
    return ServeCodecLine("ping", "");
  }
  if (path == "/v1/tableinfo") {
    if (request.method != "GET" && request.method != "POST") {
      HttpResponse r = CodecError(Status::InvalidArgument("use GET or POST"));
      r.status = 405;
      return r;
    }
    std::string args;
    if (request.method == "POST") {
      auto body = SingleLineBody(request);
      if (!body.ok()) return CodecError(body.status());
      args = std::string(*body);
    } else if (std::string ds = QueryParam(request.query, "dataset");
               !ds.empty()) {
      args = "dataset=" + ds;
    }
    return ServeCodecLine("tableinfo", args);
  }
  if (path == "/v1/append/bulk") {
    // Bulk CSV form: each nonempty body line is one append row (rows with
    // embedded newlines are not accepted here — use /v1/append). Stops at
    // the first failure and returns its envelope; on success the envelope
    // is the last append's, whose table payload reflects every row.
    if (request.method != "POST") {
      HttpResponse r = CodecError(
          Status::InvalidArgument("/v1/append/bulk requires POST"));
      r.status = 405;
      return r;
    }
    std::string prefix = "append ";
    if (std::string ds = QueryParam(request.query, "dataset"); !ds.empty()) {
      prefix += "dataset=" + ds + " ";
    }
    std::optional<api::WireResponse> last;
    size_t row = 0;
    std::string_view rest = request.body;
    while (!rest.empty()) {
      size_t nl = rest.find('\n');
      std::string_view line = Trim(rest.substr(0, nl));
      rest = nl == std::string_view::npos ? std::string_view()
                                          : rest.substr(nl + 1);
      if (line.empty()) continue;
      ++row;
      api::WireResponse wire = wire_->ServeWire(prefix + std::string(line));
      if (!wire.status.ok()) {
        return WireHttpResponse(wire);  // envelope names the bad row's defect
      }
      last = std::move(wire);
    }
    if (!last.has_value()) {
      return CodecError(
          Status::InvalidArgument("bulk append body carries no rows"));
    }
    (void)row;
    return WireHttpResponse(*last);
  }

  struct Route {
    const char* path;
    const char* verb;
  };
  static constexpr Route kRoutes[] = {
      {"/v1/open", "open"},         {"/v1/expand", "expand"},
      {"/v1/expandstar", "star"},   {"/v1/collapse", "collapse"},
      {"/v1/tree", "show"},         {"/v1/exact", "exact"},
      {"/v1/close", "close"},       {"/v1/append", "append"},
  };
  for (const Route& route : kRoutes) {
    if (path != route.path) continue;
    if (request.method != "POST") {
      HttpResponse r = CodecError(
          Status::InvalidArgument(StrFormat("%s requires POST", route.path)));
      r.status = 405;
      return r;
    }
    auto body = SingleLineBody(request);
    if (!body.ok()) return CodecError(body.status());
    return ServeCodecLine(route.verb, *body);
  }

  return CodecError(
      Status::NotFound(StrFormat("no route for '%s' (see GET /)",
                                 request.path.c_str())));
}

}  // namespace smartdd::net
