#ifndef SMARTDD_NET_HTTP_PARSER_H_
#define SMARTDD_NET_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smartdd::net {

/// Byte budgets for one request, enforced incrementally so a hostile peer
/// can never make the server buffer unbounded input (the untrusted-bytes
/// counterpart of the api/codec line-length cap).
struct HttpLimits {
  /// Request line (method + target + version), bytes before CRLF.
  size_t max_request_line_bytes = 8192;
  /// Whole header block, bytes.
  size_t max_header_bytes = 16384;
  /// Header count.
  size_t max_headers = 64;
  /// Content-Length bodies above this are rejected with 413. The default
  /// tracks what the /v1 routes can actually accept — bodies are codec
  /// argument lines capped at api::kDefaultMaxRequestLineBytes (8KB) — so
  /// the server never buffers megabytes no route could use; raise it for
  /// handlers with genuinely large payloads.
  size_t max_body_bytes = 16384;

  /// Total bytes the server will buffer from a connection before pausing
  /// reads (TCP backpressure): everything one request may legally need,
  /// plus slack for a pipelined follower's first lines.
  size_t input_budget() const {
    return max_request_line_bytes + max_header_bytes + max_body_bytes + 4096;
  }
};

/// One parsed request. Header names are lowercased (HTTP headers are
/// case-insensitive); values keep their bytes, trimmed of surrounding
/// whitespace.
struct HttpRequest {
  std::string method;
  /// Raw request target, plus its path/query split at the first '?'.
  std::string target;
  std::string path;
  std::string query;
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close; "Connection:" overrides either way.
  bool keep_alive = true;

  /// First value of header `name` (lowercase), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// Incremental HTTP/1.1 request parser: a small state machine fed from a
/// connection's input buffer. Consume() eats as many bytes as it can and
/// stops at kDone (one full request parsed — pipelined followers stay in
/// the buffer for the next Reset()+Consume()), kNeedMore, or kError with an
/// HTTP status code describing the defect (400 syntax, 413 body too large,
/// 414 request line too long, 431 headers too large, 501 unsupported
/// transfer encoding, 505 bad version).
class HttpParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  explicit HttpParser(HttpLimits limits = {});

  /// Parses from the front of `buffer`, erasing consumed bytes. Idempotent
  /// after kDone/kError (returns the same state without consuming more).
  State Consume(std::string* buffer);

  /// Valid after kDone.
  const HttpRequest& request() const { return request_; }
  /// Valid after kError.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// True once any request byte has been consumed (an idle-timeout sweep
  /// distinguishes a quiet keep-alive connection from a stalled request).
  bool mid_request() const { return phase_ != Phase::kRequestLine || started_; }

  /// One-shot: true if the request announced `Expect: 100-continue` and the
  /// interim response has not been claimed yet. The server consults this
  /// when a body is still outstanding and answers `100 Continue`, so
  /// standard clients (curl sends the header for bodies over ~1KB) do not
  /// stall out their expect timeout before transmitting.
  bool TakeExpectContinue() {
    bool take = expects_continue_;
    expects_continue_ = false;
    return take;
  }

  /// Forgets the parsed request and starts over on the next request
  /// (keep-alive reuse).
  void Reset();

 private:
  enum class Phase { kRequestLine, kHeaders, kBody, kDone, kError };

  State Fail(int status, std::string message);
  /// Consume's erase-free core: parses `buffer` from `*pos`, advancing it
  /// past whatever was consumed.
  State Run(const std::string& buffer, size_t* pos);
  State ParseRequestLine(std::string_view line);
  State ParseHeaderLine(std::string_view line);
  /// Validates Content-Length/Transfer-Encoding once the blank line lands.
  State FinishHeaders();

  HttpLimits limits_;
  Phase phase_ = Phase::kRequestLine;
  bool started_ = false;
  bool expects_continue_ = false;
  size_t header_bytes_ = 0;
  size_t content_length_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_;
};

}  // namespace smartdd::net

#endif  // SMARTDD_NET_HTTP_PARSER_H_
