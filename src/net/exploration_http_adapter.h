#ifndef SMARTDD_NET_EXPLORATION_HTTP_ADAPTER_H_
#define SMARTDD_NET_EXPLORATION_HTTP_ADAPTER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "api/service.h"
#include "api/wire_service.h"
#include "net/http_server.h"

namespace smartdd::net {

/// The HTTP face of smart drill-down: a thin adapter mapping routes onto
/// the byte-level api::WireService seam. Request bodies are api/codec
/// argument lines (the verb comes from the path), responses are the
/// codec's one-line JSON envelopes — so the HTTP surface is byte-identical
/// to the scripted wire protocol and inherits its parser hardening.
/// Because the adapter only sees rendered envelopes, a single-process
/// ExplorationService and a cluster router proxying shard-server
/// processes serve byte-identical HTTP responses.
///
/// Routes:
///   POST /v1/open           body: open arguments (k=3 dataset=... ...)
///   POST /v1/expand         body: <session> <node>
///   POST /v1/expandstar     body: <session> <node> <column>
///   POST /v1/collapse       body: <session> <node>
///   POST /v1/tree           body: <session>          (codec `show`)
///   POST /v1/exact          body: <session>
///   POST /v1/close          body: <session>
///   POST /v1/append         body: [dataset=<name>] <csv-row> — appends one
///        row to a live (WAL-backed) table; the envelope carries the
///        table's version/row/WAL state after the append
///   POST /v1/append/bulk[?dataset=<name>]   body: one CSV row per line;
///        stops at the first bad row and returns its envelope
///   GET|POST /v1/tableinfo  body/query: dataset=<name> — version, row
///        count, pending rows, WAL bytes
///   GET|POST /v1/ping
///   GET|POST /v1/expand/stream   SSE: one `step` event per greedy BRS
///        rule as it lands, then one `done` event with the full response.
///        POST body: <session> <node> [<column>]; GET query:
///        session=<token>&node=<id>[&column=<c>]. Rides
///        WireService::SubmitExpandWire — the expansion runs on the
///        engine's fair scheduler and a slow client cancels it via stream
///        backpressure instead of blocking an engine worker.
///   GET /healthz            liveness probe: 200 while the process serves
///   GET /readyz             readiness probe: 503 `replaying` while a live
///        table is rebuilding snapshots from its WAL, 503 `loading` before
///        engines/backends are available, 503 `draining` during shutdown,
///        200 `ready` otherwise — the signal a load balancer keys
///        rotation on
///   GET /metrics            Prometheus text format (common/metrics)
///   GET /                   human-readable endpoint index
///
/// HTTP status codes mirror the wire Status codes (400 InvalidArgument /
/// OutOfRange, 404 NotFound, 503 CapacityExceeded/Unavailable, 501
/// Unimplemented, 500 IOError/Internal, 504 DeadlineExceeded); the JSON
/// body always carries the stable wire error code, so thin clients may
/// ignore HTTP-level status entirely.
///
/// The wire service (and whatever is behind it) must outlive the adapter
/// and the server.
class ExplorationHttpAdapter {
 public:
  /// Serves `wire` — a LocalWireService, a cluster router, anything
  /// honoring the seam.
  explicit ExplorationHttpAdapter(api::WireService* wire);

  /// Convenience for the single-process deployment: wraps `service` in an
  /// internally owned LocalWireService.
  explicit ExplorationHttpAdapter(api::ExplorationService* service);

  /// Attaches the transport's half of the readiness signal (typically
  /// "the HttpServer is not draining"). /readyz answers 503 whenever the
  /// probe says false, regardless of engine state.
  void SetReadinessProbe(std::function<bool()> probe) {
    readiness_probe_ = std::move(probe);
  }

  /// Binds this adapter as an HttpServer handler.
  HttpHandler AsHandler();

  /// The handler body (exposed for direct testing without sockets).
  HttpResponse Handle(const HttpRequest& request,
                      const std::shared_ptr<StreamWriter>& stream);

 private:
  /// Parses `verb + body-as-arguments` through the codec and executes it.
  HttpResponse ServeCodecLine(std::string_view verb, std::string_view body);
  HttpResponse ServeExpandStream(const HttpRequest& request,
                                 const std::shared_ptr<StreamWriter>& stream);

  /// Set when constructed from an ExplorationService; wire_ points at it.
  std::unique_ptr<api::LocalWireService> owned_wire_;
  api::WireService* wire_;
  std::function<bool()> readiness_probe_;
};

/// Maps a wire Status code onto the HTTP status the adapter answers with.
int HttpStatusFor(const Status& status);

}  // namespace smartdd::net

#endif  // SMARTDD_NET_EXPLORATION_HTTP_ADAPTER_H_
