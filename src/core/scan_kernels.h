#ifndef SMARTDD_CORE_SCAN_KERNELS_H_
#define SMARTDD_CORE_SCAN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "rules/rule.h"
#include "storage/packed_column.h"
#include "storage/table.h"

namespace smartdd {

/// The dispatch path the scan kernels actually run on. The portable scalar
/// path is always compiled (and always differential-tested against the SIMD
/// path); kAvx2 exists only on x86-64 hosts whose CPU reports AVX2 and
/// whose build compiled the AVX2 translation unit.
enum class KernelPath : uint8_t { kScalar = 0, kAvx2 = 1 };

/// A caller's preference, resolved to a KernelPath at engine creation:
/// kAuto defers to the SMARTDD_KERNEL environment variable, and an unset or
/// "auto" variable defers to CPU detection. Requesting kAvx2 on a host
/// without AVX2 falls back to scalar (logged once).
enum class KernelPref : uint8_t { kAuto = 0, kScalar = 1, kAvx2 = 2 };

/// True when the AVX2 kernels are compiled in AND the CPU reports AVX2.
bool Avx2Available();

/// Parses "scalar" | "avx2" | "auto" (case-sensitive).
Result<KernelPref> ParseKernelPref(std::string_view s);

/// Process-wide default from SMARTDD_KERNEL (unset or unparsable -> kAuto).
KernelPref KernelPrefFromEnv();

/// Resolves a preference to the path that will actually run. Pure function
/// of (pref, environment, CPU) — engines resolve once at creation and pin
/// the result, so a differential test can hold a scalar engine and an AVX2
/// engine in one process.
KernelPath ResolveKernelPath(KernelPref pref);

const char* KernelPathName(KernelPath path);
const char* KernelPrefName(KernelPref pref);

/// One predicate of a gather filter: column `col` must decode to `want` at
/// the probed row. kConst columns never appear here (the caller drops
/// always-true predicates and short-circuits never-true ones).
struct GatherPred {
  PackedRef col;
  uint32_t want = 0;
};

/// The kernel table bound to one KernelPath. Every function has identical
/// observable semantics on both paths — the SIMD variants only vectorize
/// integer decode/compare work and a double max-blend, never reassociate a
/// floating-point sum — which is what keeps drill-down trees byte-identical
/// across {scalar, SIMD} x num_threads x num_shards.
struct ScanKernels {
  /// Decodes codes [begin, end) of `col` into `out`.
  void (*unpack)(PackedRef col, uint64_t begin, uint64_t end, uint32_t* out);

  /// Match mask over a contiguous row block: for i in [0, n),
  ///   mask[i] = (first ? 0xFF : mask[i]) & (col.Get(begin+i) == want ? 0xFF
  ///   : 0).
  void (*match_eq)(PackedRef col, uint64_t begin, size_t n, uint32_t want,
                   uint8_t* mask, bool first);

  /// covered[i] = max(covered[i], w) wherever mask[i] != 0. A pure
  /// max-blend: no FP arithmetic, so results are exactly the scalar loop's.
  void (*covered_max)(double* covered, const uint8_t* mask, size_t n,
                      double w);

  /// Posting-list filter: copies rows[j] (global row ids) into `out` when
  /// every predicate matches at local row rows[j] - bias, preserving order.
  /// Returns the number of rows kept.
  size_t (*filter_rows)(const uint32_t* rows, size_t n, uint64_t bias,
                        const GatherPred* preds, size_t num_preds,
                        uint32_t* out);

  /// counts[v] += number of occurrences of code v over rows [begin, end).
  /// `counts` has dict_size entries; every stored code is < dict_size (the
  /// codes come from the column's dictionary). Pure integer counting, so
  /// both paths produce identical counts — the AVX2 path replaces the
  /// scalar histogram with SWAR popcounts on the sub-byte widths, which is
  /// where the packed layout pays off (no per-row decode at all).
  void (*count_codes)(PackedRef col, uint64_t begin, uint64_t end,
                      size_t dict_size, uint32_t* counts);
};

/// The kernel table for a resolved path (kAvx2 silently degrades to the
/// scalar table when unavailable, mirroring ResolveKernelPath).
const ScanKernels& GetScanKernels(KernelPath path);

/// Rows per block the callers hand to the kernels: bounds scratch (codes +
/// mask) to L1-friendly sizes while amortizing dispatch.
inline constexpr uint64_t kScanBlockRows = 4096;

/// Byte mask of `rule` over the contiguous table rows [row_begin, row_end):
/// mask[i] != 0 iff the rule covers row row_begin + i. `row_end - row_begin`
/// must be <= kScanBlockRows (callers loop over blocks). Composes the
/// per-column match_eq kernels over the rule's instantiated columns.
void ComputeRuleMask(const Rule& rule, const Table& table, uint64_t row_begin,
                     uint64_t row_end, uint8_t* mask, const ScanKernels& k);

}  // namespace smartdd

#endif  // SMARTDD_CORE_SCAN_KERNELS_H_
