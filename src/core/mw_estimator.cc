#include "core/mw_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "core/brs.h"

namespace smartdd {

Result<MwEstimate> EstimateMaxWeight(const TableView& view,
                                     const WeightFunction& weight, size_t k,
                                     uint64_t sample_rows, uint64_t seed) {
  if (sample_rows == 0) {
    return Status::InvalidArgument("sample_rows must be positive");
  }
  MwEstimate est;
  const uint64_t n = view.num_rows();

  // Uniform sample of row ids without replacement (reservoir over the view).
  std::vector<uint32_t> rows;
  if (n <= sample_rows) {
    for (uint64_t i = 0; i < n; ++i) rows.push_back(view.row_id(i));
  } else {
    Rng rng(seed);
    rows.reserve(sample_rows);
    for (uint64_t i = 0; i < n; ++i) {
      if (rows.size() < sample_rows) {
        rows.push_back(view.row_id(i));
      } else {
        uint64_t j = rng.UniformInt(i + 1);
        if (j < sample_rows) rows[j] = view.row_id(i);
      }
    }
  }
  est.sample_rows = rows.size();

  TableView sample(view.table(), std::move(rows));
  if (view.has_measure()) sample.SelectMeasure(*view.measure_index());

  BrsOptions options;
  options.k = k;
  SMARTDD_ASSIGN_OR_RETURN(BrsResult result, RunBrs(sample, weight, options));

  double max_w = 0;
  for (const auto& r : result.rules) max_w = std::max(max_w, r.weight);
  est.observed_max_weight = max_w;
  if (max_w > 0) {
    est.mw = 2 * max_w;
  } else {
    double cap = weight.MaxPossibleWeight(view.num_columns());
    est.mw = std::isfinite(cap) ? cap : 1.0;
  }
  return est;
}

}  // namespace smartdd
