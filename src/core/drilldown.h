#ifndef SMARTDD_CORE_DRILLDOWN_H_
#define SMARTDD_CORE_DRILLDOWN_H_

#include <functional>
#include <optional>

#include "common/result.h"
#include "core/brs.h"

namespace smartdd {

/// One smart drill-down interaction (paper Problem 1).
struct DrillDownRequest {
  /// The rule the user clicked. All returned rules are super-rules of it.
  /// Use Rule::Trivial(num_columns) for the initial summary.
  Rule base{0};
  /// Star drill-down (paper §2.3): the user clicked the `?` in this column;
  /// every returned rule instantiates it. Must be a starred column of base.
  std::optional<size_t> star_column;
  /// Number of rules to return (default 3, like the paper's UI).
  size_t k = 3;
  /// The mw cap forwarded to BRS; infinity = derive from the weight
  /// function.
  double max_weight = std::numeric_limits<double>::infinity();
  PruningMode pruning = PruningMode::kFull;
  size_t max_rule_size = std::numeric_limits<size_t>::max();
  /// Threads for the underlying BRS search (0 = all hardware threads).
  size_t num_threads = 0;
  /// Scan-kernel path for the search (core/scan_kernels.h): kAuto defers
  /// to SMARTDD_KERNEL, then CPU detection. Bit-identical across paths.
  KernelPref kernel = KernelPref::kAuto;
  /// Step streaming (§6.1 anytime mode as a service surface): invoked after
  /// each of the k greedy BRS steps with the freshly selected full-width
  /// rule and its 0-based step index. Return false to cancel the remaining
  /// steps; the rules found so far are still returned. The rule's mass at
  /// step time is exact over the working view (marginal_mass is only filled
  /// in for the final response list).
  std::function<bool(const ScoredRule& rule, size_t step)> on_step;
  /// Cooperative deadline forwarded to BRS; expiry degrades the response
  /// (partial = true, completed steps kept) instead of failing it.
  Deadline deadline;
};

/// Result of a smart drill-down.
struct DrillDownResponse {
  /// Full-width super-rules of the request's base, sorted by descending
  /// weight. mass is Count(r)/Sum(r) over the *input view* (for a super-rule
  /// of base this equals its count over the base's cover); marginal_mass is
  /// MCount/MSum within this list.
  std::vector<ScoredRule> rules;
  double total_score = 0;
  /// Mass of tuples covered by base (|Tr| for Count).
  double base_mass = 0;
  MarginalSearchStats stats;
  /// Sampling context, filled by callers that ran the drill-down on a
  /// sample and scaled the masses: the scale factor applied and the number
  /// of sample rows (0 = exact, no sampling).
  double sample_scale = 1.0;
  uint64_t sample_rows = 0;
  /// True when the request's deadline fired mid-search: `rules` holds only
  /// the greedy steps that completed (possibly none), still well-formed.
  bool partial = false;
};

/// Executes a smart drill-down over a view using the reduction of §3.1:
/// filter the view to the tuples covered by base (Problem 1 -> Problem 2),
/// search only base's starred columns with weights evaluated on the merged
/// super-rule, and — for star drill-downs — rewrite the weight so rules not
/// instantiating the clicked column get weight 0.
Result<DrillDownResponse> SmartDrillDown(const TableView& view,
                                         const WeightFunction& weight,
                                         const DrillDownRequest& request);

/// Sharded drill-down: `views` are row-contiguous shard slices, in shard
/// order, of one logical table. Each shard filters to the base rule's cover
/// locally; the search and the evaluations treat the shard sub-views'
/// concatenation as one row space, so the response is byte-identical to
/// SmartDrillDown over the unsharded original for every shard count.
Result<DrillDownResponse> SmartDrillDownSharded(
    const std::vector<const TableView*>& views, const WeightFunction& weight,
    const DrillDownRequest& request);

}  // namespace smartdd

#endif  // SMARTDD_CORE_DRILLDOWN_H_
