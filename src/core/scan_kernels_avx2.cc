// The only translation unit compiled with -mavx2 (see CMakeLists.txt). The
// guard below keeps it an empty stub on toolchains/targets without AVX2, so
// the scalar path is always a working build.

#include "core/scan_kernels_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace smartdd {
namespace {

// i32gather indexes are signed 32-bit, applied to the base at the given
// byte scale. These guards keep every computed offset in int32 range; the
// kernels fall back to scalar (or reject the pred) when they fail, which in
// practice never happens for in-memory drill-down tables.
bool GatherSafe(const PackedRef& col) {
  switch (col.width) {
    case PackedWidth::kSub:
      return col.n * col.bits < (uint64_t{1} << 31);
    case PackedWidth::k16:
      return col.n < (uint64_t{1} << 30);
    default:
      return col.n < (uint64_t{1} << 31);
  }
}

void UnpackAvx2(PackedRef col, uint64_t begin, uint64_t end, uint32_t* out) {
  const uint64_t n = end - begin;
  switch (col.width) {
    case PackedWidth::kUnpacked:
    case PackedWidth::k32:
      std::memcpy(out, static_cast<const uint32_t*>(col.data) + begin,
                  n * sizeof(uint32_t));
      return;
    case PackedWidth::kConst:
      std::memset(out, 0, n * sizeof(uint32_t));
      return;
    case PackedWidth::k8: {
      const uint8_t* p = static_cast<const uint8_t*>(col.data) + begin;
      uint64_t i = 0;
      for (; i + 8 <= n; i += 8) {
        const __m128i b =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_cvtepu8_epi32(b));
      }
      for (; i < n; ++i) out[i] = p[i];
      return;
    }
    case PackedWidth::k16: {
      const uint16_t* p = static_cast<const uint16_t*>(col.data) + begin;
      uint64_t i = 0;
      for (; i + 8 <= n; i += 8) {
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_cvtepu16_epi32(b));
      }
      for (; i < n; ++i) out[i] = p[i];
      return;
    }
    case PackedWidth::kSub: {
      if (!GatherSafe(col)) {
        for (uint64_t i = begin; i < end; ++i) *out++ = col.Get(i);
        return;
      }
      // Per lane: read the 4-byte window at the code's byte offset (the
      // column is padded past the payload, so the tail window is mapped),
      // shift by the in-byte bit offset, mask to `bits`. shift+bits <= 14,
      // so a 4-byte window always contains the whole code.
      const uint8_t* bytes = static_cast<const uint8_t*>(col.data);
      const uint32_t bits = col.bits;
      const __m256i vmask = _mm256_set1_epi32((1 << bits) - 1);
      const __m256i seven = _mm256_set1_epi32(7);
      const __m256i lane_bits = _mm256_setr_epi32(
          0, static_cast<int>(bits), static_cast<int>(2 * bits),
          static_cast<int>(3 * bits), static_cast<int>(4 * bits),
          static_cast<int>(5 * bits), static_cast<int>(6 * bits),
          static_cast<int>(7 * bits));
      uint64_t i = 0;
      for (; i + 8 <= n; i += 8) {
        const __m256i bit0 =
            _mm256_set1_epi32(static_cast<int>((begin + i) * bits));
        const __m256i bitpos = _mm256_add_epi32(bit0, lane_bits);
        const __m256i byteoff = _mm256_srli_epi32(bitpos, 3);
        const __m256i shift = _mm256_and_si256(bitpos, seven);
        const __m256i words = _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(bytes), byteoff, 1);
        const __m256i vals =
            _mm256_and_si256(_mm256_srlv_epi32(words, shift), vmask);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
      }
      for (; i < n; ++i) out[i] = col.Get(begin + i);
      return;
    }
  }
}

void MaskAllZero(uint8_t* mask, size_t n, bool first) {
  // A never-true predicate zeroes the block whether composing or not.
  (void)first;
  std::memset(mask, 0, n);
}

/// 32-values-per-iteration equality mask over raw u32 codes. cmpeq_epi32
/// yields 0/-1 dwords; two signed saturating packs narrow -1 -> 0xFF, and
/// the final cross-lane permute undoes the 128-bit-lane interleave of the
/// packs so mask bytes land in row order.
void MatchEqU32(const uint32_t* p, size_t n, uint32_t want, uint8_t* mask,
                bool first) {
  const __m256i w = _mm256_set1_epi32(static_cast<int>(want));
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i c0 = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), w);
    const __m256i c1 = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 8)), w);
    const __m256i c2 = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 16)), w);
    const __m256i c3 = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 24)), w);
    const __m256i p01 = _mm256_packs_epi32(c0, c1);
    const __m256i p23 = _mm256_packs_epi32(c2, c3);
    __m256i b =
        _mm256_permutevar8x32_epi32(_mm256_packs_epi16(p01, p23), perm);
    if (!first) {
      b = _mm256_and_si256(
          b, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i), b);
  }
  for (; i < n; ++i) {
    const uint8_t m = p[i] == want ? 0xFFu : 0u;
    mask[i] = first ? m : static_cast<uint8_t>(mask[i] & m);
  }
}

void MatchEqAvx2(PackedRef col, uint64_t begin, size_t n, uint32_t want,
                 uint8_t* mask, bool first) {
  switch (col.width) {
    case PackedWidth::kConst: {
      const uint8_t m = want == 0 ? 0xFFu : 0u;
      if (first) {
        std::memset(mask, m, n);
      } else if (m == 0) {
        std::memset(mask, 0, n);
      }
      return;
    }
    case PackedWidth::k8: {
      if (want > 0xFF) return MaskAllZero(mask, n, first);
      const uint8_t* p = static_cast<const uint8_t*>(col.data) + begin;
      const __m256i w = _mm256_set1_epi8(static_cast<char>(want));
      size_t i = 0;
      for (; i + 32 <= n; i += 32) {
        __m256i m = _mm256_cmpeq_epi8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), w);
        if (!first) {
          m = _mm256_and_si256(
              m,
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i), m);
      }
      for (; i < n; ++i) {
        const uint8_t m = p[i] == want ? 0xFFu : 0u;
        mask[i] = first ? m : static_cast<uint8_t>(mask[i] & m);
      }
      return;
    }
    case PackedWidth::k16: {
      if (want > 0xFFFF) return MaskAllZero(mask, n, first);
      const uint16_t* p = static_cast<const uint16_t*>(col.data) + begin;
      const __m256i w = _mm256_set1_epi16(static_cast<short>(want));
      size_t i = 0;
      for (; i + 32 <= n; i += 32) {
        const __m256i c0 = _mm256_cmpeq_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), w);
        const __m256i c1 = _mm256_cmpeq_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 16)),
            w);
        // packs interleaves the 128-bit lanes; 0xD8 restores row order.
        __m256i b = _mm256_permute4x64_epi64(_mm256_packs_epi16(c0, c1), 0xD8);
        if (!first) {
          b = _mm256_and_si256(
              b,
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i), b);
      }
      for (; i < n; ++i) {
        const uint8_t m = p[i] == want ? 0xFFu : 0u;
        mask[i] = first ? m : static_cast<uint8_t>(mask[i] & m);
      }
      return;
    }
    case PackedWidth::kUnpacked:
    case PackedWidth::k32:
      MatchEqU32(static_cast<const uint32_t*>(col.data) + begin, n, want,
                 mask, first);
      return;
    case PackedWidth::kSub: {
      if (want > ((uint32_t{1} << col.bits) - 1)) {
        return MaskAllZero(mask, n, first);
      }
      // Decode block-wise, then reuse the u32 compare.
      uint32_t buf[kScanBlockRows];
      size_t done = 0;
      while (done < n) {
        const size_t chunk =
            n - done < kScanBlockRows ? n - done : kScanBlockRows;
        UnpackAvx2(col, begin + done, begin + done + chunk, buf);
        MatchEqU32(buf, chunk, want, mask + done, first);
        done += chunk;
      }
      return;
    }
  }
}

void CoveredMaxAvx2(double* covered, const uint8_t* mask, size_t n,
                    double w) {
  const __m256d wv = _mm256_set1_pd(w);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int32_t m4;
    std::memcpy(&m4, mask + i, 4);
    if (m4 == 0) continue;
    // Widen 4 mask bytes to qword lanes; replace covered with w exactly
    // where (mask && w > covered), mirroring the scalar branch bit-for-bit
    // (no max_pd: its -0.0/+0.0 tie-break differs from the `>` test).
    const __m256i m64 = _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(m4));
    const __m256d c = _mm256_loadu_pd(covered + i);
    const __m256d gt = _mm256_cmp_pd(wv, c, _CMP_GT_OQ);
    const __m256d take = _mm256_and_pd(gt, _mm256_castsi256_pd(m64));
    _mm256_storeu_pd(covered + i, _mm256_blendv_pd(c, wv, take));
  }
  for (; i < n; ++i) {
    if (mask[i] != 0 && w > covered[i]) covered[i] = w;
  }
}

/// Decodes `col` at 8 arbitrary local row indexes (a gather).
__m256i GatherDecode(const PackedRef& col, __m256i idx) {
  switch (col.width) {
    case PackedWidth::kUnpacked:
    case PackedWidth::k32:
      return _mm256_i32gather_epi32(static_cast<const int*>(col.data), idx,
                                    4);
    case PackedWidth::k16:
      return _mm256_and_si256(
          _mm256_i32gather_epi32(static_cast<const int*>(col.data),
                                 _mm256_slli_epi32(idx, 1), 1),
          _mm256_set1_epi32(0xFFFF));
    case PackedWidth::k8:
      return _mm256_and_si256(
          _mm256_i32gather_epi32(static_cast<const int*>(col.data), idx, 1),
          _mm256_set1_epi32(0xFF));
    case PackedWidth::kSub: {
      const __m256i bitpos =
          _mm256_mullo_epi32(idx, _mm256_set1_epi32(col.bits));
      const __m256i byteoff = _mm256_srli_epi32(bitpos, 3);
      const __m256i shift =
          _mm256_and_si256(bitpos, _mm256_set1_epi32(7));
      const __m256i words = _mm256_i32gather_epi32(
          static_cast<const int*>(col.data), byteoff, 1);
      return _mm256_and_si256(_mm256_srlv_epi32(words, shift),
                              _mm256_set1_epi32((1 << col.bits) - 1));
    }
    case PackedWidth::kConst:
      return _mm256_setzero_si256();
  }
  return _mm256_setzero_si256();
}

size_t FilterRowsAvx2(const uint32_t* rows, size_t n, uint64_t bias,
                      const GatherPred* preds, size_t num_preds,
                      uint32_t* out) {
  // Normalize: drop row-independent predicates, reject never-true ones, and
  // bail to scalar if any column can't be gathered safely.
  GatherPred eff[64];
  size_t ne = 0;
  if (num_preds > 64) {
    return internal::GetScalarKernels().filter_rows(rows, n, bias, preds,
                                                    num_preds, out);
  }
  for (size_t p = 0; p < num_preds; ++p) {
    const PackedRef& col = preds[p].col;
    const uint32_t want = preds[p].want;
    if (col.width == PackedWidth::kConst) {
      if (want != 0) return 0;
      continue;
    }
    uint32_t max_code = 0xFFFFFFFFu;
    if (col.width == PackedWidth::k8) max_code = 0xFF;
    if (col.width == PackedWidth::k16) max_code = 0xFFFF;
    if (col.width == PackedWidth::kSub) {
      max_code = (uint32_t{1} << col.bits) - 1;
    }
    if (want > max_code) return 0;
    if (!GatherSafe(col)) {
      return internal::GetScalarKernels().filter_rows(rows, n, bias, preds,
                                                      num_preds, out);
    }
    eff[ne++] = preds[p];
  }
  if (ne == 0) {
    std::memcpy(out, rows, n * sizeof(uint32_t));
    return n;
  }
  const __m256i biasv =
      _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(bias)));
  size_t kept = 0;
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + j));
    const __m256i local = _mm256_sub_epi32(r, biasv);
    __m256i ok = _mm256_set1_epi32(-1);
    for (size_t p = 0; p < ne; ++p) {
      const __m256i vals = GatherDecode(eff[p].col, local);
      ok = _mm256_and_si256(
          ok, _mm256_cmpeq_epi32(
                  vals, _mm256_set1_epi32(static_cast<int>(eff[p].want))));
      if (_mm256_testz_si256(ok, ok)) break;
    }
    int m = _mm256_movemask_ps(_mm256_castsi256_ps(ok));
    while (m != 0) {
      const int b = __builtin_ctz(static_cast<unsigned>(m));
      out[kept++] = rows[j + b];
      m &= m - 1;
    }
  }
  for (; j < n; ++j) {
    const uint64_t local = rows[j] - bias;
    bool match = true;
    for (size_t p = 0; p < ne; ++p) {
      if (eff[p].col.Get(local) != eff[p].want) {
        match = false;
        break;
      }
    }
    if (match) out[kept++] = rows[j];
  }
  return kept;
}

/// SWAR histogram for the sub-byte widths: the packed payload is counted
/// 64 bits (16/32/64 codes) at a time with bit-plane masks and hardware
/// popcounts, never decoding a single code. Works because Freeze rounds
/// sub-byte widths to powers of two, so each 64-bit word holds a whole
/// number of codes and no code straddles a word. Integer-exact, so the
/// counts match the scalar histogram bit for bit.
void CountCodesAvx2(PackedRef col, uint64_t begin, uint64_t end,
                    size_t dict_size, uint32_t* counts) {
  if (col.width != PackedWidth::kSub) {
    internal::GetScalarKernels().count_codes(col, begin, end, dict_size,
                                             counts);
    return;
  }
  const uint64_t* words = static_cast<const uint64_t*>(col.data);
  const unsigned bits = col.bits;
  const uint64_t cpw = 64 / bits;  // codes per 64-bit word
  uint64_t local[16] = {0};

  // Scalar head up to a word boundary, SWAR over whole words, scalar tail.
  uint64_t i = begin;
  const uint64_t head = std::min(end, (begin + cpw - 1) / cpw * cpw);
  for (; i < head; ++i) ++local[col.Get(i)];
  const uint64_t w0 = i / cpw;
  const uint64_t w1 = end / cpw;
  switch (bits) {
    case 1: {
      uint64_t ones = 0;
      for (uint64_t w = w0; w < w1; ++w) {
        ones += static_cast<unsigned>(__builtin_popcountll(words[w]));
      }
      local[1] += ones;
      local[0] += (w1 - w0) * 64 - ones;
      break;
    }
    case 2: {
      constexpr uint64_t kPair = 0x5555555555555555ull;
      for (uint64_t w = w0; w < w1; ++w) {
        const uint64_t x = words[w];
        const uint64_t b0 = x & kPair;         // low bit of each 2-bit code
        const uint64_t b1 = (x >> 1) & kPair;  // high bit
        const uint64_t c3 =
            static_cast<unsigned>(__builtin_popcountll(b0 & b1));
        const uint64_t c1 =
            static_cast<unsigned>(__builtin_popcountll(b0)) - c3;
        const uint64_t c2 =
            static_cast<unsigned>(__builtin_popcountll(b1)) - c3;
        local[0] += 32 - c1 - c2 - c3;
        local[1] += c1;
        local[2] += c2;
        local[3] += c3;
      }
      break;
    }
    default: {  // bits == 4
      constexpr uint64_t kNib = 0x1111111111111111ull;
      for (uint64_t w = w0; w < w1; ++w) {
        const uint64_t x = words[w];
        // Bit planes of the 16 nibbles, and their in-plane complements.
        const uint64_t a0 = x & kNib, a1 = (x >> 1) & kNib;
        const uint64_t a2 = (x >> 2) & kNib, a3 = (x >> 3) & kNib;
        const uint64_t n0 = a0 ^ kNib, n1 = a1 ^ kNib;
        const uint64_t n2 = a2 ^ kNib, n3 = a3 ^ kNib;
        // Match masks for the low / high 2 bits; value v matches where
        // lo[v & 3] & hi[v >> 2] has a 1 (at most one per nibble).
        const uint64_t lo[4] = {n0 & n1, a0 & n1, n0 & a1, a0 & a1};
        const uint64_t hi[4] = {n2 & n3, a2 & n3, n2 & a3, a2 & a3};
        for (unsigned v = 0; v < 16; ++v) {
          local[v] += static_cast<unsigned>(
              __builtin_popcountll(lo[v & 3] & hi[v >> 2]));
        }
      }
      break;
    }
  }
  for (i = std::max(i, w1 * cpw); i < end; ++i) ++local[col.Get(i)];

  // Codes >= dict_size never occur (their tallies are zero); the guard just
  // keeps the writes inside the caller's dict-sized array.
  const size_t top = std::min<size_t>(dict_size, size_t{1} << bits);
  for (size_t v = 0; v < top; ++v) {
    counts[v] += static_cast<uint32_t>(local[v]);
  }
}

constexpr ScanKernels kAvx2Kernels = {
    &UnpackAvx2,
    &MatchEqAvx2,
    &CoveredMaxAvx2,
    &FilterRowsAvx2,
    &CountCodesAvx2,
};

}  // namespace

namespace internal {
const ScanKernels* GetAvx2Kernels() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace smartdd

#else  // !defined(__AVX2__)

namespace smartdd::internal {
const ScanKernels* GetAvx2Kernels() { return nullptr; }
}  // namespace smartdd::internal

#endif  // defined(__AVX2__)
