#include "core/score.h"

#include <algorithm>
#include <numeric>

#include "rules/rule_ops.h"

namespace smartdd {

namespace {

std::vector<CompiledRule> CompileRules(const std::vector<Rule>& rules,
                                       const Table& table) {
  std::vector<CompiledRule> compiled(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    compiled[i].Compile(rules[i], table);
  }
  return compiled;
}

/// Pointer to the view's selected measure column (nullptr for Count): the
/// evaluation loops below resolve the table row once and index this
/// directly instead of paying view.mass()'s second row_id resolution.
const double* MassColumn(const TableView& view) {
  if (!view.has_measure()) return nullptr;
  return view.table().measure_column(*view.measure_index()).data();
}

}  // namespace

std::vector<size_t> OrderByWeightDesc(const std::vector<Rule>& rules,
                                      const WeightFunction& weight) {
  std::vector<double> w(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) w[i] = weight.Weight(rules[i]);
  std::vector<size_t> order(rules.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return w[a] > w[b]; });
  return order;
}

RuleListEvaluation EvaluateRuleListSharded(
    const std::vector<const TableView*>& views, const std::vector<Rule>& rules,
    const WeightFunction& weight) {
  RuleListEvaluation out;
  out.mass.assign(rules.size(), 0.0);
  out.marginal_mass.assign(rules.size(), 0.0);

  std::vector<size_t> order = OrderByWeightDesc(rules, weight);
  std::vector<double> weights(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    weights[i] = weight.Weight(rules[i]);
  }

  // One accumulator set, advanced sequentially across the shard views in
  // shard order: the addition sequence matches the unsharded evaluation
  // exactly, so results are byte-identical for every shard count. Rules are
  // recompiled per view (each slice is its own Table object).
  for (const TableView* vp : views) {
    const TableView& view = *vp;
    std::vector<CompiledRule> compiled = CompileRules(rules, view.table());
    const uint64_t n = view.num_rows();
    const bool subset = view.is_subset();
    const double* mass_col = MassColumn(view);
    for (uint64_t t = 0; t < n; ++t) {
      const uint32_t row = subset ? view.row_id(t) : static_cast<uint32_t>(t);
      const double m = mass_col ? mass_col[row] : 1.0;
      bool attributed = false;
      for (size_t oi = 0; oi < order.size(); ++oi) {
        size_t i = order[oi];
        if (compiled[i].Covers(row)) {
          out.mass[i] += m;
          if (!attributed) {
            out.marginal_mass[i] += m;
            out.total_score += m * weights[i];
            attributed = true;
          }
        }
      }
    }
  }
  return out;
}

RuleListEvaluation EvaluateRuleList(const TableView& view,
                                    const std::vector<Rule>& rules,
                                    const WeightFunction& weight) {
  return EvaluateRuleListSharded({&view}, rules, weight);
}

double ScoreRuleSet(const TableView& view, const std::vector<Rule>& rules,
                    const WeightFunction& weight) {
  return EvaluateRuleList(view, rules, weight).total_score;
}

double ScoreRuleListInOrder(const TableView& view,
                            const std::vector<Rule>& rules,
                            const WeightFunction& weight) {
  std::vector<double> weights(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    weights[i] = weight.Weight(rules[i]);
  }
  std::vector<CompiledRule> compiled = CompileRules(rules, view.table());
  double score = 0;
  const uint64_t n = view.num_rows();
  const bool subset = view.is_subset();
  const double* mass_col = MassColumn(view);
  for (uint64_t t = 0; t < n; ++t) {
    const uint32_t row = subset ? view.row_id(t) : static_cast<uint32_t>(t);
    for (size_t i = 0; i < rules.size(); ++i) {
      if (compiled[i].Covers(row)) {
        score += (mass_col ? mass_col[row] : 1.0) * weights[i];
        break;  // first rule in *list order* claims the tuple
      }
    }
  }
  return score;
}

}  // namespace smartdd
