#include "core/score.h"

#include <algorithm>
#include <numeric>

#include "common/float_sum.h"
#include "rules/rule_ops.h"

namespace smartdd {

namespace {

std::vector<CompiledRule> CompileRules(const std::vector<Rule>& rules,
                                       const Table& table) {
  std::vector<CompiledRule> compiled(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    compiled[i].Compile(rules[i], table);
  }
  return compiled;
}

/// Pointer to the view's selected measure column (nullptr for Count): the
/// evaluation loops below resolve the table row once and index this
/// directly instead of paying view.mass()'s second row_id resolution.
const double* MassColumn(const TableView& view) {
  if (!view.has_measure()) return nullptr;
  return view.table().measure_column(*view.measure_index()).data();
}

}  // namespace

std::vector<size_t> OrderByWeightDesc(const std::vector<Rule>& rules,
                                      const WeightFunction& weight) {
  std::vector<double> w(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) w[i] = weight.Weight(rules[i]);
  std::vector<size_t> order(rules.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return w[a] > w[b]; });
  return order;
}

RuleListEvaluation EvaluateRuleListSharded(
    const std::vector<const TableView*>& views, const std::vector<Rule>& rules,
    const WeightFunction& weight, KernelPref kernel) {
  RuleListEvaluation out;
  out.mass.assign(rules.size(), 0.0);
  out.marginal_mass.assign(rules.size(), 0.0);

  std::vector<size_t> order = OrderByWeightDesc(rules, weight);
  std::vector<double> weights(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    weights[i] = weight.Weight(rules[i]);
  }
  const ScanKernels& kern = GetScanKernels(ResolveKernelPath(kernel));
  // Per-rule match-mask scratch for one row block (whole-table views).
  std::vector<uint8_t> masks(rules.size() * kScanBlockRows);

  // Single-rule Count fast path: with one rule and no measure column every
  // match contributes the same 1.0 to mass and the same weights[0] to the
  // score, so the per-row attribution sweep collapses to a match count —
  // count_codes for <= 1 predicate, a mask popcount otherwise. Results are
  // bit-identical to the sweep: sums of 1.0 are exact integers (< 2^53
  // rows), and ExactRepeatAdd reproduces the sweep's repeated weights[0]
  // additions bit for bit.
  bool count_fold = rules.size() == 1;
  for (const TableView* vp : views) {
    count_fold = count_fold && !vp->has_measure();
  }
  if (count_fold) {
    const Rule& r = rules[0];
    uint64_t total = 0;
    std::vector<uint32_t> counts;
    for (const TableView* vp : views) {
      const TableView& view = *vp;
      const uint64_t n = view.num_rows();
      if (view.is_subset()) {
        CompiledRule compiled(r, view.table());
        for (uint64_t t = 0; t < n; ++t) {
          total += compiled.Covers(view.row_id(t)) ? 1 : 0;
        }
        continue;
      }
      const std::vector<size_t> inst = r.InstantiatedColumns();
      if (inst.empty()) {
        total += n;
      } else if (inst.size() == 1) {
        const size_t c = inst[0];
        const size_t dict = view.table().dictionary(c).size();
        const uint32_t want = r.value(c);
        counts.assign(dict, 0);
        kern.count_codes(view.table().column(c).ref(), 0, n, dict,
                         counts.data());
        if (want < dict) total += counts[want];
      } else {
        for (uint64_t b0 = 0; b0 < n; b0 += kScanBlockRows) {
          const uint64_t b1 = std::min(n, b0 + kScanBlockRows);
          ComputeRuleMask(r, view.table(), b0, b1, masks.data(), kern);
          const size_t bn = static_cast<size_t>(b1 - b0);
          for (size_t j = 0; j < bn; ++j) total += masks[j] != 0 ? 1 : 0;
        }
      }
    }
    out.mass[0] = static_cast<double>(total);
    out.marginal_mass[0] = static_cast<double>(total);
    out.total_score = ExactRepeatAdd(weights[0], total);
    return out;
  }

  // One accumulator set, advanced sequentially across the shard views in
  // shard order: the addition sequence matches the unsharded evaluation
  // exactly, so results are byte-identical for every shard count. Rules are
  // recompiled per view (each slice is its own Table object).
  for (const TableView* vp : views) {
    const TableView& view = *vp;
    const uint64_t n = view.num_rows();
    const double* mass_col = MassColumn(view);
    if (view.is_subset()) {
      std::vector<CompiledRule> compiled = CompileRules(rules, view.table());
      for (uint64_t t = 0; t < n; ++t) {
        const uint32_t row = view.row_id(t);
        const double m = mass_col ? mass_col[row] : 1.0;
        bool attributed = false;
        for (size_t oi = 0; oi < order.size(); ++oi) {
          size_t i = order[oi];
          if (compiled[i].Covers(row)) {
            out.mass[i] += m;
            if (!attributed) {
              out.marginal_mass[i] += m;
              out.total_score += m * weights[i];
              attributed = true;
            }
          }
        }
      }
      continue;
    }
    // Whole-table views: per-rule match masks over each row block through
    // the dispatched kernels, then one sequential attribution sweep per
    // block — the same per-row, ordered-rule addition sequence as the
    // direct loop, so the floats are bit-identical on every kernel path.
    for (uint64_t b0 = 0; b0 < n; b0 += kScanBlockRows) {
      const uint64_t b1 = std::min(n, b0 + kScanBlockRows);
      const size_t bn = static_cast<size_t>(b1 - b0);
      for (size_t i = 0; i < rules.size(); ++i) {
        ComputeRuleMask(rules[i], view.table(), b0, b1,
                        masks.data() + i * kScanBlockRows, kern);
      }
      for (size_t j = 0; j < bn; ++j) {
        const double m = mass_col ? mass_col[b0 + j] : 1.0;
        bool attributed = false;
        for (size_t oi = 0; oi < order.size(); ++oi) {
          size_t i = order[oi];
          if (masks[i * kScanBlockRows + j] != 0) {
            out.mass[i] += m;
            if (!attributed) {
              out.marginal_mass[i] += m;
              out.total_score += m * weights[i];
              attributed = true;
            }
          }
        }
      }
    }
  }
  return out;
}

RuleListEvaluation EvaluateRuleList(const TableView& view,
                                    const std::vector<Rule>& rules,
                                    const WeightFunction& weight,
                                    KernelPref kernel) {
  return EvaluateRuleListSharded({&view}, rules, weight, kernel);
}

double ScoreRuleSet(const TableView& view, const std::vector<Rule>& rules,
                    const WeightFunction& weight) {
  return EvaluateRuleList(view, rules, weight).total_score;
}

double ScoreRuleListInOrder(const TableView& view,
                            const std::vector<Rule>& rules,
                            const WeightFunction& weight) {
  std::vector<double> weights(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    weights[i] = weight.Weight(rules[i]);
  }
  std::vector<CompiledRule> compiled = CompileRules(rules, view.table());
  double score = 0;
  const uint64_t n = view.num_rows();
  const bool subset = view.is_subset();
  const double* mass_col = MassColumn(view);
  for (uint64_t t = 0; t < n; ++t) {
    const uint32_t row = subset ? view.row_id(t) : static_cast<uint32_t>(t);
    for (size_t i = 0; i < rules.size(); ++i) {
      if (compiled[i].Covers(row)) {
        score += (mass_col ? mass_col[row] : 1.0) * weights[i];
        break;  // first rule in *list order* claims the tuple
      }
    }
  }
  return score;
}

}  // namespace smartdd
