#include "core/score.h"

#include <algorithm>
#include <numeric>

#include "rules/rule_ops.h"

namespace smartdd {

std::vector<size_t> OrderByWeightDesc(const std::vector<Rule>& rules,
                                      const WeightFunction& weight) {
  std::vector<double> w(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) w[i] = weight.Weight(rules[i]);
  std::vector<size_t> order(rules.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return w[a] > w[b]; });
  return order;
}

RuleListEvaluation EvaluateRuleList(const TableView& view,
                                    const std::vector<Rule>& rules,
                                    const WeightFunction& weight) {
  RuleListEvaluation out;
  out.mass.assign(rules.size(), 0.0);
  out.marginal_mass.assign(rules.size(), 0.0);

  std::vector<size_t> order = OrderByWeightDesc(rules, weight);
  std::vector<double> weights(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    weights[i] = weight.Weight(rules[i]);
  }

  const uint64_t n = view.num_rows();
  for (uint64_t t = 0; t < n; ++t) {
    double m = view.mass(t);
    bool attributed = false;
    for (size_t oi = 0; oi < order.size(); ++oi) {
      size_t i = order[oi];
      if (RuleCoversRow(rules[i], view, t)) {
        out.mass[i] += m;
        if (!attributed) {
          out.marginal_mass[i] += m;
          out.total_score += m * weights[i];
          attributed = true;
        }
      }
    }
  }
  return out;
}

double ScoreRuleSet(const TableView& view, const std::vector<Rule>& rules,
                    const WeightFunction& weight) {
  return EvaluateRuleList(view, rules, weight).total_score;
}

double ScoreRuleListInOrder(const TableView& view,
                            const std::vector<Rule>& rules,
                            const WeightFunction& weight) {
  std::vector<double> weights(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    weights[i] = weight.Weight(rules[i]);
  }
  double score = 0;
  const uint64_t n = view.num_rows();
  for (uint64_t t = 0; t < n; ++t) {
    for (size_t i = 0; i < rules.size(); ++i) {
      if (RuleCoversRow(rules[i], view, t)) {
        score += view.mass(t) * weights[i];
        break;  // first rule in *list order* claims the tuple
      }
    }
  }
  return score;
}

}  // namespace smartdd
