#ifndef SMARTDD_CORE_SCAN_KERNELS_INTERNAL_H_
#define SMARTDD_CORE_SCAN_KERNELS_INTERNAL_H_

#include "core/scan_kernels.h"

namespace smartdd::internal {

/// Defined in scan_kernels_avx2.cc (the only TU compiled with -mavx2).
/// Returns nullptr when the build did not enable AVX2 for that TU, so the
/// dispatcher degrades to scalar without any preprocessor coupling here.
const ScanKernels* GetAvx2Kernels();

/// The portable reference kernels (always compiled, always tested).
const ScanKernels& GetScalarKernels();

}  // namespace smartdd::internal

#endif  // SMARTDD_CORE_SCAN_KERNELS_INTERNAL_H_
