#ifndef SMARTDD_CORE_BRS_H_
#define SMARTDD_CORE_BRS_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "core/best_marginal.h"
#include "core/score.h"
#include "storage/table_view.h"
#include "weights/weight_function.h"

namespace smartdd {

/// Options for the BRS (Best Rule Set) greedy algorithm (paper Algorithm 1).
struct BrsOptions {
  /// Number of rules to select (the paper's k).
  size_t k = 4;
  /// The paper's mw cap; rules heavier than this are not considered. When
  /// infinite, RunBrs substitutes weight.MaxPossibleWeight(num_columns) if
  /// that is finite, making the search exact by default.
  double max_weight = std::numeric_limits<double>::infinity();
  PruningMode pruning = PruningMode::kFull;
  size_t max_rule_size = std::numeric_limits<size_t>::max();
  /// Drill-down reduction: restrict the search to these columns and merge
  /// `base_rule` into every candidate (see core/drilldown.h).
  std::vector<size_t> allowed_columns;
  std::optional<Rule> base_rule;
  /// Threads for the marginal-search counting passes (0 = all hardware
  /// threads). Results are bit-identical for every value.
  size_t num_threads = 0;
  /// Scan-kernel path for the counting passes and list evaluation
  /// (core/scan_kernels.h). Results are bit-identical across paths.
  KernelPref kernel = KernelPref::kAuto;
  /// Anytime mode (§6.1: "keep adding rules ... displaying new rules as
  /// they are found"): invoked after each greedy pick; return false to stop
  /// early with the rules found so far.
  std::function<bool(const ScoredRule&, size_t index)> on_rule;
  /// Time-budget mode (§6.1: "we can set a time limit ... and display as
  /// many rules as we can find within that time limit"). After the budget
  /// elapses, no further greedy steps are started (the rules found so far
  /// are returned; at least one step always runs). 0 = unlimited.
  double time_budget_ms = 0;
  /// Hard cooperative deadline, threaded into the marginal search's chunk
  /// loops: unlike time_budget_ms it can interrupt a step in flight (the
  /// interrupted step's work is discarded; completed steps are kept) and
  /// can fire before the first step. Expiry marks the result partial
  /// instead of erroring — degrade, not fail. Default is inert.
  Deadline deadline;
};

/// Output of BRS.
struct BrsResult {
  /// Selected rules in display order: descending weight (Lemma 1), ties in
  /// selection order. mass/marginal_mass are exact over the input view.
  std::vector<ScoredRule> rules;
  /// Score (Definition 2) of the selected set over the view.
  double total_score = 0;
  /// Aggregated search statistics across the k greedy steps.
  MarginalSearchStats stats;
  /// True when options.deadline fired: `rules` holds only the greedy steps
  /// that completed in budget (possibly none). Masses and total_score are
  /// still exact over the view for the rules present.
  bool deadline_exceeded = false;
};

/// Runs the greedy BRS algorithm: k iterations of FindBestMarginalRule,
/// each adding the rule with the highest marginal score gain. By
/// submodularity of Score (Lemma 3) the result is within 1-(1-1/k)^k of the
/// optimal score when max_weight covers the optimal rules' weights.
///
/// May return fewer than k rules when no remaining rule has positive
/// marginal value. Errors only on invalid inputs (e.g. negative masses in
/// Sum mode, which would break the pruning bounds).
Result<BrsResult> RunBrs(const TableView& view, const WeightFunction& weight,
                         const BrsOptions& options = {});

/// Sharded BRS: `views` are row-contiguous shard slices, in shard order, of
/// one logical table (shared dictionaries, same measure selection). Each
/// shard keeps its own covered-weight vector (shard-local state — the seam
/// for a future multi-process tier) and the marginal search treats the
/// shards' concatenation as a single row space, so the selected rules,
/// masses, and scores are byte-identical to RunBrs over the unsharded
/// original — for every shard count and thread count.
Result<BrsResult> RunBrsSharded(const std::vector<const TableView*>& views,
                                const WeightFunction& weight,
                                const BrsOptions& options = {});

}  // namespace smartdd

#endif  // SMARTDD_CORE_BRS_H_
