#include "core/scan_kernels.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/status.h"
#include "core/scan_kernels_internal.h"

namespace smartdd {
namespace {

// --- Portable scalar kernels ------------------------------------------
//
// These are the semantic reference: the AVX2 variants must be observably
// identical (the differential suite in tests/packed_column_test.cc holds
// them to that on full drill-down trees).

void UnpackScalar(PackedRef col, uint64_t begin, uint64_t end, uint32_t* out) {
  switch (col.width) {
    case PackedWidth::kUnpacked:
    case PackedWidth::k32:
      std::memcpy(out, static_cast<const uint32_t*>(col.data) + begin,
                  (end - begin) * sizeof(uint32_t));
      return;
    case PackedWidth::kConst:
      std::memset(out, 0, (end - begin) * sizeof(uint32_t));
      return;
    case PackedWidth::k8: {
      const uint8_t* p = static_cast<const uint8_t*>(col.data) + begin;
      for (uint64_t i = 0, n = end - begin; i < n; ++i) out[i] = p[i];
      return;
    }
    case PackedWidth::k16: {
      const uint16_t* p = static_cast<const uint16_t*>(col.data) + begin;
      for (uint64_t i = 0, n = end - begin; i < n; ++i) out[i] = p[i];
      return;
    }
    case PackedWidth::kSub:
      for (uint64_t i = begin; i < end; ++i) *out++ = col.Get(i);
      return;
  }
}

void MatchEqScalar(PackedRef col, uint64_t begin, size_t n, uint32_t want,
                   uint8_t* mask, bool first) {
  switch (col.width) {
    case PackedWidth::kUnpacked:
    case PackedWidth::k32: {
      const uint32_t* p = static_cast<const uint32_t*>(col.data) + begin;
      for (size_t i = 0; i < n; ++i) {
        const uint8_t m = p[i] == want ? 0xFFu : 0u;
        mask[i] = first ? m : static_cast<uint8_t>(mask[i] & m);
      }
      return;
    }
    case PackedWidth::k16: {
      const uint16_t* p = static_cast<const uint16_t*>(col.data) + begin;
      for (size_t i = 0; i < n; ++i) {
        const uint8_t m = p[i] == want ? 0xFFu : 0u;
        mask[i] = first ? m : static_cast<uint8_t>(mask[i] & m);
      }
      return;
    }
    case PackedWidth::k8: {
      const uint8_t* p = static_cast<const uint8_t*>(col.data) + begin;
      for (size_t i = 0; i < n; ++i) {
        const uint8_t m = p[i] == want ? 0xFFu : 0u;
        mask[i] = first ? m : static_cast<uint8_t>(mask[i] & m);
      }
      return;
    }
    case PackedWidth::kConst: {
      const uint8_t m = want == 0 ? 0xFFu : 0u;
      if (first) {
        std::memset(mask, m, n);
      } else if (m == 0) {
        std::memset(mask, 0, n);
      }
      return;
    }
    case PackedWidth::kSub: {
      for (size_t i = 0; i < n; ++i) {
        const uint8_t m = col.Get(begin + i) == want ? 0xFFu : 0u;
        mask[i] = first ? m : static_cast<uint8_t>(mask[i] & m);
      }
      return;
    }
  }
}

void CoveredMaxScalar(double* covered, const uint8_t* mask, size_t n,
                      double w) {
  for (size_t i = 0; i < n; ++i) {
    if (mask[i] != 0 && w > covered[i]) covered[i] = w;
  }
}

size_t FilterRowsScalar(const uint32_t* rows, size_t n, uint64_t bias,
                        const GatherPred* preds, size_t num_preds,
                        uint32_t* out) {
  size_t kept = 0;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t local = rows[j] - bias;
    bool match = true;
    for (size_t p = 0; p < num_preds; ++p) {
      if (preds[p].col.Get(local) != preds[p].want) {
        match = false;
        break;
      }
    }
    if (match) out[kept++] = rows[j];
  }
  return kept;
}

void CountCodesScalar(PackedRef col, uint64_t begin, uint64_t end,
                      size_t dict_size, uint32_t* counts) {
  (void)dict_size;
  switch (col.width) {
    case PackedWidth::kConst:
      counts[0] += static_cast<uint32_t>(end - begin);
      return;
    case PackedWidth::kUnpacked:
    case PackedWidth::k32: {
      const uint32_t* p = static_cast<const uint32_t*>(col.data);
      for (uint64_t i = begin; i < end; ++i) ++counts[p[i]];
      return;
    }
    case PackedWidth::k8: {
      const uint8_t* p = static_cast<const uint8_t*>(col.data);
      for (uint64_t i = begin; i < end; ++i) ++counts[p[i]];
      return;
    }
    case PackedWidth::k16: {
      const uint16_t* p = static_cast<const uint16_t*>(col.data);
      for (uint64_t i = begin; i < end; ++i) ++counts[p[i]];
      return;
    }
    case PackedWidth::kSub:
      for (uint64_t i = begin; i < end; ++i) ++counts[col.Get(i)];
      return;
  }
}

constexpr ScanKernels kScalarKernels = {
    &UnpackScalar,
    &MatchEqScalar,
    &CoveredMaxScalar,
    &FilterRowsScalar,
    &CountCodesScalar,
};

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

namespace internal {
const ScanKernels& GetScalarKernels() { return kScalarKernels; }
}  // namespace internal

bool Avx2Available() {
  static const bool available =
      CpuHasAvx2() && internal::GetAvx2Kernels() != nullptr;
  return available;
}

Result<KernelPref> ParseKernelPref(std::string_view s) {
  if (s == "auto") return KernelPref::kAuto;
  if (s == "scalar") return KernelPref::kScalar;
  if (s == "avx2") return KernelPref::kAvx2;
  return Status::InvalidArgument("unknown kernel '" + std::string(s) +
                                 "' (expected auto|scalar|avx2)");
}

KernelPref KernelPrefFromEnv() {
  const char* env = std::getenv("SMARTDD_KERNEL");
  if (env == nullptr || *env == '\0') return KernelPref::kAuto;
  Result<KernelPref> parsed = ParseKernelPref(env);
  if (!parsed.ok()) {
    static bool warned = [&] {
      SMARTDD_LOG(Warning) << "ignoring SMARTDD_KERNEL=" << env << ": "
                           << parsed.status().ToString();
      return true;
    }();
    (void)warned;
    return KernelPref::kAuto;
  }
  return *parsed;
}

KernelPath ResolveKernelPath(KernelPref pref) {
  if (pref == KernelPref::kAuto) pref = KernelPrefFromEnv();
  switch (pref) {
    case KernelPref::kScalar:
      return KernelPath::kScalar;
    case KernelPref::kAvx2:
      if (!Avx2Available()) {
        static bool warned = [] {
          SMARTDD_LOG(Warning)
              << "SMARTDD_KERNEL=avx2 requested but AVX2 is unavailable "
                 "(cpu or build); falling back to scalar kernels";
          return true;
        }();
        (void)warned;
        return KernelPath::kScalar;
      }
      return KernelPath::kAvx2;
    case KernelPref::kAuto:
      return Avx2Available() ? KernelPath::kAvx2 : KernelPath::kScalar;
  }
  return KernelPath::kScalar;
}

const char* KernelPathName(KernelPath path) {
  switch (path) {
    case KernelPath::kScalar:
      return "scalar";
    case KernelPath::kAvx2:
      return "avx2";
  }
  return "scalar";
}

const char* KernelPrefName(KernelPref pref) {
  switch (pref) {
    case KernelPref::kAuto:
      return "auto";
    case KernelPref::kScalar:
      return "scalar";
    case KernelPref::kAvx2:
      return "avx2";
  }
  return "auto";
}

const ScanKernels& GetScanKernels(KernelPath path) {
  if (path == KernelPath::kAvx2) {
    const ScanKernels* avx2 = internal::GetAvx2Kernels();
    if (avx2 != nullptr && CpuHasAvx2()) return *avx2;
  }
  return kScalarKernels;
}

void ComputeRuleMask(const Rule& rule, const Table& table, uint64_t row_begin,
                     uint64_t row_end, uint8_t* mask, const ScanKernels& k) {
  SMARTDD_DCHECK(row_end >= row_begin &&
                 row_end - row_begin <= kScanBlockRows);
  const size_t n = static_cast<size_t>(row_end - row_begin);
  const std::vector<uint32_t>& values = rule.values();
  bool first = true;
  for (size_t c = 0; c < values.size(); ++c) {
    const uint32_t want = values[c];
    if (want == kStar) continue;
    const PackedColumn& col = table.column(c);
    if (col.width() == PackedWidth::kConst) {
      // Stored codes are all 0: the predicate is row-independent.
      if (want != 0) {
        std::memset(mask, 0, n);
        return;
      }
      continue;
    }
    k.match_eq(col.ref(), row_begin, n, want, mask, first);
    first = false;
  }
  if (first) std::memset(mask, 0xFF, n);  // trivial (or all-const-true) rule
}

}  // namespace smartdd
