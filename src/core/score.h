#ifndef SMARTDD_CORE_SCORE_H_
#define SMARTDD_CORE_SCORE_H_

#include <cstddef>
#include <vector>

#include "core/scan_kernels.h"
#include "rules/rule.h"
#include "storage/table_view.h"
#include "weights/weight_function.h"

namespace smartdd {

/// A rule enriched with the statistics smart drill-down displays: its
/// weight, its covered mass (the paper's Count, or Sum when the view has a
/// measure), and its marginal mass within the displayed list (MCount/MSum).
struct ScoredRule {
  Rule rule{0};
  double weight = 0;
  /// Count(r) / Sum(r): total mass of tuples covered by the rule.
  double mass = 0;
  /// MCount(r, R) / MSum(r, R): mass covered by this rule and no earlier
  /// rule in the weight-sorted list.
  double marginal_mass = 0;
  /// Marginal score gain when the rule was selected by the greedy algorithm
  /// (0 when the list was not produced by BRS).
  double marginal_value = 0;
};

/// Per-list evaluation output.
struct RuleListEvaluation {
  /// mass[i] and marginal_mass[i] for the i-th rule *of the input order*.
  std::vector<double> mass;
  std::vector<double> marginal_mass;
  /// Score(R) per Definition 2 (rules sorted by descending weight, each
  /// tuple attributed to the highest-weight covering rule).
  double total_score = 0;
};

/// Returns indices of `rules` ordered by descending weight (stable: ties
/// keep input order). Lemma 1: this order maximizes the list's score.
std::vector<size_t> OrderByWeightDesc(const std::vector<Rule>& rules,
                                      const WeightFunction& weight);

/// Exact evaluation of a rule list over a view: per-rule Count/MCount (or
/// Sum/MSum) and the total score. The list is internally evaluated in
/// descending-weight order per Definition 2, but outputs are reported in the
/// input order. `kernel` selects the scan-kernel path for the per-rule match
/// masks (results are bit-identical across paths).
RuleListEvaluation EvaluateRuleList(const TableView& view,
                                    const std::vector<Rule>& rules,
                                    const WeightFunction& weight,
                                    KernelPref kernel = KernelPref::kAuto);

/// Sharded evaluation: `views` are row-contiguous shard slices, in shard
/// order, of one logical table. The accumulators run sequentially across
/// the views in shard order — the same addition sequence as evaluating the
/// unsharded original — so the floats are byte-identical for every shard
/// count (per-shard subtotals folded together would not be: a different
/// fold tree drifts in the ULPs).
RuleListEvaluation EvaluateRuleListSharded(
    const std::vector<const TableView*>& views, const std::vector<Rule>& rules,
    const WeightFunction& weight, KernelPref kernel = KernelPref::kAuto);

/// Score of a rule *set* (Definition 2): sort by weight descending, then
/// sum MCount(r) * W(r).
double ScoreRuleSet(const TableView& view, const std::vector<Rule>& rules,
                    const WeightFunction& weight);

/// Score of a rule *list* evaluated in the given order (no re-sorting);
/// used to verify Lemma 1 (sorting by weight never lowers the score).
double ScoreRuleListInOrder(const TableView& view,
                            const std::vector<Rule>& rules,
                            const WeightFunction& weight);

}  // namespace smartdd

#endif  // SMARTDD_CORE_SCORE_H_
