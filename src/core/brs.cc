#include "core/brs.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "rules/rule_ops.h"

namespace smartdd {

Result<BrsResult> RunBrsSharded(const std::vector<const TableView*>& views,
                                const WeightFunction& weight,
                                const BrsOptions& options) {
  SMARTDD_CHECK(!views.empty()) << "sharded BRS needs >= 1 shard view";
  for (const TableView* vp : views) {
    if (!vp->has_measure()) continue;
    // Negative masses would invalidate the a-priori pruning bounds and the
    // submodularity argument; reject them up front.
    const uint64_t n = vp->num_rows();
    for (uint64_t i = 0; i < n; ++i) {
      if (vp->mass(i) < 0) {
        return Status::InvalidArgument(
            "Sum aggregation requires non-negative measure values");
      }
    }
  }

  MarginalSearchOptions search;
  search.max_weight = options.max_weight;
  if (std::isinf(search.max_weight)) {
    double cap = weight.MaxPossibleWeight(views[0]->num_columns());
    if (std::isfinite(cap)) search.max_weight = cap;
  }
  search.pruning = options.pruning;
  search.max_rule_size = options.max_rule_size;
  search.allowed_columns = options.allowed_columns;
  search.base_rule = options.base_rule;
  search.num_threads = options.num_threads;
  search.kernel = options.kernel;
  search.deadline = options.deadline;

  MarginalRuleFinder finder(views, weight, search);

  BrsResult result;
  // Shard-local covered-weight state, one vector per shard view.
  std::vector<std::vector<double>> covered(views.size());
  std::vector<std::vector<double>*> covered_ptrs(views.size());
  for (size_t s = 0; s < views.size(); ++s) {
    covered[s].assign(views[s]->num_rows(), 0.0);
    covered_ptrs[s] = &covered[s];
  }

  // Pipelined fan-out: the covered-weight update from step i is not applied
  // eagerly — it is handed to step i+1's Find, which fuses the O(n) update
  // scan into its own parallel pass-1 region. Nothing after the loop reads
  // `covered`, so a final unapplied update is simply dropped.
  std::optional<CoveredUpdate> pending;

  WallTimer budget_timer;
  for (size_t step = 0; step < options.k; ++step) {
    if (options.time_budget_ms > 0 && step > 0 &&
        budget_timer.ElapsedMillis() >= options.time_budget_ms) {
      break;  // anytime mode: report what we have so far
    }
    if (options.deadline.active() && options.deadline.expired()) {
      result.deadline_exceeded = true;
      break;  // degrade: keep the steps that finished in budget
    }
    // Step 0 runs on freshly zeroed covered weights: telling the finder
    // lets it fold the pass-1 marginal scan into the counting scan.
    auto found = finder.FindSharded(covered_ptrs,
                                    pending ? &*pending : nullptr,
                                    /*covered_is_zero=*/step == 0);
    pending.reset();
    result.stats.Accumulate(finder.stats());
    if (!found.ok()) {
      if (found.status().code() == StatusCode::kNotFound) break;
      if (found.status().code() == StatusCode::kDeadlineExceeded) {
        result.deadline_exceeded = true;
        break;  // the interrupted step is discarded, earlier steps kept
      }
      return found.status();
    }
    const MarginalRuleResult& m = *found;

    ScoredRule sr;
    sr.rule = m.rule;
    sr.weight = m.weight;
    sr.mass = m.mass;
    sr.marginal_value = m.marginal;
    result.rules.push_back(sr);
    pending = CoveredUpdate{m.rule, m.weight};

    if (options.on_rule && !options.on_rule(sr, step)) break;
  }

  // Display order: descending weight (Lemma 1), stable for ties.
  std::stable_sort(
      result.rules.begin(), result.rules.end(),
      [](const ScoredRule& a, const ScoredRule& b) { return a.weight > b.weight; });

  // Exact Count/MCount (or Sum/MSum) of the final list over the view.
  std::vector<Rule> in_order;
  for (const auto& r : result.rules) in_order.push_back(r.rule);
  RuleListEvaluation eval =
      EvaluateRuleListSharded(views, in_order, weight, options.kernel);
  for (size_t i = 0; i < result.rules.size(); ++i) {
    result.rules[i].mass = eval.mass[i];
    result.rules[i].marginal_mass = eval.marginal_mass[i];
  }
  result.total_score = eval.total_score;
  return result;
}

Result<BrsResult> RunBrs(const TableView& view, const WeightFunction& weight,
                         const BrsOptions& options) {
  return RunBrsSharded({&view}, weight, options);
}

}  // namespace smartdd
