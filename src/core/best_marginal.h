#ifndef SMARTDD_CORE_BEST_MARGINAL_H_
#define SMARTDD_CORE_BEST_MARGINAL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "core/scan_kernels.h"
#include "rules/rule.h"
#include "storage/table_view.h"
#include "weights/weight_function.h"

namespace smartdd {

/// Controls how aggressively FindBestMarginalRule prunes its candidate
/// space. kFull is the paper's Algorithm 2; kExhaustive disables the
/// upper-bound/threshold pruning (but still skips zero-support rules, whose
/// super-rules cannot cover anything) and is used for differential testing
/// and the pruning ablation benchmark.
enum class PruningMode { kFull, kExhaustive };

struct MarginalSearchOptions {
  /// The paper's mw: the search only considers rules with W(r) <= max_weight
  /// (monotonicity makes this cap downward-closed). Infinity = no cap.
  double max_weight = std::numeric_limits<double>::infinity();
  PruningMode pruning = PruningMode::kFull;
  /// Cap on the number of instantiated columns of candidate rules.
  size_t max_rule_size = std::numeric_limits<size_t>::max();
  /// Columns candidates may instantiate; empty = all columns. (Drill-down
  /// reductions restrict the search to the clicked rule's starred columns.)
  std::vector<size_t> allowed_columns;
  /// Base rule merged into every candidate before weight evaluation, so the
  /// weight of a drill-down result is the weight of the *full* super-rule.
  std::optional<Rule> base_rule;
  /// Threads for the counting passes: 0 = all hardware threads, 1 = serial.
  /// Results are bit-identical for every value (see best_marginal.cc).
  size_t num_threads = 0;
  /// Scan-kernel dispatch (core/scan_kernels.h): kAuto defers to
  /// SMARTDD_KERNEL, then CPU detection. Results are bit-identical across
  /// paths — the SIMD kernels vectorize only integer decode/compare work
  /// and a max-blend, never floating-point accumulation.
  KernelPref kernel = KernelPref::kAuto;
  /// Cooperative cancellation: checked at pass, column, lane, and
  /// candidate-block boundaries. When it fires, Find returns
  /// DeadlineExceeded; when it does not, results are bit-identical to a
  /// search without a deadline. Default is inert.
  Deadline deadline;
};

/// Instrumentation for tests and the pruning-ablation benchmark.
struct MarginalSearchStats {
  size_t passes = 0;                 ///< counting passes over the view
  size_t candidates_generated = 0;   ///< candidate rules considered
  size_t candidates_pruned = 0;      ///< dropped by the upper-bound test
  size_t candidates_counted = 0;     ///< actually counted in a pass
  uint64_t tuple_visits = 0;         ///< row visits across counting passes
  /// Wall time spent in the gather/merge stages — folding per-lane and
  /// per-block partial aggregates back together in deterministic order
  /// after each scatter. The sharded engine exports this as its
  /// scatter-gather merge-latency histogram.
  double merge_seconds = 0;

  void Accumulate(const MarginalSearchStats& other) {
    passes += other.passes;
    candidates_generated += other.candidates_generated;
    candidates_pruned += other.candidates_pruned;
    candidates_counted += other.candidates_counted;
    tuple_visits += other.tuple_visits;
    merge_seconds += other.merge_seconds;
  }
};

/// A deferred covered-weight update from the previous greedy pick: before
/// the next search reads covered_weight[t], every row covered by `rule`
/// must have its entry raised to at least `weight`. Passing it into Find()
/// lets the finder fuse this O(n) update into its own parallel pass-1
/// region — the drill-down fan-out pipelining: step i's covered-weight
/// update scan overlaps step i+1's counting scan instead of running as a
/// separate serial pass between greedy steps.
struct CoveredUpdate {
  Rule rule{0};
  double weight = 0;
};

/// Result of one best-marginal-rule search.
struct MarginalRuleResult {
  Rule rule{0};      ///< full-width rule (base merged in)
  double weight = 0;
  double mass = 0;   ///< Count/Sum of the rule over the view
  double marginal = 0;  ///< sum over covered tuples of mass*(W(r)-cw(t))^+
};

/// Implements the paper's Algorithm 2 ("Find best marginal rule"): finds the
/// rule r maximizing the marginal score gain
///     sum_{t covered by r} mass(t) * max(0, W(r) - covered_weight[t])
/// among rules with W(r) <= max_weight, via multi-pass a-priori-style
/// counting. In pass j it counts candidate rules of size j generated from
/// surviving size-(j-1) rules, pruning any candidate whose upper bound
///     min over counted sub-rules r' of
///         Marginal(r') + Mass(r') * (max_weight - W(r'))
/// cannot beat the best marginal value H found so far.
class MarginalRuleFinder {
 public:
  /// `view` and `weight` must outlive the finder.
  MarginalRuleFinder(const TableView& view, const WeightFunction& weight,
                     MarginalSearchOptions options);

  /// Sharded search: `views` are row-contiguous shard slices, in shard
  /// order, of one logical table (same schema, shared dictionaries, same
  /// measure selection). The search treats their concatenation as a single
  /// row space: scan lanes, merge order, pruning thresholds, and tie-breaks
  /// are pure functions of the *global* shape, so the result is
  /// byte-identical to running the single-view search over the unsharded
  /// original — for every shard count and every thread count. The views
  /// must outlive the finder.
  MarginalRuleFinder(std::vector<const TableView*> views,
                     const WeightFunction& weight,
                     MarginalSearchOptions options);

  /// Runs the search. `covered_weight[i]` is the weight of the
  /// highest-weight already-selected rule covering view row i (0 if none).
  /// Returns NotFound when no rule has positive marginal value.
  Result<MarginalRuleResult> Find(const std::vector<double>& covered_weight);

  /// Like Find, but first applies `pending` to `covered_weight` inside the
  /// search's first pass-1 parallel region (each row is updated exactly
  /// once before any read, so the result is bit-identical to applying the
  /// update serially before calling Find, for every thread count). When the
  /// search bails out before scanning (empty view / empty search space),
  /// `covered_weight` is left untouched — the NotFound ends the greedy loop
  /// anyway.
  Result<MarginalRuleResult> Find(std::vector<double>& covered_weight,
                                  const CoveredUpdate& pending);

  /// Sharded Find: `covered[s]` holds the covered-weight entries for
  /// views[s]'s rows (shard-local state, the seam for a multi-process
  /// tier). `pending` may be null; when set, it is fused into the first
  /// pass-1 region exactly like the single-view overload.
  ///
  /// `covered_is_zero` is the caller's promise that every covered entry is
  /// exactly 0.0 (the first greedy step, before any rule was picked) — it
  /// lets pass 1 fold its Phase-B marginal scan into the Phase-A counts,
  /// with bit-identical results (see CountSizeOne). It must not be combined
  /// with a pending update (an update implies a prior pick).
  Result<MarginalRuleResult> FindSharded(
      const std::vector<std::vector<double>*>& covered,
      const CoveredUpdate* pending, bool covered_is_zero = false);

  /// Stats of the most recent Find call.
  const MarginalSearchStats& stats() const { return stats_; }

 private:
  struct Impl;

  std::vector<const TableView*> views_;
  const WeightFunction* weight_;
  MarginalSearchOptions options_;
  MarginalSearchStats stats_;
};

}  // namespace smartdd

#endif  // SMARTDD_CORE_BEST_MARGINAL_H_
