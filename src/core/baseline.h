#ifndef SMARTDD_CORE_BASELINE_H_
#define SMARTDD_CORE_BASELINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/best_marginal.h"
#include "core/score.h"
#include "storage/table_view.h"
#include "weights/weight_function.h"

namespace smartdd {

/// Minimal result bundle for the exact solver (kept separate from BrsResult
/// to avoid a dependency cycle with brs.h).
struct ExactRuleSetResult {
  std::vector<ScoredRule> rules;  ///< descending weight
  double total_score = 0;
};

/// Enumerates every distinct rule with support > 0, size in [1, max_size],
/// over `allowed_columns` (empty = all). Cost is O(rows * 2^|columns|);
/// intended for tests and small exploratory tables.
std::vector<Rule> EnumerateSupportedRules(
    const TableView& view, size_t max_size,
    const std::vector<size_t>& allowed_columns = {});

/// Reference implementation of the best-marginal-rule search: enumerates all
/// supported rules and scores each directly. Used for differential testing
/// of MarginalRuleFinder's pruning, and by the ablation benchmark.
Result<MarginalRuleResult> NaiveBestMarginal(
    const TableView& view, const WeightFunction& weight,
    const std::vector<double>& covered_weight,
    double max_weight = std::numeric_limits<double>::infinity(),
    size_t max_size = std::numeric_limits<size_t>::max());

/// Exact solution of Problem 3 by exhaustive search over all k-subsets of
/// supported rules. Refuses instances with more than `max_universe`
/// supported rules. Small inputs only — this is the optimum that greedy BRS
/// is tested against (greedy score >= (1 - (1-1/k)^k) * optimum).
Result<ExactRuleSetResult> BruteForceOptimalRuleSet(
    const TableView& view, const WeightFunction& weight, size_t k,
    size_t max_size = 3, size_t max_universe = 32);

/// Traditional drill-down on one column (paper §5.1.2 / Figure 4): every
/// distinct value with its mass, descending by mass.
std::vector<std::pair<uint32_t, double>> TraditionalDrillDown(
    const TableView& view, size_t col);

/// Classic a-priori frequent-pattern mining over rules: all rules of size
/// in [1, max_size] with mass >= min_support, each with its mass/weight.
/// The "related work" baseline smart drill-down is compared against.
std::vector<ScoredRule> FrequentRules(const TableView& view,
                                      double min_support, size_t max_size,
                                      const WeightFunction& weight);

}  // namespace smartdd

#endif  // SMARTDD_CORE_BASELINE_H_
