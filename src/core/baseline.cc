#include "core/baseline.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "rules/rule_ops.h"

namespace smartdd {

namespace {

/// Visits every sub-rule of the tuple `codes` with size in [1, max_size]
/// over `cols` (all non-empty subsets of the columns, values pinned to the
/// tuple's).
template <typename Fn>
void ForEachTupleSubRule(const std::vector<size_t>& cols,
                         const TableView& view, uint64_t row, size_t max_size,
                         Fn&& fn) {
  const size_t n = cols.size();
  SMARTDD_CHECK(n < 24) << "too many columns for exhaustive enumeration";
  const uint32_t limit = 1u << n;
  Rule rule(view.num_columns());
  for (uint32_t mask = 1; mask < limit; ++mask) {
    size_t bits = static_cast<size_t>(__builtin_popcount(mask));
    if (bits > max_size) continue;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        rule.set_value(cols[i], view.code(cols[i], row));
      } else {
        rule.clear_value(cols[i]);
      }
    }
    fn(rule);
  }
}

std::vector<size_t> ResolveColumns(const TableView& view,
                                   const std::vector<size_t>& allowed) {
  if (!allowed.empty()) return allowed;
  std::vector<size_t> cols(view.num_columns());
  for (size_t c = 0; c < cols.size(); ++c) cols[c] = c;
  return cols;
}

}  // namespace

std::vector<Rule> EnumerateSupportedRules(
    const TableView& view, size_t max_size,
    const std::vector<size_t>& allowed_columns) {
  std::vector<size_t> cols = ResolveColumns(view, allowed_columns);
  std::unordered_set<Rule, RuleHash> seen;
  const uint64_t n = view.num_rows();
  for (uint64_t t = 0; t < n; ++t) {
    ForEachTupleSubRule(cols, view, t, max_size,
                        [&](const Rule& r) { seen.insert(r); });
  }
  std::vector<Rule> out(seen.begin(), seen.end());
  // Deterministic order: by size then lexicographic values.
  std::sort(out.begin(), out.end(), [](const Rule& a, const Rule& b) {
    size_t sa = a.size(), sb = b.size();
    if (sa != sb) return sa < sb;
    return a.values() < b.values();
  });
  return out;
}

Result<MarginalRuleResult> NaiveBestMarginal(
    const TableView& view, const WeightFunction& weight,
    const std::vector<double>& covered_weight, double max_weight,
    size_t max_size) {
  SMARTDD_CHECK(covered_weight.size() == view.num_rows());
  std::vector<Rule> rules = EnumerateSupportedRules(view, max_size);
  MarginalRuleResult best;
  bool found = false;
  for (const Rule& r : rules) {
    double w = weight.Weight(r);
    if (w > max_weight) continue;
    double mass = 0;
    double marginal = 0;
    const uint64_t n = view.num_rows();
    for (uint64_t t = 0; t < n; ++t) {
      if (!RuleCoversRow(r, view, t)) continue;
      double m = view.mass(t);
      mass += m;
      marginal += m * std::max(0.0, w - covered_weight[t]);
    }
    if (marginal <= 0) continue;
    bool better = !found || marginal > best.marginal;
    if (!better && marginal == best.marginal) {
      better = w > best.weight ||
               (w == best.weight && r.values() < best.rule.values());
    }
    if (better) {
      best.rule = r;
      best.weight = w;
      best.mass = mass;
      best.marginal = marginal;
      found = true;
    }
  }
  if (!found) return Status::NotFound("no rule with positive marginal value");
  return best;
}

Result<ExactRuleSetResult> BruteForceOptimalRuleSet(
    const TableView& view, const WeightFunction& weight, size_t k,
    size_t max_size, size_t max_universe) {
  std::vector<Rule> universe = EnumerateSupportedRules(view, max_size);
  if (universe.size() > max_universe) {
    return Status::CapacityExceeded(
        StrFormat("rule universe has %zu rules, exceeding the brute-force "
                  "cap of %zu",
                  universe.size(), max_universe));
  }
  k = std::min(k, universe.size());

  std::vector<size_t> current;
  std::vector<size_t> best_subset;
  double best_score = -1;

  // Exhaustive k-subset search (k is small in tests).
  std::function<void(size_t)> recurse = [&](size_t start) {
    if (current.size() == k) {
      std::vector<Rule> rules;
      for (size_t i : current) rules.push_back(universe[i]);
      double s = ScoreRuleSet(view, rules, weight);
      if (s > best_score) {
        best_score = s;
        best_subset = current;
      }
      return;
    }
    for (size_t i = start; i < universe.size(); ++i) {
      current.push_back(i);
      recurse(i + 1);
      current.pop_back();
    }
  };
  recurse(0);

  ExactRuleSetResult result;
  std::vector<Rule> rules;
  for (size_t i : best_subset) rules.push_back(universe[i]);
  std::vector<size_t> order = OrderByWeightDesc(rules, weight);
  std::vector<Rule> sorted;
  for (size_t i : order) sorted.push_back(rules[i]);
  RuleListEvaluation eval = EvaluateRuleList(view, sorted, weight);
  for (size_t i = 0; i < sorted.size(); ++i) {
    ScoredRule sr;
    sr.rule = sorted[i];
    sr.weight = weight.Weight(sorted[i]);
    sr.mass = eval.mass[i];
    sr.marginal_mass = eval.marginal_mass[i];
    result.rules.push_back(std::move(sr));
  }
  result.total_score = eval.total_score;
  return result;
}

std::vector<std::pair<uint32_t, double>> TraditionalDrillDown(
    const TableView& view, size_t col) {
  SMARTDD_CHECK(col < view.num_columns());
  std::unordered_map<uint32_t, double> mass;
  const uint64_t n = view.num_rows();
  for (uint64_t t = 0; t < n; ++t) {
    mass[view.code(col, t)] += view.mass(t);
  }
  std::vector<std::pair<uint32_t, double>> out(mass.begin(), mass.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<ScoredRule> FrequentRules(const TableView& view,
                                      double min_support, size_t max_size,
                                      const WeightFunction& weight) {
  // Level-wise a-priori: count size-j rules whose size-(j-1) sub-rules are
  // all frequent.
  std::vector<ScoredRule> out;
  std::unordered_map<Rule, double, RuleHash> frequent_prev;

  // Level 1.
  std::unordered_map<Rule, double, RuleHash> counts;
  const uint64_t n = view.num_rows();
  for (size_t c = 0; c < view.num_columns(); ++c) {
    for (uint64_t t = 0; t < n; ++t) {
      Rule r(view.num_columns());
      r.set_value(c, view.code(c, t));
      counts[r] += view.mass(t);
    }
  }
  for (auto& [r, m] : counts) {
    if (m >= min_support) frequent_prev.emplace(r, m);
  }

  auto emit = [&](const std::unordered_map<Rule, double, RuleHash>& level) {
    std::vector<const Rule*> order;
    for (const auto& [r, m] : level) order.push_back(&r);
    std::sort(order.begin(), order.end(), [](const Rule* a, const Rule* b) {
      return a->values() < b->values();
    });
    for (const Rule* r : order) {
      ScoredRule sr;
      sr.rule = *r;
      sr.weight = weight.Weight(*r);
      sr.mass = level.at(*r);
      out.push_back(std::move(sr));
    }
  };
  emit(frequent_prev);

  for (size_t level = 2; level <= max_size && !frequent_prev.empty();
       ++level) {
    // Candidates: frequent (level-1)-rules extended by a frequent 1-rule on
    // a later column; all sub-rules must be frequent.
    std::unordered_map<Rule, double, RuleHash> candidates;
    for (const auto& [r, m] : frequent_prev) {
      auto cols = r.InstantiatedColumns();
      if (cols.size() != level - 1) continue;
      for (size_t c = cols.back() + 1; c < view.num_columns(); ++c) {
        for (uint32_t v = 0; v < view.table().dictionary(c).size(); ++v) {
          Rule one(view.num_columns());
          one.set_value(c, v);
          auto it1 = counts.find(one);
          if (it1 == counts.end() || it1->second < min_support) continue;
          Rule cand = r;
          cand.set_value(c, v);
          // Downward closure: all immediate sub-rules frequent.
          bool ok = true;
          for (size_t drop : cand.InstantiatedColumns()) {
            Rule sub = cand;
            sub.clear_value(drop);
            if (sub.size() == 1) {
              auto it = counts.find(sub);
              ok = it != counts.end() && it->second >= min_support;
            } else {
              ok = frequent_prev.count(sub) > 0;
            }
            if (!ok) break;
          }
          if (ok) candidates.emplace(cand, 0.0);
        }
      }
    }
    if (candidates.empty()) break;
    for (uint64_t t = 0; t < n; ++t) {
      for (auto& [r, m] : candidates) {
        if (RuleCoversRow(r, view, t)) m += view.mass(t);
      }
    }
    std::unordered_map<Rule, double, RuleHash> frequent;
    for (auto& [r, m] : candidates) {
      if (m >= min_support) frequent.emplace(r, m);
    }
    emit(frequent);
    frequent_prev = std::move(frequent);
  }
  return out;
}

}  // namespace smartdd
