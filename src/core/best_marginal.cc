#include "core/best_marginal.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace smartdd {

namespace {

struct VecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    return static_cast<size_t>(HashCodes(v));
  }
};

/// Per-candidate counters. `excluded` marks rules whose weight exceeds mw
/// or whose upper bound fell below the threshold H before they were
/// counted; they are kept as tombstones so that candidate generation skips
/// extensions of them cheaply.
struct Entry {
  double weight = 0;
  double mass = 0;
  double marginal = 0;
  /// Upper bound on the marginal value (set at generation, passes >= 2).
  double bound = 0;
  bool excluded = false;
};

using Vals = std::vector<uint32_t>;
using Cols = std::vector<uint32_t>;
using ValsMap = std::unordered_map<Vals, Entry, VecHash>;

/// All candidates sharing one set of instantiated columns.
struct Group {
  Cols cols;
  ValsMap entries;
};

/// Deterministic tie-break for equal marginal values: prefer higher weight,
/// then lexicographically smaller rule values.
bool RuleValuesLess(const Rule& a, const Rule& b) {
  return a.values() < b.values();
}

}  // namespace

struct MarginalRuleFinder::Impl {
  const TableView& view;
  const WeightFunction& weight;
  const MarginalSearchOptions& options;
  MarginalSearchStats& stats;
  const std::vector<double>& covered_weight;

  std::vector<uint32_t> columns;  // search space, ascending
  Rule base;                      // merged into candidates for weight eval

  /// Counted groups from every completed pass, keyed by column set.
  std::unordered_map<Cols, ValsMap, VecHash> counted;

  /// Per allowed column: row postings per dictionary code, built during
  /// pass 1. Candidate counting in later passes walks the postings of the
  /// candidate's *rarest* value and verifies the remaining columns, so its
  /// cost is sum over candidates of min singleton support — not
  /// rows x groups (which explodes on wide tables).
  std::unordered_map<uint32_t, std::vector<std::vector<uint32_t>>> postings;

  double best_marginal = 0;  // the paper's threshold H
  Rule best_rule{0};
  double best_weight = 0;
  double best_mass = 0;

  Impl(const TableView& v, const WeightFunction& w,
       const MarginalSearchOptions& opts, MarginalSearchStats& s,
       const std::vector<double>& cw)
      : view(v),
        weight(w),
        options(opts),
        stats(s),
        covered_weight(cw),
        base(opts.base_rule ? *opts.base_rule : Rule(v.num_columns())) {
    SMARTDD_CHECK(base.num_columns() == view.num_columns());
    if (options.allowed_columns.empty()) {
      for (size_t c = 0; c < view.num_columns(); ++c) {
        columns.push_back(static_cast<uint32_t>(c));
      }
    } else {
      for (size_t c : options.allowed_columns) {
        SMARTDD_CHECK(c < view.num_columns());
        columns.push_back(static_cast<uint32_t>(c));
      }
      std::sort(columns.begin(), columns.end());
      columns.erase(std::unique(columns.begin(), columns.end()),
                    columns.end());
    }
  }

  Rule FullRule(const Cols& cols, const Vals& vals) const {
    Rule r = base;
    for (size_t i = 0; i < cols.size(); ++i) r.set_value(cols[i], vals[i]);
    return r;
  }

  double EffectiveWeight(const Cols& cols, const Vals& vals) const {
    return weight.Weight(FullRule(cols, vals));
  }

  /// Pass 1: one scan counting every size-1 rule (lazily created) and
  /// building the per-value row postings.
  void CountSizeOne(std::vector<Group>& groups) {
    const uint64_t n = view.num_rows();
    for (uint32_t c : columns) {
      postings[c].resize(view.table().dictionary(c).size());
    }
    Vals key(1);
    for (auto& g : groups) {
      const uint32_t c = g.cols[0];
      auto& posts = postings[c];
      for (uint64_t t = 0; t < n; ++t) {
        uint32_t code = view.code(c, t);
        key[0] = code;
        auto [it, inserted] = g.entries.try_emplace(key);
        Entry* e = &it->second;
        if (inserted) {
          e->weight = EffectiveWeight(g.cols, key);
          e->excluded = e->weight > options.max_weight;
          ++stats.candidates_generated;
          if (!e->excluded) ++stats.candidates_counted;
        }
        posts[code].push_back(static_cast<uint32_t>(t));
        if (e->excluded) continue;
        const double m = view.mass(t);
        e->mass += m;
        e->marginal += m * std::max(0.0, e->weight - covered_weight[t]);
      }
      stats.tuple_visits += n;
    }
    ++stats.passes;
  }

  /// Singleton mass lookup (for picking the rarest posting list).
  double SingletonMass(uint32_t col, uint32_t val) const {
    auto cit = counted.find(Cols{col});
    if (cit == counted.end()) return 0;
    auto eit = cit->second.find(Vals{val});
    if (eit == cit->second.end()) return 0;
    return eit->second.mass;
  }

  /// Passes 2+: verify each candidate against the postings of its rarest
  /// instantiated value. Candidates are processed in decreasing order of
  /// their generation-time upper bound, and the threshold H is advanced
  /// after every candidate — so once a strong candidate is counted, the
  /// long tail of weaker ones is skipped without touching any tuple (the
  /// paper's threshold rule, applied eagerly within the pass).
  void CountCandidates(std::vector<Group>& groups) {
    struct Item {
      Group* group;
      const Vals* vals;
      Entry* entry;
    };
    std::vector<Item> items;
    for (auto& g : groups) {
      for (auto& [vals, e] : g.entries) {
        if (!e.excluded) items.push_back(Item{&g, &vals, &e});
      }
    }
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      return a.entry->bound > b.entry->bound;
    });

    const bool prune = options.pruning == PruningMode::kFull;
    double h = best_marginal;
    for (const Item& item : items) {
      Entry& e = *item.entry;
      if (prune && (e.bound < h || e.bound <= 0)) {
        e.excluded = true;  // tombstone: super-rules prune through it
        ++stats.candidates_pruned;
        continue;
      }
      const Cols& cols = item.group->cols;
      const Vals& vals = *item.vals;
      const size_t arity = cols.size();
      size_t rare_i = 0;
      double rare_mass = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < arity; ++i) {
        double m = SingletonMass(cols[i], vals[i]);
        if (m < rare_mass) {
          rare_mass = m;
          rare_i = i;
        }
      }
      const auto& rows = postings.at(cols[rare_i])[vals[rare_i]];
      for (uint32_t t : rows) {
        bool covered = true;
        for (size_t i = 0; i < arity; ++i) {
          if (i == rare_i) continue;
          if (view.code(cols[i], t) != vals[i]) {
            covered = false;
            break;
          }
        }
        if (!covered) continue;
        const double m = view.mass(t);
        e.mass += m;
        e.marginal += m * std::max(0.0, e.weight - covered_weight[t]);
      }
      stats.tuple_visits += rows.size();
      ++stats.candidates_counted;
      if (e.marginal > h) h = e.marginal;
    }
    ++stats.passes;
  }

  /// Folds a finished pass into the candidate store; updates the threshold
  /// H / current best rule.
  void AbsorbPass(std::vector<Group>& groups) {
    for (auto& g : groups) {
      for (const auto& [vals, e] : g.entries) {
        if (e.excluded || e.marginal <= 0) continue;
        bool better = e.marginal > best_marginal;
        if (!better && e.marginal == best_marginal && best_marginal > 0) {
          Rule r = FullRule(g.cols, vals);
          better = e.weight > best_weight ||
                   (e.weight == best_weight && RuleValuesLess(r, best_rule));
        }
        if (better) {
          best_marginal = e.marginal;
          best_rule = FullRule(g.cols, vals);
          best_weight = e.weight;
          best_mass = e.mass;
        }
      }
      counted[g.cols] = std::move(g.entries);
    }
  }

  /// Upper bound on the marginal value of any super-rule of a counted rule
  /// (paper §3.5): Marginal(r') + Mass(r') * (mw - W(r')).
  double SuperRuleBound(const Entry& e) const {
    return e.marginal + e.mass * (options.max_weight - e.weight);
  }

  /// Generates size-(j) candidate groups by extending the size-(j-1) column
  /// sets in `prev_cols` (whose entries now live in `counted`). Each
  /// candidate extends a parent with one column strictly after the parent's
  /// last column, so every candidate is generated exactly once from its
  /// prefix sub-rule.
  std::vector<Group> GenerateCandidates(const std::vector<Cols>& prev_cols) {
    const bool prune = options.pruning == PruningMode::kFull;
    std::unordered_map<Cols, size_t, VecHash> group_index;
    std::vector<Group> out;

    Cols cand_cols;
    Vals cand_vals;
    Cols sub_cols;
    Vals sub_vals;

    for (const auto& pcols : prev_cols) {
      const auto& parents = counted.at(pcols);
      for (const auto& [vals, parent] : parents) {
        if (parent.excluded || parent.mass <= 0) continue;
        // Cheap parent-level cut: no super-rule of this parent can beat H.
        if (prune && SuperRuleBound(parent) < best_marginal) continue;
        for (uint32_t c : columns) {
          if (c <= pcols.back()) continue;
          auto size1_it = counted.find(Cols{c});
          if (size1_it == counted.end()) continue;
          for (const auto& [v1, e1] : size1_it->second) {
            if (e1.excluded || e1.mass <= 0) continue;
            ++stats.candidates_generated;

            cand_cols = pcols;
            cand_cols.push_back(c);
            cand_vals = vals;
            cand_vals.push_back(v1[0]);

            double w = EffectiveWeight(cand_cols, cand_vals);
            if (w > options.max_weight) continue;  // weight cap (mw)

            // Upper-bound test against every counted immediate sub-rule. A
            // missing / excluded / zero-mass sub-rule proves the candidate
            // is itself zero-mass or already dominated, so drop it.
            bool pruned = false;
            double bound = std::numeric_limits<double>::infinity();
            for (size_t drop = 0; drop < cand_cols.size(); ++drop) {
              sub_cols.clear();
              sub_vals.clear();
              for (size_t i = 0; i < cand_cols.size(); ++i) {
                if (i == drop) continue;
                sub_cols.push_back(cand_cols[i]);
                sub_vals.push_back(cand_vals[i]);
              }
              auto cit = counted.find(sub_cols);
              const Entry* sub = nullptr;
              if (cit != counted.end()) {
                auto eit = cit->second.find(sub_vals);
                if (eit != cit->second.end()) sub = &eit->second;
              }
              if (sub == nullptr || sub->excluded || sub->mass <= 0) {
                pruned = true;
                break;
              }
              bound = std::min(bound, SuperRuleBound(*sub));
            }
            if (!pruned && prune && (bound < best_marginal || bound <= 0)) {
              pruned = true;
            }
            if (pruned) {
              ++stats.candidates_pruned;
              continue;
            }

            size_t gi;
            auto git = group_index.find(cand_cols);
            if (git == group_index.end()) {
              gi = out.size();
              out.emplace_back();
              out.back().cols = cand_cols;
              group_index.emplace(cand_cols, gi);
            } else {
              gi = git->second;
            }
            Entry e;
            e.weight = w;
            e.bound = bound;
            out[gi].entries.emplace(cand_vals, e);
          }
        }
      }
    }
    return out;
  }

  Result<MarginalRuleResult> Run() {
    const size_t max_size = std::min(options.max_rule_size, columns.size());
    if (max_size == 0 || view.num_rows() == 0) {
      return Status::NotFound("no rule with positive marginal value");
    }

    // Pass 1: count all size-1 rules and build postings.
    std::vector<Group> pass_groups;
    for (uint32_t c : columns) {
      Group g;
      g.cols = {c};
      pass_groups.push_back(std::move(g));
    }
    CountSizeOne(pass_groups);
    std::vector<Cols> prev_cols;
    for (const auto& g : pass_groups) prev_cols.push_back(g.cols);
    AbsorbPass(pass_groups);

    // Passes 2..max_size: a-priori-style candidate generation + counting.
    for (size_t j = 2; j <= max_size; ++j) {
      std::vector<Group> next = GenerateCandidates(prev_cols);
      if (next.empty()) break;
      CountCandidates(next);
      prev_cols.clear();
      for (const auto& g : next) prev_cols.push_back(g.cols);
      AbsorbPass(next);
    }

    if (best_marginal <= 0) {
      return Status::NotFound("no rule with positive marginal value");
    }
    MarginalRuleResult result;
    result.rule = best_rule;
    result.weight = best_weight;
    result.mass = best_mass;
    result.marginal = best_marginal;
    return result;
  }
};

MarginalRuleFinder::MarginalRuleFinder(const TableView& view,
                                       const WeightFunction& weight,
                                       MarginalSearchOptions options)
    : view_(&view), weight_(&weight), options_(std::move(options)) {}

Result<MarginalRuleResult> MarginalRuleFinder::Find(
    const std::vector<double>& covered_weight) {
  SMARTDD_CHECK(covered_weight.size() == view_->num_rows())
      << "covered_weight must have one entry per view row";
  stats_ = MarginalSearchStats{};
  Impl impl(*view_, *weight_, options_, stats_, covered_weight);
  return impl.Run();
}

}  // namespace smartdd
