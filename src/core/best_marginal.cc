#include "core/best_marginal.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>

#include "common/flat_map.h"
#include "common/float_sum.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "rules/rule_ops.h"

namespace smartdd {

namespace {

/// Per-candidate counters. `excluded` marks rules whose weight exceeds mw
/// or whose upper bound fell below the threshold H before they were
/// counted; they are kept as tombstones so that candidate generation skips
/// extensions of them cheaply.
struct Entry {
  double weight = 0;
  double mass = 0;
  double marginal = 0;
  /// Upper bound on the marginal value (set at generation, passes >= 2).
  double bound = 0;
  bool excluded = false;
};

using Cols = std::vector<uint32_t>;

/// The pass-1 scan splits the rows into contiguous "lanes", each summed
/// sequentially in row order into its own accumulator, merged in lane
/// order afterwards. Lane boundaries depend only on the data shape (row
/// count and dictionary size) — never on the thread count — so the merged
/// floats are bit-identical for any parallelism.
///
/// Sharded searches reuse the same grid: the shards' rows are treated as
/// one concatenated row space and the lane layout is computed from the
/// *global* row count, so a lane may span a shard boundary (it then scans
/// the shards' sub-ranges in shard order). Lanes, merge order, and scan
/// order are therefore pure functions of the global shape — never of the
/// shard count — which is what makes every num_shards x num_threads
/// combination byte-identical to the single-shard serial search.
///
/// kMinLaneRows bounds scheduling overhead on small views; kMaxLanes
/// bounds the fan-out; kMaxLaneCells bounds the transient accumulator
/// memory (lanes * dict cells, ~20 bytes each) so high-cardinality
/// columns degrade toward fewer lanes instead of gigabytes of scratch.
constexpr uint64_t kMinLaneRows = 16384;
constexpr uint64_t kMaxLanes = 64;
constexpr uint64_t kMaxLaneCells = uint64_t{1} << 22;  // ~80 MB of scratch

/// Candidates per block in the counting passes. The threshold H is frozen
/// at each block boundary: pruning decisions depend only on block layout
/// (thread-count-independent), while the candidates inside one block count
/// concurrently.
constexpr size_t kCountBlock = 64;

/// Stack capacity for hoisted per-candidate column pointers; rules wider
/// than this take an unhoisted (still allocation-free) slow path.
constexpr size_t kMaxHoistedArity = 64;

/// All candidates sharing one set of instantiated columns (arity >= 2).
/// Values are packed Key128s; the raw tuples live in `tuples`, strided by
/// arity and parallel to the map's insertion order, because hashed
/// (overflow-width) keys cannot be unpacked.
struct CandidateGroup {
  Cols cols;
  TuplePacker packer;
  FlatMap<Entry> map;
  std::vector<uint32_t> tuples;

  const uint32_t* tuple(size_t entry_index) const {
    return tuples.data() + entry_index * cols.size();
  }
};

/// Singleton (size-1) candidates for one column, dense by dictionary code.
/// `counts[v] == 0` means value v never occurs in the view (no candidate).
/// `codes` lists the occurring values ascending, so candidate generation
/// iterates occurring values only instead of the whole dictionary (which
/// matters for high-cardinality columns over narrow drill-down views).
struct SingletonTable {
  uint32_t col = 0;
  std::vector<Entry> entries;
  std::vector<uint32_t> counts;
  std::vector<uint32_t> codes;
};

/// Row postings per dictionary code of one column, CSR layout: the rows
/// covered by code v are rows[offsets[v] .. offsets[v+1]), ascending in
/// the concatenated (global) row order.
struct Postings {
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> rows;
};

}  // namespace

struct MarginalRuleFinder::Impl {
  /// One shard slice of the logical row space. `begin` is the slice's
  /// offset in the concatenated order; covered/mut_covered are shard-local
  /// arrays indexed by the slice's own view rows.
  struct Segment {
    const TableView* view;
    const double* covered;
    double* mut_covered;
    uint64_t begin;
    uint64_t rows;
    const double* mass_col;  // measure column data, nullptr for Count
    bool subset;
  };

  const WeightFunction& weight;
  const MarginalSearchOptions& options;
  MarginalSearchStats& stats;
  std::vector<Segment> segs;
  uint64_t total_rows = 0;
  /// Deferred update fused into the first pass-1 region (see Find overload).
  const CoveredUpdate* pending = nullptr;
  /// Caller's promise that every covered-weight entry is exactly 0.0 (the
  /// first greedy step): pass 1 may then fold its Phase-B marginal scan
  /// into the Phase-A counts (see CountSizeOne). Mutually exclusive with
  /// `pending`.
  bool covered_zero = false;

  std::vector<uint32_t> columns;   // search space, ascending
  std::vector<int32_t> col_dense;  // table column -> index in columns, or -1
  std::vector<uint8_t> col_bits;   // per dense column: code bit width
  Rule base;     // merged into candidates for weight eval
  Rule scratch;  // reusable candidate rule: no per-candidate Rule allocs
  bool base_stars_search_cols = true;  // base is all-stars on `columns`

  size_t threads;

  /// Resolved once per search so a process can host scalar and SIMD
  /// engines side by side (the differential suite does).
  KernelPath kpath;
  const ScanKernels* kern;
  /// Pass 1 builds the CSR postings only when a later pass will walk them:
  /// a size-1-capped search (drill-down expansions with one free column)
  /// skips the O(n) scatter and its O(n) rows array entirely.
  bool build_postings = true;
  /// Count aggregation (no measure column): pass 1 skips the per-lane mass
  /// accumulators and derives mass from the integer counts. Exact: each
  /// lane's mass was a sum of 1.0s, and integer-valued double sums are
  /// bit-identical to double(count) up to 2^53 rows.
  bool count_mode = false;

  std::vector<Postings> postings;        // per dense column, global row ids
  std::vector<SingletonTable> singles;   // per dense column
  std::vector<CandidateGroup> counted;   // arity >= 2 groups, all passes
  FlatMap<uint32_t> counted_index;       // ColsKey -> index into `counted`

  double best_marginal = 0;  // the paper's threshold H
  Rule best_rule{0};
  double best_weight = 0;
  double best_mass = 0;

  /// Latched deadline state, polled from the driver thread only — at pass,
  /// column, and candidate-block boundaries, i.e. right after (never
  /// inside) a parallel region, so cancellation is race-free and results
  /// are untouched when the deadline does not fire.
  bool deadline_expired = false;

  bool DeadlineExpired() {
    if (!options.deadline.active()) return false;
    if (!deadline_expired) deadline_expired = options.deadline.expired();
    return deadline_expired;
  }

  static Status DeadlineStatus() {
    return Status::DeadlineExceeded(
        "marginal-rule search aborted: deadline exceeded");
  }

  Impl(const std::vector<const TableView*>& views, const WeightFunction& w,
       const MarginalSearchOptions& opts, MarginalSearchStats& s,
       const std::vector<const double*>& covered,
       const std::vector<double*>& mut_covered)
      : weight(w),
        options(opts),
        stats(s),
        base(opts.base_rule ? *opts.base_rule
                            : Rule(views[0]->num_columns())),
        scratch(0),
        threads(ThreadPool::EffectiveThreads(opts.num_threads)),
        kpath(ResolveKernelPath(opts.kernel)),
        kern(&GetScanKernels(kpath)) {
    SMARTDD_CHECK(!views.empty());
    const TableView& proto = *views[0];
    SMARTDD_CHECK(base.num_columns() == proto.num_columns());
    segs.reserve(views.size());
    for (size_t i = 0; i < views.size(); ++i) {
      const TableView* v = views[i];
      SMARTDD_CHECK(v->num_columns() == proto.num_columns())
          << "shard views must share one schema";
      SMARTDD_CHECK(v->measure_index() == proto.measure_index())
          << "shard views must select the same measure";
      Segment seg;
      seg.view = v;
      seg.covered = covered[i];
      seg.mut_covered = mut_covered.empty() ? nullptr : mut_covered[i];
      seg.begin = total_rows;
      seg.rows = v->num_rows();
      seg.mass_col =
          v->has_measure()
              ? v->table().measure_column(*v->measure_index()).data()
              : nullptr;
      seg.subset = v->is_subset();
      segs.push_back(seg);
      total_rows += seg.rows;
    }

    if (options.allowed_columns.empty()) {
      for (size_t c = 0; c < proto.num_columns(); ++c) {
        columns.push_back(static_cast<uint32_t>(c));
      }
    } else {
      for (size_t c : options.allowed_columns) {
        SMARTDD_CHECK(c < proto.num_columns());
        columns.push_back(static_cast<uint32_t>(c));
      }
      std::sort(columns.begin(), columns.end());
      columns.erase(std::unique(columns.begin(), columns.end()),
                    columns.end());
    }
    col_dense.assign(proto.num_columns(), -1);
    col_bits.resize(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      col_dense[columns[i]] = static_cast<int32_t>(i);
      col_bits[i] = CodeBitWidth(dict_size(columns[i]));
    }
    scratch = base;
    for (uint32_t c : columns) {
      base_stars_search_cols &= base.is_star(c);
    }
    build_postings =
        std::min(options.max_rule_size, columns.size()) >= 2;
    count_mode = !proto.has_measure();
  }

  /// Dictionary size of column c. The shards share their dictionaries
  /// (slices are built via Table::EmptyLike), so any segment answers.
  size_t dict_size(uint32_t c) const {
    return segs[0].view->table().dictionary(c).size();
  }

  /// Invokes fn(segment, local_lo, local_hi) for each shard sub-range of
  /// the concatenated row range [lo, hi), in shard order. Linear segment
  /// advance: shard counts are small and callers sweep forward.
  template <typename Fn>
  void ForEachRange(uint64_t lo, uint64_t hi, Fn&& fn) const {
    size_t si = 0;
    while (lo < hi) {
      while (segs[si].begin + segs[si].rows <= lo) ++si;  // skips empties
      const Segment& s = segs[si];
      const uint64_t chunk_hi = std::min(hi, s.begin + s.rows);
      fn(s, lo - s.begin, chunk_hi - s.begin);
      lo = chunk_hi;
    }
  }

  // --- Keys -------------------------------------------------------------

  /// Key for a set of columns: a bitmask over dense column indices when the
  /// search space fits 128 columns (exact), else a two-lane hash.
  Key128 ColsKey(const uint32_t* cols, size_t arity) const {
    Key128 key;
    if (columns.size() <= 128) {
      for (size_t i = 0; i < arity; ++i) {
        uint32_t d = static_cast<uint32_t>(col_dense[cols[i]]);
        if (d < 64) {
          key.lo |= uint64_t{1} << d;
        } else {
          key.hi |= uint64_t{1} << (d - 64);
        }
      }
    } else {
      key.lo = HashCodes(cols, arity);
      key.hi = HashMix64(key.lo ^ 0x94D049BB133111EBULL);
    }
    return key;
  }

  TuplePacker MakePacker(const Cols& cols) const {
    std::vector<uint8_t> bits(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) {
      bits[i] = col_bits[col_dense[cols[i]]];
    }
    return TuplePacker(bits);
  }

  // --- Weight via the scratch rule -------------------------------------

  /// W(base merged with cols=vals), evaluated against the reusable scratch
  /// rule: zero allocations per candidate.
  double EffectiveWeight(const Cols& cols, const uint32_t* vals) {
    scratch.set_values(cols, std::span<const uint32_t>(vals, cols.size()));
    double w = weight.Weight(scratch);
    if (base_stars_search_cols) {
      scratch.clear_values(cols);
    } else {
      // A caller overlapped allowed_columns with the base rule's
      // instantiated columns: restore the base values, not stars.
      for (uint32_t c : cols) scratch.set_value(c, base.value(c));
    }
    return w;
  }

  Rule FullRule(const Cols& cols, const uint32_t* vals) const {
    Rule r = base;
    for (size_t i = 0; i < cols.size(); ++i) r.set_value(cols[i], vals[i]);
    return r;
  }

  /// Deterministic tie-break for equal marginal values: prefer higher
  /// weight, then lexicographically smaller rule values. Total order, so
  /// the winner is independent of candidate enumeration order.
  bool BetterThanBest(double marginal, double w, const Cols& cols,
                      const uint32_t* vals) const {
    if (marginal > best_marginal) return true;
    if (marginal < best_marginal || best_marginal <= 0) return false;
    if (w != best_weight) return w > best_weight;
    return FullRule(cols, vals).values() < best_rule.values();
  }

  void TakeBest(double marginal, double w, double mass, const Cols& cols,
                const uint32_t* vals) {
    best_marginal = marginal;
    best_rule = FullRule(cols, vals);
    best_weight = w;
    best_mass = mass;
  }

  /// Dispatches fn(chunk) over [0, num_chunks): inline when serial (never
  /// touching the process pool), on the shared pool otherwise. Chunk
  /// boundaries are the caller's and never depend on `threads`.
  void RunChunked(uint64_t num_chunks,
                  const std::function<void(uint64_t)>& fn) {
    if (threads <= 1) {
      for (uint64_t c = 0; c < num_chunks; ++c) fn(c);
    } else {
      ThreadPool::Global().ParallelFor(num_chunks, threads, fn);
    }
  }

  // --- Pass 1 -----------------------------------------------------------

  /// One scan per column counting every size-1 rule and building the
  /// per-value CSR postings. Parallel over fixed row chunks with per-chunk
  /// accumulators merged in chunk order, so sums are bit-identical to the
  /// single-thread run. Returns DeadlineExceeded when the deadline fires at
  /// a column boundary; the deferred covered-weight update is never left
  /// half-applied, because the first check sits after column 0's Phase A
  /// (the region the update is fused into).
  Status CountSizeOne() {
    const uint64_t n = total_rows;

    postings.resize(columns.size());
    singles.resize(columns.size());

    // Reused per-lane scratch (sized per column below).
    std::vector<uint32_t> lane_counts;
    std::vector<double> lane_mass;
    std::vector<double> lane_marginal;

    for (size_t ci = 0; ci < columns.size(); ++ci) {
      const uint32_t c = columns[ci];
      const size_t dict = dict_size(c);
      SingletonTable& st = singles[ci];
      st.col = c;
      st.entries.assign(dict, Entry{});
      st.counts.assign(dict, 0u);

      // Lane layout for this column (global-data-shape-dependent only).
      const uint64_t num_lanes = std::max<uint64_t>(
          1, std::min({(n + kMinLaneRows - 1) / kMinLaneRows, kMaxLanes,
                       kMaxLaneCells / std::max<uint64_t>(1, dict)}));
      const uint64_t lane_rows = (n + num_lanes - 1) / num_lanes;
      auto lane_bounds = [&](uint64_t lane) {
        return std::pair<uint64_t, uint64_t>(
            lane * lane_rows, std::min(n, (lane + 1) * lane_rows));
      };

      lane_counts.assign(num_lanes * dict, 0u);
      if (!count_mode) lane_mass.assign(num_lanes * dict, 0.0);

      // Phase A: per-lane occurrence counts and mass sums. On the first
      // column, each lane first applies the deferred covered-weight update
      // to its own rows — the pipelined fan-out: the update scan rides the
      // same parallel region as the pass-1 counting scan, and every row is
      // updated exactly once before Phase B (after the barrier) reads it.
      // A lane spanning a shard boundary scans the shards' sub-ranges in
      // shard order, so the scatter covers shards and threads at once.
      //
      // Whole-table segments decode and rule-match block-wise through the
      // dispatched scan kernels; the per-code accumulation stays a
      // sequential sweep in row order, so floats land identically on every
      // kernel path. Under Count aggregation the mass accumulators are
      // skipped entirely (mass is derived from the integer counts at merge).
      const bool fuse_update = pending != nullptr && ci == 0;
      RunChunked(num_lanes, [&](uint64_t lane) {
        const auto [lo, hi] = lane_bounds(lane);
        uint32_t* counts = lane_counts.data() + lane * dict;
        double* mass =
            count_mode ? nullptr : lane_mass.data() + lane * dict;
        uint32_t codes[kScanBlockRows];
        uint8_t rmask[kScanBlockRows];
        ForEachRange(lo, hi, [&](const Segment& s, uint64_t llo,
                                 uint64_t lhi) {
          const Table& table = s.view->table();
          const PackedRef col = table.column(c).ref();
          const double* mass_col = s.mass_col;
          if (s.subset) {
            // Subset views resolve a row id per row: no contiguous decode.
            if (fuse_update) {
              const double w = pending->weight;
              double* cw = s.mut_covered;
              for (uint64_t t = llo; t < lhi; ++t) {
                if (cw[t] < w && RuleCoversRow(pending->rule, *s.view, t)) {
                  cw[t] = w;
                }
              }
            }
            for (uint64_t t = llo; t < lhi; ++t) {
              const uint32_t row = s.view->row_id(t);
              const uint32_t code = col.Get(row);
              ++counts[code];
              if (mass != nullptr) {
                mass[code] += mass_col ? mass_col[row] : 1.0;
              }
            }
            return;
          }
          if (mass == nullptr && !fuse_update) {
            // Count aggregation needs no decode at all: the counting
            // kernel tallies the packed payload directly (SWAR popcounts
            // on the sub-byte widths).
            kern->count_codes(col, llo, lhi, dict, counts);
            return;
          }
          for (uint64_t b0 = llo; b0 < lhi; b0 += kScanBlockRows) {
            const uint64_t b1 = std::min(lhi, b0 + kScanBlockRows);
            const size_t bn = static_cast<size_t>(b1 - b0);
            if (fuse_update) {
              ComputeRuleMask(pending->rule, table, b0, b1, rmask, *kern);
              kern->covered_max(s.mut_covered + b0, rmask, bn,
                                pending->weight);
            }
            if (mass == nullptr) {
              kern->count_codes(col, b0, b1, dict, counts);
              continue;
            }
            kern->unpack(col, b0, b1, codes);
            for (size_t i = 0; i < bn; ++i) {
              const uint32_t code = codes[i];
              ++counts[code];
              mass[code] += mass_col ? mass_col[b0 + i] : 1.0;
            }
          }
        });
      });

      if (DeadlineExpired()) return DeadlineStatus();

      // Gather: merge in lane order; lay out CSR offsets. Under Count the
      // mass is the count itself (exact in double up to 2^53 rows, and
      // bit-identical to summing 1.0 per row).
      WallTimer merge_timer;
      Postings& ps = postings[ci];
      ps.offsets.assign(dict + 1, 0u);
      for (size_t v = 0; v < dict; ++v) {
        uint32_t total = 0;
        double mass = 0;
        if (count_mode) {
          for (uint64_t k = 0; k < num_lanes; ++k) {
            total += lane_counts[k * dict + v];
          }
          mass = static_cast<double>(total);
        } else {
          for (uint64_t k = 0; k < num_lanes; ++k) {
            total += lane_counts[k * dict + v];
            mass += lane_mass[k * dict + v];
          }
        }
        st.counts[v] = total;
        st.entries[v].mass = mass;
        ps.offsets[v + 1] = ps.offsets[v] + total;
        if (total > 0) st.codes.push_back(static_cast<uint32_t>(v));
      }
      if (build_postings) ps.rows.resize(n);
      stats.merge_seconds += merge_timer.ElapsedMillis() / 1e3;

      // Weights for the codes that occur (serial: WeightFunction is not
      // required to be thread-safe, and this is O(dict), not O(rows)).
      Cols one_col{c};
      uint32_t one_val[1];
      for (uint32_t v : st.codes) {
        Entry& e = st.entries[v];
        one_val[0] = v;
        e.weight = EffectiveWeight(one_col, one_val);
        e.excluded = e.weight > options.max_weight;
        ++stats.candidates_generated;
        if (e.excluded) {
          e.mass = 0;  // match the lazy path: excluded rules are not counted
        } else {
          ++stats.candidates_counted;
        }
      }

      // Turn per-lane counts into per-lane write cursors (exclusive
      // prefix over lanes per code, offset by the CSR base).
      if (build_postings) {
        for (size_t v = 0; v < dict; ++v) {
          uint32_t cursor = ps.offsets[v];
          for (uint64_t k = 0; k < num_lanes; ++k) {
            uint32_t cnt = lane_counts[k * dict + v];
            lane_counts[k * dict + v] = cursor;
            cursor += cnt;
          }
        }
      }

      // Phase B: scatter rows into the postings (lane-ordered, so each
      // code's posting list stays ascending in the concatenated row order)
      // and accumulate the marginal sums per lane. A size-1-capped search
      // has no later pass to walk the postings, so the scatter is skipped.
      //
      // When additionally every covered weight is exactly 0.0 and masses
      // are unit (Count aggregation), the scan itself folds away: lane
      // lane's Phase-B accumulator for code v would receive exactly
      // lane_counts[lane][v] sequential additions of the constant
      // max(0, w_v), which ExactRepeatAdd reproduces bit for bit — the
      // first-interaction drill-down hot path never rescans the rows.
      lane_marginal.assign(num_lanes * dict, 0.0);
      const bool fold_phase_b = covered_zero && count_mode && !build_postings;
      if (fold_phase_b) {
        for (uint32_t v : st.codes) {
          const Entry& e = st.entries[v];
          if (e.excluded) continue;
          const double w = std::max(0.0, e.weight);
          for (uint64_t k = 0; k < num_lanes; ++k) {
            const uint32_t cnt = lane_counts[k * dict + v];
            if (cnt != 0) lane_marginal[k * dict + v] = ExactRepeatAdd(w, cnt);
          }
        }
      }
      if (!fold_phase_b) RunChunked(num_lanes, [&](uint64_t lane) {
        const auto [lo, hi] = lane_bounds(lane);
        uint32_t* cursors = lane_counts.data() + lane * dict;
        double* marginal = lane_marginal.data() + lane * dict;
        uint32_t codes[kScanBlockRows];
        ForEachRange(lo, hi, [&](const Segment& s, uint64_t llo,
                                 uint64_t lhi) {
          const PackedRef col = s.view->table().column(c).ref();
          const double* mass_col = s.mass_col;
          const double* covered = s.covered;
          const uint64_t gbase = s.begin;
          if (s.subset) {
            for (uint64_t t = llo; t < lhi; ++t) {
              const uint32_t row = s.view->row_id(t);
              const uint32_t code = col.Get(row);
              if (build_postings) {
                ps.rows[cursors[code]++] = static_cast<uint32_t>(gbase + t);
              }
              const Entry& e = st.entries[code];
              if (e.excluded) continue;
              const double m = mass_col ? mass_col[row] : 1.0;
              marginal[code] += m * std::max(0.0, e.weight - covered[t]);
            }
            return;
          }
          for (uint64_t b0 = llo; b0 < lhi; b0 += kScanBlockRows) {
            const uint64_t b1 = std::min(lhi, b0 + kScanBlockRows);
            kern->unpack(col, b0, b1, codes);
            for (uint64_t t = b0; t < b1; ++t) {
              const uint32_t code = codes[t - b0];
              if (build_postings) {
                ps.rows[cursors[code]++] = static_cast<uint32_t>(gbase + t);
              }
              const Entry& e = st.entries[code];
              if (e.excluded) continue;
              const double m = mass_col ? mass_col[t] : 1.0;
              marginal[code] += m * std::max(0.0, e.weight - covered[t]);
            }
          }
        });
      });
      WallTimer marginal_merge_timer;
      for (size_t v = 0; v < dict; ++v) {
        if (st.counts[v] == 0 || st.entries[v].excluded) continue;
        double marginal = 0;
        for (uint64_t k = 0; k < num_lanes; ++k) {
          marginal += lane_marginal[k * dict + v];
        }
        st.entries[v].marginal = marginal;
      }
      stats.merge_seconds += marginal_merge_timer.ElapsedMillis() / 1e3;
      stats.tuple_visits += n;
      if (DeadlineExpired()) return DeadlineStatus();
    }
    ++stats.passes;
    return Status::OK();
  }

  // --- Counting passes (arity >= 2) -------------------------------------

  /// Counts one candidate by walking the postings of its rarest
  /// instantiated value and verifying the remaining columns against the
  /// column arrays. The walk is ascending in the concatenated row order and
  /// crosses shard boundaries by rebinding the hoisted column pointers to
  /// the next shard's slice — a strictly sequential accumulation, so the
  /// sums never depend on where the shard cuts fall. Returns the rows
  /// visited. Writes only to `e` — safe to run concurrently across distinct
  /// candidates.
  uint64_t CountOneCandidate(const CandidateGroup& g, const uint32_t* vals,
                             Entry& e) const {
    const size_t arity = g.cols.size();
    // Walk the shortest posting list: selected by occurrence *count* (the
    // actual rows visited), not mass — under Sum a huge-support value can
    // have near-zero mass.
    size_t rare_i = 0;
    uint32_t rare_count = std::numeric_limits<uint32_t>::max();
    for (size_t i = 0; i < arity; ++i) {
      uint32_t cnt = singles[col_dense[g.cols[i]]].counts[vals[i]];
      if (cnt < rare_count) {
        rare_count = cnt;
        rare_i = i;
      }
    }
    const Postings& ps = postings[col_dense[g.cols[rare_i]]];
    const uint32_t* row_begin = ps.rows.data() + ps.offsets[vals[rare_i]];
    const uint32_t* row_end = ps.rows.data() + ps.offsets[vals[rare_i] + 1];

    const bool hoisted = arity <= kMaxHoistedArity;
    GatherPred preds_buf[kMaxHoistedArity];
    size_t preds = 0;
    uint32_t outbuf[kScanBlockRows];

    // Per-segment bindings, advanced as the (ascending) walk crosses shard
    // boundaries.
    size_t si = 0;
    const Segment* s = nullptr;
    const Table* table = nullptr;
    const double* mass_col = nullptr;
    bool subset = false;
    uint64_t seg_begin = 0;
    uint64_t seg_end = 0;  // 0 forces a bind on the first row

    double mass = 0;
    double marginal = 0;
    const uint32_t* p = row_begin;
    while (p != row_end) {
      const uint64_t gt = *p;
      if (gt >= seg_end) {
        while (segs[si].begin + segs[si].rows <= gt) ++si;
        s = &segs[si];
        table = &s->view->table();
        mass_col = s->mass_col;
        subset = s->subset;
        seg_begin = s->begin;
        seg_end = s->begin + s->rows;
        if (hoisted) {
          preds = 0;
          for (size_t i = 0; i < arity; ++i) {
            if (i == rare_i) continue;
            preds_buf[preds].col = table->column(g.cols[i]).ref();
            preds_buf[preds].want = vals[i];
            ++preds;
          }
        }
      }
      if (hoisted && !subset) {
        // Batch the run of postings inside this segment through the
        // gather-filter kernel, then accumulate the survivors — in the same
        // ascending order the direct loop visits them, so the float sums
        // are bit-identical to the per-row path.
        const uint32_t* run_end = std::lower_bound(
            p, row_end, seg_end,
            [](uint32_t a, uint64_t b) { return uint64_t{a} < b; });
        while (p != run_end) {
          const size_t blk = std::min<size_t>(
              static_cast<size_t>(run_end - p), kScanBlockRows);
          const size_t kept =
              kern->filter_rows(p, blk, seg_begin, preds_buf, preds, outbuf);
          for (size_t j = 0; j < kept; ++j) {
            const uint64_t t = outbuf[j] - seg_begin;
            const double m = mass_col ? mass_col[t] : 1.0;
            mass += m;
            marginal += m * std::max(0.0, e.weight - s->covered[t]);
          }
          p += blk;
        }
        continue;
      }
      const uint64_t t = gt - seg_begin;
      const uint32_t row = subset ? s->view->row_id(t)
                                  : static_cast<uint32_t>(t);
      bool covered = true;
      if (hoisted) {
        for (size_t i = 0; i < preds; ++i) {
          if (preds_buf[i].col.Get(row) != preds_buf[i].want) {
            covered = false;
            break;
          }
        }
      } else {
        for (size_t i = 0; i < arity; ++i) {
          if (i == rare_i) continue;
          if (table->column(g.cols[i]).Get(row) != vals[i]) {
            covered = false;
            break;
          }
        }
      }
      if (covered) {
        const double m = mass_col ? mass_col[row] : 1.0;
        mass += m;
        marginal += m * std::max(0.0, e.weight - s->covered[t]);
      }
      ++p;
    }
    e.mass += mass;
    e.marginal += marginal;
    return static_cast<uint64_t>(row_end - row_begin);
  }

  /// Passes 2+: candidates are processed in decreasing order of their
  /// generation-time upper bound, in fixed-size blocks. The threshold H is
  /// frozen at each block boundary: the long tail of weak candidates is
  /// still skipped without touching a tuple (the paper's threshold rule,
  /// applied per block), while the candidates inside a block count on all
  /// threads. Because the block layout and H-updates are independent of
  /// the thread count, stats and results are bit-identical to serial.
  /// Returns DeadlineExceeded when the deadline fires at a block boundary.
  Status CountCandidates(std::vector<CandidateGroup>& groups) {
    struct Item {
      CandidateGroup* group;
      uint32_t index;  // entry index within the group's map
      uint64_t visits = 0;
      bool skip = false;
    };
    std::vector<Item> items;
    for (auto& g : groups) {
      for (uint32_t i = 0; i < g.map.size(); ++i) {
        if (!g.map.entry(i).second.excluded) {
          items.push_back(Item{&g, i, 0, false});
        }
      }
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) {
                       return a.group->map.entry(a.index).second.bound >
                              b.group->map.entry(b.index).second.bound;
                     });

    const bool prune = options.pruning == PruningMode::kFull;
    double h = best_marginal;
    for (size_t block = 0; block < items.size(); block += kCountBlock) {
      if (DeadlineExpired()) return DeadlineStatus();
      const size_t block_end = std::min(items.size(), block + kCountBlock);
      // Pruning decisions against the frozen H, in order.
      for (size_t i = block; i < block_end; ++i) {
        Entry& e = items[i].group->map.entry(items[i].index).second;
        if (prune && (e.bound < h || e.bound <= 0)) {
          e.excluded = true;  // tombstone: super-rules prune through it
          items[i].skip = true;
          ++stats.candidates_pruned;
        }
      }
      RunChunked(block_end - block, [&](uint64_t k) {
        Item& item = items[block + k];
        if (item.skip) return;
        Entry& e = item.group->map.entry(item.index).second;
        item.visits = CountOneCandidate(
            *item.group, item.group->tuple(item.index), e);
      });
      // Gather: merge in item order; advance H for the next block.
      WallTimer merge_timer;
      for (size_t i = block; i < block_end; ++i) {
        if (items[i].skip) continue;
        const Entry& e = items[i].group->map.entry(items[i].index).second;
        stats.tuple_visits += items[i].visits;
        ++stats.candidates_counted;
        if (e.marginal > h) h = e.marginal;
      }
      stats.merge_seconds += merge_timer.ElapsedMillis() / 1e3;
    }
    ++stats.passes;
    return Status::OK();
  }

  // --- Absorbing finished passes ----------------------------------------

  /// Upper bound on the marginal value of any super-rule of a counted rule
  /// (paper §3.5): Marginal(r') + Mass(r') * (mw - W(r')).
  double SuperRuleBound(const Entry& e) const {
    return e.marginal + e.mass * (options.max_weight - e.weight);
  }

  void ConsiderBest(const Entry& e, const Cols& cols, const uint32_t* vals) {
    if (e.excluded || e.marginal <= 0) return;
    if (e.marginal > best_marginal ||
        BetterThanBest(e.marginal, e.weight, cols, vals)) {
      TakeBest(e.marginal, e.weight, e.mass, cols, vals);
    }
  }

  void AbsorbSingles() {
    Cols one_col(1);
    uint32_t one_val[1];
    for (const SingletonTable& st : singles) {
      one_col[0] = st.col;
      for (uint32_t v : st.codes) {
        one_val[0] = v;
        ConsiderBest(st.entries[v], one_col, one_val);
      }
    }
  }

  /// Folds a counted pass into the store; returns the indices the pass's
  /// groups now occupy in `counted` (the next pass extends exactly these).
  std::vector<uint32_t> AbsorbGroups(std::vector<CandidateGroup>& groups) {
    std::vector<uint32_t> ids;
    ids.reserve(groups.size());
    for (auto& g : groups) {
      for (size_t i = 0; i < g.map.size(); ++i) {
        ConsiderBest(g.map.entry(i).second, g.cols, g.tuple(i));
      }
      uint32_t id = static_cast<uint32_t>(counted.size());
      auto [slot, inserted] =
          counted_index.FindOrInsert(ColsKey(g.cols.data(), g.cols.size()));
      SMARTDD_DCHECK(inserted);
      *slot = id;
      counted.push_back(std::move(g));
      ids.push_back(id);
    }
    return ids;
  }

  // --- Candidate generation ---------------------------------------------

  /// Looks up the counted entry of an arbitrary sub-rule (any arity >= 1).
  /// Returns nullptr when the sub-rule was never counted.
  const Entry* FindCounted(const uint32_t* cols, const uint32_t* vals,
                           size_t arity) const {
    if (arity == 1) {
      const SingletonTable& st = singles[col_dense[cols[0]]];
      if (st.counts[vals[0]] == 0) return nullptr;
      return &st.entries[vals[0]];
    }
    const uint32_t* slot = counted_index.Find(ColsKey(cols, arity));
    if (slot == nullptr) return nullptr;
    const CandidateGroup& g = counted[*slot];
    return g.map.Find(g.packer.Pack(vals, arity));
  }

  /// Extends one parent (cols/vals/entry) with every later column's
  /// surviving singletons, appending candidates into `out`.
  void ExtendParent(const Cols& pcols, const uint32_t* pvals,
                    const Entry& parent, bool prune,
                    FlatMap<uint32_t>& group_index,
                    std::vector<CandidateGroup>& out, Cols& cand_cols,
                    std::vector<uint32_t>& cand_vals, Cols& sub_cols,
                    std::vector<uint32_t>& sub_vals) {
    if (parent.excluded || parent.mass <= 0) return;
    // Cheap parent-level cut: no super-rule of this parent can beat H.
    if (prune && SuperRuleBound(parent) < best_marginal) return;

    const size_t parity = pcols.size();
    cand_cols.assign(pcols.begin(), pcols.end());
    cand_cols.push_back(0);
    cand_vals.assign(pvals, pvals + parity);
    cand_vals.push_back(0);

    for (size_t ci = 0; ci < columns.size(); ++ci) {
      const uint32_t c = columns[ci];
      if (c <= pcols.back()) continue;
      const SingletonTable& st = singles[ci];
      cand_cols[parity] = c;
      for (uint32_t v1 : st.codes) {
        const Entry& e1 = st.entries[v1];
        if (e1.excluded || e1.mass <= 0) continue;
        ++stats.candidates_generated;

        cand_vals[parity] = v1;

        double w = EffectiveWeight(cand_cols, cand_vals.data());
        if (w > options.max_weight) continue;  // weight cap (mw)

        // Upper-bound test against every counted immediate sub-rule. A
        // missing / excluded / zero-mass sub-rule proves the candidate is
        // itself zero-mass or already dominated, so drop it.
        bool pruned = false;
        double bound = std::numeric_limits<double>::infinity();
        const size_t arity = cand_cols.size();
        for (size_t drop = 0; drop < arity; ++drop) {
          sub_cols.clear();
          sub_vals.clear();
          for (size_t i = 0; i < arity; ++i) {
            if (i == drop) continue;
            sub_cols.push_back(cand_cols[i]);
            sub_vals.push_back(cand_vals[i]);
          }
          const Entry* sub =
              FindCounted(sub_cols.data(), sub_vals.data(), arity - 1);
          if (sub == nullptr || sub->excluded || sub->mass <= 0) {
            pruned = true;
            break;
          }
          bound = std::min(bound, SuperRuleBound(*sub));
        }
        if (!pruned && prune && (bound < best_marginal || bound <= 0)) {
          pruned = true;
        }
        if (pruned) {
          ++stats.candidates_pruned;
          continue;
        }

        uint32_t gi;
        auto [slot, inserted] =
            group_index.FindOrInsert(ColsKey(cand_cols.data(), arity));
        if (inserted) {
          gi = static_cast<uint32_t>(out.size());
          *slot = gi;
          out.emplace_back();
          out.back().cols = cand_cols;
          out.back().packer = MakePacker(cand_cols);
        } else {
          gi = *slot;
        }
        CandidateGroup& g = out[gi];
        auto [entry, fresh] =
            g.map.FindOrInsert(g.packer.Pack(cand_vals.data(), arity));
        if (fresh) {
          entry->weight = w;
          entry->bound = bound;
          g.tuples.insert(g.tuples.end(), cand_vals.begin(), cand_vals.end());
        }
      }
    }
  }

  /// Generates size-j candidate groups by extending the size-(j-1)
  /// candidates (`prev_group_ids`, or the singletons when j == 2). Each
  /// candidate extends a parent with one column strictly after the parent's
  /// last column, so every candidate is generated exactly once from its
  /// prefix sub-rule.
  std::vector<CandidateGroup> GenerateCandidates(
      const std::vector<uint32_t>& prev_group_ids, bool from_singles) {
    const bool prune = options.pruning == PruningMode::kFull;
    FlatMap<uint32_t> group_index;
    std::vector<CandidateGroup> out;

    Cols cand_cols, sub_cols, pcols(1);
    std::vector<uint32_t> cand_vals, sub_vals;
    uint32_t pvals[1];

    if (from_singles) {
      for (const SingletonTable& st : singles) {
        pcols[0] = st.col;
        for (uint32_t v : st.codes) {
          pvals[0] = v;
          ExtendParent(pcols, pvals, st.entries[v], prune, group_index, out,
                       cand_cols, cand_vals, sub_cols, sub_vals);
        }
      }
    } else {
      for (uint32_t id : prev_group_ids) {
        const CandidateGroup& g = counted[id];
        for (size_t i = 0; i < g.map.size(); ++i) {
          ExtendParent(g.cols, g.tuple(i), g.map.entry(i).second, prune,
                       group_index, out, cand_cols, cand_vals, sub_cols,
                       sub_vals);
        }
      }
    }
    return out;
  }

  // --- Driver -----------------------------------------------------------

  Result<MarginalRuleResult> Run() {
    const size_t max_size = std::min(options.max_rule_size, columns.size());
    if (max_size == 0 || total_rows == 0) {
      return Status::NotFound("no rule with positive marginal value");
    }

    // An already-expired deadline aborts before the first scan: the greedy
    // caller keeps whatever rules it has (degrade, not fail).
    if (DeadlineExpired()) return DeadlineStatus();

    // Pass 1: count all size-1 rules and build postings.
    SMARTDD_RETURN_IF_ERROR(CountSizeOne());
    AbsorbSingles();

    // Passes 2..max_size: a-priori-style candidate generation + counting.
    std::vector<uint32_t> prev_ids;
    for (size_t j = 2; j <= max_size; ++j) {
      if (DeadlineExpired()) return DeadlineStatus();
      std::vector<CandidateGroup> next =
          GenerateCandidates(prev_ids, /*from_singles=*/j == 2);
      if (next.empty()) break;
      SMARTDD_RETURN_IF_ERROR(CountCandidates(next));
      prev_ids = AbsorbGroups(next);
    }

    if (best_marginal <= 0) {
      return Status::NotFound("no rule with positive marginal value");
    }
    MarginalRuleResult result;
    result.rule = best_rule;
    result.weight = best_weight;
    result.mass = best_mass;
    result.marginal = best_marginal;
    return result;
  }
};

MarginalRuleFinder::MarginalRuleFinder(const TableView& view,
                                       const WeightFunction& weight,
                                       MarginalSearchOptions options)
    : views_({&view}), weight_(&weight), options_(std::move(options)) {}

MarginalRuleFinder::MarginalRuleFinder(std::vector<const TableView*> views,
                                       const WeightFunction& weight,
                                       MarginalSearchOptions options)
    : views_(std::move(views)), weight_(&weight), options_(std::move(options)) {
  SMARTDD_CHECK(!views_.empty()) << "a sharded finder needs >= 1 view";
}

Result<MarginalRuleResult> MarginalRuleFinder::Find(
    const std::vector<double>& covered_weight) {
  SMARTDD_CHECK(views_.size() == 1)
      << "a sharded finder takes per-shard covered weights (FindSharded)";
  SMARTDD_CHECK(covered_weight.size() == views_[0]->num_rows())
      << "covered_weight must have one entry per view row";
  stats_ = MarginalSearchStats{};
  Impl impl(views_, *weight_, options_, stats_, {covered_weight.data()}, {});
  return impl.Run();
}

Result<MarginalRuleResult> MarginalRuleFinder::Find(
    std::vector<double>& covered_weight, const CoveredUpdate& pending) {
  SMARTDD_CHECK(views_.size() == 1)
      << "a sharded finder takes per-shard covered weights (FindSharded)";
  SMARTDD_CHECK(covered_weight.size() == views_[0]->num_rows())
      << "covered_weight must have one entry per view row";
  SMARTDD_CHECK(pending.rule.num_columns() == views_[0]->num_columns());
  stats_ = MarginalSearchStats{};
  Impl impl(views_, *weight_, options_, stats_, {covered_weight.data()},
            {covered_weight.data()});
  impl.pending = &pending;
  return impl.Run();
}

Result<MarginalRuleResult> MarginalRuleFinder::FindSharded(
    const std::vector<std::vector<double>*>& covered,
    const CoveredUpdate* pending, bool covered_is_zero) {
  SMARTDD_CHECK(covered.size() == views_.size())
      << "one covered-weight vector per shard view";
  SMARTDD_CHECK(!(covered_is_zero && pending != nullptr))
      << "a pending covered-weight update contradicts covered_is_zero";
  std::vector<const double*> covered_ptrs;
  std::vector<double*> mut_ptrs;
  for (size_t i = 0; i < covered.size(); ++i) {
    SMARTDD_CHECK(covered[i]->size() == views_[i]->num_rows())
        << "covered_weight must have one entry per shard view row";
    covered_ptrs.push_back(covered[i]->data());
    mut_ptrs.push_back(covered[i]->data());
  }
  if (pending != nullptr) {
    SMARTDD_CHECK(pending->rule.num_columns() == views_[0]->num_columns());
  }
  stats_ = MarginalSearchStats{};
  Impl impl(views_, *weight_, options_, stats_, covered_ptrs,
            pending != nullptr ? mut_ptrs : std::vector<double*>{});
  impl.pending = pending;
  impl.covered_zero = covered_is_zero;
  return impl.Run();
}

}  // namespace smartdd
