#ifndef SMARTDD_CORE_MW_ESTIMATOR_H_
#define SMARTDD_CORE_MW_ESTIMATOR_H_

#include <cstdint>

#include "common/result.h"
#include "storage/table_view.h"
#include "weights/weight_function.h"

namespace smartdd {

/// Output of the §6.1 mw estimation procedure.
struct MwEstimate {
  /// Recommended mw: 2x the heaviest rule BRS selects on a small sample
  /// ("To account for sampling error, we can set mw to 2x").
  double mw = 0;
  /// The heaviest weight actually observed on the sample.
  double observed_max_weight = 0;
  /// Rows used in the estimation sample.
  uint64_t sample_rows = 0;
};

/// Estimates the mw parameter by running BRS (k rules) on a uniform sample
/// of `sample_rows` rows from the view (paper §6.1). Deterministic given
/// `seed`. Falls back to the weight function's max possible weight when the
/// sample run selects nothing.
Result<MwEstimate> EstimateMaxWeight(const TableView& view,
                                     const WeightFunction& weight, size_t k,
                                     uint64_t sample_rows, uint64_t seed);

}  // namespace smartdd

#endif  // SMARTDD_CORE_MW_ESTIMATOR_H_
