#include "core/drilldown.h"

#include "common/logging.h"
#include "rules/rule_ops.h"
#include "weights/star_constraint.h"

namespace smartdd {

Result<DrillDownResponse> SmartDrillDownSharded(
    const std::vector<const TableView*>& views, const WeightFunction& weight,
    const DrillDownRequest& request) {
  SMARTDD_CHECK(!views.empty()) << "sharded drill-down needs >= 1 shard view";
  const Rule& base = request.base;
  if (base.num_columns() != views[0]->num_columns()) {
    return Status::InvalidArgument("base rule width does not match table");
  }
  if (request.star_column) {
    if (*request.star_column >= views[0]->num_columns()) {
      return Status::InvalidArgument("star column out of range");
    }
    if (!base.is_star(*request.star_column)) {
      return Status::InvalidArgument(
          "star drill-down column is already instantiated in the base rule");
    }
  }

  // Problem 1 -> Problem 2: restrict to tuples covered by the clicked rule.
  // Each shard filters locally — its sub-view keeps shard-local row ids —
  // and the sub-views stay row-contiguous slices of the filtered logical
  // table, in the same shard order.
  std::vector<TableView> filtered;
  std::vector<const TableView*> subs;
  if (!base.is_trivial()) {
    filtered.reserve(views.size());
    for (const TableView* v : views) {
      filtered.push_back(FilterView(*v, base, request.kernel));
    }
    for (const TableView& v : filtered) subs.push_back(&v);
  } else {
    subs = views;
  }

  DrillDownResponse response;
  // Base mass: one accumulator advanced sequentially across the shards in
  // shard order — the same addition sequence as total_mass() over the
  // unsharded view, so the float is byte-identical for every shard count.
  // (Count mode sums exact integers; any fold order would do there.)
  {
    double base_mass = 0;
    for (const TableView* sub : subs) {
      if (sub->has_measure()) {
        const uint64_t n = sub->num_rows();
        for (uint64_t i = 0; i < n; ++i) base_mass += sub->mass(i);
      } else {
        base_mass += static_cast<double>(sub->num_rows());
      }
    }
    response.base_mass = base_mass;
  }

  // Search space: the starred columns of base. Tuples covered by base are
  // constant on its instantiated columns, so nothing is lost.
  std::vector<size_t> allowed;
  for (size_t c = 0; c < base.num_columns(); ++c) {
    if (base.is_star(c)) allowed.push_back(c);
  }
  if (allowed.empty()) {
    return response;  // base is fully instantiated; nothing to expand
  }

  BrsOptions brs;
  brs.k = request.k;
  brs.max_weight = request.max_weight;
  brs.pruning = request.pruning;
  brs.max_rule_size = request.max_rule_size;
  brs.allowed_columns = allowed;
  brs.base_rule = base;
  brs.num_threads = request.num_threads;
  brs.kernel = request.kernel;
  brs.on_rule = request.on_step;
  brs.deadline = request.deadline;

  // Star drill-down: weight rewrite W'(r) = 0 when r stars the clicked
  // column (§3.1), which also keeps W' monotonic.
  std::optional<StarConstraintWeight> star_weight;
  const WeightFunction* w = &weight;
  if (request.star_column) {
    star_weight.emplace(weight, *request.star_column);
    w = &*star_weight;
  }

  SMARTDD_ASSIGN_OR_RETURN(BrsResult brs_result, RunBrsSharded(subs, *w, brs));

  for (auto& r : brs_result.rules) {
    // Zero-weight rules can only appear if nothing positive exists; they
    // never pass the positive-marginal filter in BRS, but be defensive for
    // star drill-downs: only emit rules that instantiate the clicked column.
    if (request.star_column && r.rule.is_star(*request.star_column)) continue;
    response.rules.push_back(std::move(r));
  }
  response.total_score = brs_result.total_score;
  response.stats = brs_result.stats;
  response.partial = brs_result.deadline_exceeded;
  return response;
}

Result<DrillDownResponse> SmartDrillDown(const TableView& view,
                                         const WeightFunction& weight,
                                         const DrillDownRequest& request) {
  return SmartDrillDownSharded({&view}, weight, request);
}

}  // namespace smartdd
