#include "core/drilldown.h"

#include "rules/rule_ops.h"
#include "weights/star_constraint.h"

namespace smartdd {

Result<DrillDownResponse> SmartDrillDown(const TableView& view,
                                         const WeightFunction& weight,
                                         const DrillDownRequest& request) {
  const Rule& base = request.base;
  if (base.num_columns() != view.num_columns()) {
    return Status::InvalidArgument("base rule width does not match table");
  }
  if (request.star_column) {
    if (*request.star_column >= view.num_columns()) {
      return Status::InvalidArgument("star column out of range");
    }
    if (!base.is_star(*request.star_column)) {
      return Status::InvalidArgument(
          "star drill-down column is already instantiated in the base rule");
    }
  }

  // Problem 1 -> Problem 2: restrict to tuples covered by the clicked rule.
  std::optional<TableView> filtered;
  const TableView* sub = &view;
  if (!base.is_trivial()) {
    filtered = FilterView(view, base);
    sub = &*filtered;
  }

  DrillDownResponse response;
  response.base_mass = sub->total_mass();

  // Search space: the starred columns of base. Tuples covered by base are
  // constant on its instantiated columns, so nothing is lost.
  std::vector<size_t> allowed;
  for (size_t c = 0; c < base.num_columns(); ++c) {
    if (base.is_star(c)) allowed.push_back(c);
  }
  if (allowed.empty()) {
    return response;  // base is fully instantiated; nothing to expand
  }

  BrsOptions brs;
  brs.k = request.k;
  brs.max_weight = request.max_weight;
  brs.pruning = request.pruning;
  brs.max_rule_size = request.max_rule_size;
  brs.allowed_columns = allowed;
  brs.base_rule = base;
  brs.num_threads = request.num_threads;
  brs.on_rule = request.on_step;
  brs.deadline = request.deadline;

  // Star drill-down: weight rewrite W'(r) = 0 when r stars the clicked
  // column (§3.1), which also keeps W' monotonic.
  std::optional<StarConstraintWeight> star_weight;
  const WeightFunction* w = &weight;
  if (request.star_column) {
    star_weight.emplace(weight, *request.star_column);
    w = &*star_weight;
  }

  SMARTDD_ASSIGN_OR_RETURN(BrsResult brs_result, RunBrs(*sub, *w, brs));

  for (auto& r : brs_result.rules) {
    // Zero-weight rules can only appear if nothing positive exists; they
    // never pass the positive-marginal filter in BRS, but be defensive for
    // star drill-downs: only emit rules that instantiate the clicked column.
    if (request.star_column && r.rule.is_star(*request.star_column)) continue;
    response.rules.push_back(std::move(r));
  }
  response.total_score = brs_result.total_score;
  response.stats = brs_result.stats;
  response.partial = brs_result.deadline_exceeded;
  return response;
}

}  // namespace smartdd
