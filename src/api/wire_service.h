#ifndef SMARTDD_API_WIRE_SERVICE_H_
#define SMARTDD_API_WIRE_SERVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "api/dto.h"
#include "common/status.h"

namespace smartdd::api {

class ExplorationService;

/// A response envelope already rendered to wire bytes, plus the three
/// envelope facts a transport adapter needs without re-parsing the JSON:
/// the status, the degraded marker, and whether a tree payload is present
/// (HTTP maps "partial but carries a tree" to 200). `json` is exactly one
/// EncodeResponse line — byte-comparable across every implementation.
struct WireResponse {
  Status status;
  bool partial = false;
  bool has_tree = false;
  std::string json;
};

/// Streaming observer with pre-encoded payloads: each greedy step arrives
/// as one EncodeNode JSON line, the completion as a WireResponse. The
/// re-entrancy contract matches ProgressSink: OnStepJson runs inside the
/// session's critical section (push the bytes and return; cancel by
/// returning false), OnDoneWire runs outside it.
class WireObserver {
 public:
  virtual ~WireObserver() = default;
  /// Step `step` (0-based) landed. Return false to cancel remaining steps.
  virtual bool OnStepJson(std::string_view node_json, size_t step) = 0;
  /// Called exactly once with the final outcome.
  virtual void OnDoneWire(const WireResponse& response) = 0;
};

/// The byte-level service seam the HTTP adapter (and any other transport)
/// programs against: one codec request line in, one rendered envelope out.
/// Implementations promise byte-identical envelopes for identical request
/// lines — ExplorationService behind this interface (LocalWireService) and
/// a cluster router proxying to shard-server processes are
/// indistinguishable to an adapter, which is the cluster's correctness
/// contract.
class WireService {
 public:
  virtual ~WireService() = default;

  /// Executes one request line synchronously. Parse defects come back on
  /// the same channel as INVALID_ARGUMENT envelopes; this never throws and
  /// never returns malformed JSON.
  virtual WireResponse ServeWire(std::string_view line) = 0;

  /// Step-streaming expansion. Returns non-OK only when the expansion
  /// could not be submitted at all (the observer then never hears OnDone);
  /// once submitted, all outcomes reach the observer.
  virtual Status SubmitExpandWire(const ExpandRequest& request,
                                  std::shared_ptr<WireObserver> observer) = 0;

  /// Readiness (not liveness): true once the implementation can actually
  /// serve opens — engines registered locally, or at least one healthy
  /// cluster backend.
  virtual bool Ready() const = 0;

  /// True while a live table behind this service is still rebuilding its
  /// snapshot from a write-ahead log (startup recovery). /readyz
  /// distinguishes this from plain "loading" so operators can tell a slow
  /// WAL replay from a misconfigured dataset.
  virtual bool Replaying() const { return false; }

  /// Milliseconds since the last idle-session sweep, when the
  /// implementation runs one (the /metrics gauge refresh hook).
  virtual std::optional<uint64_t> last_sweep_age_ms() const {
    return std::nullopt;
  }
};

/// ExplorationService behind the WireService seam. Envelopes are produced
/// by the exact ParseRequest/Execute/EncodeResponse path ServeLine uses,
/// so bytes match the canonical surface by construction.
class LocalWireService : public WireService {
 public:
  /// `service` is borrowed and must outlive this object.
  explicit LocalWireService(ExplorationService* service);

  WireResponse ServeWire(std::string_view line) override;
  Status SubmitExpandWire(const ExpandRequest& request,
                          std::shared_ptr<WireObserver> observer) override;
  bool Ready() const override;
  bool Replaying() const override;
  std::optional<uint64_t> last_sweep_age_ms() const override;

 private:
  ExplorationService* const service_;
};

/// Renders a Response to wire form (shared by every WireService
/// implementation and by transports that must synthesize an envelope, e.g.
/// a router answering for a dead backend).
WireResponse ToWireResponse(const Response& response);

/// Re-renders an ExpandRequest as its canonical codec line ("expand <tok>
/// <node>" / "star <tok> <node> <col>", with deadline_ms when set) — what
/// a proxy forwards after local validation.
std::string EncodeExpandLine(const ExpandRequest& request);

}  // namespace smartdd::api

#endif  // SMARTDD_API_WIRE_SERVICE_H_
