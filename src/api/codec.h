#ifndef SMARTDD_API_CODEC_H_
#define SMARTDD_API_CODEC_H_

#include <string>
#include <string_view>

#include "api/dto.h"
#include "common/result.h"

namespace smartdd::api {

/// The service's wire codec: one request per input line, one JSON object
/// per response line. A scripted byte stream through ParseRequest /
/// EncodeResponse is the canonical integration surface — the CLI, the CI
/// smoke script, and the protocol-equivalence tests all speak exactly this.
///
/// Request grammar (tokens separated by ASCII whitespace; `<session>` is an
/// opaque 16-hex-digit token issued by `open`):
///
///   open [dataset=<name>] [k=<n>] [measure=<col>] [mw=<x>]
///        [threads=<n>] [prefetch=on|off]
///   expand   <session> <node>
///   star     <session> <node> <column>
///   collapse <session> <node>
///   show     <session>
///   exact    <session>
///   close    <session>
///   append   [dataset=<name>] <csv-row>
///   tableinfo [dataset=<name>]
///   ping
///
/// `append` is the one command whose final argument is NOT tokenized: after
/// the command word (and the optional dataset=<name>, which must come
/// first), the rest of the line verbatim is the CSV row — cells may contain
/// spaces and RFC-4180 quoting.
///
/// Responses (single line, no internal newlines):
///
///   {"ok":true,"session":"<token>","tree":{...}}   success
///   {"ok":true,"table":{...}}                      append / tableinfo
///   {"ok":true}                                    success, no payload
///   {"ok":false,"error":{"code":"<CODE>","message":"..."}}
///
/// Error codes are the stable names from ErrorCodeName. Malformed lines
/// never crash the parser: every defect maps to an InvalidArgument Status
/// naming the offending token.

/// Default cap on request-line bytes. The parser serves untrusted socket
/// peers, so a line is rejected up front when it exceeds the cap instead of
/// being tokenized (and echoed back) at whatever size the peer chose.
inline constexpr size_t kDefaultMaxRequestLineBytes = 8192;

/// Parses one request line. Blank lines and lines starting with '#' return
/// InvalidArgument("empty request") — callers typically skip them first.
/// Lines longer than `max_line_bytes` are rejected with InvalidArgument;
/// offending tokens echoed in any error message are truncated and stripped
/// of non-printable bytes, so a hostile line can never smuggle its payload
/// into a response.
Result<Request> ParseRequest(
    std::string_view line,
    size_t max_line_bytes = kDefaultMaxRequestLineBytes);

/// Encodes a response as one JSON line (no trailing newline).
std::string EncodeResponse(const Response& response);

/// Encodes the tree payload alone — the byte-comparable snapshot form used
/// by the protocol-equivalence contract.
std::string EncodeTree(const TreeSnapshot& tree);

/// Encodes one node view (a JSON object; also the ProgressSink step form).
std::string EncodeNode(const NodeView& node);

/// Session tokens on the wire: fixed-width lowercase hex.
std::string FormatToken(uint64_t token);
Result<uint64_t> ParseToken(std::string_view text);

}  // namespace smartdd::api

#endif  // SMARTDD_API_CODEC_H_
