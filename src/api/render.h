#ifndef SMARTDD_API_RENDER_H_
#define SMARTDD_API_RENDER_H_

#include <string>

#include "api/dto.h"
#include "explore/renderer.h"

namespace smartdd::api {

/// Renders a wire-form tree snapshot as the familiar aligned ASCII table,
/// prefixed with a node-id column so clients can address rules in
/// follow-up requests. Works entirely from the pre-rendered DTO — no Table
/// or session needed, which is the point: this is what a thin client does
/// with a service response. Lives in the api layer (not explore/) so the
/// embedding layer never depends on the service DTOs above it.
std::string RenderSnapshot(const TreeSnapshot& tree,
                           const RenderOptions& options = {});

}  // namespace smartdd::api

#endif  // SMARTDD_API_RENDER_H_
