#ifndef SMARTDD_API_SERVICE_H_
#define SMARTDD_API_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/codec.h"
#include "api/dto.h"
#include "api/session_registry.h"
#include "explore/engine.h"
#include "explore/sharded_engine.h"

namespace smartdd::api {

/// Service-wide configuration.
struct ServiceOptions {
  /// Registry caps: see SessionRegistry::Options.
  size_t max_sessions = 1024;
  uint64_t idle_ttl_ms = 0;
  /// Injectable clock for TTL tests (milliseconds, monotonic).
  std::function<uint64_t()> clock_ms;
  /// 0 = entropy-seeded session tokens (the safe default); fixed nonzero
  /// seeds are for reproducible scripting only (see SessionRegistry).
  uint64_t token_seed = 0;
  /// Default shard count for engines stood up via AddShardedTable (clamped
  /// to >= 1). Purely an execution knob: the wire protocol, expansion
  /// trees, and every response byte are identical for every value.
  size_t num_shards = 1;
};

/// The transport-agnostic front door to smart drill-down: an
/// ExplorationService fronts one or more ExplorationEngines (one per
/// dataset) and turns serializable requests into serializable responses —
/// addressable sessions behind opaque tokens, every rule pre-rendered to
/// strings, uniform Status-coded errors. A byte stream through
/// ServeLine/ServeScript (the api/codec grammar) is the canonical
/// integration surface; HTTP or websocket layers are thin adapters over
/// Execute/SubmitExpand.
///
/// Threading: every method is safe to call from any number of transport
/// threads. Requests addressing different sessions run in parallel;
/// requests for one session serialize on its registry entry. Engines are
/// borrowed, not owned, and must outlive the service.
class ExplorationService {
 public:
  explicit ExplorationService(ServiceOptions options = {});

  ExplorationService(const ExplorationService&) = delete;
  ExplorationService& operator=(const ExplorationService&) = delete;

  /// Registers `engine` as dataset `name`. The first engine added also
  /// becomes the default (used by open requests with no dataset=). Returns
  /// InvalidArgument for a duplicate name.
  Status AddEngine(std::string name, ExplorationEngine* engine);

  /// Registers a sharded engine's front as dataset `name`. Sessions opened
  /// on the dataset scatter-gather their exact drill-downs across the
  /// shards; the wire protocol is unchanged. Borrowed, must outlive the
  /// service.
  Status AddEngine(std::string name, ShardedEngine* engine);

  /// Stands up a service-owned ShardedEngine over `table` (num_shards = 0
  /// uses ServiceOptions::num_shards) and registers it as dataset `name`.
  /// `table` and `weight` must outlive the service.
  Status AddShardedTable(std::string name, const Table& table,
                         const WeightFunction& weight, size_t num_shards = 0);

  /// Executes one request synchronously. Never throws and never returns a
  /// malformed envelope: errors come back as a non-OK status with a stable
  /// wire code. `sink` (optional) streams the greedy steps of expand/star
  /// requests; its OnDone is NOT called by the synchronous path — the
  /// returned Response is the completion.
  Response Execute(const Request& request, ProgressSink* sink = nullptr);

  /// One request line in, one JSON response line out (no trailing
  /// newline). Parse defects come back on the same channel as
  /// INVALID_ARGUMENT responses.
  std::string ServeLine(std::string_view line);

  /// Runs a whole newline-separated script; returns one JSON line per
  /// non-blank, non-comment ('#') input line.
  std::string ServeScript(std::string_view script);

  /// Step-streaming expansion riding the engine's fair TaskScheduler: the
  /// expansion runs as a background task on a registry-owned per-session
  /// queue (FIFO among this session's submitted expansions, round-robin
  /// against other sessions' work; deliberately separate from the session's
  /// prefetch queue, whose pending passes the expansion joins when it
  /// runs), reporting each greedy step through `sink` and finishing with
  /// sink->OnDone. This is the hook a websocket front-end attaches to.
  /// Returns NotFound if the session does not exist; later failures reach
  /// the sink.
  Status SubmitExpand(const ExpandRequest& request,
                      std::shared_ptr<ProgressSink> sink);

  /// Evicts sessions idle past the TTL (also runs on every open).
  size_t SweepIdle() { return registry_.SweepIdle(); }

  /// Milliseconds since the last idle sweep finished; nullopt before the
  /// first sweep. Exported as a gauge by the HTTP /metrics route.
  std::optional<uint64_t> last_sweep_age_ms() const {
    return registry_.last_sweep_age_ms();
  }

  /// Live sessions across all engines.
  size_t num_sessions() const { return registry_.size(); }

  /// Registered datasets. Zero means opens cannot succeed yet — the
  /// readiness probe's "loading" signal.
  size_t num_datasets() const {
    std::lock_guard<std::mutex> lock(engines_mu_);
    return engines_.size();
  }

 private:
  Response Open(const OpenRequest& request);
  Response Expand(const ExpandRequest& request, ProgressSink* sink);
  Response Collapse(const CollapseRequest& request);
  Response Show(const ShowRequest& request);
  Response Refresh(const RefreshRequest& request);
  Response CloseSession(const CloseRequest& request);

  /// Session-addressed boilerplate: runs `fn` under the registry entry
  /// lock and wraps its snapshot in a Response echoing the token.
  Response WithSnapshot(uint64_t token,
                        const std::function<Status(ExplorationSession&)>& fn);

  ExplorationEngine* FindEngine(const std::string& dataset);

  /// ServiceOptions::num_shards, resolved at construction.
  size_t default_num_shards_ = 1;
  mutable std::mutex engines_mu_;
  std::map<std::string, ExplorationEngine*> engines_;
  std::string default_dataset_;
  /// Sharded engines stood up by AddShardedTable. Declared before the
  /// registry so live sessions (owned by registry_, destroyed first) never
  /// outlive their engine.
  std::vector<std::unique_ptr<ShardedEngine>> owned_engines_;
  /// Last member on purpose: destroying the registry drains queued
  /// SubmitExpand tasks, which may still Execute against the members above.
  SessionRegistry registry_;
};

}  // namespace smartdd::api

#endif  // SMARTDD_API_SERVICE_H_
