#ifndef SMARTDD_API_SERVICE_H_
#define SMARTDD_API_SERVICE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/codec.h"
#include "api/dto.h"
#include "api/session_registry.h"
#include "cache/expansion_cache.h"
#include "explore/engine.h"
#include "explore/sharded_engine.h"
#include "live/table_versions.h"

namespace smartdd::api {

/// Service-wide configuration.
struct ServiceOptions {
  /// Registry caps: see SessionRegistry::Options.
  size_t max_sessions = 1024;
  uint64_t idle_ttl_ms = 0;
  /// Injectable clock for TTL tests (milliseconds, monotonic).
  std::function<uint64_t()> clock_ms;
  /// 0 = entropy-seeded session tokens (the safe default); fixed nonzero
  /// seeds are for reproducible scripting only (see SessionRegistry).
  uint64_t token_seed = 0;
  /// Default shard count for engines stood up via AddShardedTable (clamped
  /// to >= 1). Purely an execution knob: the wire protocol, expansion
  /// trees, and every response byte are identical for every value.
  size_t num_shards = 1;
  /// Live-table snapshot cadence: publish a new table version once this
  /// many appended rows are pending. 0 disables the row trigger.
  uint64_t live_snapshot_every_rows = 256;
  /// Publish a new version once this many milliseconds have passed since
  /// the last publish and at least one row is pending. 0 disables the
  /// time trigger.
  int64_t live_snapshot_every_ms = 0;
  /// WAL durability batching for live tables: fsync once per this many
  /// appended records (1 = every append; 0 = never, rely on the OS).
  size_t live_fsync_every_records = 1;
  /// Expansion-cache byte budget across all cache shards (0 disables the
  /// cross-session expansion cache entirely).
  size_t cache_max_bytes = 32u << 20;
  /// Expansion-cache LRU shard count.
  size_t cache_shards = 8;
};

/// The transport-agnostic front door to smart drill-down: an
/// ExplorationService fronts one or more ExplorationEngines (one per
/// dataset) and turns serializable requests into serializable responses —
/// addressable sessions behind opaque tokens, every rule pre-rendered to
/// strings, uniform Status-coded errors. A byte stream through
/// ServeLine/ServeScript (the api/codec grammar) is the canonical
/// integration surface; HTTP or websocket layers are thin adapters over
/// Execute/SubmitExpand.
///
/// Threading: every method is safe to call from any number of transport
/// threads. Requests addressing different sessions run in parallel;
/// requests for one session serialize on its registry entry. Engines are
/// borrowed, not owned, and must outlive the service.
class ExplorationService {
 public:
  explicit ExplorationService(ServiceOptions options = {});

  ExplorationService(const ExplorationService&) = delete;
  ExplorationService& operator=(const ExplorationService&) = delete;

  /// Registers `engine` as dataset `name`. The first engine added also
  /// becomes the default (used by open requests with no dataset=). Returns
  /// InvalidArgument for a duplicate name.
  Status AddEngine(std::string name, ExplorationEngine* engine);

  /// Registers a sharded engine's front as dataset `name`. Sessions opened
  /// on the dataset scatter-gather their exact drill-downs across the
  /// shards; the wire protocol is unchanged. Borrowed, must outlive the
  /// service.
  Status AddEngine(std::string name, ShardedEngine* engine);

  /// Stands up a service-owned ShardedEngine over `table` (num_shards = 0
  /// uses ServiceOptions::num_shards) and registers it as dataset `name`.
  /// `table` and `weight` must outlive the service.
  Status AddShardedTable(std::string name, const Table& table,
                         const WeightFunction& weight, size_t num_shards = 0);

  /// Registers a live (appendable) dataset `name` seeded with `base`. When
  /// `wal_path` is non-empty, appended rows are durably logged there and
  /// replayed on the next startup (recovered rows become version 2 before
  /// the first open). Each published snapshot version gets its own
  /// service-owned ShardedEngine lazily, on the first open that sees it;
  /// sessions pin the version they opened against and old version engines
  /// are retired when their last session closes. `weight` must outlive the
  /// service. Snapshot cadence and fsync batching come from ServiceOptions.
  Status AddLiveTable(std::string name, Table base,
                      const WeightFunction& weight,
                      const std::string& wal_path = {},
                      size_t num_shards = 0);

  /// The live table behind dataset `name`, or nullptr if `name` is unknown
  /// or static. Exposed for embedders/tests that drive appends directly.
  live::LiveTable* FindLiveTable(const std::string& name);

  /// The cross-session expansion cache (hit/miss counters for tests and
  /// the /metrics exporter).
  cache::ExpansionCache& expansion_cache() { return cache_; }

  /// True while an AddLiveTable call is replaying a write-ahead log —
  /// /readyz reports `replaying` (503) so load balancers keep traffic off
  /// a node still rebuilding its snapshots.
  bool replaying() const {
    return replaying_.load(std::memory_order_acquire) > 0;
  }

  /// Executes one request synchronously. Never throws and never returns a
  /// malformed envelope: errors come back as a non-OK status with a stable
  /// wire code. `sink` (optional) streams the greedy steps of expand/star
  /// requests; its OnDone is NOT called by the synchronous path — the
  /// returned Response is the completion.
  Response Execute(const Request& request, ProgressSink* sink = nullptr);

  /// One request line in, one JSON response line out (no trailing
  /// newline). Parse defects come back on the same channel as
  /// INVALID_ARGUMENT responses.
  std::string ServeLine(std::string_view line);

  /// Runs a whole newline-separated script; returns one JSON line per
  /// non-blank, non-comment ('#') input line.
  std::string ServeScript(std::string_view script);

  /// Step-streaming expansion riding the engine's fair TaskScheduler: the
  /// expansion runs as a background task on a registry-owned per-session
  /// queue (FIFO among this session's submitted expansions, round-robin
  /// against other sessions' work; deliberately separate from the session's
  /// prefetch queue, whose pending passes the expansion joins when it
  /// runs), reporting each greedy step through `sink` and finishing with
  /// sink->OnDone. This is the hook a websocket front-end attaches to.
  /// Returns NotFound if the session does not exist; later failures reach
  /// the sink.
  Status SubmitExpand(const ExpandRequest& request,
                      std::shared_ptr<ProgressSink> sink);

  /// Evicts sessions idle past the TTL (also runs on every open).
  size_t SweepIdle() { return registry_.SweepIdle(); }

  /// Milliseconds since the last idle sweep finished; nullopt before the
  /// first sweep. Exported as a gauge by the HTTP /metrics route.
  std::optional<uint64_t> last_sweep_age_ms() const {
    return registry_.last_sweep_age_ms();
  }

  /// Live sessions across all engines.
  size_t num_sessions() const { return registry_.size(); }

  /// Registered datasets (static engines plus live tables). Zero means
  /// opens cannot succeed yet — the readiness probe's "loading" signal.
  size_t num_datasets() const {
    std::lock_guard<std::mutex> lock(engines_mu_);
    return engines_.size() + live_datasets_.size();
  }

 private:
  /// One frozen snapshot version's execution backend. The snapshot member
  /// is declared before the engine on purpose: the ShardedEngine borrows
  /// the snapshot's Table, so the engine must be destroyed first.
  struct VersionEngine {
    std::shared_ptr<const live::TableSnapshot> snapshot;
    std::unique_ptr<ShardedEngine> engine;
  };

  /// A registered live dataset: the appendable table plus the per-version
  /// engines stood up for it. Never removed once registered, so raw
  /// LiveDataset pointers cached in session metadata stay valid.
  struct LiveDataset {
    std::unique_ptr<live::LiveTable> table;
    const WeightFunction* weight = nullptr;
    size_t num_shards = 1;
    std::mutex mu;  ///< guards `engines`
    std::vector<std::shared_ptr<VersionEngine>> engines;
  };

  /// Cache identity of an open session, recorded at open time. `version`
  /// is 0 for static datasets (which never version, so 0 is a valid cache
  /// epoch for them); `live` is null for static datasets.
  struct SessionMeta {
    std::string dataset;
    uint64_t version = 0;
    LiveDataset* live = nullptr;
  };

  Response Open(const OpenRequest& request);
  Response Expand(const ExpandRequest& request, ProgressSink* sink);
  Response Collapse(const CollapseRequest& request);
  Response Show(const ShowRequest& request);
  Response Refresh(const RefreshRequest& request);
  Response CloseSession(const CloseRequest& request);
  Response Append(const AppendRequest& request);
  Response TableInfo(const TableInfoRequest& request);

  /// Session-addressed boilerplate: runs `fn` under the registry entry
  /// lock and wraps its snapshot in a Response echoing the token.
  Response WithSnapshot(uint64_t token,
                        const std::function<Status(ExplorationSession&)>& fn);

  ExplorationEngine* FindEngine(const std::string& dataset);
  LiveDataset* FindLiveDataset(const std::string& dataset,
                               std::string* resolved_name,
                               bool* known_static);

  /// Returns the engine for `ds`'s latest published version, standing one
  /// up if this is the first open since the version was published, and
  /// garbage-collecting retired versions.
  Result<std::shared_ptr<VersionEngine>> LatestVersionEngine(LiveDataset& ds);
  /// Drops version engines that are not the latest version and have no
  /// live sessions (and no in-flight open holding a reference). Caller
  /// holds ds.mu.
  void GcVersionEnginesLocked(LiveDataset& ds);
  /// Registry on_evict hook: forgets the token's metadata and retires any
  /// version engine its departure emptied.
  void CleanupSession(uint64_t token);

  /// Builds the expansion-cache key for this expand, or returns false when
  /// the expansion must not be cached (cache disabled, sampling engine,
  /// unknown session metadata, or an invalid node — the cold path then
  /// produces the error response). The key covers every input that can
  /// change the expansion's bytes (dataset identity — which pins the
  /// weight function — table version, node rule, star column, k,
  /// max_weight, measure, pruning) and deliberately excludes num_threads /
  /// kernel / num_shards, which the determinism contract makes
  /// byte-irrelevant.
  bool BuildCacheKey(const ExpandRequest& request,
                     const ExplorationSession& session, std::string* key);

  /// ServiceOptions::num_shards, resolved at construction.
  size_t default_num_shards_ = 1;
  /// Live-table knobs from ServiceOptions, copied at construction.
  uint64_t live_snapshot_every_rows_ = 256;
  int64_t live_snapshot_every_ms_ = 0;
  size_t live_fsync_every_records_ = 1;
  std::function<uint64_t()> clock_ms_;
  mutable std::mutex engines_mu_;
  std::map<std::string, ExplorationEngine*> engines_;
  /// Guarded by engines_mu_ (map structure only; each LiveDataset has its
  /// own lock for its engines vector).
  std::map<std::string, std::unique_ptr<LiveDataset>> live_datasets_;
  std::string default_dataset_;
  /// Sharded engines stood up by AddShardedTable. Declared before the
  /// registry so live sessions (owned by registry_, destroyed first) never
  /// outlive their engine.
  std::vector<std::unique_ptr<ShardedEngine>> owned_engines_;
  std::mutex meta_mu_;
  std::unordered_map<uint64_t, SessionMeta> session_meta_;
  /// Live AddLiveTable calls currently replaying a WAL (readyz signal).
  std::atomic<size_t> replaying_{0};
  cache::ExpansionCache cache_;
  /// Last member on purpose: destroying the registry drains queued
  /// SubmitExpand tasks and fires on_evict cleanups, which may still touch
  /// every member above.
  SessionRegistry registry_;
};

}  // namespace smartdd::api

#endif  // SMARTDD_API_SERVICE_H_
