#ifndef SMARTDD_API_DTO_H_
#define SMARTDD_API_DTO_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace smartdd {

class ExplorationSession;
class Table;
struct ScoredRule;

/// Wire-level data transfer objects for the front-door ExplorationService:
/// plain structs with every rule pre-rendered to string labels through the
/// engine's prototype dictionaries, so thin clients (an HTTP/websocket
/// front-end, a scripted byte stream) never touch Table, Rule, or any other
/// engine internals. The codec (api/codec.h) maps these to and from bytes.
namespace api {

/// Stable wire name for a status code, e.g. "INVALID_ARGUMENT". These names
/// are part of the protocol: clients may switch on them, so they never
/// change meaning (new codes may be added).
const char* ErrorCodeName(StatusCode code);

/// `open` — create an addressable session against a named dataset.
struct OpenRequest {
  /// Engine to explore; empty selects the service's default engine.
  std::string dataset;
  /// Rules revealed per drill-down (the paper's k).
  size_t k = 3;
  /// mw cap; infinity derives it from the weight function.
  double max_weight = std::numeric_limits<double>::infinity();
  /// Rank and display by Sum over this measure column (empty = Count).
  std::string measure;
  /// Threads for this session's searches (0 = engine default).
  size_t num_threads = 0;
  /// Background sample prefetch after each expansion (sampling engines).
  bool prefetch = false;
};

/// `expand` / `star` — smart drill-down on a displayed node.
struct ExpandRequest {
  uint64_t session = 0;
  int node = 0;
  /// Set for star drill-downs: the clicked `?` column.
  std::optional<size_t> star_column;
  /// Soft time budget for the expansion in milliseconds (0 = unbounded).
  /// On expiry the expansion degrades instead of failing: the response
  /// carries status DEADLINE_EXCEEDED, partial = true, and the tree built
  /// within budget (completed greedy steps become children; an interrupted
  /// step is discarded, so the partial tree is always well-formed).
  double deadline_ms = 0;
};

/// `collapse` — roll up a node's subtree.
struct CollapseRequest {
  uint64_t session = 0;
  int node = 0;
};

/// `show` — re-send the current tree without changing it.
struct ShowRequest {
  uint64_t session = 0;
};

/// `exact` — refresh displayed estimates to exact counts (§4.3).
struct RefreshRequest {
  uint64_t session = 0;
};

/// `close` — release the session (drains its background work).
struct CloseRequest {
  uint64_t session = 0;
};

/// `ping` — liveness probe.
struct PingRequest {};

/// `append` — append one CSV row to a live (WAL-backed) table. The row is
/// validated against the table schema, durably logged, and folded into the
/// next published snapshot version; sessions opened before the append keep
/// exploring their pinned version.
struct AppendRequest {
  /// Live dataset to append to; empty selects the service's default.
  std::string dataset;
  /// One CSV record: dimension cells then measure cells, schema order.
  std::string row;
};

/// `tableinfo` — current version, row counts, and WAL size of a dataset.
struct TableInfoRequest {
  /// Dataset to describe; empty selects the service's default.
  std::string dataset;
};

using Request = std::variant<OpenRequest, ExpandRequest, CollapseRequest,
                             ShowRequest, RefreshRequest, CloseRequest,
                             PingRequest, AppendRequest, TableInfoRequest>;

/// One displayed rule, fully rendered for a thin client.
struct NodeView {
  /// Stable node id within the session's tree; the handle expand/collapse
  /// requests address.
  int id = 0;
  /// One-line rule rendering via the prototype dictionaries, stars as "?",
  /// e.g. "(Walmart, ?, CA-1)".
  std::string label;
  /// Per-column cell values ("?" = star). Parseable back into the same rule
  /// with ParseRule against the prototype — the round-trip contract.
  std::vector<std::string> cells;
  /// Displayed Count/Sum (estimated in sampling mode, see `exact`).
  double mass = 0;
  /// MCount/MSum within the sibling list (0 for the root).
  double marginal_mass = 0;
  double weight = 0;
  /// 95% confidence half-width of the estimate (0 when exact).
  double ci_half_width = 0;
  bool exact = true;
  int parent = -1;
  int depth = 0;
  std::vector<int> children;
};

/// The displayed tree in render (pre-)order, root first.
struct TreeSnapshot {
  /// Schema column names, in cell order.
  std::vector<std::string> columns;
  /// "Count" or "Sum(<measure>)".
  std::string mass_label;
  std::vector<NodeView> nodes;
};

/// Live-table state rendered for a thin client (`append` / `tableinfo`).
struct TableInfoView {
  std::string dataset;
  /// Published snapshot version (1 = pristine base; 0 for static datasets,
  /// which never version).
  uint64_t version = 0;
  /// Rows in the latest published snapshot.
  uint64_t rows = 0;
  /// Appended rows durably logged but not yet folded into a snapshot.
  uint64_t pending_rows = 0;
  /// Bytes in the write-ahead log (0 when the table runs without one).
  uint64_t wal_bytes = 0;
};

/// Uniform response envelope: a Status (OK or a stable-coded error) plus
/// whichever payload the request produces. `session` is set by open and
/// echoed by session-addressed requests; `tree` is the resulting snapshot;
/// `table` is set by append/tableinfo.
struct Response {
  Status status;
  std::optional<uint64_t> session;
  std::optional<TreeSnapshot> tree;
  std::optional<TableInfoView> table;
  /// Degraded-result marker: true when status is DEADLINE_EXCEEDED but a
  /// well-formed partial `tree` (the steps that completed in budget) is
  /// attached. Never set on OK responses.
  bool partial = false;
};

/// Streaming observer for step-wise expansion: the greedy BRS loop reports
/// each of the k steps as it lands, so a front-end can paint rules while
/// the search continues. This is what an HTTP/websocket layer attaches to.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  /// Called after greedy step `step` (0-based) of `k` with the freshly
  /// selected rule (mass scaled to a full-table estimate in sampling mode;
  /// id/parent/children are not yet assigned). Return false to cancel the
  /// remaining steps — rules found so far still become children.
  ///
  /// Re-entrancy: OnStep runs inside the session's request critical
  /// section. It must NOT call back into the ExplorationService for the
  /// same session (that self-deadlocks on the session's serialization
  /// lock) — push the step to the client and return; cancel by returning
  /// false. OnDone runs outside that critical section and MAY issue
  /// follow-up requests, including closing the session.
  virtual bool OnStep(const NodeView& rule, size_t step, size_t k) = 0;
  /// Called exactly once with the final outcome (the same Response a
  /// synchronous Execute would have returned).
  virtual void OnDone(const Response& response) = 0;
};

/// Renders a session's displayed tree into wire form. Exposed so embedders
/// driving ExplorationSession directly can produce byte-identical snapshots
/// to the service path (the protocol-equivalence contract).
TreeSnapshot SnapshotOf(const ExplorationSession& session);

/// Renders one freshly found step rule (no tree position yet) for
/// ProgressSink streaming. `exact` is false when the rule's mass is a
/// sampling estimate (its CI is only computed at tree placement).
NodeView StepNodeView(const ScoredRule& rule, const Table& prototype,
                      bool exact);

}  // namespace api
}  // namespace smartdd

#endif  // SMARTDD_API_DTO_H_
