#include "api/dto.h"

#include "core/score.h"
#include "explore/session.h"
#include "rules/rule_format.h"

namespace smartdd::api {

const char* ErrorCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kCapacityExceeded:
      return "CAPACITY_EXCEEDED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "INTERNAL";
}

TreeSnapshot SnapshotOf(const ExplorationSession& session) {
  const Table& proto = session.prototype();
  TreeSnapshot tree;
  tree.columns = proto.schema().names();
  tree.mass_label = session.measure_column()
                        ? "Sum(" + *session.measure_column() + ")"
                        : "Count";
  for (int id : session.DisplayOrder()) {
    const ExplorationNode& n = session.node(id);
    NodeView v;
    v.id = id;
    v.cells = RuleCells(n.rule, proto);
    v.label = RuleToString(n.rule, proto);
    v.mass = n.mass;
    v.marginal_mass = n.marginal_mass;
    v.weight = n.weight;
    v.ci_half_width = n.ci_half_width;
    v.exact = n.exact;
    v.parent = n.parent;
    v.depth = n.depth;
    for (int c : n.children) {
      if (session.node(c).alive) v.children.push_back(c);
    }
    tree.nodes.push_back(std::move(v));
  }
  return tree;
}

NodeView StepNodeView(const ScoredRule& rule, const Table& prototype,
                      bool exact) {
  NodeView v;
  v.id = -1;  // not yet placed in the tree
  v.cells = RuleCells(rule.rule, prototype);
  v.label = RuleToString(rule.rule, prototype);
  v.mass = rule.mass;
  v.marginal_mass = rule.marginal_mass;
  v.weight = rule.weight;
  v.exact = exact;
  return v;
}

}  // namespace smartdd::api
