#include "api/session_registry.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <random>
#include <utility>

#include "common/metrics.h"
#include "common/random.h"
#include "explore/engine.h"

namespace smartdd::api {

namespace {

/// Process-wide session lifecycle counters (every registry reports into the
/// same series; references are cached once, the registry is leaked-on-
/// purpose, so these stay valid through static teardown).
struct SessionCounters {
  Counter& opened;
  Counter& evicted;
  Counter& closed;
  Counter& busy_skips;
};

SessionCounters& Counters() {
  static SessionCounters* counters = new SessionCounters{
      MetricsRegistry::Default().GetCounter(
          "smartdd_sessions_opened_total",
          "Sessions inserted into a session registry"),
      MetricsRegistry::Default().GetCounter(
          "smartdd_sessions_evicted_total",
          "Sessions evicted by idle TTL or LRU capacity pressure"),
      MetricsRegistry::Default().GetCounter(
          "smartdd_sessions_closed_total",
          "Sessions torn down by explicit close or registry shutdown"),
      MetricsRegistry::Default().GetCounter(
          "smartdd_sessions_sweep_busy_skips_total",
          "Eviction candidates spared because they were mid-request")};
  return *counters;
}

}  // namespace

SessionRegistry::SessionRegistry() : SessionRegistry(Options{}) {}

SessionRegistry::SessionRegistry(Options options)
    : options_(std::move(options)), token_state_(options_.token_seed) {
  SMARTDD_CHECK(options_.max_sessions >= 1)
      << "SessionRegistry requires max_sessions >= 1";
  if (token_state_ == 0) {
    // Default: entropy-seeded token stream, so tokens are not predictable
    // across (or within) deployments.
    std::random_device rd;
    token_state_ = (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
                   static_cast<uint64_t>(
                       std::chrono::steady_clock::now().time_since_epoch()
                           .count());
    if (token_state_ == 0) token_state_ = 1;
  }
}

SessionRegistry::~SessionRegistry() {
  std::vector<uint64_t> tokens;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tokens.reserve(sessions_.size());
    for (const auto& [token, entry] : sessions_) tokens.push_back(token);
  }
  for (uint64_t token : tokens) Evict(token);
}

uint64_t SessionRegistry::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Result<uint64_t> SessionRegistry::Insert(ExplorationSession session) {
  SweepIdle();

  auto entry = std::make_shared<Entry>();
  entry->session =
      std::make_unique<ExplorationSession>(std::move(session));
  entry->last_used_ms.store(NowMs(), std::memory_order_relaxed);

  // Make room and emplace. The cap check and the emplace share one
  // critical section — concurrent opens re-loop rather than overshoot the
  // hard cap — while evictions (which take the victim's entry lock) run
  // outside it. Eviction prefers the least recently used session but never
  // destroys one that is mid-request: an "idle" timestamp on a busy entry
  // is just its request start time, and the most active client must not be
  // the victim. A registry full of busy sessions refuses the open instead.
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::vector<std::pair<uint64_t, uint64_t>> by_use;  // (last_used, token)
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (sessions_.size() < options_.max_sessions) {
        uint64_t token;
        do {
          token = SplitMix64(token_state_);
        } while (token == 0 || sessions_.count(token) != 0);
        sessions_.emplace(token, std::move(entry));
        Counters().opened.Inc();
        return token;
      }
      by_use.reserve(sessions_.size());
      for (const auto& [token, e] : sessions_) {
        by_use.emplace_back(e->last_used_ms.load(std::memory_order_relaxed),
                            token);
      }
    }
    std::sort(by_use.begin(), by_use.end());
    bool evicted = false;
    for (const auto& [used, token] : by_use) {
      if (TryEvictUnlessBusy(token, /*idle_deadline=*/nullptr)) {
        evicted = true;
        break;
      }
    }
    if (!evicted) break;
  }
  return Status::CapacityExceeded(
      "session registry is full and every session is mid-request; retry "
      "shortly or raise max_sessions");
}

Status SessionRegistry::With(
    uint64_t token, const std::function<Status(ExplorationSession&)>& fn) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it != sessions_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    return Status::NotFound("no such session (expired, closed, or never opened)");
  }
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (entry->session == nullptr || entry->closing) {
    return Status::NotFound("no such session (expired, closed, or never opened)");
  }
  entry->last_used_ms.store(NowMs(), std::memory_order_relaxed);
  Status status = fn(*entry->session);
  // Refresh on completion as well: a request that runs longer than the TTL
  // must leave the session "just used", not sweep-bait.
  entry->last_used_ms.store(NowMs(), std::memory_order_relaxed);
  return status;
}

Status SessionRegistry::SubmitAsync(uint64_t token,
                                    std::function<Status()> task) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it != sessions_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    return Status::NotFound("no such session (expired, closed, or never opened)");
  }
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (entry->closing || entry->session == nullptr) {
    return Status::NotFound("no such session (expired, closed, or never opened)");
  }
  if (entry->async_queue == TaskScheduler::kInvalidQueue) {
    entry->scheduler = &entry->session->engine().scheduler();
    entry->async_queue = entry->scheduler->CreateQueue();
  }
  entry->last_used_ms.store(NowMs(), std::memory_order_relaxed);
  entry->scheduler->Submit(entry->async_queue, std::move(task));
  return Status::OK();
}

void SessionRegistry::TeardownEntry(Entry& entry, TaskScheduler* scheduler,
                                    TaskScheduler::QueueId async_queue) {
  // Teardown order matters — the entry is already unmapped and marked
  // closing under its lock (so no SubmitAsync can enqueue and no With can
  // serve it). (1) Drain-and-destroy the async queue with NO locks held:
  // queued service tasks run now, miss the map, and report NotFound to
  // their sinks instead of deadlocking on the entry lock. (2) Only then
  // destroy the session, which drains its own prefetch queue via the
  // Release() path.
  if (scheduler != nullptr) scheduler->DestroyQueue(async_queue);
  std::unique_ptr<ExplorationSession> dying;
  {
    std::lock_guard<std::mutex> entry_lock(entry.mu);
    dying = std::move(entry.session);
  }
  dying.reset();
}

bool SessionRegistry::Evict(uint64_t token) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it == sessions_.end()) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  TaskScheduler* scheduler = nullptr;
  TaskScheduler::QueueId async_queue = TaskScheduler::kInvalidQueue;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    entry->closing = true;
    scheduler = entry->scheduler;
    async_queue = entry->async_queue;
    entry->async_queue = TaskScheduler::kInvalidQueue;
  }
  TeardownEntry(*entry, scheduler, async_queue);
  Counters().closed.Inc();
  if (options_.on_evict) options_.on_evict(token);
  return true;
}

Status SessionRegistry::Close(uint64_t token) {
  if (!Evict(token)) {
    return Status::NotFound("no such session (expired, closed, or never opened)");
  }
  return Status::OK();
}

size_t SessionRegistry::SweepIdle() {
  if (options_.idle_ttl_ms == 0) return 0;
  const uint64_t now = NowMs();
  std::vector<uint64_t> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [token, entry] : sessions_) {
      uint64_t used = entry->last_used_ms.load(std::memory_order_relaxed);
      if (now >= used && now - used >= options_.idle_ttl_ms) {
        expired.push_back(token);
      }
    }
  }
  size_t evicted = 0;
  for (uint64_t token : expired) {
    if (TryEvictUnlessBusy(token, &now)) ++evicted;
  }
  // Stamp with a fresh reading: the evictions above may have drained
  // nontrivial background work since `now` was taken.
  uint64_t done = NowMs();
  last_sweep_ms_.store(done == 0 ? 1 : done, std::memory_order_relaxed);
  return evicted;
}

std::optional<uint64_t> SessionRegistry::last_sweep_age_ms() const {
  uint64_t swept = last_sweep_ms_.load(std::memory_order_relaxed);
  if (swept == 0) return std::nullopt;
  uint64_t now = NowMs();
  return now >= swept ? now - swept : 0;
}

bool SessionRegistry::TryEvictUnlessBusy(uint64_t token,
                                         const uint64_t* idle_deadline_now) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it == sessions_.end()) return false;
    entry = it->second;
  }
  TaskScheduler* scheduler = nullptr;
  TaskScheduler::QueueId async_queue = TaskScheduler::kInvalidQueue;
  {
    // Non-blocking: an entry whose lock is held is mid-request — actively
    // in use, never an eviction victim. With a deadline (TTL sweep), a
    // session touched since the sweep snapshot also gets a second chance.
    std::unique_lock<std::mutex> entry_lock(entry->mu, std::try_to_lock);
    if (!entry_lock.owns_lock()) {
      // A hot busy-skip rate means the TTL/LRU pressure valve cannot keep
      // up with the request load — worth an alert, hence its own counter.
      Counters().busy_skips.Inc();
      return false;
    }
    if (idle_deadline_now != nullptr) {
      uint64_t used = entry->last_used_ms.load(std::memory_order_relaxed);
      if (*idle_deadline_now < used ||
          *idle_deadline_now - used < options_.idle_ttl_ms) {
        return false;
      }
    }
    if (entry->session == nullptr || entry->closing) return false;
    entry->closing = true;
    scheduler = entry->scheduler;
    async_queue = entry->async_queue;
    entry->async_queue = TaskScheduler::kInvalidQueue;
    // Unmap while still holding the entry lock so no new request can
    // resolve the token for a session we just committed to destroying.
    // (No lock-order cycle: With releases the map lock before taking the
    // entry lock.)
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.erase(token);
  }
  TeardownEntry(*entry, scheduler, async_queue);
  Counters().evicted.Inc();
  if (options_.on_evict) options_.on_evict(token);
  return true;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace smartdd::api
