#include "api/render.h"

#include <vector>

#include "common/string_util.h"

namespace smartdd::api {

std::string RenderSnapshot(const TreeSnapshot& tree,
                           const RenderOptions& options) {
  std::string mass_label =
      options.mass_label.empty() ? tree.mass_label : options.mass_label;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  header.push_back("id");
  for (const auto& name : tree.columns) header.push_back(name);
  header.push_back(mass_label);
  if (options.show_marginal) header.push_back("M" + mass_label);
  if (options.show_weight) header.push_back("Weight");
  rows.push_back(std::move(header));

  for (const NodeView& node : tree.nodes) {
    std::vector<std::string> cells;
    cells.push_back(StrFormat("%d", node.id));
    std::string indent;
    for (int d = 0; d < node.depth; ++d) indent += options.depth_marker;
    for (size_t c = 0; c < node.cells.size(); ++c) {
      cells.push_back(c == 0 ? indent + node.cells[c] : node.cells[c]);
    }
    cells.push_back(FormatMassCell(node.mass, node.exact, node.ci_half_width,
                                   options.show_confidence));
    if (options.show_marginal) {
      cells.push_back(node.parent < 0
                          ? "-"
                          : FormatMassCell(node.marginal_mass, node.exact, 0,
                                           false));
    }
    if (options.show_weight) cells.push_back(FormatDouble(node.weight, 6));
    rows.push_back(std::move(cells));
  }
  return RenderAlignedGrid(rows);
}

}  // namespace smartdd::api
