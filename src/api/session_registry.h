#ifndef SMARTDD_API_SESSION_REGISTRY_H_
#define SMARTDD_API_SESSION_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/task_scheduler.h"
#include "explore/session.h"

namespace smartdd::api {

/// Thread-safe table of addressable sessions: maps opaque uint64 tokens to
/// live ExplorationSessions so stateless transports (one request per line /
/// HTTP call) can resume a user's exploration. Owns the sessions; evicting
/// or closing one destroys it, which drains its background work and frees
/// its sampler/scheduler state through the session's existing Release()
/// path — the registry adds no second teardown mechanism.
///
/// Concurrency: the map is mutex-guarded; each entry carries its own mutex
/// serializing use of the (single-user, not thread-safe) session, so any
/// number of transport threads may address different sessions in parallel
/// while requests for one session queue up fairly behind its lock.
class SessionRegistry {
 public:
  struct Options {
    /// Hard cap on live sessions. Inserting beyond it evicts the least
    /// recently used session that is not mid-request; if every session is
    /// actively serving, Insert returns CapacityExceeded instead of
    /// destroying in-use state. Must be >= 1.
    size_t max_sessions = 1024;
    /// Sessions idle longer than this are evicted by SweepIdle (also run
    /// on every Insert). 0 disables TTL eviction.
    uint64_t idle_ttl_ms = 0;
    /// Injectable monotonic clock (milliseconds) for TTL tests; defaults
    /// to std::chrono::steady_clock.
    std::function<uint64_t()> clock_ms;
    /// Stream seed for token generation. 0 (the default) draws the seed
    /// from process entropy at construction, so token sequences differ per
    /// process and are non-guessable. Set a fixed nonzero seed ONLY for
    /// reproducible scripting (tests, the CI smoke golden) — deterministic
    /// tokens let anyone address other users' sessions.
    uint64_t token_seed = 0;
    /// Called after a session is destroyed by any teardown path (explicit
    /// close, TTL/LRU eviction, registry destruction). Runs with no
    /// registry locks held and the token already unmapped, so the owner
    /// can drop per-token bookkeeping it keeps outside the registry (and
    /// may call back into it safely).
    std::function<void(uint64_t token)> on_evict;
  };

  SessionRegistry();
  explicit SessionRegistry(Options options);

  /// Evicts every remaining session: drains their queued background work
  /// (whose tasks may still call back into the registry's owner, so destroy
  /// the registry before anything those tasks touch) and releases their
  /// engine state.
  ~SessionRegistry();

  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Takes ownership of `session` and returns its token. Runs a TTL sweep
  /// first and then, if the registry is still full, evicts the least
  /// recently used non-busy session; CapacityExceeded when every session
  /// is mid-request.
  Result<uint64_t> Insert(ExplorationSession session);

  /// Runs `fn` with the session addressed by `token`, holding its entry
  /// lock (requests for the same session serialize; different sessions run
  /// in parallel). Returns NotFound for unknown/closed/evicted tokens,
  /// otherwise whatever `fn` returns. Refreshes the idle clock.
  Status With(uint64_t token, const std::function<Status(ExplorationSession&)>& fn);

  /// Enqueues `task` on the session's background queue in the engine's fair
  /// TaskScheduler (lazily created; FIFO per session, round-robin across
  /// sessions). The task runs on a scheduler worker and typically
  /// re-resolves the session via With(); it is kept OFF the session's
  /// prefetch queue so a synchronous request that drains prefetches while
  /// holding the entry lock can never deadlock against it. Returns NotFound
  /// for unknown/closed tokens.
  Status SubmitAsync(uint64_t token, std::function<Status()> task);

  /// Closes and destroys the session, draining its queued background work
  /// first (idempotent; NotFound if unknown).
  Status Close(uint64_t token);

  /// Evicts every session idle for at least idle_ttl_ms; returns how many.
  /// No-op (returns 0) when TTL eviction is disabled.
  size_t SweepIdle();

  /// Milliseconds since the last completed SweepIdle, or nullopt if none
  /// has run (or TTL eviction is disabled). A growing age on a TTL-enabled
  /// registry means the open-driven sweep cadence has stalled.
  std::optional<uint64_t> last_sweep_age_ms() const;

  size_t size() const;

 private:
  struct Entry {
    /// Serializes session use; also held while the session is torn down so
    /// in-flight requests either finish first or observe the closed state.
    std::mutex mu;
    std::unique_ptr<ExplorationSession> session;
    std::atomic<uint64_t> last_used_ms{0};
    /// Service-work queue in the engine's scheduler (SubmitAsync), separate
    /// from the session's internal prefetch queue. Guarded by mu.
    TaskScheduler* scheduler = nullptr;
    TaskScheduler::QueueId async_queue = TaskScheduler::kInvalidQueue;
    /// Set under mu before the queue is destroyed, so no Submit can race
    /// with teardown.
    bool closing = false;
  };

  uint64_t NowMs() const;
  /// Removes the entry from the map (if present) and destroys its session
  /// outside the map lock; returns false for an unknown token.
  bool Evict(uint64_t token);
  /// Non-blocking eviction: succeeds only if the entry lock is free
  /// (nobody is mid-request) and — when `idle_deadline_now` is non-null
  /// (the TTL sweep) — the idle deadline still holds under that lock.
  bool TryEvictUnlessBusy(uint64_t token, const uint64_t* idle_deadline_now);
  /// Shared teardown tail for all eviction paths; the entry must already
  /// be unmapped and marked closing.
  void TeardownEntry(Entry& entry, TaskScheduler* scheduler,
                     TaskScheduler::QueueId async_queue);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> sessions_;
  uint64_t token_state_;
  /// Clock reading at the end of the last SweepIdle (0 = never swept).
  std::atomic<uint64_t> last_sweep_ms_{0};
};

}  // namespace smartdd::api

#endif  // SMARTDD_API_SESSION_REGISTRY_H_
