#include "api/service.h"

#include <algorithm>
#include <utility>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace smartdd::api {

namespace {

Response ErrorResponse(Status status) {
  Response r;
  r.status = std::move(status);
  return r;
}

struct DegradeCounters {
  Counter& deadline_exceeded;
  Counter& partial_responses;
};

DegradeCounters& Degrades() {
  static DegradeCounters* counters = new DegradeCounters{
      MetricsRegistry::Default().GetCounter(
          "smartdd_deadline_exceeded_total",
          "Requests whose deadline fired before the work completed"),
      MetricsRegistry::Default().GetCounter(
          "smartdd_partial_responses_total",
          "Degraded responses shipped with a partial tree after a deadline"),
  };
  return *counters;
}

}  // namespace

ExplorationService::ExplorationService(ServiceOptions options)
    : default_num_shards_(std::max<size_t>(1, options.num_shards)),
      registry_([&options]() {
        SessionRegistry::Options r;
        r.max_sessions = options.max_sessions;
        r.idle_ttl_ms = options.idle_ttl_ms;
        r.clock_ms = std::move(options.clock_ms);
        r.token_seed = options.token_seed;
        return r;
      }()) {}

Status ExplorationService::AddEngine(std::string name,
                                     ExplorationEngine* engine) {
  SMARTDD_CHECK(engine != nullptr);
  std::lock_guard<std::mutex> lock(engines_mu_);
  if (engines_.count(name) != 0) {
    return Status::InvalidArgument(
        StrFormat("dataset '%s' is already registered", name.c_str()));
  }
  if (engines_.empty()) default_dataset_ = name;
  engines_.emplace(std::move(name), engine);
  return Status::OK();
}

Status ExplorationService::AddEngine(std::string name, ShardedEngine* engine) {
  SMARTDD_CHECK(engine != nullptr);
  return AddEngine(std::move(name), &engine->front());
}

Status ExplorationService::AddShardedTable(std::string name,
                                           const Table& table,
                                           const WeightFunction& weight,
                                           size_t num_shards) {
  ShardedEngineOptions options;
  options.num_shards = num_shards != 0 ? num_shards : default_num_shards_;
  auto engine = ShardedEngine::Create(table, weight, std::move(options));
  SMARTDD_RETURN_IF_ERROR(engine.status());
  SMARTDD_RETURN_IF_ERROR(AddEngine(std::move(name), engine->get()));
  std::lock_guard<std::mutex> lock(engines_mu_);
  owned_engines_.push_back(std::move(engine).value());
  return Status::OK();
}

ExplorationEngine* ExplorationService::FindEngine(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(engines_mu_);
  const std::string& name = dataset.empty() ? default_dataset_ : dataset;
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second;
}

Response ExplorationService::Open(const OpenRequest& request) {
  ExplorationEngine* engine = FindEngine(request.dataset);
  if (engine == nullptr) {
    return ErrorResponse(Status::NotFound(
        request.dataset.empty()
            ? std::string("service has no engines registered")
            : StrFormat("unknown dataset '%s'", request.dataset.c_str())));
  }

  SessionOptions options;
  options.k = request.k;
  options.max_weight = request.max_weight;
  if (!request.measure.empty()) options.measure_column = request.measure;
  options.num_threads = request.num_threads;
  if (request.prefetch) options.prefetch = Prefetcher::Mode::kBackground;

  auto session = engine->NewSession(std::move(options));
  if (!session.ok()) return ErrorResponse(session.status());

  // Snapshot before the registry takes ownership: the root-only initial
  // tree ships in the open response, saving the client a show round-trip.
  TreeSnapshot tree = SnapshotOf(*session);
  auto token = registry_.Insert(std::move(session).value());
  if (!token.ok()) return ErrorResponse(token.status());

  Response r;
  r.session = *token;
  r.tree = std::move(tree);
  return r;
}

Response ExplorationService::WithSnapshot(
    uint64_t token, const std::function<Status(ExplorationSession&)>& fn) {
  Response r;
  r.status = registry_.With(token, [&](ExplorationSession& session) {
    Status s = fn(session);
    if (s.code() == StatusCode::kDeadlineExceeded) {
      // Degrade, don't fail: the session kept the work that finished in
      // budget, so ship that tree with the error status and the partial
      // marker. The registry call itself still reports the error code.
      Degrades().deadline_exceeded.Inc();
      Degrades().partial_responses.Inc();
      r.partial = true;
      r.session = token;
      r.tree = SnapshotOf(session);
      return s;
    }
    SMARTDD_RETURN_IF_ERROR(s);
    r.tree = SnapshotOf(session);
    return Status::OK();
  });
  if (r.status.ok()) r.session = token;
  return r;
}

Response ExplorationService::Expand(const ExpandRequest& request,
                                    ProgressSink* sink) {
  return WithSnapshot(request.session, [&](ExplorationSession& session) {
    ExplorationSession::ExpandStepCallback on_step;
    if (sink != nullptr) {
      const Table* proto = &session.prototype();
      const size_t k = session.options().k;
      on_step = [sink, proto, k](const ScoredRule& rule, size_t step,
                                 bool exact) {
        return sink->OnStep(StepNodeView(rule, *proto, exact), step, k);
      };
    }
    // The clock starts when the request begins executing, not when it was
    // queued: SubmitExpand riders get their full budget from here.
    Deadline deadline;
    if (request.deadline_ms > 0) {
      deadline = Deadline::AfterMillis(request.deadline_ms);
    }
    Result<std::vector<int>> children =
        request.star_column
            ? session.ExpandStar(request.node, *request.star_column, on_step,
                                 deadline)
            : session.Expand(request.node, on_step, deadline);
    return children.status();
  });
}

Response ExplorationService::Collapse(const CollapseRequest& request) {
  return WithSnapshot(request.session, [&](ExplorationSession& session) {
    return session.Collapse(request.node);
  });
}

Response ExplorationService::Show(const ShowRequest& request) {
  return WithSnapshot(request.session,
                      [](ExplorationSession&) { return Status::OK(); });
}

Response ExplorationService::Refresh(const RefreshRequest& request) {
  return WithSnapshot(request.session, [](ExplorationSession& session) {
    return session.RefreshExactCounts();
  });
}

Response ExplorationService::CloseSession(const CloseRequest& request) {
  Response r;
  r.status = registry_.Close(request.session);
  return r;
}

Response ExplorationService::Execute(const Request& request,
                                     ProgressSink* sink) {
  return std::visit(
      [&](const auto& req) -> Response {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, OpenRequest>) {
          return Open(req);
        } else if constexpr (std::is_same_v<T, ExpandRequest>) {
          return Expand(req, sink);
        } else if constexpr (std::is_same_v<T, CollapseRequest>) {
          return Collapse(req);
        } else if constexpr (std::is_same_v<T, ShowRequest>) {
          return Show(req);
        } else if constexpr (std::is_same_v<T, RefreshRequest>) {
          return Refresh(req);
        } else if constexpr (std::is_same_v<T, CloseRequest>) {
          return CloseSession(req);
        } else {
          return Response{};  // ping
        }
      },
      request);
}

std::string ExplorationService::ServeLine(std::string_view line) {
  auto request = ParseRequest(line);
  if (!request.ok()) return EncodeResponse(ErrorResponse(request.status()));
  return EncodeResponse(Execute(*request));
}

std::string ExplorationService::ServeScript(std::string_view script) {
  std::string out;
  size_t start = 0;
  while (start <= script.size()) {
    size_t end = script.find('\n', start);
    if (end == std::string_view::npos) end = script.size();
    std::string_view line = script.substr(start, end - start);
    start = end + 1;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    out += ServeLine(line);
    out += '\n';
  }
  return out;
}

Status ExplorationService::SubmitExpand(const ExpandRequest& request,
                                        std::shared_ptr<ProgressSink> sink) {
  SMARTDD_CHECK(sink != nullptr);
  // The task re-resolves the session when a scheduler worker runs it; if
  // the session was closed or evicted meanwhile, the sink hears NotFound.
  return registry_.SubmitAsync(request.session, [this, request, sink]() {
    Response response = Execute(Request(request), sink.get());
    sink->OnDone(response);
    return response.status;
  });
}

}  // namespace smartdd::api
