#include "api/service.h"

#include <algorithm>
#include <utility>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace smartdd::api {

namespace {

Response ErrorResponse(Status status) {
  Response r;
  r.status = std::move(status);
  return r;
}

struct DegradeCounters {
  Counter& deadline_exceeded;
  Counter& partial_responses;
};

DegradeCounters& Degrades() {
  static DegradeCounters* counters = new DegradeCounters{
      MetricsRegistry::Default().GetCounter(
          "smartdd_deadline_exceeded_total",
          "Requests whose deadline fired before the work completed"),
      MetricsRegistry::Default().GetCounter(
          "smartdd_partial_responses_total",
          "Degraded responses shipped with a partial tree after a deadline"),
  };
  return *counters;
}

}  // namespace

ExplorationService::ExplorationService(ServiceOptions options)
    : default_num_shards_(std::max<size_t>(1, options.num_shards)),
      live_snapshot_every_rows_(options.live_snapshot_every_rows),
      live_snapshot_every_ms_(options.live_snapshot_every_ms),
      live_fsync_every_records_(options.live_fsync_every_records),
      clock_ms_(options.clock_ms),
      cache_([&options]() {
        cache::ExpansionCacheOptions c;
        c.max_bytes = options.cache_max_bytes;
        c.shards = options.cache_shards;
        return c;
      }()),
      registry_([this, &options]() {
        SessionRegistry::Options r;
        r.max_sessions = options.max_sessions;
        r.idle_ttl_ms = options.idle_ttl_ms;
        r.clock_ms = std::move(options.clock_ms);
        r.token_seed = options.token_seed;
        r.on_evict = [this](uint64_t token) { CleanupSession(token); };
        return r;
      }()) {}

Status ExplorationService::AddEngine(std::string name,
                                     ExplorationEngine* engine) {
  SMARTDD_CHECK(engine != nullptr);
  std::lock_guard<std::mutex> lock(engines_mu_);
  if (engines_.count(name) != 0 || live_datasets_.count(name) != 0) {
    return Status::InvalidArgument(
        StrFormat("dataset '%s' is already registered", name.c_str()));
  }
  if (engines_.empty() && live_datasets_.empty()) default_dataset_ = name;
  engines_.emplace(std::move(name), engine);
  return Status::OK();
}

Status ExplorationService::AddEngine(std::string name, ShardedEngine* engine) {
  SMARTDD_CHECK(engine != nullptr);
  return AddEngine(std::move(name), &engine->front());
}

Status ExplorationService::AddShardedTable(std::string name,
                                           const Table& table,
                                           const WeightFunction& weight,
                                           size_t num_shards) {
  ShardedEngineOptions options;
  options.num_shards = num_shards != 0 ? num_shards : default_num_shards_;
  auto engine = ShardedEngine::Create(table, weight, std::move(options));
  SMARTDD_RETURN_IF_ERROR(engine.status());
  SMARTDD_RETURN_IF_ERROR(AddEngine(std::move(name), engine->get()));
  std::lock_guard<std::mutex> lock(engines_mu_);
  owned_engines_.push_back(std::move(engine).value());
  return Status::OK();
}

ExplorationEngine* ExplorationService::FindEngine(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(engines_mu_);
  const std::string& name = dataset.empty() ? default_dataset_ : dataset;
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second;
}

ExplorationService::LiveDataset* ExplorationService::FindLiveDataset(
    const std::string& dataset, std::string* resolved_name,
    bool* known_static) {
  std::lock_guard<std::mutex> lock(engines_mu_);
  const std::string& name = dataset.empty() ? default_dataset_ : dataset;
  if (resolved_name != nullptr) *resolved_name = name;
  if (known_static != nullptr) *known_static = engines_.count(name) != 0;
  auto it = live_datasets_.find(name);
  return it == live_datasets_.end() ? nullptr : it->second.get();
}

live::LiveTable* ExplorationService::FindLiveTable(const std::string& name) {
  LiveDataset* ds = FindLiveDataset(name, nullptr, nullptr);
  return ds == nullptr ? nullptr : ds->table.get();
}

Status ExplorationService::AddLiveTable(std::string name, Table base,
                                        const WeightFunction& weight,
                                        const std::string& wal_path,
                                        size_t num_shards) {
  live::LiveTableOptions lopts;
  lopts.wal_path = wal_path;
  lopts.snapshot_every_rows = live_snapshot_every_rows_;
  lopts.snapshot_every_ms = live_snapshot_every_ms_;
  lopts.fsync_every_records = live_fsync_every_records_;
  if (clock_ms_) {
    auto clock = clock_ms_;
    lopts.clock_ms = [clock]() { return static_cast<int64_t>(clock()); };
  }
  // While the WAL replays, /readyz answers `replaying`: the node is alive
  // but its snapshots are still being rebuilt, so keep traffic off it.
  if (!wal_path.empty()) replaying_.fetch_add(1, std::memory_order_acq_rel);
  auto table = live::LiveTable::Create(std::move(base), std::move(lopts));
  if (!wal_path.empty()) replaying_.fetch_sub(1, std::memory_order_acq_rel);
  SMARTDD_RETURN_IF_ERROR(table.status());

  auto ds = std::make_unique<LiveDataset>();
  ds->table = std::move(table).value();
  ds->weight = &weight;
  ds->num_shards = num_shards != 0 ? num_shards : default_num_shards_;

  std::lock_guard<std::mutex> lock(engines_mu_);
  if (engines_.count(name) != 0 || live_datasets_.count(name) != 0) {
    return Status::InvalidArgument(
        StrFormat("dataset '%s' is already registered", name.c_str()));
  }
  if (engines_.empty() && live_datasets_.empty()) default_dataset_ = name;
  live_datasets_.emplace(std::move(name), std::move(ds));
  return Status::OK();
}

void ExplorationService::GcVersionEnginesLocked(LiveDataset& ds) {
  const uint64_t latest = ds.table->Info().version;
  ds.engines.erase(
      std::remove_if(
          ds.engines.begin(), ds.engines.end(),
          [latest](const std::shared_ptr<VersionEngine>& ve) {
            // Retire a version only when it is superseded, no session
            // explores it, and no in-flight open still holds a reference
            // (use_count > 1 means an Open copied the pointer but has not
            // registered its session yet — sparing it is always safe).
            return ve->snapshot->version != latest &&
                   ve->engine->front().num_sessions() == 0 &&
                   ve.use_count() == 1;
          }),
      ds.engines.end());
}

Result<std::shared_ptr<ExplorationService::VersionEngine>>
ExplorationService::LatestVersionEngine(LiveDataset& ds) {
  std::shared_ptr<const live::TableSnapshot> snapshot = ds.table->Latest();
  std::lock_guard<std::mutex> lock(ds.mu);
  for (const auto& ve : ds.engines) {
    if (ve->snapshot->version == snapshot->version) return ve;
  }
  auto ve = std::make_shared<VersionEngine>();
  ve->snapshot = std::move(snapshot);
  ShardedEngineOptions opts;
  opts.num_shards = ds.num_shards;
  auto engine = ShardedEngine::Create(ve->snapshot->table, *ds.weight,
                                      std::move(opts));
  SMARTDD_RETURN_IF_ERROR(engine.status());
  ve->engine = std::move(engine).value();
  ds.engines.push_back(ve);
  GcVersionEnginesLocked(ds);
  return ve;
}

void ExplorationService::CleanupSession(uint64_t token) {
  LiveDataset* live = nullptr;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = session_meta_.find(token);
    if (it == session_meta_.end()) return;
    live = it->second.live;
    session_meta_.erase(it);
  }
  if (live != nullptr) {
    std::lock_guard<std::mutex> lock(live->mu);
    GcVersionEnginesLocked(*live);
  }
}

Response ExplorationService::Open(const OpenRequest& request) {
  std::string resolved;
  LiveDataset* live = FindLiveDataset(request.dataset, &resolved, nullptr);
  ExplorationEngine* engine = nullptr;
  std::shared_ptr<VersionEngine> version_engine;
  uint64_t version = 0;
  if (live != nullptr) {
    auto ve = LatestVersionEngine(*live);
    if (!ve.ok()) return ErrorResponse(ve.status());
    version_engine = std::move(ve).value();
    engine = &version_engine->engine->front();
    version = version_engine->snapshot->version;
  } else {
    engine = FindEngine(request.dataset);
  }
  if (engine == nullptr) {
    return ErrorResponse(Status::NotFound(
        request.dataset.empty()
            ? std::string("service has no engines registered")
            : StrFormat("unknown dataset '%s'", request.dataset.c_str())));
  }

  SessionOptions options;
  options.k = request.k;
  options.max_weight = request.max_weight;
  if (!request.measure.empty()) options.measure_column = request.measure;
  options.num_threads = request.num_threads;
  if (request.prefetch) options.prefetch = Prefetcher::Mode::kBackground;

  auto session = engine->NewSession(std::move(options));
  if (!session.ok()) return ErrorResponse(session.status());

  // Snapshot before the registry takes ownership: the root-only initial
  // tree ships in the open response, saving the client a show round-trip.
  TreeSnapshot tree = SnapshotOf(*session);
  auto token = registry_.Insert(std::move(session).value());
  if (!token.ok()) return ErrorResponse(token.status());

  // Record the session's cache identity under the registry entry lock: if
  // the brand-new session was already LRU-evicted by a concurrent open,
  // With reports NotFound and we record nothing (on_evict already ran).
  (void)registry_.With(*token, [&](ExplorationSession&) {
    std::lock_guard<std::mutex> lock(meta_mu_);
    SessionMeta& meta = session_meta_[*token];
    meta.dataset = resolved;
    meta.version = version;
    meta.live = live;
    return Status::OK();
  });

  Response r;
  r.session = *token;
  r.tree = std::move(tree);
  return r;
}

Response ExplorationService::WithSnapshot(
    uint64_t token, const std::function<Status(ExplorationSession&)>& fn) {
  Response r;
  r.status = registry_.With(token, [&](ExplorationSession& session) {
    Status s = fn(session);
    if (s.code() == StatusCode::kDeadlineExceeded) {
      // Degrade, don't fail: the session kept the work that finished in
      // budget, so ship that tree with the error status and the partial
      // marker. The registry call itself still reports the error code.
      Degrades().deadline_exceeded.Inc();
      Degrades().partial_responses.Inc();
      r.partial = true;
      r.session = token;
      r.tree = SnapshotOf(session);
      return s;
    }
    SMARTDD_RETURN_IF_ERROR(s);
    r.tree = SnapshotOf(session);
    return Status::OK();
  });
  if (r.status.ok()) r.session = token;
  return r;
}

bool ExplorationService::BuildCacheKey(const ExpandRequest& request,
                                       const ExplorationSession& session,
                                       std::string* key) {
  if (!cache_.enabled()) return false;
  // Sampling engines are excluded: their masses are estimates whose bytes
  // depend on sample-store state, so a memoized replay could disagree with
  // what a cold run would produce today.
  if (session.sampler() != nullptr) return false;
  std::string dataset;
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = session_meta_.find(request.session);
    if (it == session_meta_.end()) return false;
    dataset = it->second.dataset;
    version = it->second.version;
  }
  if (request.node < 0 ||
      request.node >= static_cast<int>(session.num_nodes()) ||
      !session.node(request.node).alive) {
    return false;  // invalid node: let the cold path produce the error
  }
  // An explicit deadline budget always runs cold. A cold run may degrade
  // into DEADLINE_EXCEEDED + a partial tree; an instant replay never
  // would, so serving hits here would make the response depend on cache
  // state — the one thing the byte-identity contract forbids.
  if (request.deadline_ms > 0) return false;
  const SessionOptions& opts = session.options();
  // The dataset name pins the weight function (fixed at registration), and
  // the version pins the rows; everything else that shapes the result is
  // spelled out. Execution knobs (threads/kernel/shards) are deliberately
  // absent — the determinism contract makes them byte-irrelevant.
  std::string k = StrFormat(
      "%s|v%llu|k=%zu|mw=%.17g|m=%s|p=%d|r=", dataset.c_str(),
      static_cast<unsigned long long>(version), opts.k, opts.max_weight,
      opts.measure_column ? opts.measure_column->c_str() : "",
      static_cast<int>(opts.pruning));
  for (uint32_t code : session.node(request.node).rule.values()) {
    k += StrFormat("%08x,", code);
  }
  if (request.star_column) {
    k += StrFormat("|s%zu", *request.star_column);
  } else {
    k += "|s-";
  }
  *key = std::move(k);
  return true;
}

Response ExplorationService::Expand(const ExpandRequest& request,
                                    ProgressSink* sink) {
  return WithSnapshot(request.session, [&](ExplorationSession& session) {
    ExplorationSession::ExpandStepCallback on_step;
    if (sink != nullptr) {
      const Table* proto = &session.prototype();
      const size_t k = session.options().k;
      on_step = [sink, proto, k](const ScoredRule& rule, size_t step,
                                 bool exact) {
        return sink->OnStep(StepNodeView(rule, *proto, exact), step, k);
      };
    }
    // The clock starts when the request begins executing, not when it was
    // queued: SubmitExpand riders get their full budget from here.
    Deadline deadline;
    if (request.deadline_ms > 0) {
      deadline = Deadline::AfterMillis(request.deadline_ms);
    }

    std::string key;
    if (BuildCacheKey(request, session, &key)) {
      bool leader = false;
      auto hit = cache_.LookupOrBegin(key, &leader);
      if (hit != nullptr) {
        // Hit: replay the memoized expansion. Streams the same steps and
        // mutates the tree identically to the cold run (deadline-budgeted
        // requests never reach here — BuildCacheKey keeps them cold).
        return session
            .ApplyExpansion(request.node, hit->steps, hit->rules,
                            hit->base_mass, on_step)
            .status();
      }
      // Miss, and this request holds the single-flight leadership: run the
      // greedy search cold, recording each streamed step. The final child
      // list is read back off the tree afterwards — the greedy stream and
      // the installed children genuinely differ (the cold path weight-sorts
      // and exactly re-scores the list after the loop).
      auto recorded = std::make_shared<cache::CachedExpansion>();
      bool cancelled = false;
      ExplorationSession::ExpandStepCallback recording =
          [&recorded, &cancelled, &on_step](const ScoredRule& rule,
                                            size_t step, bool exact) {
            recorded->steps.push_back(rule);
            if (on_step && !on_step(rule, step, exact)) {
              cancelled = true;
              return false;
            }
            return true;
          };
      Result<std::vector<int>> children =
          request.star_column
              ? session.ExpandStar(request.node, *request.star_column,
                                   recording, deadline)
              : session.Expand(request.node, recording, deadline);
      // Memoize only complete, successful expansions: a partial
      // (deadline-degraded) or sink-cancelled run is a prefix, and serving
      // a prefix as the full answer would break byte-identity.
      if (children.ok() && !cancelled) {
        for (int child : *children) {
          const ExplorationNode& n = session.node(child);
          ScoredRule sr;
          sr.rule = n.rule;
          sr.weight = n.weight;
          sr.mass = n.mass;
          sr.marginal_mass = n.marginal_mass;
          recorded->rules.push_back(std::move(sr));
        }
        recorded->base_mass = session.node(request.node).mass;
        cache_.Complete(key, std::move(recorded));
      } else {
        cache_.Abandon(key);
      }
      return children.status();
    }

    Result<std::vector<int>> children =
        request.star_column
            ? session.ExpandStar(request.node, *request.star_column, on_step,
                                 deadline)
            : session.Expand(request.node, on_step, deadline);
    return children.status();
  });
}

Response ExplorationService::Collapse(const CollapseRequest& request) {
  return WithSnapshot(request.session, [&](ExplorationSession& session) {
    return session.Collapse(request.node);
  });
}

Response ExplorationService::Show(const ShowRequest& request) {
  return WithSnapshot(request.session,
                      [](ExplorationSession&) { return Status::OK(); });
}

Response ExplorationService::Refresh(const RefreshRequest& request) {
  return WithSnapshot(request.session, [](ExplorationSession& session) {
    return session.RefreshExactCounts();
  });
}

Response ExplorationService::CloseSession(const CloseRequest& request) {
  Response r;
  r.status = registry_.Close(request.session);
  return r;
}

namespace {

TableInfoView MakeInfoView(const std::string& dataset,
                           const live::LiveTableInfo& info) {
  TableInfoView view;
  view.dataset = dataset;
  view.version = info.version;
  view.rows = info.rows;
  view.pending_rows = info.pending_rows;
  view.wal_bytes = info.wal_bytes;
  return view;
}

}  // namespace

Response ExplorationService::Append(const AppendRequest& request) {
  std::string resolved;
  bool known_static = false;
  LiveDataset* live = FindLiveDataset(request.dataset, &resolved,
                                      &known_static);
  if (live == nullptr) {
    if (known_static) {
      return ErrorResponse(Status::InvalidArgument(StrFormat(
          "dataset '%s' is static (registered without a live table); "
          "appends are not accepted",
          resolved.c_str())));
    }
    return ErrorResponse(Status::NotFound(
        request.dataset.empty()
            ? std::string("service has no datasets registered")
            : StrFormat("unknown dataset '%s'", request.dataset.c_str())));
  }
  const uint64_t version_before = live->table->Info().version;
  Status s = live->table->Append(request.row);
  if (!s.ok()) return ErrorResponse(std::move(s));
  live::LiveTableInfo info = live->table->Info();
  if (info.version != version_before) {
    // A new snapshot version was published. Exact engines need nothing
    // (new opens get a fresh version engine; old sessions keep theirs),
    // but any sampling backend fronting this dataset must drop its sample
    // store — its reservoirs describe the previous version's rows.
    std::lock_guard<std::mutex> lock(live->mu);
    for (const auto& ve : live->engines) {
      SampleHandler* sampler = ve->engine->front().sampler();
      if (sampler != nullptr) sampler->BumpDataVersion(info.version);
    }
  }
  Response r;
  r.table = MakeInfoView(resolved, info);
  return r;
}

Response ExplorationService::TableInfo(const TableInfoRequest& request) {
  std::string resolved;
  bool known_static = false;
  LiveDataset* live = FindLiveDataset(request.dataset, &resolved,
                                      &known_static);
  if (live != nullptr) {
    Response r;
    r.table = MakeInfoView(resolved, live->table->Info());
    return r;
  }
  if (known_static) {
    // Static datasets report version 0 (they never version) and no WAL.
    ExplorationEngine* engine = FindEngine(request.dataset);
    SMARTDD_CHECK(engine != nullptr);
    TableInfoView view;
    view.dataset = resolved;
    view.rows = engine->table() != nullptr ? engine->table()->num_rows()
                                           : engine->source()->num_rows();
    Response r;
    r.table = std::move(view);
    return r;
  }
  return ErrorResponse(Status::NotFound(
      request.dataset.empty()
          ? std::string("service has no datasets registered")
          : StrFormat("unknown dataset '%s'", request.dataset.c_str())));
}

Response ExplorationService::Execute(const Request& request,
                                     ProgressSink* sink) {
  return std::visit(
      [&](const auto& req) -> Response {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, OpenRequest>) {
          return Open(req);
        } else if constexpr (std::is_same_v<T, ExpandRequest>) {
          return Expand(req, sink);
        } else if constexpr (std::is_same_v<T, CollapseRequest>) {
          return Collapse(req);
        } else if constexpr (std::is_same_v<T, ShowRequest>) {
          return Show(req);
        } else if constexpr (std::is_same_v<T, RefreshRequest>) {
          return Refresh(req);
        } else if constexpr (std::is_same_v<T, CloseRequest>) {
          return CloseSession(req);
        } else if constexpr (std::is_same_v<T, AppendRequest>) {
          return Append(req);
        } else if constexpr (std::is_same_v<T, TableInfoRequest>) {
          return TableInfo(req);
        } else {
          return Response{};  // ping
        }
      },
      request);
}

std::string ExplorationService::ServeLine(std::string_view line) {
  auto request = ParseRequest(line);
  if (!request.ok()) return EncodeResponse(ErrorResponse(request.status()));
  return EncodeResponse(Execute(*request));
}

std::string ExplorationService::ServeScript(std::string_view script) {
  std::string out;
  size_t start = 0;
  while (start <= script.size()) {
    size_t end = script.find('\n', start);
    if (end == std::string_view::npos) end = script.size();
    std::string_view line = script.substr(start, end - start);
    start = end + 1;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    out += ServeLine(line);
    out += '\n';
  }
  return out;
}

Status ExplorationService::SubmitExpand(const ExpandRequest& request,
                                        std::shared_ptr<ProgressSink> sink) {
  SMARTDD_CHECK(sink != nullptr);
  // The task re-resolves the session when a scheduler worker runs it; if
  // the session was closed or evicted meanwhile, the sink hears NotFound.
  return registry_.SubmitAsync(request.session, [this, request, sink]() {
    Response response = Execute(Request(request), sink.get());
    sink->OnDone(response);
    return response.status;
  });
}

}  // namespace smartdd::api
