#include "api/codec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/string_util.h"

namespace smartdd::api {

namespace {

/// Whitespace-splits a line into tokens (no empty tokens).
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Sanitized echo of an untrusted token for error messages: truncated to a
/// fixed preview length and with non-printable bytes replaced, so garbage
/// from a socket peer cannot balloon a response or corrupt a terminal.
std::string Preview(std::string_view text) {
  constexpr size_t kPreviewBytes = 48;
  std::string out;
  out.reserve(std::min(text.size(), kPreviewBytes) + 3);
  for (size_t i = 0; i < text.size() && i < kPreviewBytes; ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    out += (c < 0x20 || c == 0x7f) ? '?' : static_cast<char>(c);
  }
  if (text.size() > kPreviewBytes) out += "...";
  return out;
}

Result<size_t> ParseSize(std::string_view text, const char* what) {
  auto parsed = ParseInt64(text);
  if (!parsed.ok() || *parsed < 0) {
    return Status::InvalidArgument(
        StrFormat("%s: '%s' is not a non-negative integer", what,
                  Preview(text).c_str()));
  }
  return static_cast<size_t>(*parsed);
}

Result<int> ParseNodeId(std::string_view text) {
  auto parsed = ParseInt64(text);
  if (!parsed.ok() || *parsed < std::numeric_limits<int>::min() ||
      *parsed > std::numeric_limits<int>::max()) {
    // Out-of-range values must fail here, not wrap: 2^32 truncated to int
    // would silently address node 0.
    return Status::InvalidArgument(StrFormat(
        "node id '%s' is not an integer", Preview(text).c_str()));
  }
  return static_cast<int>(*parsed);
}

Result<uint64_t> SessionArg(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("%s requires a session token",
                  Preview(tokens[0]).c_str()));
  }
  return ParseToken(tokens[1]);
}

Status ArityError(const std::vector<std::string>& tokens, const char* usage) {
  return Status::InvalidArgument(
      StrFormat("%s: expected '%s'", Preview(tokens[0]).c_str(), usage));
}

/// Consumes a trailing `deadline_ms=<ms>` token of an expand/star request
/// if present: fills request->deadline_ms and pops the token so arity
/// checks below see only the positional arguments.
Status TakeDeadlineArg(std::vector<std::string>* tokens,
                       ExpandRequest* request) {
  if (tokens->empty()) return Status::OK();
  const std::string& last = tokens->back();
  constexpr std::string_view kKey = "deadline_ms=";
  if (last.size() <= kKey.size() || last.compare(0, kKey.size(), kKey) != 0) {
    return Status::OK();
  }
  std::string value = last.substr(kKey.size());
  auto ms = ParseDouble(value);
  if (!ms.ok() || !std::isfinite(*ms) || *ms < 0) {
    return Status::InvalidArgument(
        StrFormat("%s: deadline_ms '%s' is not a non-negative number",
                  Preview((*tokens)[0]).c_str(), Preview(value).c_str()));
  }
  request->deadline_ms = *ms;
  tokens->pop_back();
  return Status::OK();
}

Result<Request> ParseOpen(const std::vector<std::string>& tokens) {
  OpenRequest open;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& arg = tokens[i];
    size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("open: malformed argument '%s' (expected key=value)",
                    Preview(arg).c_str()));
    }
    std::string key = arg.substr(0, eq);
    std::string value = arg.substr(eq + 1);
    if (key == "dataset") {
      open.dataset = value;
    } else if (key == "k") {
      SMARTDD_ASSIGN_OR_RETURN(open.k, ParseSize(value, "open: k"));
    } else if (key == "measure") {
      open.measure = value;
    } else if (key == "threads") {
      SMARTDD_ASSIGN_OR_RETURN(open.num_threads,
                               ParseSize(value, "open: threads"));
    } else if (key == "mw") {
      auto mw = ParseDouble(value);
      if (!mw.ok()) {
        return Status::InvalidArgument(
            StrFormat("open: mw '%s' is not a number",
                      Preview(value).c_str()));
      }
      open.max_weight = *mw;
    } else if (key == "prefetch") {
      if (value == "on") {
        open.prefetch = true;
      } else if (value == "off") {
        open.prefetch = false;
      } else {
        return Status::InvalidArgument(StrFormat(
            "open: prefetch must be 'on' or 'off', got '%s'",
            Preview(value).c_str()));
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("open: unknown argument '%s'", Preview(key).c_str()));
    }
  }
  return Request(std::move(open));
}

/// JSON string escaping (control chars, quote, backslash).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Full-precision, locale-independent double rendering: the byte-identity
/// contract depends on every encoder producing the same bytes for the same
/// bits. Integral values render without an exponent or trailing ".0".
std::string Number(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string FormatToken(uint64_t token) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(token));
  return buf;
}

Result<uint64_t> ParseToken(std::string_view text) {
  if (text.empty() || text.size() > 16) {
    return Status::InvalidArgument(
        StrFormat("'%s' is not a session token", Preview(text).c_str()));
  }
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::InvalidArgument(
          StrFormat("'%s' is not a session token (lowercase hex expected)",
                    Preview(text).c_str()));
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

Result<Request> ParseRequest(std::string_view line, size_t max_line_bytes) {
  if (line.size() > max_line_bytes) {
    // Reject before tokenizing: an unbounded line from a socket peer must
    // cost O(limit), not O(line), and must never be echoed back whole.
    return Status::InvalidArgument(
        StrFormat("request line of %zu bytes exceeds the %zu-byte limit",
                  line.size(), max_line_bytes));
  }
  std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::InvalidArgument("empty request");
  }
  std::vector<std::string> tokens = Tokenize(trimmed);
  const std::string& cmd = tokens[0];

  if (cmd == "open") return ParseOpen(tokens);
  if (cmd == "ping") {
    if (tokens.size() != 1) return ArityError(tokens, "ping");
    return Request(PingRequest{});
  }
  if (cmd == "expand") {
    ExpandRequest req;
    SMARTDD_RETURN_IF_ERROR(TakeDeadlineArg(&tokens, &req));
    if (tokens.size() != 3) {
      return ArityError(tokens, "expand <session> <node> [deadline_ms=<ms>]");
    }
    SMARTDD_ASSIGN_OR_RETURN(req.session, SessionArg(tokens));
    SMARTDD_ASSIGN_OR_RETURN(req.node, ParseNodeId(tokens[2]));
    return Request(std::move(req));
  }
  if (cmd == "star") {
    ExpandRequest req;
    SMARTDD_RETURN_IF_ERROR(TakeDeadlineArg(&tokens, &req));
    if (tokens.size() != 4) {
      return ArityError(tokens,
                        "star <session> <node> <column> [deadline_ms=<ms>]");
    }
    SMARTDD_ASSIGN_OR_RETURN(req.session, SessionArg(tokens));
    SMARTDD_ASSIGN_OR_RETURN(req.node, ParseNodeId(tokens[2]));
    SMARTDD_ASSIGN_OR_RETURN(size_t column,
                             ParseSize(tokens[3], "star: column"));
    req.star_column = column;
    return Request(std::move(req));
  }
  if (cmd == "collapse") {
    if (tokens.size() != 3) {
      return ArityError(tokens, "collapse <session> <node>");
    }
    CollapseRequest req;
    SMARTDD_ASSIGN_OR_RETURN(req.session, SessionArg(tokens));
    SMARTDD_ASSIGN_OR_RETURN(req.node, ParseNodeId(tokens[2]));
    return Request(std::move(req));
  }
  if (cmd == "append") {
    // Raw-remainder parse: everything after the command word (and the
    // optional leading dataset=<name>) is the CSV row verbatim, because
    // cells may contain spaces. Skip the token machinery entirely.
    AppendRequest req;
    std::string_view rest = Trim(trimmed.substr(cmd.size()));
    constexpr std::string_view kDataset = "dataset=";
    if (rest.compare(0, kDataset.size(), kDataset) == 0) {
      size_t end = rest.find_first_of(" \t");
      if (end == std::string_view::npos) {
        return ArityError(tokens, "append [dataset=<name>] <csv-row>");
      }
      req.dataset = std::string(rest.substr(kDataset.size(),
                                            end - kDataset.size()));
      rest = Trim(rest.substr(end));
    }
    if (rest.empty()) {
      return ArityError(tokens, "append [dataset=<name>] <csv-row>");
    }
    req.row = std::string(rest);
    return Request(std::move(req));
  }
  if (cmd == "tableinfo") {
    TableInfoRequest req;
    if (tokens.size() > 2) {
      return ArityError(tokens, "tableinfo [dataset=<name>]");
    }
    if (tokens.size() == 2) {
      constexpr std::string_view kDataset = "dataset=";
      if (tokens[1].compare(0, kDataset.size(), kDataset) != 0) {
        return ArityError(tokens, "tableinfo [dataset=<name>]");
      }
      req.dataset = tokens[1].substr(kDataset.size());
    }
    return Request(std::move(req));
  }
  if (cmd == "show" || cmd == "exact" || cmd == "close") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("%s: expected '%s <session>'", cmd.c_str(),
                    cmd.c_str()));
    }
    uint64_t session;
    SMARTDD_ASSIGN_OR_RETURN(session, SessionArg(tokens));
    if (cmd == "show") return Request(ShowRequest{session});
    if (cmd == "exact") return Request(RefreshRequest{session});
    return Request(CloseRequest{session});
  }
  return Status::InvalidArgument(
      StrFormat("unknown command '%s' (try: open expand star collapse show "
                "exact close append tableinfo ping)",
                Preview(cmd).c_str()));
}

/// Encodes the live-table payload of append/tableinfo responses.
std::string EncodeTableInfo(const TableInfoView& info) {
  std::string out = "{";
  out += "\"dataset\":\"" + Escape(info.dataset) + "\",";
  out += StrFormat("\"version\":%llu,\"rows\":%llu,\"pending_rows\":%llu,"
                   "\"wal_bytes\":%llu",
                   static_cast<unsigned long long>(info.version),
                   static_cast<unsigned long long>(info.rows),
                   static_cast<unsigned long long>(info.pending_rows),
                   static_cast<unsigned long long>(info.wal_bytes));
  out += "}";
  return out;
}

std::string EncodeNode(const NodeView& node) {
  std::string out = "{";
  out += StrFormat("\"id\":%d,", node.id);
  out += "\"label\":\"" + Escape(node.label) + "\",";
  out += "\"cells\":[";
  for (size_t i = 0; i < node.cells.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + Escape(node.cells[i]) + "\"";
  }
  out += "],";
  out += "\"mass\":" + Number(node.mass) + ",";
  out += "\"marginal_mass\":" + Number(node.marginal_mass) + ",";
  out += "\"weight\":" + Number(node.weight) + ",";
  out += "\"ci\":" + Number(node.ci_half_width) + ",";
  out += node.exact ? "\"exact\":true," : "\"exact\":false,";
  out += StrFormat("\"parent\":%d,\"depth\":%d,\"children\":[", node.parent,
                   node.depth);
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%d", node.children[i]);
  }
  out += "]}";
  return out;
}

std::string EncodeTree(const TreeSnapshot& tree) {
  std::string out = "{\"columns\":[";
  for (size_t i = 0; i < tree.columns.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + Escape(tree.columns[i]) + "\"";
  }
  out += "],\"mass_label\":\"" + Escape(tree.mass_label) + "\",";
  out += "\"nodes\":[";
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    if (i > 0) out += ",";
    out += EncodeNode(tree.nodes[i]);
  }
  out += "]}";
  return out;
}

std::string EncodeResponse(const Response& response) {
  if (!response.status.ok()) {
    std::string out = StrFormat(
        "{\"ok\":false,\"error\":{\"code\":\"%s\",\"message\":\"%s\"}",
        ErrorCodeName(response.status.code()),
        Escape(response.status.message()).c_str());
    // Degraded results ride the error envelope: a deadline-exceeded
    // response still carries the session and the partial tree, flagged so
    // clients can render it and retry. Absent on ordinary errors, so the
    // plain error shape is byte-identical to older encoders.
    if (response.partial) out += ",\"partial\":true";
    if (response.session) {
      out += ",\"session\":\"" + FormatToken(*response.session) + "\"";
    }
    if (response.tree) {
      out += ",\"tree\":" + EncodeTree(*response.tree);
    }
    out += "}";
    return out;
  }
  std::string out = "{\"ok\":true";
  if (response.session) {
    out += ",\"session\":\"" + FormatToken(*response.session) + "\"";
  }
  if (response.tree) {
    out += ",\"tree\":" + EncodeTree(*response.tree);
  }
  if (response.table) {
    out += ",\"table\":" + EncodeTableInfo(*response.table);
  }
  out += "}";
  return out;
}

}  // namespace smartdd::api
