#include "api/wire_service.h"

#include <utility>

#include "api/codec.h"
#include "api/service.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace smartdd::api {

namespace {

/// ProgressSink façade over a WireObserver: encodes each step/completion
/// once, here, so every transport sees the same bytes.
class WireSinkAdapter : public ProgressSink {
 public:
  explicit WireSinkAdapter(std::shared_ptr<WireObserver> observer)
      : observer_(std::move(observer)) {}

  bool OnStep(const NodeView& rule, size_t step, size_t k) override {
    (void)k;
    return observer_->OnStepJson(EncodeNode(rule), step);
  }

  void OnDone(const Response& response) override {
    observer_->OnDoneWire(ToWireResponse(response));
  }

 private:
  std::shared_ptr<WireObserver> observer_;
};

}  // namespace

WireResponse ToWireResponse(const Response& response) {
  WireResponse wire;
  wire.status = response.status;
  wire.partial = response.partial;
  wire.has_tree = response.tree.has_value();
  wire.json = EncodeResponse(response);
  return wire;
}

std::string EncodeExpandLine(const ExpandRequest& request) {
  std::string line = request.star_column.has_value() ? "star " : "expand ";
  line += FormatToken(request.session);
  line += StrFormat(" %d", request.node);
  if (request.star_column.has_value()) {
    line += StrFormat(" %zu", *request.star_column);
  }
  if (request.deadline_ms > 0) {
    // %.17g round-trips any double through ParseDouble, so the re-encoded
    // line parses back to the identical budget.
    line += StrFormat(" deadline_ms=%.17g", request.deadline_ms);
  }
  return line;
}

LocalWireService::LocalWireService(ExplorationService* service)
    : service_(service) {
  SMARTDD_CHECK(service_ != nullptr);
}

WireResponse LocalWireService::ServeWire(std::string_view line) {
  auto request = ParseRequest(line);
  if (!request.ok()) {
    Response response;
    response.status = request.status();
    return ToWireResponse(response);
  }
  return ToWireResponse(service_->Execute(*request));
}

Status LocalWireService::SubmitExpandWire(
    const ExpandRequest& request, std::shared_ptr<WireObserver> observer) {
  SMARTDD_CHECK(observer != nullptr);
  return service_->SubmitExpand(request,
                                std::make_shared<WireSinkAdapter>(
                                    std::move(observer)));
}

bool LocalWireService::Ready() const { return service_->num_datasets() > 0; }

bool LocalWireService::Replaying() const { return service_->replaying(); }

std::optional<uint64_t> LocalWireService::last_sweep_age_ms() const {
  return service_->last_sweep_age_ms();
}

}  // namespace smartdd::api
