#!/usr/bin/env bash
# Live-table smoke: boot the example server with a WAL-backed live table,
# open a session and expand it, then append rows over HTTP. The already-open
# session must keep exploring its pinned version byte-for-byte while
# /v1/tableinfo walks the published versions and a fresh session sees the
# appended rows. Finally restart the server on the same WAL and assert the
# appends were recovered (published as version 2 over the base table).
#
# Usage: scripts/live_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BIN="$BUILD/example_interactive_cli"
[[ -x "$BIN" ]] || { echo "live smoke: $BIN is not built"; exit 1; }

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

WAL="$WORK/live.wal"

start_server() {
  : >"$WORK/server.log"
  "$BIN" --http=0 --live="$WAL" >"$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's#^listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$WORK/server.log")
    [[ -n "$PORT" ]] && break
    sleep 0.1
  done
  if [[ -z "$PORT" ]]; then
    echo "live smoke: server did not start"; cat "$WORK/server.log"; exit 1
  fi
  BASE="http://127.0.0.1:$PORT"
}

stop_server() {
  kill -TERM "$SERVER_PID"
  local exit_code=0
  wait "$SERVER_PID" || exit_code=$?
  SERVER_PID=""
  if [[ "$exit_code" -ne 0 ]]; then
    echo "live smoke: server exited $exit_code on SIGTERM"
    cat "$WORK/server.log"; exit 1
  fi
}

# `check NAME FILE NEEDLE...` — every needle must appear in FILE.
check() {
  local name="$1" file="$2"; shift 2
  for needle in "$@"; do
    if ! grep -qF "$needle" "$file"; then
      echo "live smoke: $name missing $needle"; cat "$file"; exit 1
    fi
  done
}

start_server
CURL=(curl -sS --max-time 60)

# Version walk, step 0: the base retail table is snapshot v1.
"${CURL[@]}" "$BASE/v1/tableinfo" >"$WORK/info1"
check "tableinfo v1" "$WORK/info1" '"version":1' '"rows":6000'

# A session opened now pins v1. Expand the root and keep the tree bytes.
T1=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open" \
  | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')
[[ -n "$T1" ]] || { echo "live smoke: open failed"; exit 1; }
"${CURL[@]}" -X POST --data "$T1 0" "$BASE/v1/expand" >"$WORK/tree_before"
check "pinned expand" "$WORK/tree_before" '"ok":true' '"mass":6000'

# Appends publish new versions (the example binary snapshots every row):
# one row via /v1/append, two more via /v1/append/bulk.
"${CURL[@]}" -X POST --data 'Walmart,cookies,WA-1,42.5' "$BASE/v1/append" >"$WORK/append1"
check "append" "$WORK/append1" '"version":2' '"rows":6001'
printf 'Target,bicycles,NY-2,17\nCostco,comforters,MA-3,8.25\n' \
  | "${CURL[@]}" -X POST --data-binary @- "$BASE/v1/append/bulk" >"$WORK/append2"
check "bulk append" "$WORK/append2" '"version":4' '"rows":6003'
"${CURL[@]}" "$BASE/v1/tableinfo" >"$WORK/info4"
check "tableinfo v4" "$WORK/info4" '"version":4' '"rows":6003' '"pending_rows":0'

# The pre-append session must keep exploring v1, byte-for-byte: its tree is
# immune to every version published after it opened.
"${CURL[@]}" -X POST --data "$T1" "$BASE/v1/tree" >"$WORK/tree_after"
if ! diff "$WORK/tree_before" "$WORK/tree_after"; then
  echo "live smoke: pinned session drifted after appends"; exit 1
fi
"${CURL[@]}" -X POST --data "$T1" "$BASE/v1/close" >/dev/null

# A session opened now pins v4 and sees all three appended rows.
T2=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open" \
  | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')
[[ -n "$T2" ]] || { echo "live smoke: second open failed"; exit 1; }
"${CURL[@]}" -X POST --data "$T2" "$BASE/v1/tree" >"$WORK/tree_fresh"
check "fresh session" "$WORK/tree_fresh" '"mass":6003'
"${CURL[@]}" -X POST --data "$T2" "$BASE/v1/close" >/dev/null

# Crash-recovery half: restart on the same WAL. The three appended rows must
# replay into one recovered snapshot — version 2 over the base table, same
# 6003 rows, nothing pending.
stop_server
start_server
"${CURL[@]}" "$BASE/v1/tableinfo" >"$WORK/info_recovered"
check "recovered tableinfo" "$WORK/info_recovered" \
  '"version":2' '"rows":6003' '"pending_rows":0'
T3=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open" \
  | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')
[[ -n "$T3" ]] || { echo "live smoke: post-recovery open failed"; exit 1; }
"${CURL[@]}" -X POST --data "$T3" "$BASE/v1/tree" >"$WORK/tree_recovered"
check "recovered session" "$WORK/tree_recovered" '"mass":6003'
"${CURL[@]}" -X POST --data "$T3" "$BASE/v1/close" >/dev/null
stop_server

echo "live smoke: pinned session byte-stable across appends; version walk 1->4; WAL recovered 6003 rows as v2"
