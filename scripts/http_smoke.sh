#!/usr/bin/env bash
# HTTP smoke: boot the example server on an ephemeral port, replay a
# multi-session curl transcript (open/expand/SSE-stream/tree/collapse/
# close over two interleaved sessions), token-substitute, and diff against
# scripts/http_smoke.golden byte-for-byte. Then assert /metrics reports
# nonzero request counters and that SIGTERM produces a graceful exit 0.
#
# Usage: scripts/http_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BIN="$BUILD/example_interactive_cli"
[[ -x "$BIN" ]] || { echo "http smoke: $BIN is not built"; exit 1; }

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$BIN" --http=0 >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#^listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$WORK/server.log")
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "http smoke: server did not start"; cat "$WORK/server.log"; exit 1
fi
BASE="http://127.0.0.1:$PORT"
CURL=(curl -sS --max-time 60)

# The paper's retail walkthrough, as two interleaved HTTP sessions. Tokens
# are deterministic (fixed seed in the example binary), but the transcript
# still substitutes them so the golden is robust to seed changes.
T1=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open" | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')
T2=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open" | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')
T3=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open" | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')
[[ -n "$T1" && -n "$T2" && -n "$T3" && "$T1" != "$T2" ]] || { echo "http smoke: open failed"; exit 1; }

{
  "${CURL[@]}" "$BASE/healthz"
  "${CURL[@]}" -X POST --data "$T1 0" "$BASE/v1/expand"
  # Session 2 expands the root as a live SSE stream (GET query form): every
  # greedy step in order, then the final tree.
  "${CURL[@]}" -N "$BASE/v1/expand/stream?session=$T2&node=0"
  # Session 1 star-expands node 3 on column 1 as SSE (POST body form).
  "${CURL[@]}" -N -X POST --data "$T1 3 1" "$BASE/v1/expand/stream"
  "${CURL[@]}" -X POST --data "$T1" "$BASE/v1/tree"
  "${CURL[@]}" -X POST --data "$T1 0" "$BASE/v1/collapse"
  "${CURL[@]}" -X POST --data "$T2" "$BASE/v1/tree"
  # Deadline degrade: a pre-expired budget on session 3 must return a
  # well-formed partial envelope (DEADLINE_EXCEEDED + "partial":true +
  # the tree so far), not a failure — and the session stays usable.
  "${CURL[@]}" -X POST --data "$T3 0 deadline_ms=0.0001" "$BASE/v1/expand"
  "${CURL[@]}" -X POST --data "$T3" "$BASE/v1/tree"
  "${CURL[@]}" -X POST --data "$T1" "$BASE/v1/close"
  "${CURL[@]}" -X POST --data "$T2" "$BASE/v1/close"
  "${CURL[@]}" -X POST --data "$T3" "$BASE/v1/close"
  "${CURL[@]}" -X POST "$BASE/v1/ping"
  # Defect paths keep their stable wire codes over HTTP.
  "${CURL[@]}" -X POST --data "$T1" "$BASE/v1/tree"
  "${CURL[@]}" -X POST --data 'zz 0' "$BASE/v1/expand"
} | sed -e "s/$T1/<T1>/g" -e "s/$T2/<T2>/g" -e "s/$T3/<T3>/g" >"$WORK/transcript"

if ! diff "$WORK/transcript" scripts/http_smoke.golden; then
  echo "http smoke: transcript diverged from scripts/http_smoke.golden"
  exit 1
fi

# Partial-as-200 semantics: a degraded expand that still carries a tree is
# a usable answer, so it must ship with HTTP 200 (the body's error code and
# partial marker tell the story), never a 5xx.
T4=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open" | sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p')
CODE=$("${CURL[@]}" -o "$WORK/degraded" -w '%{http_code}' -X POST \
  --data "$T4 0 deadline_ms=0.0001" "$BASE/v1/expand")
if [[ "$CODE" != "200" ]] || ! grep -q '"partial":true' "$WORK/degraded"; then
  echo "http smoke: degraded expand returned $CODE"; cat "$WORK/degraded"; exit 1
fi
"${CURL[@]}" -X POST --data "$T4" "$BASE/v1/close" >/dev/null

# Live metrics: the request counter must be nonzero and sessions counted.
"${CURL[@]}" "$BASE/metrics" >"$WORK/metrics"
REQS=$(awk '$1 == "smartdd_http_requests_total" {print $2}' "$WORK/metrics")
OPENED=$(awk '$1 == "smartdd_sessions_opened_total" {print $2}' "$WORK/metrics")
DEGRADED=$(awk '$1 == "smartdd_partial_responses_total" {print $2}' "$WORK/metrics")
if [[ -z "$REQS" || "$REQS" -lt 10 || -z "$OPENED" || "$OPENED" -lt 2 \
      || -z "$DEGRADED" || "$DEGRADED" -lt 2 ]]; then
  echo "http smoke: metrics not reporting (requests=$REQS opened=$OPENED partial=$DEGRADED)"
  cat "$WORK/metrics"
  exit 1
fi

# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
SERVER_PID=""
if [[ "$EXIT" -ne 0 ]]; then
  echo "http smoke: server exited $EXIT on SIGTERM"; cat "$WORK/server.log"; exit 1
fi
grep -q "shutting down" "$WORK/server.log" || {
  echo "http smoke: no graceful shutdown message"; cat "$WORK/server.log"; exit 1
}

echo "http smoke: golden transcript matched; metrics live (requests=$REQS, sessions opened=$OPENED); graceful shutdown OK"
