#!/usr/bin/env bash
# Cluster smoke: boot shard-servers and a router on ephemeral ports and
# prove the two load-bearing claims of the cluster subsystem end to end:
#
#   Phase 1 (byte-identity) — 2 backends + router: replay the exact
#     http_smoke.sh transcript through the router and diff it against
#     scripts/http_smoke.golden, the SAME golden the single-process server
#     must match. Sessions land on different backends (tokens are
#     sed-substituted like http_smoke does), yet every response byte
#     agrees. Cluster gauges/counters must be live on /metrics.
#
#   Phase 2 (failover) — a fresh trio whose first backend runs with
#     SMARTDD_FAULTS='scheduler.task=latency:2000:0', pinning every engine
#     task slow so a kill -9 deterministically lands mid-expansion: the
#     streaming client gets a clean UNAVAILABLE wire envelope and a
#     terminal SSE event, the router survives, serves new sessions via the
#     remaining backend, and reports the death on /metrics. With every
#     backend gone, requests answer the stable UNAVAILABLE envelope.
#     SIGTERM then drains and exits 0.
#
# Usage: scripts/cluster_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SHARD_BIN="$BUILD/example_shard_server"
ROUTER_BIN="$BUILD/example_cluster_router"
for bin in "$SHARD_BIN" "$ROUTER_BIN"; do
  [[ -x "$bin" ]] || { echo "cluster smoke: $bin is not built"; exit 1; }
done

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Scrapes "listening on ...:PORT" from a server log, waiting for startup.
scrape_port() {
  local log="$1" pattern="$2" port=""
  for _ in $(seq 1 100); do
    port=$(sed -n "$pattern" "$log" 2>/dev/null || true)
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    sleep 0.1
  done
  echo ""
}
SHARD_PAT='s#^listening on 127\.0\.0\.1:\([0-9]*\)$#\1#p'
ROUTER_PAT='s#^listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p'

open_session() {  # $1=base-url -> token on stdout (empty on failure)
  curl -sS --max-time 60 -X POST --data 'k=3' "$1/v1/open" |
    sed -n 's/.*"session":"\([0-9a-f]*\)".*/\1/p'
}

# ---------------------------------------------------------------- phase 1
# Byte-identity with the single-process golden.

"$SHARD_BIN" --port=0 --token-seed=0x5D177EED >"$WORK/s1.log" 2>&1 &
S1_PID=$!; PIDS+=("$S1_PID")
"$SHARD_BIN" --port=0 --token-seed=0x5D177EEE >"$WORK/s2.log" 2>&1 &
S2_PID=$!; PIDS+=("$S2_PID")
P1=$(scrape_port "$WORK/s1.log" "$SHARD_PAT")
P2=$(scrape_port "$WORK/s2.log" "$SHARD_PAT")
[[ -n "$P1" && -n "$P2" ]] || { echo "cluster smoke: shard-servers did not start"; cat "$WORK"/s*.log; exit 1; }

"$ROUTER_BIN" --backend=127.0.0.1:"$P1" --backend=127.0.0.1:"$P2" --http=0 \
  >"$WORK/router.log" 2>&1 &
ROUTER_PID=$!; PIDS+=("$ROUTER_PID")
RPORT=$(scrape_port "$WORK/router.log" "$ROUTER_PAT")
[[ -n "$RPORT" ]] || { echo "cluster smoke: router did not start"; cat "$WORK/router.log"; exit 1; }
BASE="http://127.0.0.1:$RPORT"
CURL=(curl -sS --max-time 60)

# Readiness: the router is ready once a backend is healthy.
READY=$("${CURL[@]}" -o /dev/null -w '%{http_code}' "$BASE/readyz")
[[ "$READY" == "200" ]] || { echo "cluster smoke: /readyz=$READY before any failure"; exit 1; }

# The http_smoke.sh transcript, verbatim, through the router. Opens
# balance least-loaded with lowest-index ties, so T1 and T3 land on
# backend 1 and T2 on backend 2 — the diff below is the cluster's
# byte-identity proof against the single-process golden.
T1=$(open_session "$BASE")
T2=$(open_session "$BASE")
T3=$(open_session "$BASE")
[[ -n "$T1" && -n "$T2" && -n "$T3" && "$T1" != "$T2" ]] || { echo "cluster smoke: open failed"; exit 1; }

{
  "${CURL[@]}" "$BASE/healthz"
  "${CURL[@]}" -X POST --data "$T1 0" "$BASE/v1/expand"
  "${CURL[@]}" -N "$BASE/v1/expand/stream?session=$T2&node=0"
  "${CURL[@]}" -N -X POST --data "$T1 3 1" "$BASE/v1/expand/stream"
  "${CURL[@]}" -X POST --data "$T1" "$BASE/v1/tree"
  "${CURL[@]}" -X POST --data "$T1 0" "$BASE/v1/collapse"
  "${CURL[@]}" -X POST --data "$T2" "$BASE/v1/tree"
  "${CURL[@]}" -X POST --data "$T3 0 deadline_ms=0.0001" "$BASE/v1/expand"
  "${CURL[@]}" -X POST --data "$T3" "$BASE/v1/tree"
  "${CURL[@]}" -X POST --data "$T1" "$BASE/v1/close"
  "${CURL[@]}" -X POST --data "$T2" "$BASE/v1/close"
  "${CURL[@]}" -X POST --data "$T3" "$BASE/v1/close"
  "${CURL[@]}" -X POST "$BASE/v1/ping"
  "${CURL[@]}" -X POST --data "$T1" "$BASE/v1/tree"
  "${CURL[@]}" -X POST --data 'zz 0' "$BASE/v1/expand"
} | sed -e "s/$T1/<T1>/g" -e "s/$T2/<T2>/g" -e "s/$T3/<T3>/g" >"$WORK/transcript"

if ! diff "$WORK/transcript" scripts/http_smoke.golden; then
  echo "cluster smoke: transcript diverged from the single-process golden"
  exit 1
fi

# Cluster health on /metrics: both backends up, traffic forwarded,
# build info stamped.
"${CURL[@]}" "$BASE/metrics" >"$WORK/metrics"
UP=$(grep -c '^smartdd_cluster_backend_up{backend="127\.0\.0\.1:[0-9]*"} 1$' "$WORK/metrics" || true)
FWD=$(awk '$1 == "smartdd_cluster_forwarded_total" {print $2}' "$WORK/metrics")
if [[ "$UP" -ne 2 || -z "$FWD" || "$FWD" -lt 10 ]]; then
  echo "cluster smoke: metrics wrong (backends up=$UP forwarded=$FWD)"
  cat "$WORK/metrics"; exit 1
fi
grep -q '^smartdd_build_info{' "$WORK/metrics" || {
  echo "cluster smoke: smartdd_build_info missing from /metrics"; exit 1; }

# Phase 1 teardown: SIGTERM the router first (it drains its backends).
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "cluster smoke: phase-1 router died badly"; exit 1; }
kill -TERM "$S1_PID" "$S2_PID" 2>/dev/null || true
wait "$S1_PID" 2>/dev/null || true
wait "$S2_PID" 2>/dev/null || true

# ---------------------------------------------------------------- phase 2
# Failover: kill a shard-server mid-expansion. The victim backend pins
# every engine task 2s slow via the fault-injection registry, so the SSE
# expansion below is guaranteed to still be in flight when kill -9 lands.

# disown: these two die by kill -9 on purpose; keep bash's asynchronous
# "Killed" job notices out of the CI log.
SMARTDD_FAULTS='scheduler.task=latency:2000:0' \
  "$SHARD_BIN" --port=0 --token-seed=0xFA11 >"$WORK/victim.log" 2>&1 &
VICTIM_PID=$!; PIDS+=("$VICTIM_PID"); disown "$VICTIM_PID"
"$SHARD_BIN" --port=0 --token-seed=0x5AFE >"$WORK/survivor.log" 2>&1 &
SURVIVOR_PID=$!; PIDS+=("$SURVIVOR_PID"); disown "$SURVIVOR_PID"
PV=$(scrape_port "$WORK/victim.log" "$SHARD_PAT")
PS=$(scrape_port "$WORK/survivor.log" "$SHARD_PAT")
[[ -n "$PV" && -n "$PS" ]] || { echo "cluster smoke: phase-2 shards did not start"; cat "$WORK"/{victim,survivor}.log; exit 1; }

"$ROUTER_BIN" --backend=127.0.0.1:"$PV" --backend=127.0.0.1:"$PS" --http=0 \
  >"$WORK/router2.log" 2>&1 &
ROUTER_PID=$!; PIDS+=("$ROUTER_PID")
RPORT=$(scrape_port "$WORK/router2.log" "$ROUTER_PAT")
[[ -n "$RPORT" ]] || { echo "cluster smoke: phase-2 router did not start"; cat "$WORK/router2.log"; exit 1; }
BASE="http://127.0.0.1:$RPORT"

# The first open lands on the victim (least-loaded, lowest index).
TV=$(open_session "$BASE")
[[ -n "$TV" ]] || { echo "cluster smoke: phase-2 open failed"; exit 1; }

# Start a streaming expansion (stalled inside the victim's engine by the
# latency fault) and kill -9 the victim mid-flight. The client must see a
# terminal SSE event carrying the UNAVAILABLE wire envelope — never a
# hang or a truncated stream.
"${CURL[@]}" -N -X POST --data "$TV 0" "$BASE/v1/expand/stream" >"$WORK/sse" 2>&1 &
SSE_CURL=$!
sleep 0.5
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$SSE_CURL" || true
grep -q '^event: done$' "$WORK/sse" || {
  echo "cluster smoke: victim stream had no terminal event"; cat "$WORK/sse"; exit 1; }
grep -q '"code":"UNAVAILABLE"' "$WORK/sse" || {
  echo "cluster smoke: victim stream did not carry UNAVAILABLE"; cat "$WORK/sse"; exit 1; }

# The router survived and serves new sessions via the survivor. The
# failed stream already marked the victim down; retry covers the window
# where the health probe races the next open.
LIVE=$("${CURL[@]}" -o /dev/null -w '%{http_code}' "$BASE/healthz")
[[ "$LIVE" == "200" ]] || { echo "cluster smoke: router died with its backend"; exit 1; }
TS=""
for _ in $(seq 1 20); do
  TS=$(open_session "$BASE")
  [[ -n "$TS" ]] && break
  sleep 0.25
done
[[ -n "$TS" ]] || { echo "cluster smoke: no session after failover"; exit 1; }
"${CURL[@]}" -X POST --data "$TS 0" "$BASE/v1/expand" | grep -q '"ok":true' || {
  echo "cluster smoke: expand via survivor failed"; exit 1; }

# /metrics reports the death: victim gauge 0, survivor gauge 1, and at
# least one failover counted.
"${CURL[@]}" "$BASE/metrics" >"$WORK/metrics2"
UPV=$(sed -n "s/^smartdd_cluster_backend_up{backend=\"127\.0\.0\.1:$PV\"} \([0-9]*\)$/\1/p" "$WORK/metrics2")
UPS=$(sed -n "s/^smartdd_cluster_backend_up{backend=\"127\.0\.0\.1:$PS\"} \([0-9]*\)$/\1/p" "$WORK/metrics2")
FAILOVERS=$(awk '$1 == "smartdd_cluster_failovers_total" {print $2}' "$WORK/metrics2")
if [[ "$UPV" != "0" || "$UPS" != "1" || -z "$FAILOVERS" || "$FAILOVERS" -lt 1 ]]; then
  echo "cluster smoke: failover not reported (victim=$UPV survivor=$UPS failovers=$FAILOVERS)"
  cat "$WORK/metrics2"; exit 1
fi

# With every backend gone, requests answer the stable wire code — a clean
# UNAVAILABLE envelope, never a hang or a malformed response.
kill -9 "$SURVIVOR_PID" 2>/dev/null || true
DEAD=$("${CURL[@]}" -X POST --data 'k=3' "$BASE/v1/open")
echo "$DEAD" | grep -q '"code":"UNAVAILABLE"' || {
  echo "cluster smoke: expected UNAVAILABLE envelope, got: $DEAD"; exit 1; }

# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$ROUTER_PID"
EXIT=0
wait "$ROUTER_PID" || EXIT=$?
if [[ "$EXIT" -ne 0 ]]; then
  echo "cluster smoke: router exited $EXIT on SIGTERM"; cat "$WORK/router2.log"; exit 1
fi
grep -q "shutting down" "$WORK/router2.log" || {
  echo "cluster smoke: no graceful shutdown message"; cat "$WORK/router2.log"; exit 1; }

echo "cluster smoke: golden transcript matched through the router; mid-expansion kill answered clean UNAVAILABLE and the router survived; graceful shutdown OK"
