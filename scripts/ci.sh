#!/usr/bin/env bash
# Configure + build + test, exactly as CI runs it. Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
