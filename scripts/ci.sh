#!/usr/bin/env bash
# Configure + build + test, exactly as CI runs it.
#
# Usage: scripts/ci.sh [--tsan|--tsan-only]
#   --tsan       additionally build with ThreadSanitizer and run the
#                concurrency-sensitive suites (the two parallel differential
#                suites plus the sampling/session tests that exercise the
#                background prefetcher) under it
#   --tsan-only  run only the ThreadSanitizer stage
# SMARTDD_TSAN=1 is equivalent to --tsan.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
if [[ "${SMARTDD_TSAN:-0}" == "1" && -z "$MODE" ]]; then
  MODE="--tsan"
fi

if [[ "$MODE" != "--tsan-only" ]]; then
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")

  # Service-protocol smoke: a scripted session's codec bytes in must
  # reproduce the golden snapshot bytes out (the paper's retail walkthrough
  # through the front-door ExplorationService; tokens are deterministic).
  ./build/example_interactive_cli --serve < scripts/service_smoke.txt \
    | diff - scripts/service_smoke.golden \
    || { echo "service smoke: output diverged from scripts/service_smoke.golden"; exit 1; }
  echo "service smoke: golden snapshot matched"

  # A script truncated at EOF mid-request must fail loudly, not stop
  # silently (regression guard for the --serve wire mode).
  if printf 'ping' | ./build/example_interactive_cli --serve >/dev/null 2>&1; then
    echo "service smoke: truncated script was not rejected"; exit 1
  fi
  echo "service smoke: truncated script rejected with nonzero exit"

  # HTTP smoke: real socket, curl transcript vs golden, SSE ordering,
  # nonzero /metrics, graceful SIGTERM (see scripts/http_smoke.sh).
  scripts/http_smoke.sh build
fi

if [[ "$MODE" == "--tsan" || "$MODE" == "--tsan-only" ]]; then
  TSAN_TESTS="parallel_marginal_test|parallel_sampling_test|sample_handler_test|session_test|concurrent_sessions_test|task_scheduler_test|service_test|codec_test|metrics_test|http_server_test"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1"
  cmake --build build-tsan -j "$(nproc)" --target \
    parallel_marginal_test parallel_sampling_test sample_handler_test \
    session_test concurrent_sessions_test task_scheduler_test \
    service_test codec_test metrics_test http_server_test
  (cd build-tsan && ctest --output-on-failure -j "$(nproc)" -R "$TSAN_TESTS")
fi
