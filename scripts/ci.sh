#!/usr/bin/env bash
# Configure + build + test, exactly as CI runs it.
#
# Usage: scripts/ci.sh [--tsan|--tsan-only|--asan|--asan-only]
#   --tsan       additionally build with ThreadSanitizer and run the
#                concurrency-sensitive suites (the two parallel differential
#                suites plus the sampling/session tests that exercise the
#                background prefetcher, and the chaos suite with faults
#                armed) under it
#   --tsan-only  run only the ThreadSanitizer stage
#   --asan       additionally build with AddressSanitizer+UBSan and run the
#                same suites (use-after-free and UB hide best in the error
#                paths the fault injector forces open)
#   --asan-only  run only the ASan/UBSan stage
# SMARTDD_TSAN=1 / SMARTDD_ASAN=1 are equivalent to --tsan / --asan.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
if [[ -z "$MODE" && "${SMARTDD_TSAN:-0}" == "1" ]]; then
  MODE="--tsan"
fi
if [[ -z "$MODE" && "${SMARTDD_ASAN:-0}" == "1" ]]; then
  MODE="--asan"
fi

# The concurrency- and robustness-sensitive suites both sanitizer stages
# run: the parallel differential suites, everything touching the background
# prefetcher and registry, and the chaos suite (which arms fault schedules
# while 16 sessions hammer the service).
SAN_TESTS="parallel_marginal_test|parallel_sampling_test|sample_handler_test|session_test|concurrent_sessions_test|task_scheduler_test|service_test|codec_test|metrics_test|http_server_test|chaos_test|disk_table_test|sharded_engine_test|packed_column_test|deadline_test|rpc_test|cluster_test|live_table_test|expansion_cache_test"
SAN_TARGETS=(
  parallel_marginal_test parallel_sampling_test sample_handler_test
  session_test concurrent_sessions_test task_scheduler_test
  service_test codec_test metrics_test http_server_test chaos_test
  disk_table_test sharded_engine_test packed_column_test
  deadline_test rpc_test cluster_test live_table_test expansion_cache_test
)

run_sanitizer_stage() {
  local name="$1" flags="$2"
  cmake -B "build-$name" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$flags"
  cmake --build "build-$name" -j "$(nproc)" --target "${SAN_TARGETS[@]}"
  # The full suite twice: once pinned to the portable scalar kernels, once
  # with auto dispatch (AVX2 where the host has it) — the differential
  # suites must be byte-identical under both, and the sanitizers must see
  # both code paths.
  (cd "build-$name" &&
    SMARTDD_KERNEL=scalar ctest --output-on-failure -j "$(nproc)" -R "$SAN_TESTS")
  (cd "build-$name" &&
    SMARTDD_KERNEL=auto ctest --output-on-failure -j "$(nproc)" -R "$SAN_TESTS")
}

if [[ "$MODE" != "--tsan-only" && "$MODE" != "--asan-only" ]]; then
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")

  # Service-protocol smoke: a scripted session's codec bytes in must
  # reproduce the golden snapshot bytes out (the paper's retail walkthrough
  # through the front-door ExplorationService; tokens are deterministic).
  ./build/example_interactive_cli --serve --live < scripts/service_smoke.txt \
    | diff - scripts/service_smoke.golden \
    || { echo "service smoke: output diverged from scripts/service_smoke.golden"; exit 1; }
  echo "service smoke: golden snapshot matched"

  # A script truncated at EOF mid-request must fail loudly, not stop
  # silently (regression guard for the --serve wire mode).
  if printf 'ping' | ./build/example_interactive_cli --serve >/dev/null 2>&1; then
    echo "service smoke: truncated script was not rejected"; exit 1
  fi
  echo "service smoke: truncated script rejected with nonzero exit"

  # HTTP smoke: real socket, curl transcript vs golden, SSE ordering,
  # nonzero /metrics, graceful SIGTERM, deadline-degraded partial results
  # (see scripts/http_smoke.sh).
  scripts/http_smoke.sh build

  # Cluster smoke: router + 2 shard-server processes must match the SAME
  # golden transcript byte-for-byte, and a kill -9 mid-expansion must
  # answer a clean UNAVAILABLE while the router keeps serving
  # (see scripts/cluster_smoke.sh).
  scripts/cluster_smoke.sh build

  # Live-table smoke: HTTP appends publish new versions while an already
  # open session keeps exploring its pinned version; both trees must match
  # goldens and /v1/tableinfo must report the version walk
  # (see scripts/live_smoke.sh).
  scripts/live_smoke.sh build

  # Expansion-cache smoke: warm hits must replay byte-identical trees at
  # >= 10x the cold p50 (the bench exits nonzero when either gate fails).
  (cd build && SMARTDD_CENSUS_ROWS=50000 SMARTDD_BENCH_REPS=3 \
    ./bench_expansion_cache)
  echo "expansion cache smoke: warm hits byte-identical and >= 10x faster"

  # Sharded-engine smoke: 1/2/4-shard scatter-gather must return identical
  # trees (the bench exits nonzero on drift).
  (cd build && SMARTDD_CENSUS_ROWS=50000 SMARTDD_BENCH_REPS=1 \
    ./bench_sharded_engine)
  echo "sharded engine smoke: identical trees across shard counts"

  # Packed-storage / SIMD smoke: the marginal bench checks that results are
  # identical across thread counts, shard counts, AND kernel paths, and
  # that bit-packing actually shrinks the resident columns (>= 2x gate).
  (cd build && SMARTDD_CENSUS_ROWS=50000 SMARTDD_BENCH_K=1 \
    SMARTDD_BENCH_REPS=1 ./bench_parallel_marginal)
  echo "packed column smoke: identical trees across kernel paths"
fi

if [[ "$MODE" == "--tsan" || "$MODE" == "--tsan-only" ]]; then
  run_sanitizer_stage tsan "-fsanitize=thread -g -O1"
fi

if [[ "$MODE" == "--asan" || "$MODE" == "--asan-only" ]]; then
  run_sanitizer_stage asan "-fsanitize=address,undefined -fno-sanitize-recover=all -g -O1"
fi
