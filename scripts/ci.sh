#!/usr/bin/env bash
# Configure + build + test, exactly as CI runs it.
#
# Usage: scripts/ci.sh [--tsan|--tsan-only]
#   --tsan       additionally build with ThreadSanitizer and run the
#                concurrency-sensitive suites (the two parallel differential
#                suites plus the sampling/session tests that exercise the
#                background prefetcher) under it
#   --tsan-only  run only the ThreadSanitizer stage
# SMARTDD_TSAN=1 is equivalent to --tsan.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
if [[ "${SMARTDD_TSAN:-0}" == "1" && -z "$MODE" ]]; then
  MODE="--tsan"
fi

if [[ "$MODE" != "--tsan-only" ]]; then
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$MODE" == "--tsan" || "$MODE" == "--tsan-only" ]]; then
  TSAN_TESTS="parallel_marginal_test|parallel_sampling_test|sample_handler_test|session_test|concurrent_sessions_test|task_scheduler_test"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1"
  cmake --build build-tsan -j "$(nproc)" --target \
    parallel_marginal_test parallel_sampling_test sample_handler_test \
    session_test concurrent_sessions_test task_scheduler_test
  (cd build-tsan && ctest --output-on-failure -j "$(nproc)" -R "$TSAN_TESTS")
fi
