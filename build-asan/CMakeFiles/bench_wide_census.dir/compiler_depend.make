# Empty compiler generated dependencies file for bench_wide_census.
# This may be replaced when dependencies are built.
