file(REMOVE_RECURSE
  "CMakeFiles/bench_wide_census.dir/bench/bench_wide_census.cc.o"
  "CMakeFiles/bench_wide_census.dir/bench/bench_wide_census.cc.o.d"
  "bench_wide_census"
  "bench_wide_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wide_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
