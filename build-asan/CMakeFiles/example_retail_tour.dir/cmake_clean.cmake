file(REMOVE_RECURSE
  "CMakeFiles/example_retail_tour.dir/examples/retail_tour.cpp.o"
  "CMakeFiles/example_retail_tour.dir/examples/retail_tour.cpp.o.d"
  "example_retail_tour"
  "example_retail_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_retail_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
