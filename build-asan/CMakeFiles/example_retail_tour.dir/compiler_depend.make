# Empty compiler generated dependencies file for example_retail_tour.
# This may be replaced when dependencies are built.
