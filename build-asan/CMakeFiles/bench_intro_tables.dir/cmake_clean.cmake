file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_tables.dir/bench/bench_intro_tables.cc.o"
  "CMakeFiles/bench_intro_tables.dir/bench/bench_intro_tables.cc.o.d"
  "bench_intro_tables"
  "bench_intro_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
