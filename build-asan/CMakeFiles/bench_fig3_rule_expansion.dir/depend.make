# Empty dependencies file for bench_fig3_rule_expansion.
# This may be replaced when dependencies are built.
