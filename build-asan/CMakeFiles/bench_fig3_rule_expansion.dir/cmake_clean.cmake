file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rule_expansion.dir/bench/bench_fig3_rule_expansion.cc.o"
  "CMakeFiles/bench_fig3_rule_expansion.dir/bench/bench_fig3_rule_expansion.cc.o.d"
  "bench_fig3_rule_expansion"
  "bench_fig3_rule_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rule_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
