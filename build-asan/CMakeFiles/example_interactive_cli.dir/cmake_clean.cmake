file(REMOVE_RECURSE
  "CMakeFiles/example_interactive_cli.dir/examples/interactive_cli.cpp.o"
  "CMakeFiles/example_interactive_cli.dir/examples/interactive_cli.cpp.o.d"
  "example_interactive_cli"
  "example_interactive_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interactive_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
