# Empty compiler generated dependencies file for example_interactive_cli.
# This may be replaced when dependencies are built.
