file(REMOVE_RECURSE
  "CMakeFiles/example_census_at_scale.dir/examples/census_at_scale.cpp.o"
  "CMakeFiles/example_census_at_scale.dir/examples/census_at_scale.cpp.o.d"
  "example_census_at_scale"
  "example_census_at_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_census_at_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
