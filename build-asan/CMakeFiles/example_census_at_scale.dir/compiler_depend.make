# Empty compiler generated dependencies file for example_census_at_scale.
# This may be replaced when dependencies are built.
