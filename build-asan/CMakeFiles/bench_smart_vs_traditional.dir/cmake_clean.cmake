file(REMOVE_RECURSE
  "CMakeFiles/bench_smart_vs_traditional.dir/bench/bench_smart_vs_traditional.cc.o"
  "CMakeFiles/bench_smart_vs_traditional.dir/bench/bench_smart_vs_traditional.cc.o.d"
  "bench_smart_vs_traditional"
  "bench_smart_vs_traditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smart_vs_traditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
