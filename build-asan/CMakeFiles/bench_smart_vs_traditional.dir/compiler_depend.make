# Empty compiler generated dependencies file for bench_smart_vs_traditional.
# This may be replaced when dependencies are built.
