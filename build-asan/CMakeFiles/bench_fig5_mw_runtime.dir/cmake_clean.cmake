file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mw_runtime.dir/bench/bench_fig5_mw_runtime.cc.o"
  "CMakeFiles/bench_fig5_mw_runtime.dir/bench/bench_fig5_mw_runtime.cc.o.d"
  "bench_fig5_mw_runtime"
  "bench_fig5_mw_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mw_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
