# Empty dependencies file for bench_fig5_mw_runtime.
# This may be replaced when dependencies are built.
