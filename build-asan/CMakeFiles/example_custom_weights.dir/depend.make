# Empty dependencies file for example_custom_weights.
# This may be replaced when dependencies are built.
