file(REMOVE_RECURSE
  "CMakeFiles/example_custom_weights.dir/examples/custom_weights.cpp.o"
  "CMakeFiles/example_custom_weights.dir/examples/custom_weights.cpp.o.d"
  "example_custom_weights"
  "example_custom_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
