file(REMOVE_RECURSE
  "CMakeFiles/brs_test.dir/tests/brs_test.cc.o"
  "CMakeFiles/brs_test.dir/tests/brs_test.cc.o.d"
  "brs_test"
  "brs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
