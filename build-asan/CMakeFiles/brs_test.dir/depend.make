# Empty dependencies file for brs_test.
# This may be replaced when dependencies are built.
