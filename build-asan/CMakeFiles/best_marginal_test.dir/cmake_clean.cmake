file(REMOVE_RECURSE
  "CMakeFiles/best_marginal_test.dir/tests/best_marginal_test.cc.o"
  "CMakeFiles/best_marginal_test.dir/tests/best_marginal_test.cc.o.d"
  "best_marginal_test"
  "best_marginal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_marginal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
