# Empty dependencies file for best_marginal_test.
# This may be replaced when dependencies are built.
