# Empty dependencies file for bench_parallel_marginal.
# This may be replaced when dependencies are built.
