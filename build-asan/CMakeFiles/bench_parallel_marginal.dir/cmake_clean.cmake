file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_marginal.dir/bench/bench_parallel_marginal.cc.o"
  "CMakeFiles/bench_parallel_marginal.dir/bench/bench_parallel_marginal.cc.o.d"
  "bench_parallel_marginal"
  "bench_parallel_marginal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_marginal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
