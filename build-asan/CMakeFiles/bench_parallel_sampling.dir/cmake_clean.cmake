file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_sampling.dir/bench/bench_parallel_sampling.cc.o"
  "CMakeFiles/bench_parallel_sampling.dir/bench/bench_parallel_sampling.cc.o.d"
  "bench_parallel_sampling"
  "bench_parallel_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
