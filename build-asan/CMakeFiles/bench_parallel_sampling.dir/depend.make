# Empty dependencies file for bench_parallel_sampling.
# This may be replaced when dependencies are built.
