file(REMOVE_RECURSE
  "libsmartdd.a"
)
