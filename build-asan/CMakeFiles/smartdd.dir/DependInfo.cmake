
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/codec.cc" "CMakeFiles/smartdd.dir/src/api/codec.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/api/codec.cc.o.d"
  "/root/repo/src/api/dto.cc" "CMakeFiles/smartdd.dir/src/api/dto.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/api/dto.cc.o.d"
  "/root/repo/src/api/render.cc" "CMakeFiles/smartdd.dir/src/api/render.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/api/render.cc.o.d"
  "/root/repo/src/api/service.cc" "CMakeFiles/smartdd.dir/src/api/service.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/api/service.cc.o.d"
  "/root/repo/src/api/session_registry.cc" "CMakeFiles/smartdd.dir/src/api/session_registry.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/api/session_registry.cc.o.d"
  "/root/repo/src/common/fault_injection.cc" "CMakeFiles/smartdd.dir/src/common/fault_injection.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/fault_injection.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/smartdd.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/metrics.cc" "CMakeFiles/smartdd.dir/src/common/metrics.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/metrics.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/smartdd.dir/src/common/random.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/smartdd.dir/src/common/status.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/smartdd.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/common/task_scheduler.cc" "CMakeFiles/smartdd.dir/src/common/task_scheduler.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/task_scheduler.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/smartdd.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/baseline.cc" "CMakeFiles/smartdd.dir/src/core/baseline.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/core/baseline.cc.o.d"
  "/root/repo/src/core/best_marginal.cc" "CMakeFiles/smartdd.dir/src/core/best_marginal.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/core/best_marginal.cc.o.d"
  "/root/repo/src/core/brs.cc" "CMakeFiles/smartdd.dir/src/core/brs.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/core/brs.cc.o.d"
  "/root/repo/src/core/drilldown.cc" "CMakeFiles/smartdd.dir/src/core/drilldown.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/core/drilldown.cc.o.d"
  "/root/repo/src/core/mw_estimator.cc" "CMakeFiles/smartdd.dir/src/core/mw_estimator.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/core/mw_estimator.cc.o.d"
  "/root/repo/src/core/score.cc" "CMakeFiles/smartdd.dir/src/core/score.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/core/score.cc.o.d"
  "/root/repo/src/data/census_gen.cc" "CMakeFiles/smartdd.dir/src/data/census_gen.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/data/census_gen.cc.o.d"
  "/root/repo/src/data/marketing_gen.cc" "CMakeFiles/smartdd.dir/src/data/marketing_gen.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/data/marketing_gen.cc.o.d"
  "/root/repo/src/data/mcp_gen.cc" "CMakeFiles/smartdd.dir/src/data/mcp_gen.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/data/mcp_gen.cc.o.d"
  "/root/repo/src/data/retail_gen.cc" "CMakeFiles/smartdd.dir/src/data/retail_gen.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/data/retail_gen.cc.o.d"
  "/root/repo/src/data/synth.cc" "CMakeFiles/smartdd.dir/src/data/synth.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/data/synth.cc.o.d"
  "/root/repo/src/explore/engine.cc" "CMakeFiles/smartdd.dir/src/explore/engine.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/explore/engine.cc.o.d"
  "/root/repo/src/explore/renderer.cc" "CMakeFiles/smartdd.dir/src/explore/renderer.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/explore/renderer.cc.o.d"
  "/root/repo/src/explore/session.cc" "CMakeFiles/smartdd.dir/src/explore/session.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/explore/session.cc.o.d"
  "/root/repo/src/net/exploration_http_adapter.cc" "CMakeFiles/smartdd.dir/src/net/exploration_http_adapter.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/net/exploration_http_adapter.cc.o.d"
  "/root/repo/src/net/http_parser.cc" "CMakeFiles/smartdd.dir/src/net/http_parser.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/net/http_parser.cc.o.d"
  "/root/repo/src/net/http_server.cc" "CMakeFiles/smartdd.dir/src/net/http_server.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/net/http_server.cc.o.d"
  "/root/repo/src/rules/rule_format.cc" "CMakeFiles/smartdd.dir/src/rules/rule_format.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/rules/rule_format.cc.o.d"
  "/root/repo/src/rules/rule_ops.cc" "CMakeFiles/smartdd.dir/src/rules/rule_ops.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/rules/rule_ops.cc.o.d"
  "/root/repo/src/sampling/allocation.cc" "CMakeFiles/smartdd.dir/src/sampling/allocation.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/sampling/allocation.cc.o.d"
  "/root/repo/src/sampling/knapsack.cc" "CMakeFiles/smartdd.dir/src/sampling/knapsack.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/sampling/knapsack.cc.o.d"
  "/root/repo/src/sampling/minss_guidance.cc" "CMakeFiles/smartdd.dir/src/sampling/minss_guidance.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/sampling/minss_guidance.cc.o.d"
  "/root/repo/src/sampling/sample.cc" "CMakeFiles/smartdd.dir/src/sampling/sample.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/sampling/sample.cc.o.d"
  "/root/repo/src/sampling/sample_handler.cc" "CMakeFiles/smartdd.dir/src/sampling/sample_handler.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/sampling/sample_handler.cc.o.d"
  "/root/repo/src/storage/bucketize.cc" "CMakeFiles/smartdd.dir/src/storage/bucketize.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/storage/bucketize.cc.o.d"
  "/root/repo/src/storage/column_stats.cc" "CMakeFiles/smartdd.dir/src/storage/column_stats.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/storage/column_stats.cc.o.d"
  "/root/repo/src/storage/csv.cc" "CMakeFiles/smartdd.dir/src/storage/csv.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/storage/csv.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "CMakeFiles/smartdd.dir/src/storage/dictionary.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/disk_table.cc" "CMakeFiles/smartdd.dir/src/storage/disk_table.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/storage/disk_table.cc.o.d"
  "/root/repo/src/storage/scan_source.cc" "CMakeFiles/smartdd.dir/src/storage/scan_source.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/storage/scan_source.cc.o.d"
  "/root/repo/src/storage/table.cc" "CMakeFiles/smartdd.dir/src/storage/table.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/storage/table.cc.o.d"
  "/root/repo/src/weights/parametric_weight.cc" "CMakeFiles/smartdd.dir/src/weights/parametric_weight.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/weights/parametric_weight.cc.o.d"
  "/root/repo/src/weights/standard_weights.cc" "CMakeFiles/smartdd.dir/src/weights/standard_weights.cc.o" "gcc" "CMakeFiles/smartdd.dir/src/weights/standard_weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
