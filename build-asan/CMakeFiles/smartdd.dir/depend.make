# Empty dependencies file for smartdd.
# This may be replaced when dependencies are built.
