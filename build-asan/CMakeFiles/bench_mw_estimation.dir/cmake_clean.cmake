file(REMOVE_RECURSE
  "CMakeFiles/bench_mw_estimation.dir/bench/bench_mw_estimation.cc.o"
  "CMakeFiles/bench_mw_estimation.dir/bench/bench_mw_estimation.cc.o.d"
  "bench_mw_estimation"
  "bench_mw_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mw_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
