# Empty dependencies file for bench_mw_estimation.
# This may be replaced when dependencies are built.
