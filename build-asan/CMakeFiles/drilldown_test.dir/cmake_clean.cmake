file(REMOVE_RECURSE
  "CMakeFiles/drilldown_test.dir/tests/drilldown_test.cc.o"
  "CMakeFiles/drilldown_test.dir/tests/drilldown_test.cc.o.d"
  "drilldown_test"
  "drilldown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drilldown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
