# Empty dependencies file for drilldown_test.
# This may be replaced when dependencies are built.
