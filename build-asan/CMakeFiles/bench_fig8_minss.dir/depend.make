# Empty dependencies file for bench_fig8_minss.
# This may be replaced when dependencies are built.
