file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_minss.dir/bench/bench_fig8_minss.cc.o"
  "CMakeFiles/bench_fig8_minss.dir/bench/bench_fig8_minss.cc.o.d"
  "bench_fig8_minss"
  "bench_fig8_minss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_minss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
