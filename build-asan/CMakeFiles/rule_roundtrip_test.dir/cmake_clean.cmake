file(REMOVE_RECURSE
  "CMakeFiles/rule_roundtrip_test.dir/tests/rule_roundtrip_test.cc.o"
  "CMakeFiles/rule_roundtrip_test.dir/tests/rule_roundtrip_test.cc.o.d"
  "rule_roundtrip_test"
  "rule_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
