# Empty compiler generated dependencies file for rule_roundtrip_test.
# This may be replaced when dependencies are built.
