file(REMOVE_RECURSE
  "CMakeFiles/disk_table_test.dir/tests/disk_table_test.cc.o"
  "CMakeFiles/disk_table_test.dir/tests/disk_table_test.cc.o.d"
  "disk_table_test"
  "disk_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
