file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_sessions.dir/bench/bench_concurrent_sessions.cc.o"
  "CMakeFiles/bench_concurrent_sessions.dir/bench/bench_concurrent_sessions.cc.o.d"
  "bench_concurrent_sessions"
  "bench_concurrent_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
