# Empty dependencies file for bench_concurrent_sessions.
# This may be replaced when dependencies are built.
