file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bits_weighting.dir/bench/bench_fig6_bits_weighting.cc.o"
  "CMakeFiles/bench_fig6_bits_weighting.dir/bench/bench_fig6_bits_weighting.cc.o.d"
  "bench_fig6_bits_weighting"
  "bench_fig6_bits_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bits_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
