# Empty compiler generated dependencies file for bench_fig6_bits_weighting.
# This may be replaced when dependencies are built.
