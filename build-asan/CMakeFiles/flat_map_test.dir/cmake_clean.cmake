file(REMOVE_RECURSE
  "CMakeFiles/flat_map_test.dir/tests/flat_map_test.cc.o"
  "CMakeFiles/flat_map_test.dir/tests/flat_map_test.cc.o.d"
  "flat_map_test"
  "flat_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
