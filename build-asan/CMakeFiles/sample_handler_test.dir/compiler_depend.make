# Empty compiler generated dependencies file for sample_handler_test.
# This may be replaced when dependencies are built.
