file(REMOVE_RECURSE
  "CMakeFiles/sample_handler_test.dir/tests/sample_handler_test.cc.o"
  "CMakeFiles/sample_handler_test.dir/tests/sample_handler_test.cc.o.d"
  "sample_handler_test"
  "sample_handler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_handler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
