# Empty compiler generated dependencies file for smartdd_bench_util.
# This may be replaced when dependencies are built.
