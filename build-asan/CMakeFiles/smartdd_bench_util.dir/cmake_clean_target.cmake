file(REMOVE_RECURSE
  "libsmartdd_bench_util.a"
)
