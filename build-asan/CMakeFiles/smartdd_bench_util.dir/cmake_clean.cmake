file(REMOVE_RECURSE
  "CMakeFiles/smartdd_bench_util.dir/bench/bench_util.cc.o"
  "CMakeFiles/smartdd_bench_util.dir/bench/bench_util.cc.o.d"
  "libsmartdd_bench_util.a"
  "libsmartdd_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartdd_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
