file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_regular_drilldown.dir/bench/bench_fig4_regular_drilldown.cc.o"
  "CMakeFiles/bench_fig4_regular_drilldown.dir/bench/bench_fig4_regular_drilldown.cc.o.d"
  "bench_fig4_regular_drilldown"
  "bench_fig4_regular_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_regular_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
