# Empty compiler generated dependencies file for bench_fig4_regular_drilldown.
# This may be replaced when dependencies are built.
