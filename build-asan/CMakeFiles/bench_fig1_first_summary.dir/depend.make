# Empty dependencies file for bench_fig1_first_summary.
# This may be replaced when dependencies are built.
