file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_first_summary.dir/bench/bench_fig1_first_summary.cc.o"
  "CMakeFiles/bench_fig1_first_summary.dir/bench/bench_fig1_first_summary.cc.o.d"
  "bench_fig1_first_summary"
  "bench_fig1_first_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_first_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
