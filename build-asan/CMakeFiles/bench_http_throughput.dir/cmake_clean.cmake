file(REMOVE_RECURSE
  "CMakeFiles/bench_http_throughput.dir/bench/bench_http_throughput.cc.o"
  "CMakeFiles/bench_http_throughput.dir/bench/bench_http_throughput.cc.o.d"
  "bench_http_throughput"
  "bench_http_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_http_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
