# Empty dependencies file for bench_http_throughput.
# This may be replaced when dependencies are built.
