# Empty dependencies file for mw_estimator_test.
# This may be replaced when dependencies are built.
