file(REMOVE_RECURSE
  "CMakeFiles/mw_estimator_test.dir/tests/mw_estimator_test.cc.o"
  "CMakeFiles/mw_estimator_test.dir/tests/mw_estimator_test.cc.o.d"
  "mw_estimator_test"
  "mw_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
