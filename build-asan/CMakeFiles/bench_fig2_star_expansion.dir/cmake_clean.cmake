file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_star_expansion.dir/bench/bench_fig2_star_expansion.cc.o"
  "CMakeFiles/bench_fig2_star_expansion.dir/bench/bench_fig2_star_expansion.cc.o.d"
  "bench_fig2_star_expansion"
  "bench_fig2_star_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_star_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
