# Empty compiler generated dependencies file for bench_fig2_star_expansion.
# This may be replaced when dependencies are built.
