# Empty compiler generated dependencies file for bench_fig7_size_minus_one.
# This may be replaced when dependencies are built.
