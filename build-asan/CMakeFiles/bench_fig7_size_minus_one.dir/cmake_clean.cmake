file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_size_minus_one.dir/bench/bench_fig7_size_minus_one.cc.o"
  "CMakeFiles/bench_fig7_size_minus_one.dir/bench/bench_fig7_size_minus_one.cc.o.d"
  "bench_fig7_size_minus_one"
  "bench_fig7_size_minus_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_size_minus_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
