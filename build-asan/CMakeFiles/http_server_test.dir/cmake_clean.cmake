file(REMOVE_RECURSE
  "CMakeFiles/http_server_test.dir/tests/http_server_test.cc.o"
  "CMakeFiles/http_server_test.dir/tests/http_server_test.cc.o.d"
  "http_server_test"
  "http_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
