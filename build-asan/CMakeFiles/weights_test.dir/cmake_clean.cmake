file(REMOVE_RECURSE
  "CMakeFiles/weights_test.dir/tests/weights_test.cc.o"
  "CMakeFiles/weights_test.dir/tests/weights_test.cc.o.d"
  "weights_test"
  "weights_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
