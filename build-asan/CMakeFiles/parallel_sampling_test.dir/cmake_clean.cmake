file(REMOVE_RECURSE
  "CMakeFiles/parallel_sampling_test.dir/tests/parallel_sampling_test.cc.o"
  "CMakeFiles/parallel_sampling_test.dir/tests/parallel_sampling_test.cc.o.d"
  "parallel_sampling_test"
  "parallel_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
