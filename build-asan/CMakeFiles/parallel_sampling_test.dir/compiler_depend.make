# Empty compiler generated dependencies file for parallel_sampling_test.
# This may be replaced when dependencies are built.
