file(REMOVE_RECURSE
  "CMakeFiles/task_scheduler_test.dir/tests/task_scheduler_test.cc.o"
  "CMakeFiles/task_scheduler_test.dir/tests/task_scheduler_test.cc.o.d"
  "task_scheduler_test"
  "task_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
