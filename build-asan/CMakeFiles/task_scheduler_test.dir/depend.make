# Empty dependencies file for task_scheduler_test.
# This may be replaced when dependencies are built.
