# Empty dependencies file for concurrent_sessions_test.
# This may be replaced when dependencies are built.
