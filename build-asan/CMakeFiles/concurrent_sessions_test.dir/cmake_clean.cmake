file(REMOVE_RECURSE
  "CMakeFiles/concurrent_sessions_test.dir/tests/concurrent_sessions_test.cc.o"
  "CMakeFiles/concurrent_sessions_test.dir/tests/concurrent_sessions_test.cc.o.d"
  "concurrent_sessions_test"
  "concurrent_sessions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_sessions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
