# Empty compiler generated dependencies file for bucketize_test.
# This may be replaced when dependencies are built.
