file(REMOVE_RECURSE
  "CMakeFiles/bucketize_test.dir/tests/bucketize_test.cc.o"
  "CMakeFiles/bucketize_test.dir/tests/bucketize_test.cc.o.d"
  "bucketize_test"
  "bucketize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucketize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
