# Empty dependencies file for parallel_marginal_test.
# This may be replaced when dependencies are built.
