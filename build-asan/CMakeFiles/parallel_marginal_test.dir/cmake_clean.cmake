file(REMOVE_RECURSE
  "CMakeFiles/parallel_marginal_test.dir/tests/parallel_marginal_test.cc.o"
  "CMakeFiles/parallel_marginal_test.dir/tests/parallel_marginal_test.cc.o.d"
  "parallel_marginal_test"
  "parallel_marginal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_marginal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
