// Figure 7: the first summary under W(r) = max(0, Size(r)-1): single-column
// rules get weight 0, so every displayed rule instantiates >= 2 columns.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/brs.h"
#include "explore/renderer.h"
#include "weights/standard_weights.h"

int main(int argc, char** argv) {
  smartdd::bench::ParseFlags(argc, argv);
  using namespace smartdd;
  using namespace smartdd::bench;

  const Table& table = Marketing7();
  TableView view(table);
  SizeMinusOneWeight weight;

  PrintExperimentHeader(
      "Figure 7", "first summary under max(0, Size-1) weighting (k=4, mw=5)",
      "every displayed rule has 2 or 3 instantiated columns (no bare "
      "male/female-count rules, unlike Figure 1)");

  BrsOptions options;
  options.num_threads = smartdd::bench::Flags().threads;
  options.k = 4;
  options.max_weight = 5;
  auto result = RunBrs(view, weight, options);
  if (!result.ok()) {
    std::fprintf(stderr, "BRS failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderRuleList(table, result->rules).c_str());

  bool all_multi = true;
  for (const auto& sr : result->rules) all_multi &= (sr.rule.size() >= 2);
  std::printf("\nall rules have size >= 2: %s\n", all_multi ? "YES" : "NO");
  return all_multi ? 0 : 1;
}
