// Serial-vs-parallel sampling scan (paper §4) on the census workload.
//
// Measures the three full-pass operations of the SampleHandler at 1/2/4/8
// threads (plus --threads=N if given): the Create pass behind
// GetSampleFor, ExactMasses, and a displayed-tree Prefetch. Verifies the
// parallel results — sample contents, scales, exact masses — are
// bit-identical to the serial run (they must be by construction: chunk
// boundaries and RNG streams are pure functions of the row count and the
// handler configuration, never of the thread count), and emits
// machine-readable results to BENCH_parallel_sampling.json.
//
// Knobs: SMARTDD_CENSUS_ROWS (default 500000), SMARTDD_CENSUS_COLS (7),
//        SMARTDD_BENCH_REPS (3), SMARTDD_SAMPLING_DISK=1 to run against a
//        DiskTable file instead of the in-memory table.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "data/census_gen.h"
#include "sampling/sample_handler.h"
#include "storage/disk_table.h"
#include "storage/scan_source.h"
#include "storage/shard_plan.h"

namespace {

using namespace smartdd;

struct Measurement {
  size_t threads = 0;
  double create_ms = 0;
  double exact_ms = 0;
  double prefetch_ms = 0;
  // Flattened results for the identical-results check.
  uint64_t sample_rows = 0;
  double sample_scale = 0;
  std::vector<uint32_t> sample_codes;
  std::vector<double> exact_masses;
};

SampleHandlerOptions HandlerOptions(size_t threads) {
  SampleHandlerOptions options;
  options.memory_capacity = 50000;
  options.min_sample_size = 5000;
  options.seed = 42;
  options.num_threads = threads;
  return options;
}

DisplayTree MakeTree(size_t cols, uint64_t rows) {
  DisplayTree tree;
  DisplayTree::Node root;
  root.rule = Rule::Trivial(cols);
  root.estimated_mass = static_cast<double>(rows);
  root.children = {1, 2};
  DisplayTree::Node leaf1;
  leaf1.rule = Rule::Trivial(cols);
  leaf1.rule.set_value(0, 0);
  leaf1.estimated_mass = static_cast<double>(rows) / 4;
  leaf1.parent = 0;
  DisplayTree::Node leaf2;
  leaf2.rule = Rule::Trivial(cols);
  leaf2.rule.set_value(1, 0);
  leaf2.estimated_mass = static_cast<double>(rows) / 5;
  leaf2.parent = 0;
  tree.nodes = {root, leaf1, leaf2};
  return tree;
}

Measurement RunOnce(const ScanSource& source, size_t threads, uint64_t reps) {
  const size_t cols = source.schema().num_columns();
  const uint64_t rows = source.num_rows();
  std::vector<Rule> mass_rules;
  mass_rules.push_back(Rule::Trivial(cols));
  Rule r0 = Rule::Trivial(cols);
  r0.set_value(0, 0);
  mass_rules.push_back(r0);
  Rule r1 = Rule::Trivial(cols);
  r1.set_value(1, 0);
  mass_rules.push_back(r1);

  Measurement m;
  m.threads = threads;
  m.create_ms = std::numeric_limits<double>::infinity();
  m.exact_ms = std::numeric_limits<double>::infinity();
  m.prefetch_ms = std::numeric_limits<double>::infinity();
  for (uint64_t rep = 0; rep < reps; ++rep) {
    // A fresh handler per rep: a second GetSampleFor would be a Find hit.
    SampleHandler handler(source, HandlerOptions(threads));

    WallTimer timer;
    auto sample = handler.GetSampleFor(Rule::Trivial(cols));
    double create_ms = timer.ElapsedMillis();
    SMARTDD_CHECK(sample.ok()) << sample.status().ToString();
    m.create_ms = std::min(m.create_ms, create_ms);  // best-of: least noise

    timer.Restart();
    auto masses = handler.ExactMasses(mass_rules);
    double exact_ms = timer.ElapsedMillis();
    SMARTDD_CHECK(masses.ok()) << masses.status().ToString();
    m.exact_ms = std::min(m.exact_ms, exact_ms);

    handler.SetDisplayedTree(MakeTree(cols, rows));
    timer.Restart();
    SMARTDD_CHECK(handler.Prefetch().ok());
    m.prefetch_ms = std::min(m.prefetch_ms, timer.ElapsedMillis());

    m.sample_rows = sample->table.num_rows();
    m.sample_scale = sample->scale;
    m.sample_codes.clear();
    std::vector<uint32_t> row(cols);
    for (uint64_t r = 0; r < sample->table.num_rows(); ++r) {
      sample->table.GetRow(r, row.data());
      m.sample_codes.insert(m.sample_codes.end(), row.begin(), row.end());
    }
    m.exact_masses = *masses;
  }
  return m;
}

bool SameResults(const Measurement& a, const Measurement& b) {
  return a.sample_rows == b.sample_rows && a.sample_scale == b.sample_scale &&
         a.sample_codes == b.sample_codes && a.exact_masses == b.exact_masses;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smartdd::bench;
  ParseFlags(argc, argv);

  CensusSpec spec;
  spec.rows = EnvU64("SMARTDD_CENSUS_ROWS", 500000);
  spec.columns_used = EnvU64("SMARTDD_CENSUS_COLS", 7);
  const uint64_t reps = EnvU64("SMARTDD_BENCH_REPS", 3);
  const bool on_disk = EnvU64("SMARTDD_SAMPLING_DISK", 0) != 0;

  PrintExperimentHeader(
      "PAR-2", "parallel sampling scan (census at scale)",
      "near-linear speedup of the Create/ExactMasses/Prefetch passes up to "
      "the core count; bit-identical samples and masses at every thread "
      "count");
  std::fprintf(stderr, "[bench] generating census table (%llu x %zu)%s...\n",
               static_cast<unsigned long long>(spec.rows), spec.columns_used,
               on_disk ? " on disk" : "");
  Table table = GenerateCensusTable(spec);
  std::unique_ptr<ScanSource> source;
  std::string disk_path;
  if (on_disk) {
    const char* tmp = std::getenv("TMPDIR");
    disk_path = std::string(tmp ? tmp : "/tmp") + "/smartdd_bench_psamp.sddt";
    SMARTDD_CHECK(DiskTable::Write(table, disk_path).ok());
    auto disk = DiskTable::Open(disk_path);
    SMARTDD_CHECK(disk.ok()) << disk.status().ToString();
    source = std::make_unique<DiskScanSource>(*disk);
  } else {
    source = std::make_unique<MemoryScanSource>(table);
  }

  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  if (Flags().threads != 0 &&
      std::find(thread_counts.begin(), thread_counts.end(),
                Flags().threads) == thread_counts.end()) {
    thread_counts.push_back(Flags().threads);
  }

  std::vector<Measurement> runs;
  for (size_t threads : thread_counts) {
    runs.push_back(RunOnce(*source, threads, reps));
    const Measurement& m = runs.back();
    PrintSeriesRow("create_pass", static_cast<double>(threads), m.create_ms,
                   "threads", "ms");
    PrintSeriesRow("exact_masses", static_cast<double>(threads), m.exact_ms,
                   "threads", "ms");
    PrintSeriesRow("prefetch_pass", static_cast<double>(threads),
                   m.prefetch_ms, "threads", "ms");
    PrintSeriesRow("create_speedup", static_cast<double>(threads),
                   runs.front().create_ms / m.create_ms, "threads", "x");
  }

  // The shard dimension: the same passes over a ShardedScanSource (the
  // sharded engine's source layout) must produce bit-identical samples and
  // masses — the sharded source delivers the same rows in the same order.
  std::vector<size_t> shard_counts = {2, 4};
  if (Flags().shards > 1 &&
      std::find(shard_counts.begin(), shard_counts.end(), Flags().shards) ==
          shard_counts.end()) {
    shard_counts.push_back(Flags().shards);
  }
  std::vector<Measurement> shard_runs;
  for (size_t shards : shard_counts) {
    smartdd::ShardPlan plan =
        smartdd::ShardPlan::Make(source->num_rows(), shards);
    std::vector<std::unique_ptr<smartdd::RangeScanSource>> slices;
    std::vector<const smartdd::ScanSource*> slice_ptrs;
    for (size_t s = 0; s < shards; ++s) {
      slices.push_back(std::make_unique<smartdd::RangeScanSource>(
          *source, plan.shard(s).begin, plan.shard(s).end));
      slice_ptrs.push_back(slices.back().get());
    }
    smartdd::ShardedScanSource sharded(slice_ptrs);
    shard_runs.push_back(RunOnce(sharded, 4, reps));
    shard_runs.back().threads = shards;  // x axis below
    PrintSeriesRow("sharded_create_pass", static_cast<double>(shards),
                   shard_runs.back().create_ms, "shards", "ms");
  }

  const Measurement& serial = runs.front();
  bool identical = true;
  for (const Measurement& m : runs) identical &= SameResults(serial, m);
  for (const Measurement& m : shard_runs) identical &= SameResults(serial, m);
  std::printf("identical results across thread and shard counts: %s\n",
              identical ? "yes" : "NO (BUG)");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  std::string path = Flags().json_path.empty() ? "BENCH_parallel_sampling.json"
                                               : Flags().json_path;
  std::FILE* f = std::fopen(path.c_str(), "w");
  SMARTDD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "{\n  \"workload\": \"census%s\",\n  \"rows\": %llu,\n"
               "  \"columns\": %zu,\n  \"reps\": %llu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"identical_results\": %s,\n  \"runs\": [\n",
               on_disk ? "-disk" : "", static_cast<unsigned long long>(spec.rows),
               spec.columns_used, static_cast<unsigned long long>(reps),
               std::thread::hardware_concurrency(),
               identical ? "true" : "false");
  for (size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    std::fprintf(
        f,
        "    {\"threads\": %zu, \"create_ms\": %.3f, \"exact_ms\": %.3f, "
        "\"prefetch_ms\": %.3f, \"create_speedup\": %.3f, "
        "\"sample_rows\": %llu}%s\n",
        m.threads, m.create_ms, m.exact_ms, m.prefetch_ms,
        serial.create_ms / m.create_ms,
        static_cast<unsigned long long>(m.sample_rows),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  if (!disk_path.empty()) std::remove(disk_path.c_str());

  // Clear the flag so the generic atexit JSON sink does not overwrite the
  // structured report we just wrote.
  Flags().json_path.clear();
  return identical ? 0 : 1;
}
