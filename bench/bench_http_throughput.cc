// HTTP serving benchmark: N in-process clients drive the full network
// path — TCP loopback, epoll event loop, HTTP parse, codec, registry,
// engine, JSON encode, socket write — against one net::HttpServer fronting
// one ExplorationService. Each client loops: POST /v1/open, expand the
// root, drill into one child, close. Reports requests/sec and p50/p95
// per-expand latency through the socket, plus a socket-overhead probe: the
// same script through ExplorationService::ServeLine in-process (no socket)
// versus over loopback HTTP — the epoll layer should add tens of
// microseconds per request, not milliseconds (compare against
// bench_service_throughput's codec-overhead probe for the full stack
// decomposition: engine -> +codec/registry -> +socket). A final degraded
// stage reruns the path under an injected fault schedule (dispatch
// latency, tight in-flight cap, pre-expired deadlines) and reports
// p50/p99 alongside the shed and partial-response rates.
//
// Env knobs: SMARTDD_HTTP_ROWS (default 150000), SMARTDD_HTTP_SESSIONS
// (sessions per client thread, default 8).
//
// Usage: bench_http_throughput [--threads=N] [--json=FILE]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/codec.h"
#include "api/service.h"
#include "bench/bench_util.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/timer.h"
#include "data/synth.h"
#include "explore/engine.h"
#include "net/exploration_http_adapter.h"
#include "net/http_server.h"
#include "weights/standard_weights.h"

namespace {

using namespace smartdd;
using namespace smartdd::bench;

/// Minimal blocking keep-alive HTTP client (Content-Length responses only —
/// exactly what the /v1 JSON endpoints produce).
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SMARTDD_CHECK(fd_ >= 0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    SMARTDD_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0);
  }
  ~BenchClient() { ::close(fd_); }

  /// One POST round trip; returns the response body.
  std::string Post(const std::string& path, const std::string& body) {
    std::string request = "POST " + path + " HTTP/1.1\r\nHost: b\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    request += body;
    size_t sent = 0;
    while (sent < request.size()) {
      ssize_t w = ::send(fd_, request.data() + sent, request.size() - sent,
                         MSG_NOSIGNAL);
      SMARTDD_CHECK(w > 0) << "send failed";
      sent += static_cast<size_t>(w);
    }
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      Fill();
    }
    size_t cl = buffer_.find("Content-Length: ");
    SMARTDD_CHECK(cl != std::string::npos && cl < header_end) << buffer_;
    size_t content_length = std::stoul(buffer_.substr(cl + 16));
    size_t total = header_end + 4 + content_length;
    while (buffer_.size() < total) Fill();
    std::string response_body =
        buffer_.substr(header_end + 4, content_length);
    buffer_.erase(0, total);
    return response_body;
  }

 private:
  void Fill() {
    char buf[16384];
    ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    SMARTDD_CHECK(r > 0) << "connection lost mid-response";
    buffer_.append(buf, static_cast<size_t>(r));
  }

  int fd_;
  std::string buffer_;
};

std::string TokenOf(const std::string& body) {
  size_t at = body.find("\"session\":\"");
  SMARTDD_CHECK(at != std::string::npos) << body;
  return body.substr(at + 11, 16);
}

/// One open -> expand -> expand -> close session over HTTP; appends
/// per-expand latencies and returns the number of HTTP requests made.
size_t RunHttpSession(BenchClient& client, size_t variant,
                      std::vector<double>* expand_latencies_ms) {
  std::string token = TokenOf(client.Post("/v1/open", "k=3"));
  WallTimer t;
  std::string first = client.Post("/v1/expand", token + " 0");
  expand_latencies_ms->push_back(t.ElapsedMillis());
  SMARTDD_CHECK(first.find("\"ok\":true") != std::string::npos) << first;
  int child = 1 + static_cast<int>(variant % 3);
  t.Restart();
  std::string second =
      client.Post("/v1/expand", token + " " + std::to_string(child));
  expand_latencies_ms->push_back(t.ElapsedMillis());
  SMARTDD_CHECK(second.find("\"ok\":true") != std::string::npos) << second;
  SMARTDD_CHECK(
      client.Post("/v1/close", token).find("\"ok\":true") !=
      std::string::npos);
  return 4;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  ParseFlags(argc, argv);

  const uint64_t rows = EnvU64("SMARTDD_HTTP_ROWS", 150000);
  const uint64_t sessions_per_client = EnvU64("SMARTDD_HTTP_SESSIONS", 8);

  SynthSpec spec;
  spec.rows = rows;
  spec.cardinalities = {12, 8, 6, 5, 4, 3};
  spec.zipf = {1.1, 0.8, 1.2, 0.6, 1.0, 0.4};
  spec.seed = 2024;
  Table table = GenerateSyntheticTable(spec);
  SizeWeight weight;

  PrintExperimentHeader(
      "http_throughput",
      "HTTP serving: epoll server + adapter + service under client load",
      "requests/sec scales with concurrent clients; the socket layer adds "
      "microseconds over the in-process service path");
  std::printf("rows=%llu, sessions/client=%llu, hw threads=%u\n\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(sessions_per_client),
              std::thread::hardware_concurrency());

  // Socket-overhead probe: the same single-client script through
  // ServeLine (in-process) vs over loopback HTTP, serially.
  {
    EngineOptions engine_options;
    engine_options.num_threads = Flags().threads;
    ExplorationEngine engine(table, weight, engine_options);
    api::ExplorationService service;
    SMARTDD_CHECK(service.AddEngine("bench", &engine).ok());

    WallTimer direct_t;
    for (uint64_t i = 0; i < sessions_per_client; ++i) {
      std::string open = service.ServeLine("open k=3");
      size_t at = open.find("\"session\":\"");
      SMARTDD_CHECK(at != std::string::npos);
      std::string tok = open.substr(at + 11, 16);
      SMARTDD_CHECK(service.ServeLine("expand " + tok + " 0")
                        .find("\"ok\":true") != std::string::npos);
      SMARTDD_CHECK(service.ServeLine("expand " + tok + " " +
                                      std::to_string(1 + (i % 3)))
                        .find("\"ok\":true") != std::string::npos);
      SMARTDD_CHECK(service.ServeLine("close " + tok).find("\"ok\":true") !=
                    std::string::npos);
    }
    const double direct_ms = direct_t.ElapsedMillis();

    net::ExplorationHttpAdapter adapter(&service);
    net::HttpServer server(adapter.AsHandler(), {});
    SMARTDD_CHECK(server.Start().ok());
    std::vector<double> lat;
    WallTimer http_t;
    {
      BenchClient client(server.port());
      for (uint64_t i = 0; i < sessions_per_client; ++i) {
        RunHttpSession(client, i, &lat);
      }
    }
    const double http_ms = http_t.ElapsedMillis();
    server.Shutdown();
    // 4 HTTP requests per session.
    PrintSeriesRow("socket_overhead_ms_per_request", 1,
                   (http_ms - direct_ms) /
                       static_cast<double>(sessions_per_client * 4),
                   "clients", "http-minus-inprocess ms/request");
  }

  for (size_t clients : {size_t{1}, size_t{4}, size_t{16}}) {
    EngineOptions engine_options;
    engine_options.num_threads = Flags().threads;
    ExplorationEngine engine(table, weight, engine_options);
    api::ExplorationService service;
    SMARTDD_CHECK(service.AddEngine("bench", &engine).ok());
    net::ExplorationHttpAdapter adapter(&service);
    net::HttpServerOptions server_options;
    server_options.max_inflight_requests = 2 * clients + 8;
    net::HttpServer server(adapter.AsHandler(), server_options);
    SMARTDD_CHECK(server.Start().ok());

    std::vector<std::vector<double>> latencies(clients);
    std::vector<size_t> request_counts(clients, 0);
    WallTimer wall;
    {
      std::vector<std::thread> threads;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
          BenchClient client(server.port());
          for (uint64_t i = 0; i < sessions_per_client; ++i) {
            request_counts[c] += RunHttpSession(client, c + i, &latencies[c]);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double wall_s = wall.ElapsedSeconds();
    server.Shutdown();
    SMARTDD_CHECK(service.num_sessions() == 0) << "sessions leaked";
    SMARTDD_CHECK(engine.num_sessions() == 0);

    std::vector<double> all;
    size_t total_requests = 0;
    for (size_t c = 0; c < clients; ++c) {
      all.insert(all.end(), latencies[c].begin(), latencies[c].end());
      total_requests += request_counts[c];
    }
    PrintSeriesRow("requests_per_sec", static_cast<double>(clients),
                   wall_s > 0 ? static_cast<double>(total_requests) / wall_s
                              : 0,
                   "clients", "HTTP requests/s");
    PrintSeriesRow("p50_expand_ms", static_cast<double>(clients),
                   Percentile(all, 0.50), "clients",
                   "p50 expand latency over HTTP (ms)");
    PrintSeriesRow("p95_expand_ms", static_cast<double>(clients),
                   Percentile(all, 0.95), "clients",
                   "p95 expand latency over HTTP (ms)");
    std::printf("\n");
  }

  // --- Degraded-mode stage -----------------------------------------------
  // The same serving path under chaos: every dispatch pays an injected
  // latency fault (the in-memory engine has no disk to slow down, so the
  // HTTP tier stands in for slow I/O), a deliberately tight in-flight cap
  // provokes load shedding, and half the expands carry a pre-expired
  // deadline so the degrade path (partial trees as 200s) is on the hot
  // path. Reported: p50/p99 expand latency plus the shed and partial rates
  // — the robustness counterpart to the clean-path numbers above.
  {
    const size_t clients = 8;
    EngineOptions engine_options;
    engine_options.num_threads = Flags().threads;
    ExplorationEngine engine(table, weight, engine_options);
    api::ExplorationService service;
    SMARTDD_CHECK(service.AddEngine("bench", &engine).ok());
    net::ExplorationHttpAdapter adapter(&service);
    net::HttpServerOptions server_options;
    server_options.max_inflight_requests = clients / 2;
    net::HttpServer server(adapter.AsHandler(), server_options);
    SMARTDD_CHECK(server.Start().ok());

    FaultRegistry::Default().DisarmAll();
    SMARTDD_CHECK(
        FaultRegistry::Default().ArmFromSpec("http.dispatch=latency:2:0").ok());
    const uint64_t fired_before =
        FaultRegistry::Default().fired("http.dispatch");

    std::vector<std::vector<double>> latencies(clients);
    std::vector<size_t> responses(clients, 0);
    std::vector<size_t> sheds(clients, 0);
    std::vector<size_t> partials(clients, 0);
    {
      std::vector<std::thread> threads;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
          BenchClient client(server.port());
          auto tally = [&](const std::string& body) {
            ++responses[c];
            if (body.find("CAPACITY_EXCEEDED") != std::string::npos) {
              ++sheds[c];
            }
            if (body.find("\"partial\":true") != std::string::npos) {
              ++partials[c];
            }
            return body;
          };
          for (uint64_t i = 0; i < sessions_per_client; ++i) {
            std::string open = tally(client.Post("/v1/open", "k=3"));
            size_t at = open.find("\"session\":\"");
            if (at == std::string::npos) continue;  // shed; next session
            std::string token = open.substr(at + 11, 16);
            for (int node : {0, 1}) {
              // Alternate an ample budget with a pre-expired one: the
              // latter always degrades, keeping the partial path hot.
              const char* deadline =
                  ((i + static_cast<uint64_t>(node)) % 2 == 0)
                      ? " deadline_ms=50"
                      : " deadline_ms=0.0001";
              WallTimer t;
              tally(client.Post("/v1/expand", token + " " +
                                                  std::to_string(node) +
                                                  deadline));
              latencies[c].push_back(t.ElapsedMillis());
            }
            tally(client.Post("/v1/close", token));
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    FaultRegistry::Default().DisarmAll();
    server.Shutdown();
    SMARTDD_CHECK(service.num_sessions() == 0) << "sessions leaked";

    std::vector<double> all;
    size_t total = 0, shed = 0, partial = 0;
    for (size_t c = 0; c < clients; ++c) {
      all.insert(all.end(), latencies[c].begin(), latencies[c].end());
      total += responses[c];
      shed += sheds[c];
      partial += partials[c];
    }
    const double denom = total > 0 ? static_cast<double>(total) : 1.0;
    PrintSeriesRow("degraded_p50_expand_ms", static_cast<double>(clients),
                   Percentile(all, 0.50), "clients",
                   "p50 expand latency under fault schedule (ms)");
    PrintSeriesRow("degraded_p99_expand_ms", static_cast<double>(clients),
                   Percentile(all, 0.99), "clients",
                   "p99 expand latency under fault schedule (ms)");
    PrintSeriesRow("degraded_shed_rate", static_cast<double>(clients),
                   static_cast<double>(shed) / denom, "clients",
                   "fraction of responses shed with CAPACITY_EXCEEDED");
    PrintSeriesRow("degraded_partial_rate", static_cast<double>(clients),
                   static_cast<double>(partial) / denom, "clients",
                   "fraction of responses degraded to partial trees");
    std::printf("faults injected at http.dispatch: %llu\n\n",
                static_cast<unsigned long long>(
                    FaultRegistry::Default().fired("http.dispatch") -
                    fired_before));
  }

  std::printf("http throughput bench done\n");
  return 0;
}
