#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace smartdd::bench {

namespace {

struct SeriesRecord {
  std::string series;
  double x = 0;
  double y = 0;
  std::string x_name;
  std::string y_name;
};

std::vector<SeriesRecord>& JsonRecords() {
  static std::vector<SeriesRecord>* records = new std::vector<SeriesRecord>();
  return *records;
}

std::vector<std::pair<std::string, double>>& ScalarRecords() {
  static auto* records = new std::vector<std::pair<std::string, double>>();
  return *records;
}

}  // namespace

BenchFlags& Flags() {
  static BenchFlags* flags = new BenchFlags();
  return *flags;
}

void ParseFlags(int argc, char** argv) {
  BenchFlags& flags = Flags();
  flags.threads = static_cast<size_t>(EnvU64("SMARTDD_THREADS", 0));
  flags.shards = static_cast<size_t>(EnvU64("SMARTDD_SHARDS", 1));
  const char* json_env = std::getenv("SMARTDD_JSON");
  if (json_env != nullptr && *json_env != '\0') flags.json_path = json_env;
  // SMARTDD_KERNEL also steers kAuto resolution inside the library; parsing
  // it here as well makes the flag and the env var behave identically.
  flags.kernel = KernelPrefFromEnv();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      flags.threads = static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      flags.shards = static_cast<size_t>(std::strtoull(arg + 9, nullptr, 10));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      flags.json_path = arg + 7;
    } else if (std::strncmp(arg, "--kernel=", 9) == 0) {
      auto pref = ParseKernelPref(arg + 9);
      SMARTDD_CHECK(pref.ok()) << pref.status().ToString();
      flags.kernel = *pref;
    }
  }
  std::fprintf(stderr, "[bench] scan kernels: %s (requested %s)\n",
               KernelPathName(ResolveKernelPath(flags.kernel)),
               KernelPrefName(flags.kernel));
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(FlushJson);
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void RecordScalar(const std::string& name, double value) {
  for (auto& [n, v] : ScalarRecords()) {
    if (n == name) {
      v = value;
      return;
    }
  }
  ScalarRecords().emplace_back(name, value);
}

void RecordTableBytes(const std::string& name, const Table& table) {
  RecordScalar(name + "_packed_bytes",
               static_cast<double>(table.resident_column_bytes()));
  RecordScalar(name + "_unpacked_bytes",
               static_cast<double>(table.unpacked_column_bytes()));
}

void FlushJson() {
  const std::string& path = Flags().json_path;
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for JSON output\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"threads\": %zu,\n  \"kernel\": \"%s\",\n",
               Flags().threads,
               KernelPathName(ResolveKernelPath(Flags().kernel)));
  const auto& scalars = ScalarRecords();
  std::fprintf(f, "  \"scalars\": {");
  for (size_t i = 0; i < scalars.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %.10g", i ? "," : "",
                 JsonEscape(scalars[i].first).c_str(), scalars[i].second);
  }
  std::fprintf(f, "%s},\n", scalars.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"rows\": [\n");
  const auto& records = JsonRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    const SeriesRecord& r = records[i];
    std::fprintf(f,
                 "    {\"series\": \"%s\", \"%s\": %.10g, "
                 "\"%s\": %.10g}%s\n",
                 JsonEscape(r.series).c_str(), JsonEscape(r.x_name).c_str(),
                 r.x, JsonEscape(r.y_name).c_str(), r.y,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %zu JSON rows to %s\n", records.size(),
               path.c_str());
}

uint64_t EnvU64(const char* name, uint64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return default_value;
  return static_cast<uint64_t>(parsed);
}

const Table& Marketing7() {
  static const Table* table = [] {
    MarketingSpec spec;
    spec.columns = 7;
    return new Table(GenerateMarketingTable(spec));
  }();
  return *table;
}

const Table& Marketing14() {
  static const Table* table = [] {
    return new Table(GenerateMarketingTable({}));
  }();
  return *table;
}

const CensusData& Census() {
  static const CensusData* data = [] {
    auto* d = new CensusData();
    CensusSpec spec;
    spec.rows = EnvU64("SMARTDD_CENSUS_ROWS", 500000);
    // The paper (§5): "Unless otherwise specified, in all our experiments,
    // we restrict the tables to the first 7 columns". Override with
    // SMARTDD_CENSUS_COLS=68 for the full-width (much heavier) variant.
    spec.columns_used = EnvU64("SMARTDD_CENSUS_COLS", 7);
    const char* tmp = std::getenv("TMPDIR");
    d->path = std::string(tmp ? tmp : "/tmp") + "/smartdd_census_bench.sddt";
    std::fprintf(stderr,
                 "[bench] generating census disk table (%llu rows x %zu "
                 "cols) at %s\n",
                 static_cast<unsigned long long>(spec.rows),
                 spec.columns_used, d->path.c_str());
    Status s = GenerateCensusDiskTable(spec, d->path);
    SMARTDD_CHECK(s.ok()) << s.ToString();
    auto dt = DiskTable::Open(d->path);
    SMARTDD_CHECK(dt.ok()) << dt.status().ToString();
    d->disk = *dt;
    d->source = std::make_unique<DiskScanSource>(d->disk);
    return d;
  }();
  return *data;
}

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_expectation) {
  std::printf("\n=============================================================\n");
  std::printf("EXPERIMENT %s — %s\n", id.c_str(), title.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("=============================================================\n");
  std::fflush(stdout);
}

void PrintSeriesRow(const std::string& series, double x, double y,
                    const std::string& x_name, const std::string& y_name) {
  std::printf("series=%-28s %s=%-10.4g %s=%.6g\n", series.c_str(),
              x_name.c_str(), x, y_name.c_str(), y);
  std::fflush(stdout);
  if (!Flags().json_path.empty()) {
    JsonRecords().push_back(SeriesRecord{series, x, y, x_name, y_name});
  }
}

ExpansionMeasurement MeasureExpandEmpty(const ScanSource& source,
                                        const WeightFunction& weight,
                                        double mw, uint64_t min_sample_size,
                                        uint64_t memory_capacity, size_t k,
                                        uint64_t seed) {
  ExpansionMeasurement m;
  SampleHandlerOptions options;
  options.memory_capacity = memory_capacity;
  options.min_sample_size = min_sample_size;
  // The paper's SampleHandler returns samples of exactly minSS tuples; a
  // bare Create here must not round up to a fraction of M, or the minSS
  // sweeps of Figure 8 would all see the same sample.
  options.create_capacity_fraction = 0;
  options.seed = seed;
  SampleHandler handler(source, options);

  WallTimer total;
  WallTimer phase;
  auto sample = handler.GetSampleFor(Rule::Trivial(source.schema().num_columns()));
  SMARTDD_CHECK(sample.ok()) << sample.status().ToString();
  m.sample_ms = phase.ElapsedMillis();
  m.scale = sample->scale;
  m.sample_rows = sample->table.num_rows();

  TableView view(sample->table);
  BrsOptions brs;
  brs.k = k;
  brs.max_weight = mw;
  brs.num_threads = Flags().threads;
  brs.kernel = Flags().kernel;
  phase.Restart();
  auto result = RunBrs(view, weight, brs);
  SMARTDD_CHECK(result.ok()) << result.status().ToString();
  m.brs_ms = phase.ElapsedMillis();
  m.total_ms = total.ElapsedMillis();
  m.result = std::move(result).value();
  return m;
}

BenchSession MakeBenchSession(const Table& table, const WeightFunction& weight,
                              SessionOptions options) {
  ShardedEngineOptions engine_options;
  engine_options.num_shards = Flags().shards;
  engine_options.engine.num_threads = options.num_threads;
  engine_options.engine.kernel = Flags().kernel;
  if (options.kernel == KernelPref::kAuto) options.kernel = Flags().kernel;
  RecordTableBytes("session_table", table);
  auto engine = ShardedEngine::Create(table, weight, engine_options);
  SMARTDD_CHECK(engine.ok()) << engine.status().ToString();
  auto session = (*engine)->front().NewSession(std::move(options));
  SMARTDD_CHECK(session.ok()) << session.status().ToString();
  return BenchSession{std::move(engine).value(), std::move(session).value()};
}

}  // namespace smartdd::bench
