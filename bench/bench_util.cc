#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace smartdd::bench {

uint64_t EnvU64(const char* name, uint64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return default_value;
  return static_cast<uint64_t>(parsed);
}

const Table& Marketing7() {
  static const Table* table = [] {
    MarketingSpec spec;
    spec.columns = 7;
    return new Table(GenerateMarketingTable(spec));
  }();
  return *table;
}

const Table& Marketing14() {
  static const Table* table = [] {
    return new Table(GenerateMarketingTable({}));
  }();
  return *table;
}

const CensusData& Census() {
  static const CensusData* data = [] {
    auto* d = new CensusData();
    CensusSpec spec;
    spec.rows = EnvU64("SMARTDD_CENSUS_ROWS", 500000);
    // The paper (§5): "Unless otherwise specified, in all our experiments,
    // we restrict the tables to the first 7 columns". Override with
    // SMARTDD_CENSUS_COLS=68 for the full-width (much heavier) variant.
    spec.columns_used = EnvU64("SMARTDD_CENSUS_COLS", 7);
    const char* tmp = std::getenv("TMPDIR");
    d->path = std::string(tmp ? tmp : "/tmp") + "/smartdd_census_bench.sddt";
    std::fprintf(stderr,
                 "[bench] generating census disk table (%llu rows x %zu "
                 "cols) at %s\n",
                 static_cast<unsigned long long>(spec.rows),
                 spec.columns_used, d->path.c_str());
    Status s = GenerateCensusDiskTable(spec, d->path);
    SMARTDD_CHECK(s.ok()) << s.ToString();
    auto dt = DiskTable::Open(d->path);
    SMARTDD_CHECK(dt.ok()) << dt.status().ToString();
    d->disk = *dt;
    d->source = std::make_unique<DiskScanSource>(d->disk);
    return d;
  }();
  return *data;
}

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_expectation) {
  std::printf("\n=============================================================\n");
  std::printf("EXPERIMENT %s — %s\n", id.c_str(), title.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("=============================================================\n");
  std::fflush(stdout);
}

void PrintSeriesRow(const std::string& series, double x, double y,
                    const std::string& x_name, const std::string& y_name) {
  std::printf("series=%-28s %s=%-10.4g %s=%.6g\n", series.c_str(),
              x_name.c_str(), x, y_name.c_str(), y);
  std::fflush(stdout);
}

ExpansionMeasurement MeasureExpandEmpty(const ScanSource& source,
                                        const WeightFunction& weight,
                                        double mw, uint64_t min_sample_size,
                                        uint64_t memory_capacity, size_t k,
                                        uint64_t seed) {
  ExpansionMeasurement m;
  SampleHandlerOptions options;
  options.memory_capacity = memory_capacity;
  options.min_sample_size = min_sample_size;
  // The paper's SampleHandler returns samples of exactly minSS tuples; a
  // bare Create here must not round up to a fraction of M, or the minSS
  // sweeps of Figure 8 would all see the same sample.
  options.create_capacity_fraction = 0;
  options.seed = seed;
  SampleHandler handler(source, options);

  WallTimer total;
  WallTimer phase;
  auto sample = handler.GetSampleFor(Rule::Trivial(source.schema().num_columns()));
  SMARTDD_CHECK(sample.ok()) << sample.status().ToString();
  m.sample_ms = phase.ElapsedMillis();
  m.scale = sample->scale;
  m.sample_rows = sample->table.num_rows();

  TableView view(sample->table);
  BrsOptions brs;
  brs.k = k;
  brs.max_weight = mw;
  phase.Restart();
  auto result = RunBrs(view, weight, brs);
  SMARTDD_CHECK(result.ok()) << result.status().ToString();
  m.brs_ms = phase.ElapsedMillis();
  m.total_ms = total.ElapsedMillis();
  m.result = std::move(result).value();
  return m;
}

}  // namespace smartdd::bench
